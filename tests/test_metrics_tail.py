"""Tests for tail norms and skew profiles."""

import numpy as np
import pytest

from repro.metrics.tail import (
    head_norm,
    level_frequencies,
    skew_profile,
    tail_norm,
    tail_norm_from_counts,
)


class TestTailNormFromCounts:
    def test_zero_k_is_total_mass(self):
        assert tail_norm_from_counts([5, 3, 2], 0) == 10.0

    def test_removes_largest_coordinates(self):
        assert tail_norm_from_counts([5, 3, 2], 1) == 5.0
        assert tail_norm_from_counts([5, 3, 2], 2) == 2.0

    def test_k_beyond_support_is_zero(self):
        assert tail_norm_from_counts([5, 3], 10) == 0.0

    def test_accepts_dicts(self):
        assert tail_norm_from_counts({"a": 7, "b": 1}, 1) == 1.0

    def test_empty_counts(self):
        assert tail_norm_from_counts([], 3) == 0.0

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            tail_norm_from_counts([1], -1)

    def test_head_plus_tail_is_total(self):
        counts = [9, 4, 3, 1, 1]
        for k in range(6):
            assert head_norm(counts, k) + tail_norm_from_counts(counts, k) == pytest.approx(18)


class TestTailNormFromData:
    def test_sparse_data_has_zero_tail(self, interval):
        """All mass in two cells => tail_2 = 0 at that level."""
        data = [0.1] * 50 + [0.9] * 50
        assert tail_norm(data, interval, level=1, k=2) == 0.0

    def test_uniform_data_has_large_tail(self, interval, rng):
        data = rng.random(1024)
        value = tail_norm(data, interval, level=6, k=4)
        # 4 of 64 cells removed from a roughly uniform histogram.
        assert value > 0.8 * 1024 * (60 / 64) * 0.8

    def test_tail_monotone_in_k(self, interval, rng):
        data = rng.beta(2, 5, size=500)
        values = [tail_norm(data, interval, level=5, k=k) for k in range(0, 8)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_tail_monotone_in_level(self, interval, rng):
        """Splitting cells can only grow the tail (the paper's key observation)."""
        data = rng.beta(2, 5, size=800)
        k = 4
        shallow = tail_norm(data, interval, level=3, k=k)
        deep = tail_norm(data, interval, level=6, k=k)
        assert shallow <= deep + 1e-9

    def test_level_frequencies_returns_domain_counts(self, interval, rng):
        data = rng.random(100)
        counts = level_frequencies(data, interval, 3)
        assert sum(counts.values()) == 100


class TestSkewProfile:
    def test_profile_in_unit_range(self, interval, rng):
        data = rng.random(300)
        profile = skew_profile(data, interval, levels=[2, 4, 6], k=2)
        assert set(profile) == {2, 4, 6}
        assert all(0.0 <= value <= 1.0 for value in profile.values())

    def test_skewed_data_has_smaller_profile_than_uniform(self, interval, rng):
        uniform = rng.random(1000)
        skewed = np.clip(rng.normal(0.3, 0.01, size=1000), 0, 1)
        level = 6
        uniform_profile = skew_profile(uniform, interval, [level], k=4)[level]
        skewed_profile = skew_profile(skewed, interval, [level], k=4)[level]
        assert skewed_profile < uniform_profile

    def test_empty_data_rejected(self, interval):
        with pytest.raises(ValueError):
            skew_profile([], interval, [1], k=1)
