"""Tests for the Count-Sketch."""

import numpy as np
import pytest

from repro.sketch.countsketch import CountSketch


class TestCountSketch:
    def test_exact_when_no_collisions(self):
        sketch = CountSketch(width=1024, depth=5, seed=0)
        sketch.update((0, 0, 1), 4)
        sketch.update((1, 1, 0), 7)
        assert sketch.query((0, 0, 1)) == pytest.approx(4)
        assert sketch.query((1, 1, 0)) == pytest.approx(7)

    def test_estimates_are_nearly_unbiased(self, rng):
        """Averaged over many seeds, the estimate of a fixed key is close to its count."""
        true_count = 50
        estimates = []
        for seed in range(30):
            sketch = CountSketch(width=16, depth=5, seed=seed)
            sketch.update("target", true_count)
            for i in range(300):
                sketch.update(("other", i), 1)
            estimates.append(sketch.query("target"))
        assert np.mean(estimates) == pytest.approx(true_count, abs=10)

    def test_handles_negative_updates(self):
        sketch = CountSketch(width=64, depth=3, seed=1)
        sketch.update("x", 10)
        sketch.update("x", -4)
        assert sketch.query("x") == pytest.approx(6)

    def test_update_batch_matches_per_item_updates(self, rng):
        """Aggregated batch updates land in the same buckets with the same signs."""
        level = 9
        codes = rng.integers(0, 1 << level, size=400)
        keys, counts = np.unique(codes, return_counts=True)
        canonical = keys.astype(np.uint64) | (np.uint64(1) << np.uint64(level))

        batched = CountSketch(width=64, depth=5, seed=3)
        batched.update_batch(canonical, counts.astype(float))

        sequential = CountSketch(width=64, depth=5, seed=3)
        for key, count in zip(canonical, counts):
            for _ in range(int(count)):
                sequential.update(int(key))

        np.testing.assert_allclose(batched.table, sequential.table)
        assert batched.total == pytest.approx(sequential.total)
        assert batched.updates == sequential.updates

    def test_update_batch_rejects_mismatched_shapes(self):
        sketch = CountSketch(width=16, depth=3, seed=0)
        with pytest.raises(ValueError):
            sketch.update_batch(np.array([1, 2, 3], dtype=np.uint64), np.array([1.0, 2.0]))

    def test_update_many_and_query_many(self):
        sketch = CountSketch(width=128, depth=5, seed=2)
        sketch.update_many([(i % 5,) for i in range(50)])
        estimates = sketch.query_many([(i,) for i in range(5)])
        assert estimates.shape == (5,)
        assert np.all(estimates >= 5)

    def test_memory_words(self):
        sketch = CountSketch(width=32, depth=4)
        assert sketch.memory_words() == 128

    def test_invalid_dimensions_raise(self):
        with pytest.raises(ValueError):
            CountSketch(width=0, depth=1)
        with pytest.raises(ValueError):
            CountSketch(width=1, depth=0)

    def test_add_noise_matrix_shape_checked(self):
        sketch = CountSketch(width=8, depth=2, seed=0)
        with pytest.raises(ValueError):
            sketch.add_noise_matrix(np.zeros((1, 1)))

    def test_error_smaller_with_larger_width(self, rng):
        keys = (rng.zipf(1.4, size=4000) % 400).astype(int)
        true_counts: dict = {}
        for key in keys:
            true_counts[int(key)] = true_counts.get(int(key), 0) + 1

        def mean_abs_error(width):
            sketch = CountSketch(width=width, depth=5, seed=7)
            for key in keys:
                sketch.update(int(key))
            return np.mean([abs(sketch.query(k) - c) for k, c in true_counts.items()])

        assert mean_abs_error(256) <= mean_abs_error(8)
