"""Tests for the SRRW and Smooth baselines."""

import numpy as np
import pytest

from repro.baselines.smooth import GridDensitySampler, SmoothMethod
from repro.baselines.srrw import SRRWMethod
from repro.domain.ipv4 import IPv4Domain
from repro.metrics.wasserstein import wasserstein1_1d


class TestSRRW:
    def test_fit_and_sample(self, interval, rng):
        method = SRRWMethod(interval, epsilon=1.0, max_depth=8)
        sampler = method.fit(rng.random(300), rng=0)
        samples = sampler.sample(100)
        assert np.all((samples >= 0) & (samples <= 1))

    def test_high_budget_low_error(self, interval, rng):
        data = rng.beta(2, 6, size=2000)
        method = SRRWMethod(interval, epsilon=500.0, max_depth=12)
        sampler = method.fit(data, rng=0)
        assert wasserstein1_1d(data, sampler.sample(2000)) < 0.02

    def test_memory_proportional_to_full_tree(self, interval, rng):
        method = SRRWMethod(interval, epsilon=1.0, max_depth=9)
        method.fit(rng.random(500), rng=0)
        depth = method._resolve_depth(500)
        assert method.memory_words() == 2 * (2 ** (depth + 1) - 1)

    def test_consistency_enforced_by_default(self, interval, rng):
        method = SRRWMethod(interval, epsilon=1.0, max_depth=7)
        method.fit(rng.random(200), rng=0)
        assert method._tree.is_consistent()

    def test_two_dimensional_support(self, square, rng):
        method = SRRWMethod(square, epsilon=2.0, max_depth=8)
        sampler = method.fit(rng.random((200, 2)), rng=0)
        assert sampler.sample(40).shape == (40, 2)

    def test_invalid_epsilon(self, interval):
        with pytest.raises(ValueError):
            SRRWMethod(interval, epsilon=-1.0)

    def test_empty_data_rejected(self, interval):
        with pytest.raises(ValueError):
            SRRWMethod(interval, epsilon=1.0).fit([], rng=0)


class TestGridDensitySampler:
    def test_negative_density_clamped(self, rng):
        density = np.array([-1.0, 2.0, 1.0])
        sampler = GridDensitySampler(density, rng=rng, scalar_output=True)
        samples = sampler.sample(500)
        # No sample should land in the first third (its density was clamped to 0).
        assert np.mean(samples < 1 / 3) == pytest.approx(0.0, abs=0.01)

    def test_all_zero_density_falls_back_to_uniform(self, rng):
        sampler = GridDensitySampler(np.zeros(8), rng=rng, scalar_output=True)
        samples = sampler.sample(400)
        assert 0.3 < np.mean(samples < 0.5) < 0.7

    def test_two_dimensional_output(self, rng):
        sampler = GridDensitySampler(np.ones((4, 4)), rng=rng, scalar_output=False)
        assert sampler.sample(10).shape == (10, 2)

    def test_negative_size_rejected(self, rng):
        sampler = GridDensitySampler(np.ones(4), rng=rng, scalar_output=True)
        with pytest.raises(ValueError):
            sampler.sample(-1)


class TestSmooth:
    def test_fit_and_sample_interval(self, interval, rng):
        method = SmoothMethod(interval, epsilon=2.0, order=6, grid_size=64)
        sampler = method.fit(rng.beta(2, 5, size=1000), rng=0)
        samples = sampler.sample(300)
        assert np.all((samples >= 0) & (samples <= 1))

    def test_high_budget_captures_shape(self, interval, rng):
        data = rng.beta(2, 8, size=4000)
        method = SmoothMethod(interval, epsilon=200.0, order=10, grid_size=128)
        sampler = method.fit(data, rng=0)
        error = wasserstein1_1d(data, sampler.sample(4000))
        uniform_error = wasserstein1_1d(data, rng.random(4000))
        assert error < uniform_error

    def test_two_dimensional_support(self, square, rng):
        method = SmoothMethod(square, epsilon=5.0, order=3, grid_size=16)
        sampler = method.fit(rng.random((500, 2)), rng=0)
        assert sampler.sample(50).shape == (50, 2)

    def test_memory_reported_after_fit(self, interval, rng):
        method = SmoothMethod(interval, epsilon=1.0, order=4, grid_size=32)
        assert method.memory_words() == 0
        method.fit(rng.random(200), rng=0)
        assert method.memory_words() > 0

    def test_rejects_non_hypercube_domain(self):
        with pytest.raises(TypeError):
            SmoothMethod(IPv4Domain(), epsilon=1.0)

    def test_invalid_parameters(self, interval):
        with pytest.raises(ValueError):
            SmoothMethod(interval, epsilon=0.0)
        with pytest.raises(ValueError):
            SmoothMethod(interval, epsilon=1.0, order=0)
        with pytest.raises(ValueError):
            SmoothMethod(interval, epsilon=1.0, grid_size=1)

    def test_dimension_mismatch_rejected(self, square, rng):
        method = SmoothMethod(square, epsilon=1.0, order=2, grid_size=8)
        with pytest.raises(ValueError):
            method.fit(rng.random(100), rng=0)

    def test_empty_data_rejected(self, interval):
        with pytest.raises(ValueError):
            SmoothMethod(interval, epsilon=1.0).fit([], rng=0)
