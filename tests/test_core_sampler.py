"""Tests for the synthetic data generator (Section 5 sampling)."""

import numpy as np
import pytest

from repro.core.sampler import SyntheticDataGenerator
from repro.core.tree import PartitionTree


def weighted_tree():
    """A depth-2 tree putting 3/4 of the mass in the left half."""
    tree = PartitionTree()
    tree.add_node((), 100.0)
    tree.add_node((0,), 75.0)
    tree.add_node((1,), 25.0)
    tree.add_node((0, 0), 50.0)
    tree.add_node((0, 1), 25.0)
    tree.add_node((1, 0), 25.0)
    tree.add_node((1, 1), 0.0)
    return tree


class TestSampling:
    def test_samples_lie_in_domain(self, interval, rng):
        generator = SyntheticDataGenerator(weighted_tree(), interval, rng=rng)
        samples = generator.sample(500)
        assert samples.shape == (500,)
        assert np.all(samples >= 0.0)
        assert np.all(samples <= 1.0)

    def test_sample_size_zero(self, interval, rng):
        generator = SyntheticDataGenerator(weighted_tree(), interval, rng=rng)
        assert generator.sample(0).shape[0] == 0

    def test_negative_size_rejected(self, interval, rng):
        generator = SyntheticDataGenerator(weighted_tree(), interval, rng=rng)
        with pytest.raises(ValueError):
            generator.sample(-1)

    def test_leaf_frequencies_match_counts(self, interval):
        generator = SyntheticDataGenerator(weighted_tree(), interval, rng=0)
        samples = generator.sample(8000)
        # Leaf (0,0) covers [0, 0.25) and holds half the mass.
        fraction_first_quarter = np.mean(samples < 0.25)
        assert fraction_first_quarter == pytest.approx(0.5, abs=0.03)
        # Leaf (1,1) covers [0.75, 1] and holds no mass.
        assert np.mean(samples >= 0.75) == pytest.approx(0.0, abs=0.01)

    def test_two_dimensional_output_shape(self, square, rng):
        tree = PartitionTree()
        tree.add_node((), 10.0)
        tree.add_node((0,), 10.0)
        tree.add_node((1,), 0.0)
        generator = SyntheticDataGenerator(tree, square, rng=rng)
        samples = generator.sample(50)
        assert samples.shape == (50, 2)
        # All the mass sits in the x < 0.5 half.
        assert np.all(samples[:, 0] <= 0.5)

    def test_empty_tree_falls_back_to_uniform(self, interval, rng):
        tree = PartitionTree()
        tree.add_node((), 0.0)
        generator = SyntheticDataGenerator(tree, interval, rng=rng)
        samples = generator.sample(200)
        assert np.all((samples >= 0.0) & (samples <= 1.0))
        # Roughly uniform: both halves occupied.
        assert 0.3 < np.mean(samples < 0.5) < 0.7

    def test_reproducible_with_seed(self, interval):
        first = SyntheticDataGenerator(weighted_tree(), interval, rng=42).sample(20)
        second = SyntheticDataGenerator(weighted_tree(), interval, rng=42).sample(20)
        np.testing.assert_allclose(first, second)


class TestLeafProbabilities:
    def test_probabilities_sum_to_one(self, interval):
        generator = SyntheticDataGenerator(weighted_tree(), interval, rng=0)
        probabilities = generator.leaf_probabilities()
        assert sum(probabilities.values()) == pytest.approx(1.0)

    def test_probabilities_proportional_to_counts(self, interval):
        generator = SyntheticDataGenerator(weighted_tree(), interval, rng=0)
        probabilities = generator.leaf_probabilities()
        assert probabilities[(0, 0)] == pytest.approx(0.5)
        assert probabilities[(1, 1)] == pytest.approx(0.0)

    def test_negative_counts_clamped(self, interval):
        tree = weighted_tree()
        tree.set_count((1, 0), -10.0)
        generator = SyntheticDataGenerator(tree, interval, rng=0)
        probabilities = generator.leaf_probabilities()
        assert probabilities[(1, 0)] == 0.0
        assert sum(probabilities.values()) == pytest.approx(1.0)

    def test_leaf_probability_of_point(self, interval):
        generator = SyntheticDataGenerator(weighted_tree(), interval, rng=0)
        assert generator.leaf_probability_of_point(0.1) == pytest.approx(0.5)
        assert generator.leaf_probability_of_point(0.9) == pytest.approx(0.0)

    def test_degenerate_tree_probability(self, interval):
        tree = PartitionTree()
        tree.add_node((), 0.0)
        generator = SyntheticDataGenerator(tree, interval, rng=0)
        assert generator.leaf_probabilities() == {(): 1.0}
        assert generator.leaf_probability_of_point(0.4) == 1.0


class TestUtilities:
    def test_expected_value_estimates_mean(self, interval):
        generator = SyntheticDataGenerator(weighted_tree(), interval, rng=0)
        estimate = generator.expected_value(lambda x: float(x), num_samples=4000)
        # Mass: 0.5 on [0,0.25), 0.25 on [0.25,0.5), 0.25 on [0.5,0.75).
        expected = 0.5 * 0.125 + 0.25 * 0.375 + 0.25 * 0.625
        assert estimate == pytest.approx(expected, abs=0.02)

    def test_expected_value_requires_positive_samples(self, interval):
        generator = SyntheticDataGenerator(weighted_tree(), interval, rng=0)
        with pytest.raises(ValueError):
            generator.expected_value(lambda x: x, num_samples=0)

    def test_total_mass_and_memory(self, interval):
        generator = SyntheticDataGenerator(weighted_tree(), interval, rng=0)
        assert generator.total_mass == pytest.approx(100.0)
        assert generator.memory_words() == 2 * 7
