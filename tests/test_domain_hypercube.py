"""Tests for the hypercube domain."""

import numpy as np
import pytest

from repro.domain.hypercube import Hypercube


class TestGeometry:
    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            Hypercube(0)

    def test_diameter_is_one(self, square):
        assert square.diameter() == 1.0

    def test_distance_is_linf(self, square):
        assert square.distance([0.0, 0.0], [0.3, 0.7]) == pytest.approx(0.7)

    def test_cell_bounds_alternate_axes(self, square):
        lower, upper = square.cell_bounds((1, 0))
        np.testing.assert_allclose(lower, [0.5, 0.0])
        np.testing.assert_allclose(upper, [1.0, 0.5])

    def test_cell_diameter_is_max_side(self, square):
        # After one split only axis 0 has been halved, so the diameter is 1.0... no:
        # level 1 cell has sides (0.5, 1.0) -> linf diameter 1.0? The level_max
        # formula says 2^{-floor(1/2)} = 1.0.
        assert square.cell_diameter((0,)) == pytest.approx(1.0)
        assert square.cell_diameter((0, 1)) == pytest.approx(0.5)

    def test_level_max_diameter_formula(self, cube):
        for level in range(10):
            assert cube.level_max_diameter(level) == pytest.approx(
                2.0 ** (-(level // 3))
            )

    def test_level_total_diameter(self, square):
        # Gamma_l = 2^l * 2^{-floor(l/2)}.
        assert square.level_total_diameter(4) == pytest.approx(16 * 0.25)


class TestLocate:
    def test_locate_respects_bounds(self, cube, rng):
        for _ in range(50):
            point = rng.random(3)
            theta = cube.locate(point, 7)
            lower, upper = cube.cell_bounds(theta)
            assert np.all(point >= lower - 1e-12)
            assert np.all(point <= upper + 1e-12)

    def test_locate_is_prefix_consistent(self, square, rng):
        point = rng.random(2)
        deep = square.locate(point, 8)
        for level in range(8):
            assert square.locate(point, level) == deep[:level]

    def test_wrong_dimension_raises(self, square):
        with pytest.raises(ValueError):
            square.locate([0.1, 0.2, 0.3], 2)

    def test_scalar_accepted_for_dimension_one(self):
        line = Hypercube(1)
        assert line.locate(0.75, 2) == (1, 1)

    def test_negative_level_raises(self, square):
        with pytest.raises(ValueError):
            square.locate([0.5, 0.5], -2)

    def test_non_finite_rejected_by_both_locate_paths(self, square):
        """NaN/inf must fail loud instead of silently binning to a wrong cell."""
        for bad in (np.nan, np.inf, -np.inf):
            with pytest.raises(ValueError):
                square.locate([bad, 0.5], 4)
            with pytest.raises(ValueError):
                square.locate_batch(np.array([[0.2, 0.3], [bad, 0.5]]), 4)


class TestSampling:
    def test_sample_cell_inside_bounds(self, square, rng):
        theta = (1, 1, 0, 0)
        lower, upper = square.cell_bounds(theta)
        for _ in range(50):
            point = square.sample_cell(theta, rng)
            assert np.all(point >= lower)
            assert np.all(point <= upper)

    def test_sample_uniform_shape(self, cube, rng):
        points = cube.sample_uniform(20, rng)
        assert points.shape == (20, 3)

    def test_contains(self, square):
        assert square.contains([0.0, 1.0])
        assert not square.contains([0.5, 1.2])
        assert not square.contains([0.5])


class TestPartitionStructure:
    def test_children_partition_parent(self, square, rng):
        """Every point of a parent cell lies in exactly one child cell."""
        parent = (0, 1)
        left, right = square.children(parent)
        for _ in range(100):
            point = square.sample_cell(parent, rng)
            in_left = square.locate(point, 3) == left
            in_right = square.locate(point, 3) == right
            assert in_left != in_right

    def test_level_frequencies_sum_to_n(self, square, rng):
        data = rng.random((300, 2))
        counts = square.level_frequencies(data, 5)
        assert sum(counts.values()) == 300

    def test_cells_at_level_count(self, square):
        assert len(list(square.cells_at_level(4))) == 16
