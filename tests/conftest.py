"""Shared fixtures for the test suite."""

from __future__ import annotations

import pathlib
import sys

import numpy as np
import pytest

# Fallback so the tests run from a source checkout even when the package has
# not been pip-installed (e.g. a fully offline environment).
_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.domain.discrete import DiscreteDomain  # noqa: E402
from repro.domain.geo import GeoDomain  # noqa: E402
from repro.domain.hypercube import Hypercube  # noqa: E402
from repro.domain.interval import UnitInterval  # noqa: E402
from repro.domain.ipv4 import IPv4Domain  # noqa: E402


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator shared by tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def interval() -> UnitInterval:
    """The [0, 1] domain."""
    return UnitInterval()


@pytest.fixture
def square() -> Hypercube:
    """The [0, 1]^2 domain."""
    return Hypercube(2)


@pytest.fixture
def cube() -> Hypercube:
    """The [0, 1]^3 domain."""
    return Hypercube(3)


@pytest.fixture
def ipv4() -> IPv4Domain:
    """The IPv4 address-space domain."""
    return IPv4Domain()


@pytest.fixture
def geo() -> GeoDomain:
    """A continental-US style bounding box."""
    return GeoDomain(lat_min=24.0, lat_max=49.0, lon_min=-125.0, lon_max=-66.0)


@pytest.fixture
def discrete() -> DiscreteDomain:
    """A small finite ordered domain."""
    return DiscreteDomain(size=100)


@pytest.fixture
def small_beta_data(rng) -> np.ndarray:
    """A small skewed scalar dataset."""
    return rng.beta(2.0, 5.0, size=600)


@pytest.fixture
def small_square_data(rng) -> np.ndarray:
    """A small two-dimensional clustered dataset."""
    centres = np.array([[0.25, 0.25], [0.75, 0.7]])
    labels = rng.integers(0, 2, size=500)
    points = centres[labels] + rng.normal(0.0, 0.05, size=(500, 2))
    return np.clip(points, 0.0, 1.0)
