"""Tests for the evaluation harness."""

import numpy as np
import pytest

from repro.baselines.nonprivate import NonPrivateHistogramMethod
from repro.baselines.base import PrivHPMethod
from repro.metrics.evaluation import EvaluationResult, evaluate_method


class TestEvaluateMethod:
    def test_result_fields_populated(self, interval, rng):
        method = NonPrivateHistogramMethod(interval, max_depth=8)
        result = evaluate_method(method, rng.random(400), interval,
                                 repetitions=2, rng=0)
        assert result.method == "NonPrivate"
        assert result.wasserstein_mean >= 0
        assert len(result.wasserstein_runs) == 2
        assert result.memory_words > 0
        assert result.fit_seconds >= 0
        assert result.sample_seconds >= 0

    def test_nonprivate_method_has_small_error(self, interval, rng):
        method = NonPrivateHistogramMethod(interval, max_depth=10)
        result = evaluate_method(method, rng.beta(2, 5, 1500), interval,
                                 repetitions=2, rng=0)
        assert result.wasserstein_mean < 0.02

    def test_privhp_error_between_floor_and_uniform(self, interval, rng):
        data = rng.beta(2, 5, 1500)
        method = PrivHPMethod(interval, epsilon=1.0, pruning_k=8, seed=0)
        result = evaluate_method(method, data, interval, repetitions=2, rng=0)
        uniform_distance = float(np.abs(np.sort(data) - np.sort(rng.random(1500))).mean())
        assert 0.0 < result.wasserstein_mean < uniform_distance

    def test_parameters_recorded_in_row(self, interval, rng):
        method = NonPrivateHistogramMethod(interval, max_depth=6)
        result = evaluate_method(method, rng.random(200), interval, repetitions=1,
                                 rng=0, parameters={"sweep": 42})
        row = result.as_row()
        assert row["sweep"] == 42
        assert row["method"] == "NonPrivate"

    def test_synthetic_size_override(self, interval, rng):
        method = NonPrivateHistogramMethod(interval, max_depth=6)
        result = evaluate_method(method, rng.random(300), interval,
                                 synthetic_size=50, repetitions=1, rng=0)
        assert result.wasserstein_mean >= 0

    def test_invalid_inputs(self, interval, rng):
        method = NonPrivateHistogramMethod(interval)
        with pytest.raises(ValueError):
            evaluate_method(method, [], interval)
        with pytest.raises(ValueError):
            evaluate_method(method, rng.random(10), interval, repetitions=0)

    def test_two_dimensional_evaluation(self, square, small_square_data):
        method = NonPrivateHistogramMethod(square, max_depth=10)
        result = evaluate_method(method, small_square_data, square,
                                 repetitions=1, rng=0, exact_size_limit=100)
        assert result.wasserstein_mean < 0.5


class TestEvaluationResult:
    def test_as_row_contains_core_columns(self):
        result = EvaluationResult(method="X", wasserstein_mean=0.1, wasserstein_std=0.01)
        row = result.as_row()
        assert set(row) >= {"method", "wasserstein", "memory_words"}
