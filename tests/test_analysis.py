"""Tests for the Theorem-3 proof-pipeline diagnostics."""

import numpy as np
import pytest

from repro.analysis.decomposition import build_exact_pruned_tree, decompose_error
from repro.core.config import PrivHPConfig
from repro.stream.generators import sparse_cluster_stream, zipf_cell_stream


class TestBuildExactPrunedTree:
    def test_counts_are_exact_on_kept_cells(self, interval, rng):
        data = rng.random(500)
        tree = build_exact_pruned_tree(data, interval, pruning_k=4, level_cutoff=3, depth=6)
        frequencies = interval.level_frequencies(data, 2)
        for theta, count in frequencies.items():
            assert tree.count(theta) == pytest.approx(count)

    def test_structure_respects_pruning(self, interval, rng):
        data = rng.random(500)
        tree = build_exact_pruned_tree(data, interval, pruning_k=2, level_cutoff=2, depth=6)
        for level in range(4, 7):
            assert len(tree.nodes_at_level(level)) <= 4

    def test_root_holds_all_points(self, interval, rng):
        data = rng.random(321)
        tree = build_exact_pruned_tree(data, interval, pruning_k=2, level_cutoff=2, depth=5)
        assert tree.count(()) == pytest.approx(321)

    def test_sparse_data_fully_captured(self, interval, rng):
        """With mass in fewer than k cells, pruning loses nothing at any level."""
        data = sparse_cluster_stream(400, dimension=1, num_clusters=2,
                                     cluster_width=0.002, rng=rng)
        tree = build_exact_pruned_tree(data, interval, pruning_k=4, level_cutoff=2, depth=8)
        deepest = sum(tree.count(theta) for theta in tree.nodes_at_level(8))
        assert deepest >= 0.9 * 400

    def test_invalid_parameters(self, interval, rng):
        with pytest.raises(ValueError):
            build_exact_pruned_tree([], interval, 2, 2, 4)
        with pytest.raises(ValueError):
            build_exact_pruned_tree(rng.random(10), interval, 0, 2, 4)
        with pytest.raises(ValueError):
            build_exact_pruned_tree(rng.random(10), interval, 2, 5, 4)


class TestDecomposeError:
    def test_report_structure_and_ordering(self, interval, rng):
        data = zipf_cell_stream(2000, dimension=1, level=8, exponent=1.3, rng=rng)
        config = PrivHPConfig.from_stream_size(len(data), epsilon=1.0, pruning_k=8, seed=0)
        report = decompose_error(data, interval, config, rng=0)
        assert set(report) >= {
            "exact_pruning_error", "total_error", "noise_and_approx_error",
            "tail_norm", "predicted_noise_term", "predicted_approx_term",
        }
        assert report["exact_pruning_error"] >= 0.0
        assert report["total_error"] >= 0.0
        assert report["noise_and_approx_error"] == pytest.approx(
            max(report["total_error"] - report["exact_pruning_error"], 0.0)
        )

    def test_noise_component_shrinks_with_epsilon(self, interval, rng):
        data = zipf_cell_stream(1500, dimension=1, level=8, exponent=1.3,
                                rng=np.random.default_rng(5))

        def total_error(epsilon):
            config = PrivHPConfig.from_stream_size(len(data), epsilon=epsilon,
                                                   pruning_k=8, seed=1)
            return decompose_error(data, interval, config, rng=1)["total_error"]

        assert total_error(500.0) <= total_error(0.2) + 0.01

    def test_empty_data_rejected(self, interval):
        config = PrivHPConfig.from_stream_size(10, epsilon=1.0, pruning_k=2)
        with pytest.raises(ValueError):
            decompose_error([], interval, config)
