"""Tests for the geographic domain."""

import numpy as np
import pytest

from repro.domain.geo import GeoDomain


class TestConstruction:
    def test_invalid_boxes_rejected(self):
        with pytest.raises(ValueError):
            GeoDomain(lat_min=10, lat_max=5)
        with pytest.raises(ValueError):
            GeoDomain(lon_min=0, lon_max=0)

    def test_default_box_is_whole_globe(self):
        domain = GeoDomain()
        assert domain.contains((0.0, 0.0))
        assert domain.contains((-90.0, 180.0))


class TestGeometry:
    def test_diameter_normalised_to_one(self, geo):
        assert geo.diameter() == 1.0

    def test_distance_normalised(self, geo):
        corner_a = (geo.lat_min, geo.lon_min)
        corner_b = (geo.lat_max, geo.lon_max)
        assert geo.distance(corner_a, corner_b) == pytest.approx(1.0)

    def test_cell_diameter_halves_every_two_levels(self, geo):
        assert geo.cell_diameter(()) == 1.0
        assert geo.cell_diameter((0, 1)) == pytest.approx(0.5)
        assert geo.cell_diameter((0, 1, 1, 0)) == pytest.approx(0.25)

    def test_level_max_diameter(self, geo):
        assert geo.level_max_diameter(6) == pytest.approx(2.0**-3)


class TestLocateAndSample:
    def test_locate_respects_cell_bounds(self, geo, rng):
        for _ in range(50):
            lat = geo.lat_min + rng.random() * (geo.lat_max - geo.lat_min)
            lon = geo.lon_min + rng.random() * (geo.lon_max - geo.lon_min)
            theta = geo.locate((lat, lon), 6)
            point = geo.sample_cell(theta, rng)
            assert geo.locate(point, 6) == theta

    def test_locate_outside_box_raises(self, geo):
        with pytest.raises(ValueError):
            geo.locate((0.0, 0.0), 4)

    def test_locate_batch_rejects_out_of_range_and_nan(self, geo):
        """The batch path must fail loud like the scalar path, NaN included."""
        inside = [(geo.lat_min + 0.1, geo.lon_min + 0.1)]
        with pytest.raises(ValueError):
            geo.locate_batch(np.array(inside + [(0.0, 0.0)]), 4)
        with pytest.raises(ValueError):
            geo.locate_batch(np.array(inside + [(np.nan, geo.lon_min + 0.1)]), 4)

    def test_sample_cell_inside_box(self, geo, rng):
        theta = (1, 0, 1)
        for _ in range(50):
            lat, lon = geo.sample_cell(theta, rng)
            assert geo.lat_min <= lat <= geo.lat_max
            assert geo.lon_min <= lon <= geo.lon_max

    def test_contains_rejects_garbage(self, geo):
        assert not geo.contains("nowhere")
        assert not geo.contains((200.0, 0.0))

    def test_level_frequencies_counts_everything(self, geo, rng):
        points = np.column_stack(
            [
                geo.lat_min + rng.random(100) * (geo.lat_max - geo.lat_min),
                geo.lon_min + rng.random(100) * (geo.lon_max - geo.lon_min),
            ]
        )
        counts = geo.level_frequencies(points, 4)
        assert sum(counts.values()) == 100
