"""Tests for the Count-Min sketch."""

import numpy as np
import pytest

from repro.sketch.countmin import CountMinSketch


class TestCountMinBasics:
    def test_query_never_underestimates_nonnegative_stream(self):
        sketch = CountMinSketch(width=32, depth=4, seed=0)
        counts = {("a" + str(i)): (i % 7) + 1 for i in range(100)}
        for key, count in counts.items():
            sketch.update(key, count)
        for key, count in counts.items():
            assert sketch.query(key) >= count

    def test_exact_when_no_collisions(self):
        sketch = CountMinSketch(width=1024, depth=5, seed=1)
        sketch.update((0, 1), 3)
        sketch.update((1, 0), 5)
        assert sketch.query((0, 1)) == pytest.approx(3)
        assert sketch.query((1, 0)) == pytest.approx(5)

    def test_absent_key_estimate_is_small(self):
        sketch = CountMinSketch(width=256, depth=6, seed=2)
        for i in range(50):
            sketch.update(i, 1)
        assert sketch.query("never-seen") <= 2

    def test_total_and_updates_tracked(self):
        sketch = CountMinSketch(width=8, depth=2, seed=0)
        sketch.update("x", 2.0)
        sketch.update("y", 3.0)
        assert sketch.total == pytest.approx(5.0)
        assert sketch.updates == 2

    def test_update_many_and_query_many(self):
        sketch = CountMinSketch(width=64, depth=4, seed=0)
        keys = [(i % 10,) for i in range(100)]
        sketch.update_many(keys)
        estimates = sketch.query_many([(i,) for i in range(10)])
        assert estimates.shape == (10,)
        assert np.all(estimates >= 10)

    def test_invalid_dimensions_raise(self):
        with pytest.raises(ValueError):
            CountMinSketch(width=0, depth=4)
        with pytest.raises(ValueError):
            CountMinSketch(width=4, depth=0)

    def test_memory_words_is_table_size(self):
        sketch = CountMinSketch(width=32, depth=4)
        assert sketch.memory_words() == 128


class TestCountMinAccuracy:
    def test_error_shrinks_with_width(self, rng):
        keys = rng.zipf(1.3, size=5000) % 1000
        errors = {}
        for width in (8, 64, 512):
            sketch = CountMinSketch(width=width, depth=4, seed=0)
            for key in keys:
                sketch.update(int(key))
            true_counts = {}
            for key in keys:
                true_counts[int(key)] = true_counts.get(int(key), 0) + 1
            errors[width] = np.mean(
                [sketch.query(key) - count for key, count in true_counts.items()]
            )
        assert errors[512] <= errors[64] <= errors[8]

    def test_lemma4_expected_error_bound_holds_on_skewed_stream(self, rng):
        """Mean overestimate stays below the Lemma-4 style tail bound (with slack)."""
        width, depth = 64, 5
        keys = (rng.zipf(1.5, size=8000) % 500).astype(int)
        true_counts: dict = {}
        for key in keys:
            true_counts[key] = true_counts.get(key, 0) + 1
        sketch = CountMinSketch(width=width, depth=depth, seed=3)
        for key in keys:
            sketch.update(int(key))

        counts_sorted = sorted(true_counts.values(), reverse=True)
        tail = sum(counts_sorted[width // 2:])
        bound = sketch.error_bound(tail_norm=tail, total_norm=len(keys))
        mean_error = np.mean([sketch.query(k) - c for k, c in true_counts.items()])
        # The bound is on the expectation for each item; allow a 3x slack for
        # the finite-sample average and the pairwise (not fully random) hashes.
        assert mean_error <= 3.0 * bound + 1.0

    def test_conservative_update_is_at_least_as_accurate(self, rng):
        keys = (rng.zipf(1.3, size=4000) % 300).astype(int)
        plain = CountMinSketch(width=32, depth=4, seed=5)
        conservative = CountMinSketch(width=32, depth=4, seed=5, conservative=True)
        for key in keys:
            plain.update(int(key))
            conservative.update(int(key))
        true_counts: dict = {}
        for key in keys:
            true_counts[int(key)] = true_counts.get(int(key), 0) + 1
        plain_error = sum(plain.query(k) - c for k, c in true_counts.items())
        conservative_error = sum(conservative.query(k) - c for k, c in true_counts.items())
        assert conservative_error <= plain_error
        # Conservative update still never underestimates.
        assert all(conservative.query(k) >= c for k, c in true_counts.items())

    def test_conservative_rejects_negative_updates(self):
        sketch = CountMinSketch(width=8, depth=2, conservative=True)
        with pytest.raises(ValueError):
            sketch.update("x", -1.0)


class TestCountMinComposition:
    def test_merge_adds_tables(self):
        left = CountMinSketch(width=32, depth=3, seed=9)
        right = CountMinSketch(width=32, depth=3, seed=9)
        left.update("a", 2)
        right.update("a", 3)
        right.update("b", 1)
        merged = left.merge(right)
        assert merged.query("a") >= 5
        assert merged.total == pytest.approx(6.0)

    def test_merge_requires_matching_parameters(self):
        left = CountMinSketch(width=32, depth=3, seed=9)
        right = CountMinSketch(width=32, depth=3, seed=10)
        with pytest.raises(ValueError):
            left.merge(right)

    def test_merge_requires_countmin(self):
        left = CountMinSketch(width=8, depth=2, seed=0)
        with pytest.raises(TypeError):
            left.merge("not a sketch")

    def test_add_noise_matrix_shape_checked(self):
        sketch = CountMinSketch(width=8, depth=2, seed=0)
        with pytest.raises(ValueError):
            sketch.add_noise_matrix(np.zeros((3, 8)))

    def test_add_noise_matrix_changes_estimates(self):
        sketch = CountMinSketch(width=8, depth=2, seed=0)
        sketch.update("a", 1)
        before = sketch.query("a")
        sketch.add_noise_matrix(np.full((2, 8), 2.0))
        assert sketch.query("a") == pytest.approx(before + 2.0)
