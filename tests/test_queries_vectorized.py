"""Byte-identity pins: vectorized query engines vs the retired scalar loops.

The compiled-leaf-table engines (`repro.queries.compiled`) must answer every
query bit-for-bit like the per-leaf Python loops they replaced.  This module
keeps reference implementations of those retired loops (copied verbatim from
the pre-compilation engines) and compares answers with exact ``==`` -- no
tolerances -- on randomized private and exact trees over all five domains.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import PrivHPBuilder
from repro.baselines.pmm import build_exact_tree
from repro.core.tree import PartitionTree
from repro.domain.discrete import DiscreteDomain
from repro.domain.geo import GeoDomain
from repro.domain.hypercube import Hypercube
from repro.domain.interval import UnitInterval
from repro.domain.ipv4 import IPv4Domain
from repro.queries.quantiles import QuantileEngine
from repro.queries.range_queries import RangeQueryEngine


# --------------------------------------------------------------------------- #
# reference implementations: the retired scalar loops, copied verbatim
# --------------------------------------------------------------------------- #
def _interval_overlap(cell_low, cell_high, low, high):
    return max(0.0, min(cell_high, high) - max(cell_low, low))


class ScalarRangeReference:
    """The pre-compilation ``RangeQueryEngine`` hot loops, kept as the oracle."""

    def __init__(self, tree, domain):
        self.tree = tree
        self.domain = domain
        leaves = tree.leaves()
        weights = np.array([max(tree.count(theta), 0.0) for theta in leaves])
        total = float(weights.sum())
        if total <= 0:
            self._leaf_probabilities = {(): 1.0}
        else:
            self._leaf_probabilities = {
                theta: float(weight / total) for theta, weight in zip(leaves, weights)
            }

    def _cell_fraction(self, theta, lower, upper):
        domain = self.domain
        if isinstance(domain, UnitInterval):
            cell_low, cell_high = domain.cell_bounds(theta)
            width = cell_high - cell_low
            if width <= 0:
                return 0.0
            return _interval_overlap(cell_low, cell_high, float(lower), float(upper)) / width
        if isinstance(domain, (Hypercube, GeoDomain)):
            cell_low, cell_high = domain.cell_bounds(theta)
            if isinstance(domain, GeoDomain):
                lower = domain._normalise(lower)
                upper = domain._normalise(upper)
            lower = np.asarray(lower, dtype=float).ravel()
            upper = np.asarray(upper, dtype=float).ravel()
            fraction = 1.0
            for axis in range(len(cell_low)):
                width = cell_high[axis] - cell_low[axis]
                if width <= 0:
                    return 0.0
                overlap = _interval_overlap(
                    cell_low[axis], cell_high[axis], lower[axis], upper[axis]
                )
                fraction *= overlap / width
            return fraction
        cell_low, cell_high = domain.cell_range(theta)
        if cell_low > cell_high:
            return 0.0
        low = int(lower) if not isinstance(lower, str) else IPv4Domain.parse(lower)
        high = int(upper) if not isinstance(upper, str) else IPv4Domain.parse(upper)
        overlap = max(0, min(cell_high, high) - max(cell_low, low) + 1)
        return overlap / (cell_high - cell_low + 1)

    def mass(self, lower, upper):
        total = 0.0
        for theta, probability in self._leaf_probabilities.items():
            if probability <= 0:
                continue
            total += probability * self._cell_fraction(theta, lower, upper)
        return float(min(max(total, 0.0), 1.0))

    def count(self, lower, upper):
        return self.mass(lower, upper) * max(self.tree.root_count, 0.0)

    def cdf(self, point):
        if isinstance(self.domain, UnitInterval):
            return self.mass(0.0, float(point))
        return self.mass(0, point)

    def marginal(self, axis, bins=32):
        edges = np.linspace(0.0, 1.0, bins + 1)
        masses = np.zeros(bins)
        for theta, probability in self._leaf_probabilities.items():
            if probability <= 0:
                continue
            cell_low, cell_high = self.domain.cell_bounds(theta)
            width = cell_high[axis] - cell_low[axis]
            if width <= 0:
                continue
            for bin_index in range(bins):
                overlap = _interval_overlap(
                    cell_low[axis], cell_high[axis], edges[bin_index], edges[bin_index + 1]
                )
                masses[bin_index] += probability * overlap / width
        return masses


class ScalarQuantileReference:
    """The pre-compilation per-probability tree descent, kept as the oracle."""

    def __init__(self, tree, domain):
        self.tree = tree
        self.domain = domain

    def _cell_upper_point(self, theta):
        if isinstance(self.domain, UnitInterval):
            _, upper = self.domain.cell_bounds(theta)
            return float(upper)
        _, upper = self.domain.cell_range(theta)
        return int(upper)

    def _cell_interpolated_point(self, theta, fraction):
        fraction = min(max(fraction, 0.0), 1.0)
        if isinstance(self.domain, UnitInterval):
            lower, upper = self.domain.cell_bounds(theta)
            return float(lower + fraction * (upper - lower))
        lower, upper = self.domain.cell_range(theta)
        if lower > upper:
            return int(lower)
        return int(round(lower + fraction * (upper - lower)))

    def quantile(self, probability):
        total = max(self.tree.root_count, 0.0)
        if total <= 0:
            return self._cell_interpolated_point((), probability)
        remaining = probability * total
        theta = ()
        while self.tree.has_children(theta):
            left, right = theta + (0,), theta + (1,)
            left_count = max(self.tree.get(left, 0.0), 0.0)
            if left_count >= remaining:
                theta = left
            else:
                remaining -= left_count
                theta = right
        leaf_count = max(self.tree.get(theta, 0.0), 0.0)
        if leaf_count <= 0:
            return self._cell_upper_point(theta)
        return self._cell_interpolated_point(theta, remaining / leaf_count)

    def quantiles(self, probabilities):
        return np.asarray([self.quantile(float(p)) for p in probabilities])


# --------------------------------------------------------------------------- #
# randomized trees and workloads per domain
# --------------------------------------------------------------------------- #
DOMAINS = {
    "interval": UnitInterval(),
    "hypercube": Hypercube(2),
    "ipv4": IPv4Domain(),
    "geo": GeoDomain(lat_min=24.0, lat_max=49.0, lon_min=-125.0, lon_max=-66.0),
    "discrete": DiscreteDomain(4096),
}
DOMAIN_SPECS = {
    "interval": "interval",
    "hypercube": "hypercube:2",
    "ipv4": "ipv4",
    "geo": "geo:24,49,-125,-66",
    "discrete": "discrete:4096",
}
ORDERED = ("interval", "ipv4", "discrete")
VECTOR = ("hypercube", "geo")


def _stream(name, rng, size=1500):
    if name == "interval":
        return rng.beta(2.0, 5.0, size)
    if name == "hypercube":
        return rng.random((size, 2))
    if name == "ipv4":
        return rng.integers(0, 2**32, size)
    if name == "geo":
        return np.column_stack(
            [rng.uniform(24.0, 49.0, size), rng.uniform(-125.0, -66.0, size)]
        )
    return rng.integers(0, 4096, size)


def _noisy_tree(name, seed):
    rng = np.random.default_rng(seed)
    data = _stream(name, rng)
    release = (
        PrivHPBuilder(DOMAIN_SPECS[name])
        .epsilon(1.0)
        .pruning_k(4)
        .stream_size(len(data))
        .seed(seed)
        .build()
        .update_batch(data)
        .release()
    )
    return release.tree


def _random_bounds(name, rng, count=40):
    """Random (lower, upper) query bounds in each domain's raw coordinates."""
    if name == "interval":
        pairs = np.sort(rng.random((count, 2)), axis=1)
        return [(float(a), float(b)) for a, b in pairs]
    if name == "hypercube":
        corners = np.sort(rng.random((count, 2, 2)), axis=1)
        return [(list(c[0]), list(c[1])) for c in corners]
    if name == "ipv4":
        pairs = np.sort(rng.integers(0, 2**32, (count, 2)), axis=1)
        bounds = [(int(a), int(b)) for a, b in pairs]
        bounds.append(("10.0.0.0", "10.255.255.255"))
        return bounds
    if name == "geo":
        lats = np.sort(rng.uniform(24.0, 49.0, (count, 2)), axis=1)
        lons = np.sort(rng.uniform(-125.0, -66.0, (count, 2)), axis=1)
        return [
            ([la[0], lo[0]], [la[1], lo[1]]) for la, lo in zip(lats, lons)
        ]
    pairs = np.sort(rng.integers(0, 4096, (count, 2)), axis=1)
    return [(int(a), int(b)) for a, b in pairs]


def _degenerate_tree():
    tree = PartitionTree()
    tree.add_node((), 0.0)
    return tree


def _trees(name):
    trees = [_noisy_tree(name, seed) for seed in (11, 97)]
    rng = np.random.default_rng(5)
    trees.append(build_exact_tree(_stream(name, rng, 400), DOMAINS[name], depth=5))
    trees.append(_degenerate_tree())
    return trees


# --------------------------------------------------------------------------- #
# pins
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("name", list(DOMAINS))
def test_mass_and_count_bit_identical(name):
    domain = DOMAINS[name]
    rng = np.random.default_rng(42)
    for tree in _trees(name):
        engine = RangeQueryEngine(tree, domain)
        reference = ScalarRangeReference(tree, domain)
        bounds = _random_bounds(name, rng)
        for lower, upper in bounds:
            assert engine.mass(lower, upper) == reference.mass(lower, upper)
            assert engine.count(lower, upper) == reference.count(lower, upper)
        batch = engine.mass_many([b[0] for b in bounds], [b[1] for b in bounds])
        assert batch.tolist() == [reference.mass(lo, hi) for lo, hi in bounds]
        counts = engine.count_many([b[0] for b in bounds], [b[1] for b in bounds])
        assert counts.tolist() == [reference.count(lo, hi) for lo, hi in bounds]


@pytest.mark.parametrize("name", list(ORDERED))
def test_cdf_bit_identical(name):
    domain = DOMAINS[name]
    rng = np.random.default_rng(43)
    points = [upper for _, upper in _random_bounds(name, rng, count=25) if not isinstance(upper, str)]
    for tree in _trees(name):
        engine = RangeQueryEngine(tree, domain)
        reference = ScalarRangeReference(tree, domain)
        assert [engine.cdf(p) for p in points] == [reference.cdf(p) for p in points]
        assert engine.cdf_many(points).tolist() == [reference.cdf(p) for p in points]


@pytest.mark.parametrize("name", list(VECTOR))
def test_marginal_bit_identical(name):
    domain = DOMAINS[name]
    for tree in _trees(name):
        engine = RangeQueryEngine(tree, domain)
        reference = ScalarRangeReference(tree, domain)
        for axis in (0, 1):
            for bins in (1, 7, 32):
                ours = engine.marginal(axis, bins=bins)
                theirs = reference.marginal(axis, bins=bins)
                assert ours.tolist() == theirs.tolist()


@pytest.mark.parametrize("name", list(ORDERED))
def test_quantiles_bit_identical(name):
    domain = DOMAINS[name]
    rng = np.random.default_rng(44)
    probabilities = np.concatenate([[0.0, 0.25, 0.5, 0.75, 1.0], rng.random(40)])
    for tree in _trees(name):
        engine = QuantileEngine(tree, domain)
        reference = ScalarQuantileReference(tree, domain)
        scalars = [engine.quantile(float(p)) for p in probabilities]
        expected = [reference.quantile(float(p)) for p in probabilities]
        assert scalars == expected
        assert [type(v) for v in scalars] == [type(v) for v in expected]
        batch = engine.quantiles(probabilities)
        assert batch.tolist() == expected
        assert batch.dtype == reference.quantiles(probabilities).dtype


def test_quantiles_batch_validation_matches_scalar():
    tree = build_exact_tree([0.1, 0.4, 0.8], UnitInterval(), depth=3)
    engine = QuantileEngine(tree, UnitInterval())
    with pytest.raises(ValueError, match=r"probability must lie in \[0, 1\], got 1.5"):
        engine.quantiles([0.2, 1.5])
    assert engine.quantiles([]).shape == (0,)


def test_mass_many_empty_batch():
    tree = build_exact_tree([0.1, 0.4, 0.8], UnitInterval(), depth=3)
    engine = RangeQueryEngine(tree, UnitInterval())
    assert engine.mass_many([], []).shape == (0,)
