"""Tests for the Wasserstein distance estimators."""

import numpy as np
import pytest

from repro.metrics.wasserstein import (
    empirical_wasserstein,
    hierarchical_wasserstein,
    sliced_wasserstein,
    wasserstein1_1d,
    wasserstein1_exact,
)


class TestOneDimensional:
    def test_identical_samples_have_zero_distance(self, rng):
        data = rng.random(100)
        assert wasserstein1_1d(data, data) == pytest.approx(0.0)

    def test_translation_distance(self):
        a = np.array([0.1, 0.2, 0.3])
        b = a + 0.25
        assert wasserstein1_1d(a, b) == pytest.approx(0.25)

    def test_point_masses(self):
        assert wasserstein1_1d([0.0], [1.0]) == pytest.approx(1.0)

    def test_unequal_sample_sizes(self):
        a = [0.0, 1.0]
        b = [0.0, 0.0, 1.0, 1.0]
        assert wasserstein1_1d(a, b) == pytest.approx(0.0)

    def test_symmetry(self, rng):
        a, b = rng.random(50), rng.random(70)
        assert wasserstein1_1d(a, b) == pytest.approx(wasserstein1_1d(b, a))

    def test_matches_scipy(self, rng):
        from scipy.stats import wasserstein_distance

        a, b = rng.random(80), rng.beta(2, 5, 120)
        assert wasserstein1_1d(a, b) == pytest.approx(wasserstein_distance(a, b), rel=1e-9)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            wasserstein1_1d([], [0.1])


class TestExactTransport:
    def test_matches_1d_formula(self, rng):
        a, b = rng.random(40), rng.random(50)
        lp = wasserstein1_exact(a.reshape(-1, 1), b.reshape(-1, 1), metric="l1")
        assert lp == pytest.approx(wasserstein1_1d(a, b), abs=1e-6)

    def test_identical_point_clouds(self, rng):
        points = rng.random((30, 2))
        assert wasserstein1_exact(points, points) == pytest.approx(0.0, abs=1e-9)

    def test_translation_in_two_dimensions(self):
        a = np.array([[0.1, 0.1], [0.3, 0.3]])
        b = a + np.array([0.2, 0.0])
        assert wasserstein1_exact(a, b, metric="linf") == pytest.approx(0.2, abs=1e-6)

    def test_domain_metric_accepted(self, interval, rng):
        a, b = rng.random(20), rng.random(20)
        value = wasserstein1_exact(a, b, metric=interval)
        assert value == pytest.approx(wasserstein1_1d(a, b), abs=1e-6)

    def test_size_guard(self, rng):
        big = rng.random((600, 2))
        with pytest.raises(ValueError):
            wasserstein1_exact(big, big)

    def test_metric_name_validation(self, rng):
        a = rng.random((5, 2))
        with pytest.raises(ValueError):
            wasserstein1_exact(a, a, metric="hamming")


class TestSliced:
    def test_zero_for_identical(self, rng):
        points = rng.random((100, 3))
        assert sliced_wasserstein(points, points, rng=rng) == pytest.approx(0.0, abs=1e-12)

    def test_detects_translation(self, rng):
        a = rng.random((200, 2))
        b = a + 0.3
        assert sliced_wasserstein(a, b, rng=0) > 0.1

    def test_dimension_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            sliced_wasserstein(rng.random((10, 2)), rng.random((10, 3)), rng=0)

    def test_invalid_projection_count(self, rng):
        with pytest.raises(ValueError):
            sliced_wasserstein(rng.random((10, 2)), rng.random((10, 2)), num_projections=0)


class TestHierarchical:
    def test_upper_bounds_exact_distance(self, square, rng):
        a = rng.random((150, 2))
        b = np.clip(rng.normal(0.5, 0.2, size=(150, 2)), 0, 1)
        exact = wasserstein1_exact(a, b, metric="linf")
        bound = hierarchical_wasserstein(a, b, square, depth=10)
        assert bound >= exact - 1e-9

    def test_small_for_identical_data(self, square, rng):
        points = rng.random((200, 2))
        bound = hierarchical_wasserstein(points, points, square, depth=10)
        # Only the resolution term survives.
        assert bound <= square.level_max_diameter(10) + 1e-12

    def test_never_exceeds_diameter(self, square, rng):
        a = np.zeros((50, 2))
        b = np.ones((50, 2))
        assert hierarchical_wasserstein(a, b, square, depth=8) <= square.diameter()

    def test_depth_validation(self, square, rng):
        with pytest.raises(ValueError):
            hierarchical_wasserstein(rng.random((5, 2)), rng.random((5, 2)), square, depth=0)


class TestDispatcher:
    def test_scalar_uses_exact_formula(self, rng):
        a, b = rng.random(100), rng.random(150)
        assert empirical_wasserstein(a, b) == pytest.approx(wasserstein1_1d(a, b))

    def test_small_vectors_use_lp(self, square, rng):
        a, b = rng.random((40, 2)), rng.random((40, 2))
        assert empirical_wasserstein(a, b, domain=square) == pytest.approx(
            wasserstein1_exact(a, b, metric=square), abs=1e-9
        )

    def test_large_vectors_use_hierarchical_bound(self, square, rng):
        a, b = rng.random((800, 2)), rng.random((800, 2))
        value = empirical_wasserstein(a, b, domain=square, exact_size_limit=100)
        assert value == pytest.approx(
            hierarchical_wasserstein(a, b, square, depth=12), abs=1e-9
        )

    def test_large_vectors_without_domain_use_sliced(self, rng):
        a, b = rng.random((800, 2)), rng.random((800, 2))
        value = empirical_wasserstein(a, b, exact_size_limit=100, rng=0)
        assert value >= 0.0
