"""Smoke tests for the experiment harness (small parameters only).

The benchmarks drive the same functions with paper-scale parameters; these
tests only assert structural correctness and the cheapest qualitative claims,
so the suite stays fast.
"""


from repro.experiments.ablations import budget_ablation, consistency_ablation, sketch_ablation
from repro.experiments.harness import format_table, run_methods
from repro.experiments.performance import throughput_experiment
from repro.experiments.skew import skew_experiment
from repro.experiments.table1 import run_table1
from repro.experiments.tradeoffs import (
    epsilon_tradeoff,
    memory_tradeoff,
    stream_length_tradeoff,
)
from repro.baselines.nonprivate import NonPrivateHistogramMethod


class TestHarness:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": 0.123456}, {"a": 200, "c": "x"}]
        text = format_table(rows)
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "c" in lines[0]

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_run_methods_returns_one_result_per_method(self, interval, rng):
        methods = [NonPrivateHistogramMethod(interval, max_depth=6)]
        results = run_methods(methods, rng.random(200), interval, repetitions=1, seed=0)
        assert len(results) == 1
        assert results[0].method == "NonPrivate"


class TestTable1:
    def test_structure_of_report(self):
        report = run_table1(dimension=1, stream_size=512, epsilon=1.0,
                            pruning_k=4, repetitions=1, seed=0)
        assert {row["method"] for row in report["predicted"]} == {"Smooth", "SRRW", "PMM", "PrivHP"}
        measured_methods = {row["method"] for row in report["measured"]}
        assert "PrivHP" in measured_methods
        assert "PMM" in measured_methods

    def test_private_methods_beat_nothing_but_are_finite(self):
        report = run_table1(dimension=1, stream_size=512, epsilon=1.0,
                            pruning_k=4, repetitions=1, seed=0, include_nonprivate=False)
        for row in report["measured"]:
            assert 0.0 <= row["wasserstein"] <= 1.0


class TestTradeoffs:
    def test_memory_tradeoff_rows(self):
        rows = memory_tradeoff(pruning_values=(2, 8), dimension=1, stream_size=512,
                               repetitions=1, seed=0)
        assert len(rows) == 2
        assert rows[0]["k"] == 2
        assert rows[1]["memory_words"] >= rows[0]["memory_words"]

    def test_epsilon_tradeoff_rows(self):
        rows = epsilon_tradeoff(epsilons=(0.5, 4.0), dimension=1, stream_size=512,
                                repetitions=1, seed=0)
        assert len(rows) == 2
        assert rows[0]["predicted_bound"] > rows[1]["predicted_bound"]

    def test_stream_length_tradeoff_rows(self):
        rows = stream_length_tradeoff(stream_sizes=(256, 1024), dimension=1,
                                      repetitions=1, seed=0)
        assert len(rows) == 2
        assert rows[1]["n"] == 1024


class TestSkewAndPerformance:
    def test_skew_experiment_tail_decreases_with_exponent(self):
        rows = skew_experiment(exponents=(0.0, 2.0), stream_size=1024,
                               repetitions=1, seed=0)
        assert rows[0]["tail_norm"] > rows[1]["tail_norm"]

    def test_throughput_experiment_reports_memory(self):
        rows = throughput_experiment(stream_sizes=(256, 512), pruning_k=4, seed=0,
                                     synthetic_size=64)
        assert len(rows) == 2
        assert all(row["memory_words"] > 0 for row in rows)
        assert all(row["updates_per_second"] > 0 for row in rows)


class TestAblations:
    def test_budget_ablation_rows(self):
        rows = budget_ablation(stream_size=512, repetitions=1, seed=0)
        assert {row["allocation"] for row in rows} == {"optimal", "uniform"}

    def test_consistency_ablation_rows(self):
        rows = consistency_ablation(stream_size=512, repetitions=1, seed=0)
        assert {row["consistency"] for row in rows} == {True, False}

    def test_sketch_ablation_structure(self):
        report = sketch_ablation(widths=(4, 32), depths=(2, 6), stream_size=2048, seed=0)
        assert len(report["width_sweep"]) == 2
        assert len(report["depth_sweep"]) == 2
        assert report["distinct_cells"] > 0
        # Wider sketches estimate more accurately.
        assert report["width_sweep"][1]["mean_abs_error"] <= report["width_sweep"][0]["mean_abs_error"]
