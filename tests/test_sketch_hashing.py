"""Tests for the seeded hash families."""

import numpy as np
import pytest

from repro.sketch.hashing import (
    MERSENNE_PRIME,
    HashFamily,
    PairwiseHash,
    SignedHash,
    canonical_key,
)


class TestCanonicalKey:
    def test_bit_tuples_of_different_lengths_do_not_collide(self):
        assert canonical_key((0,)) != canonical_key((0, 0))
        assert canonical_key(()) != canonical_key((0,))

    def test_bit_tuples_deterministic(self):
        assert canonical_key((1, 0, 1)) == canonical_key((1, 0, 1))

    def test_distinct_tuples_map_to_distinct_values(self):
        keys = {canonical_key(tuple((i >> b) & 1 for b in range(8))) for i in range(256)}
        assert len(keys) == 256

    def test_integers_and_strings_supported(self):
        assert canonical_key(42) == 42
        assert isinstance(canonical_key("10.0.0.1"), int)

    def test_numpy_integers_supported(self):
        assert canonical_key(np.int64(7)) == 7

    def test_values_stay_below_prime(self):
        assert canonical_key("some fairly long string key") < MERSENNE_PRIME

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            canonical_key(3.14)


class TestPairwiseHash:
    def test_output_in_range(self):
        hasher = PairwiseHash(a=12345, b=678, width=17)
        for key in range(200):
            assert 0 <= hasher(key) < 17

    def test_deterministic(self):
        hasher = PairwiseHash(a=999, b=3, width=8)
        assert hasher((1, 0, 1)) == hasher((1, 0, 1))

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            PairwiseHash(a=1, b=0, width=0)
        with pytest.raises(ValueError):
            PairwiseHash(a=0, b=0, width=4)


class TestSignedHash:
    def test_values_are_plus_minus_one(self):
        hasher = SignedHash(a=54321, b=99)
        values = {hasher(key) for key in range(100)}
        assert values <= {-1, 1}

    def test_roughly_balanced(self):
        hasher = SignedHash(a=54321, b=99)
        signs = [hasher(key) for key in range(2000)]
        assert 0.35 < np.mean(np.array(signs) == 1) < 0.65


class TestHashFamily:
    def test_same_seed_same_hashes(self):
        family_a = HashFamily(depth=4, width=32, seed=7)
        family_b = HashFamily(depth=4, width=32, seed=7)
        for key in [(0, 1), (1, 1, 0), 42, "x"]:
            assert family_a.buckets(key) == family_b.buckets(key)

    def test_different_rows_are_different_functions(self):
        family = HashFamily(depth=6, width=64, seed=11)
        keys = list(range(200))
        rows = [[family.bucket(row, key) for key in keys] for row in range(6)]
        distinct_rows = {tuple(row) for row in rows}
        assert len(distinct_rows) == 6

    def test_buckets_spread_over_width(self):
        family = HashFamily(depth=1, width=16, seed=3)
        buckets = [family.bucket(0, key) for key in range(1000)]
        occupied = len(set(buckets))
        assert occupied >= 14

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            HashFamily(depth=0, width=8)
        with pytest.raises(ValueError):
            HashFamily(depth=2, width=0)
