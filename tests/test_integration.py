"""Integration tests: whole-pipeline behaviour across modules.

These tests exercise the public API the way the examples and benchmarks do --
stream in a workload, finalize, sample, evaluate -- and assert the qualitative
properties the paper claims (utility between the non-private floor and the
uniform ceiling, bounded memory, skew sensitivity, epsilon monotonicity).
"""

import numpy as np

from repro import (
    Hypercube,
    IPv4Domain,
    PrivHP,
    PrivHPConfig,
    UnitInterval,
    empirical_wasserstein,
)
from repro.baselines import NonPrivateHistogramMethod, PMMMethod, PrivHPMethod
from repro.metrics.evaluation import evaluate_method
from repro.metrics.tail import tail_norm
from repro.stream.datasets import ipv4_traffic_stream
from repro.stream.generators import sparse_cluster_stream, uniform_stream, zipf_cell_stream
from repro.stream.stream import DataStream


class TestEndToEndInterval:
    def test_pipeline_beats_uniform_sampler(self, rng):
        domain = UnitInterval()
        data = rng.beta(2.0, 8.0, size=4000)
        config = PrivHPConfig.from_stream_size(len(data), epsilon=1.0, pruning_k=8, seed=3)
        generator = PrivHP(domain, config, rng=3).process(data).finalize()
        synthetic = generator.sample(4000)
        privhp_error = empirical_wasserstein(data, synthetic)
        uniform_error = empirical_wasserstein(data, rng.random(4000))
        assert privhp_error < 0.5 * uniform_error

    def test_stream_wrapper_integration(self, rng):
        domain = UnitInterval()
        data = rng.random(1000)
        config = PrivHPConfig.from_stream_size(1000, epsilon=1.0, pruning_k=4, seed=0)
        algorithm = PrivHP(domain, config, rng=0)
        stats = DataStream(data).feed(algorithm)
        assert stats.items == 1000
        generator = algorithm.finalize()
        assert generator.sample(10).shape == (10,)

    def test_memory_stays_sublinear_as_stream_grows(self, rng):
        domain = UnitInterval()
        words = {}
        for n in (1024, 8192):
            config = PrivHPConfig.from_stream_size(n, epsilon=1.0, pruning_k=4, seed=0)
            algorithm = PrivHP(domain, config, rng=0)
            algorithm.process(rng.random(n))
            algorithm.finalize()
            words[n] = algorithm.memory_words()
        # An 8x larger stream should cost far less than 8x the memory.
        assert words[8192] < 4 * words[1024]

    def test_epsilon_degrades_gracefully(self, rng):
        domain = UnitInterval()
        data = rng.beta(2.0, 8.0, size=2000)

        def mean_error(epsilon):
            errors = []
            for seed in range(3):
                config = PrivHPConfig.from_stream_size(len(data), epsilon=epsilon,
                                                       pruning_k=8, seed=seed)
                generator = PrivHP(domain, config, rng=seed).process(data).finalize()
                errors.append(empirical_wasserstein(data, generator.sample(2000)))
            return float(np.mean(errors))

        assert mean_error(100.0) < mean_error(0.2)

    def test_skewed_streams_are_easier_than_uniform(self, rng):
        """The Delta_approx term: sparse/skewed inputs lose less from pruning."""
        domain = UnitInterval()
        sparse = sparse_cluster_stream(3000, dimension=1, num_clusters=3, rng=rng)
        uniform = uniform_stream(3000, dimension=1, rng=rng)

        def mean_error(data):
            errors = []
            for seed in range(3):
                method = PrivHPMethod(domain, epsilon=1.0, pruning_k=4, seed=seed)
                result = evaluate_method(method, data, domain, repetitions=1,
                                         rng=seed)
                errors.append(result.wasserstein_mean)
            return float(np.mean(errors))

        sparse_tail = tail_norm(sparse, domain, level=10, k=4)
        uniform_tail = tail_norm(uniform, domain, level=10, k=4)
        assert sparse_tail < uniform_tail
        # The *relative* error (error / best achievable for that data) is what
        # the bound predicts; the sparse stream should not be dramatically
        # worse despite aggressive pruning.
        assert mean_error(sparse) < mean_error(uniform) + 0.05


class TestEndToEndComparisons:
    def test_privhp_tracks_pmm_accuracy_with_less_memory(self, rng):
        domain = UnitInterval()
        data = zipf_cell_stream(6000, dimension=1, level=8, exponent=1.4, rng=rng)
        privhp = PrivHPMethod(domain, epsilon=1.0, pruning_k=8, seed=0)
        pmm = PMMMethod(domain, epsilon=1.0, max_depth=14)

        privhp_result = evaluate_method(privhp, data, domain, repetitions=2, rng=0)
        pmm_result = evaluate_method(pmm, data, domain, repetitions=2, rng=0)

        assert privhp.memory_words() < pmm.memory_words() / 2
        # Accuracy within a small constant factor of the full-memory method.
        assert privhp_result.wasserstein_mean < 6 * pmm_result.wasserstein_mean + 0.02

    def test_nonprivate_floor_is_lowest(self, rng):
        domain = UnitInterval()
        data = rng.beta(2, 5, size=3000)
        floor = evaluate_method(NonPrivateHistogramMethod(domain, max_depth=12),
                                data, domain, repetitions=1, rng=0)
        private = evaluate_method(PrivHPMethod(domain, epsilon=0.5, pruning_k=8, seed=0),
                                  data, domain, repetitions=1, rng=0)
        assert floor.wasserstein_mean <= private.wasserstein_mean + 1e-6


class TestEndToEndOtherDomains:
    def test_hypercube_pipeline(self, rng):
        domain = Hypercube(2)
        centres = np.array([[0.2, 0.2], [0.8, 0.7], [0.5, 0.1]])
        labels = rng.integers(0, 3, size=2500)
        data = np.clip(centres[labels] + rng.normal(0, 0.05, (2500, 2)), 0, 1)
        config = PrivHPConfig.from_stream_size(len(data), epsilon=1.0, pruning_k=16, seed=0)
        generator = PrivHP(domain, config, rng=0).process(data).finalize()
        synthetic = generator.sample(2500)
        clustered_error = empirical_wasserstein(data, synthetic, domain=domain)
        uniform_error = empirical_wasserstein(data, rng.random((2500, 2)), domain=domain)
        assert clustered_error < uniform_error

    def test_ipv4_pipeline_preserves_heavy_subnets(self, rng):
        domain = IPv4Domain()
        data = ipv4_traffic_stream(4000, num_heavy_subnets=4, heavy_fraction=0.9,
                                   zipf_exponent=1.5, rng=rng)
        config = PrivHPConfig.from_stream_size(len(data), epsilon=1.0, pruning_k=8,
                                               seed=0, depth=16)
        generator = PrivHP(domain, config, rng=0).process(data).finalize()
        synthetic = generator.sample(4000)

        true_counts = domain.level_frequencies(list(data), 8)
        synthetic_counts = domain.level_frequencies(list(synthetic), 8)
        top_true = set(sorted(true_counts, key=true_counts.get, reverse=True)[:3])
        top_synthetic_mass = sum(synthetic_counts.get(cell, 0) for cell in top_true)
        # The heavy /8 blocks should still carry a large share of the synthetic data.
        assert top_synthetic_mass > 0.4 * 4000
