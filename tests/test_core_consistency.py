"""Tests for Algorithm 3 (consistency enforcement)."""

import pytest

from repro.core.consistency import enforce_consistency, enforce_subtree_consistency
from repro.core.tree import PartitionTree


def make_node(parent, left, right):
    """A three-node tree with the given counts."""
    tree = PartitionTree()
    tree.add_node((), parent)
    tree.add_node((0,), left)
    tree.add_node((1,), right)
    return tree


class TestEvenRedistribution:
    def test_surplus_split_evenly(self):
        tree = make_node(10.0, 7.0, 5.0)
        enforce_consistency(tree, ())
        # Lambda = 2, each child loses 1.
        assert tree.count((0,)) == pytest.approx(6.0)
        assert tree.count((1,)) == pytest.approx(4.0)
        assert tree.is_consistent()

    def test_deficit_split_evenly(self):
        tree = make_node(10.0, 3.0, 5.0)
        enforce_consistency(tree, ())
        assert tree.count((0,)) == pytest.approx(4.0)
        assert tree.count((1,)) == pytest.approx(6.0)
        assert tree.is_consistent()

    def test_already_consistent_unchanged(self):
        tree = make_node(8.0, 3.0, 5.0)
        enforce_consistency(tree, ())
        assert tree.count((0,)) == pytest.approx(3.0)
        assert tree.count((1,)) == pytest.approx(5.0)

    def test_paper_example_figure_3(self):
        """The worked Example 6.1: counts (4.6, 3.5, 3.7) -> (4.6, 2.2, 2.4)."""
        tree = make_node(4.6, 3.5, 3.7)
        enforce_consistency(tree, ())
        assert tree.count((0,)) == pytest.approx(2.2)
        assert tree.count((1,)) == pytest.approx(2.4)


class TestCorrections:
    def test_type1_negative_child_clamped(self):
        tree = make_node(5.0, -2.0, 4.0)
        enforce_consistency(tree, ())
        assert tree.count((0,)) >= 0.0
        assert tree.count((1,)) >= 0.0
        assert tree.count((0,)) + tree.count((1,)) == pytest.approx(5.0)

    def test_type2_smaller_child_zeroed(self):
        # After the even split one child would go negative: parent 10, children 0.5 and 20.
        tree = make_node(10.0, 0.5, 20.0)
        enforce_consistency(tree, ())
        assert tree.count((0,)) == pytest.approx(0.0)
        assert tree.count((1,)) == pytest.approx(10.0)

    def test_children_sum_to_parent_in_all_cases(self, rng):
        for _ in range(200):
            parent = float(rng.uniform(0, 10))
            left = float(rng.normal(parent / 2, 3))
            right = float(rng.normal(parent / 2, 3))
            tree = make_node(parent, left, right)
            enforce_consistency(tree, ())
            assert tree.count((0,)) + tree.count((1,)) == pytest.approx(parent, abs=1e-9)
            assert tree.count((0,)) >= -1e-12
            assert tree.count((1,)) >= -1e-12

    def test_missing_child_raises(self):
        tree = PartitionTree()
        tree.add_node((), 1.0)
        tree.add_node((0,), 1.0)
        with pytest.raises(KeyError):
            enforce_consistency(tree, ())


class TestSubtreeConsistency:
    def test_full_tree_becomes_consistent(self, rng):
        tree = PartitionTree.complete(4, initial_count=0.0)
        for theta in tree:
            tree.set_count(theta, float(rng.normal(5.0, 3.0)))
        # The root must be non-negative before redistribution makes sense.
        enforce_subtree_consistency(tree, ())
        assert tree.is_consistent()

    def test_negative_root_clamped(self):
        tree = PartitionTree.complete(1, initial_count=0.0)
        tree.set_count((), -3.0)
        tree.set_count((0,), 1.0)
        tree.set_count((1,), 1.0)
        enforce_subtree_consistency(tree, ())
        assert tree.root_count == 0.0
        assert tree.is_consistent()

    def test_partial_tree_with_leaf_subtrees(self):
        tree = PartitionTree()
        tree.add_node((), 6.0)
        tree.add_node((0,), 4.0)
        tree.add_node((1,), 4.0)
        tree.add_node((0, 0), 1.0)
        tree.add_node((0, 1), 1.0)
        enforce_subtree_consistency(tree, ())
        assert tree.is_consistent()

    def test_malformed_tree_detected(self):
        tree = PartitionTree()
        tree.add_node((), 2.0)
        tree.add_node((0,), 2.0)
        with pytest.raises(ValueError):
            enforce_subtree_consistency(tree, ())

    def test_missing_root_raises(self):
        with pytest.raises(KeyError):
            enforce_subtree_consistency(PartitionTree(), ())

    def test_total_mass_preserved(self, rng):
        tree = PartitionTree.complete(3, initial_count=0.0)
        for theta in tree:
            tree.set_count(theta, float(abs(rng.normal(4.0, 1.0))))
        root_before = tree.count(())
        enforce_subtree_consistency(tree, ())
        assert tree.count(()) == pytest.approx(root_before)
