"""Tests for the continual-observation extension (batch-native path)."""

import json

import numpy as np
import pytest

from repro.api.builder import PrivHPBuilder
from repro.api.release import Release
from repro.api.summarizer import StreamSummarizer, ingest_batches
from repro.continual.counter import BinaryMechanismCounter, BinaryMechanismCounterBank
from repro.continual.privhp import PrivHPContinual
from repro.continual.sketch import ContinualPrivateCountMinSketch
from repro.core.config import PrivHPConfig
from repro.core.privhp import PrivHP
from repro.metrics.wasserstein import wasserstein1_1d


class TestBinaryMechanismCounter:
    def test_tracks_true_count_with_large_budget(self, rng):
        counter = BinaryMechanismCounter(epsilon=200.0, horizon=256, rng=rng)
        for step in range(1, 101):
            estimate = counter.step(1.0)
            assert estimate == pytest.approx(step, abs=2.0)

    def test_true_count_exact(self, rng):
        counter = BinaryMechanismCounter(epsilon=1.0, horizon=64, rng=rng)
        for _ in range(37):
            counter.step(1.0)
        assert counter.true_count == pytest.approx(37.0)

    def test_weighted_steps(self, rng):
        counter = BinaryMechanismCounter(epsilon=500.0, horizon=32, rng=rng)
        counter.step(2.5)
        counter.step(1.5)
        assert counter.query() == pytest.approx(4.0, abs=1.0)

    def test_query_before_any_step_is_zero(self, rng):
        counter = BinaryMechanismCounter(epsilon=1.0, horizon=8, rng=rng)
        assert counter.query() == 0.0

    def test_horizon_enforced(self, rng):
        counter = BinaryMechanismCounter(epsilon=1.0, horizon=4, rng=rng)
        for _ in range(4):
            counter.step()
        with pytest.raises(RuntimeError):
            counter.step()

    def test_error_grows_with_smaller_epsilon(self, rng):
        def mean_error(epsilon):
            errors = []
            for seed in range(20):
                counter = BinaryMechanismCounter(epsilon=epsilon, horizon=128,
                                                 rng=np.random.default_rng(seed))
                for _ in range(100):
                    counter.step()
                errors.append(abs(counter.query() - 100))
            return float(np.mean(errors))

        assert mean_error(10.0) < mean_error(0.1)

    def test_memory_logarithmic_in_horizon(self):
        small = BinaryMechanismCounter(epsilon=1.0, horizon=2**6).memory_words()
        large = BinaryMechanismCounter(epsilon=1.0, horizon=2**16).memory_words()
        assert large < 4 * small

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BinaryMechanismCounter(epsilon=0.0, horizon=8)
        with pytest.raises(ValueError):
            BinaryMechanismCounter(epsilon=1.0, horizon=0)


class TestStepMany:
    @pytest.mark.parametrize("split", [0, 1, 100, 255, 256, 511])
    def test_exact_state_matches_item_loop(self, split):
        """The dyadic partial sums after a block equal the loop's exactly."""
        values = np.random.default_rng(9).random(511)
        loop = BinaryMechanismCounter(1.0, 1024, rng=np.random.default_rng(0))
        block = BinaryMechanismCounter(1.0, 1024, rng=np.random.default_rng(0))
        for value in values:
            loop.step(value)
        for value in values[:split]:
            block.step(value)
        block.step_many(values[split:])
        assert block.steps == loop.steps
        np.testing.assert_allclose(block._alpha, loop._alpha)
        assert block.true_count == pytest.approx(loop.true_count)

    def test_chunking_is_invariant(self):
        """Any chunking of the same stream yields the same exact state."""
        values = np.random.default_rng(3).random(737)
        whole = BinaryMechanismCounter(1.0, 1000, rng=np.random.default_rng(1))
        whole.step_many(values)
        chunked = BinaryMechanismCounter(1.0, 1000, rng=np.random.default_rng(1))
        for chunk in np.array_split(values, 13):
            chunked.step_many(chunk)
        np.testing.assert_allclose(chunked._alpha, whole._alpha)

    def test_returns_noisy_running_count(self, rng):
        counter = BinaryMechanismCounter(epsilon=300.0, horizon=512, rng=rng)
        estimate = counter.step_many(np.ones(100))
        assert estimate == pytest.approx(100, abs=3.0)
        assert counter.query() == pytest.approx(estimate)

    def test_empty_block_is_a_no_op(self, rng):
        counter = BinaryMechanismCounter(epsilon=1.0, horizon=8, rng=rng)
        counter.step(1.0)
        before = counter.query()
        assert counter.step_many([]) == pytest.approx(before)
        assert counter.steps == 1

    def test_horizon_enforced_before_mutation(self, rng):
        counter = BinaryMechanismCounter(epsilon=1.0, horizon=10, rng=rng)
        counter.step_many(np.ones(8))
        with pytest.raises(RuntimeError):
            counter.step_many(np.ones(3))
        assert counter.steps == 8  # the failed block left the state untouched

    def test_draws_at_most_levels_noise_per_block(self):
        """Batch noise cost is O(log horizon) draws, not one per step."""
        counter = BinaryMechanismCounter(1.0, 2**14, rng=np.random.default_rng(0))
        draws = []
        original = counter._rng.laplace
        counter._rng = type(
            "R", (), {"laplace": lambda self, loc, scale, size=None: (
                draws.append(size), original(loc, scale, size=size))[1]}
        )()
        counter.step_many(np.ones(10_000))
        total_drawn = sum(size for size in draws if size)
        assert total_drawn <= counter.levels


class TestExpectedErrorAndMemoryBounds:
    """Property-style checks of the paper's O(log n) continual factors."""

    HORIZONS = [2**e for e in range(1, 21)] + [3, 100, 999, 12_345, 700_001]

    @pytest.mark.parametrize("horizon", HORIZONS)
    def test_memory_words_is_theta_log_horizon(self, horizon):
        counter = BinaryMechanismCounter(epsilon=1.0, horizon=horizon)
        log_n = max(1.0, np.log2(horizon))
        # memory = 2 * levels with levels in [log2(n), log2(n) + 2].
        assert 2 * log_n <= counter.memory_words() <= 2 * (log_n + 2)

    @pytest.mark.parametrize("horizon", HORIZONS)
    @pytest.mark.parametrize("epsilon", [0.1, 1.0, 8.0])
    def test_expected_error_is_levels_squared_over_epsilon(self, horizon, epsilon):
        counter = BinaryMechanismCounter(epsilon=epsilon, horizon=horizon)
        assert counter.expected_error() == pytest.approx(
            counter.levels**2 / epsilon
        )

    def test_memory_and_error_monotone_in_horizon(self):
        counters = [
            BinaryMechanismCounter(epsilon=1.0, horizon=horizon)
            for horizon in sorted(self.HORIZONS)
        ]
        words = [counter.memory_words() for counter in counters]
        errors = [counter.expected_error() for counter in counters]
        assert words == sorted(words)
        assert errors == sorted(errors)

    def test_expected_error_dominates_empirical_error(self):
        """The bound actually bounds: mean |release - true| <= expected_error."""
        horizon = 512
        errors = []
        for seed in range(30):
            counter = BinaryMechanismCounter(
                epsilon=1.0, horizon=horizon, rng=np.random.default_rng(seed)
            )
            counter.step_many(np.ones(horizon))
            errors.append(abs(counter.query() - horizon))
        assert float(np.mean(errors)) <= counter.expected_error()


class TestCounterBank:
    def test_tracks_per_cell_counts_with_large_budget(self):
        bank = BinaryMechanismCounterBank(
            epsilon=300.0, horizon=64, size=4, rng=np.random.default_rng(0)
        )
        for _ in range(10):
            bank.step([1.0, 2.0, 0.0, 5.0])
        np.testing.assert_allclose(bank.true_counts(), [10.0, 20.0, 0.0, 50.0])
        np.testing.assert_allclose(bank.query_all(), [10.0, 20.0, 0.0, 50.0], atol=2.0)

    def test_matches_scalar_counters_exactly_in_expectation_structure(self):
        """A size-1 bank and a scalar counter walk the same dyadic structure."""
        bank = BinaryMechanismCounterBank(
            epsilon=1.0, horizon=100, size=1, rng=np.random.default_rng(0)
        )
        counter = BinaryMechanismCounter(1.0, 100, rng=np.random.default_rng(0))
        for value in np.random.default_rng(1).random(77):
            bank.step([value])
            counter.step(value)
        assert bank.true_counts()[0] == pytest.approx(counter.true_count)
        np.testing.assert_allclose(bank._alpha[0], counter._alpha)

    def test_pad_to_adds_data_free_events(self):
        bank = BinaryMechanismCounterBank(
            epsilon=100.0, horizon=32, size=2, rng=np.random.default_rng(0)
        )
        bank.step([3.0, 4.0])
        bank.pad_to(8)
        assert bank.steps == 8
        np.testing.assert_allclose(bank.true_counts(), [3.0, 4.0])

    def test_merged_with_sums_counts(self):
        left = BinaryMechanismCounterBank(
            epsilon=200.0, horizon=16, size=3, rng=np.random.default_rng(0)
        )
        right = BinaryMechanismCounterBank(
            epsilon=200.0, horizon=16, size=3, rng=np.random.default_rng(1)
        )
        left.step([1.0, 0.0, 2.0])
        right.step([0.0, 5.0, 1.0])
        merged = left.merged_with(right)
        np.testing.assert_allclose(merged.true_counts(), [1.0, 5.0, 3.0])

    def test_merge_requires_aligned_steps(self):
        left = BinaryMechanismCounterBank(1.0, 16, 2, rng=np.random.default_rng(0))
        right = BinaryMechanismCounterBank(1.0, 16, 2, rng=np.random.default_rng(1))
        left.step([1.0, 1.0])
        with pytest.raises(ValueError, match="aligned"):
            left.merged_with(right)

    def test_state_roundtrip(self):
        bank = BinaryMechanismCounterBank(2.0, 64, 4, rng=np.random.default_rng(0))
        for _ in range(5):
            bank.step(np.arange(4.0))
        restored = BinaryMechanismCounterBank.from_state(
            json.loads(json.dumps(bank.state_dict())), rng=np.random.default_rng(9)
        )
        assert restored.steps == bank.steps
        np.testing.assert_allclose(restored.query_all(), bank.query_all())

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BinaryMechanismCounterBank(0.0, 8, 2)
        with pytest.raises(ValueError):
            BinaryMechanismCounterBank(1.0, 0, 2)
        with pytest.raises(ValueError):
            BinaryMechanismCounterBank(1.0, 8, 0)
        bank = BinaryMechanismCounterBank(1.0, 8, 2)
        with pytest.raises(ValueError, match="shape"):
            bank.step([1.0, 2.0, 3.0])


class TestContinualSketch:
    def test_estimates_track_counts_with_large_budget(self, rng):
        sketch = ContinualPrivateCountMinSketch(width=64, depth=3, epsilon=300.0,
                                                horizon=512, seed=0, rng=rng)
        for _ in range(50):
            sketch.update("hot")
        assert sketch.query("hot") == pytest.approx(50, abs=8)

    def test_queries_available_mid_stream(self, rng):
        sketch = ContinualPrivateCountMinSketch(width=32, depth=2, epsilon=100.0,
                                                horizon=256, seed=1, rng=rng)
        estimates = []
        for step in range(1, 41):
            sketch.update("key")
            estimates.append(sketch.query("key"))
        # Estimates should grow roughly linearly with the updates.
        assert estimates[-1] > estimates[9]

    def test_update_batch_matches_itemwise_counts(self):
        """One aggregated event accumulates exactly the itemwise mass."""
        from repro.sketch.hashing import canonical_key

        itemwise = ContinualPrivateCountMinSketch(
            width=32, depth=3, epsilon=500.0, horizon=64, seed=0,
            rng=np.random.default_rng(0),
        )
        batched = ContinualPrivateCountMinSketch(
            width=32, depth=3, epsilon=500.0, horizon=64, seed=0,
            rng=np.random.default_rng(0),
        )
        cells = [(0, 1), (1, 0), (0, 1), (0, 1), (1, 1)]
        itemwise.update_many(cells)
        keys = {}
        for cell in cells:
            keys[canonical_key(cell)] = keys.get(canonical_key(cell), 0) + 1
        batched.update_batch(
            np.array(list(keys), dtype=np.uint64), np.array(list(keys.values()), float)
        )
        for cell in set(cells):
            assert batched.query(cell) == pytest.approx(itemwise.query(cell), abs=1.0)

    def test_memory_words_positive(self, rng):
        sketch = ContinualPrivateCountMinSketch(width=8, depth=2, epsilon=1.0,
                                                horizon=64, rng=rng)
        assert sketch.memory_words() >= 8 * 2 * 2

    def test_merge_sums_estimates(self):
        left = ContinualPrivateCountMinSketch(
            width=32, depth=2, epsilon=400.0, horizon=64, seed=3,
            rng=np.random.default_rng(0),
        )
        right = ContinualPrivateCountMinSketch(
            width=32, depth=2, epsilon=400.0, horizon=64, seed=3,
            rng=np.random.default_rng(1),
        )
        left.update("a", 10.0)
        right.update("a", 7.0)
        right.update("b", 2.0)
        right.pad_events_to(2)
        left.pad_events_to(2)
        merged = left.merge(right)
        assert merged.query("a") == pytest.approx(17.0, abs=2.0)
        assert merged.updates == 3

    def test_state_roundtrip(self):
        sketch = ContinualPrivateCountMinSketch(
            width=16, depth=2, epsilon=5.0, horizon=32, seed=4,
            rng=np.random.default_rng(0),
        )
        sketch.update("x", 3.0)
        restored = ContinualPrivateCountMinSketch.from_state(
            json.loads(json.dumps(sketch.state_dict())), rng=np.random.default_rng(1)
        )
        assert restored.query("x") == pytest.approx(sketch.query("x"))
        assert restored.updates == sketch.updates

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ContinualPrivateCountMinSketch(width=0, depth=2, epsilon=1.0, horizon=8)
        with pytest.raises(ValueError):
            ContinualPrivateCountMinSketch(width=2, depth=2, epsilon=0.0, horizon=8)


class TestPrivHPContinual:
    def make_config(self, n, epsilon=50.0, seed=0):
        return PrivHPConfig.from_stream_size(n, epsilon=epsilon, pruning_k=4, seed=seed,
                                             depth=8, level_cutoff=4, sketch_depth=4)

    def test_snapshot_mid_stream_and_at_end(self, interval, rng):
        data = rng.beta(2, 6, size=600)
        model = PrivHPContinual(interval, self.make_config(600), horizon=600, rng=0)
        model.update_batch(data[:300])
        mid_release = model.snapshot()
        assert isinstance(mid_release, Release)
        assert mid_release.items_processed == 300
        mid_samples = mid_release.sample(200)
        assert np.all((mid_samples >= 0) & (mid_samples <= 1))

        model.update_batch(data[300:])
        end_release = model.snapshot()
        assert end_release.items_processed == 600
        error = wasserstein1_1d(data, end_release.sample(600))
        assert error < 0.15

    def test_multiple_snapshots_allowed_and_identical(self, interval, rng):
        model = PrivHPContinual(interval, self.make_config(200), horizon=200, rng=0)
        model.update_batch(rng.random(100))
        first = model.snapshot()
        second = model.snapshot()
        assert first.generator.total_mass == pytest.approx(second.generator.total_mass)
        # Snapshots of unchanged state are byte-identical documents.
        assert json.dumps(first.to_dict(), sort_keys=True) == json.dumps(
            second.to_dict(), sort_keys=True
        )

    def test_snapshot_does_not_perturb_ingestion(self, interval, rng):
        """Taking snapshots leaves the subsequent stream byte-for-byte alone."""
        data = rng.random(400)
        config = self.make_config(400)
        quiet = PrivHPContinual(interval, config, horizon=400, rng=0)
        noisy = PrivHPContinual(interval, config, horizon=400, rng=0)
        quiet.update_batch(data[:200])
        noisy.update_batch(data[:200])
        noisy.snapshot().sample(50)
        noisy.snapshot()
        quiet.update_batch(data[200:])
        noisy.update_batch(data[200:])
        assert json.dumps(quiet.snapshot().to_dict(), sort_keys=True) == json.dumps(
            noisy.snapshot().to_dict(), sort_keys=True
        )

    def test_update_batch_matches_loop_exact_counts(self, interval, rng):
        """Batch and loop paths accumulate identical exact counts."""
        data = rng.beta(2, 6, size=256)
        config = self.make_config(256)
        loop = PrivHPContinual(interval, config, horizon=256, rng=0)
        batch = PrivHPContinual(interval, config, horizon=256, rng=0)
        loop.process(data)
        batch.update_batch(data)
        for level, bank in batch._banks.items():
            np.testing.assert_allclose(
                bank.true_counts(), loop._banks[level].true_counts()
            )

    def test_snapshot_release_metadata(self, interval, rng):
        model = PrivHPContinual(interval, self.make_config(100), horizon=150, rng=0)
        model.update_batch(rng.random(80))
        release = model.snapshot()
        assert release.epsilon == pytest.approx(50.0)
        assert release.metadata["continual"]["horizon"] == 150
        assert release.metadata["continual"]["events"] == 1
        assert release.memory_words == model.memory_words()

    def test_budget_ledger_sums_to_epsilon(self, interval):
        config = self.make_config(100, epsilon=2.0)
        model = PrivHPContinual(interval, config, horizon=100, rng=0)
        assert model.accountant.spent == pytest.approx(2.0)

    def test_horizon_enforced(self, interval, rng):
        model = PrivHPContinual(interval, self.make_config(50), horizon=10, rng=0)
        model.process(rng.random(10))
        with pytest.raises(RuntimeError):
            model.update(0.5)
        with pytest.raises(RuntimeError):
            model.update_batch(rng.random(5))

    def test_memory_reported(self, interval, rng):
        model = PrivHPContinual(interval, self.make_config(100), horizon=100, rng=0)
        model.process(rng.random(50))
        assert model.memory_words() > 0

    def test_invalid_horizon(self, interval):
        with pytest.raises(ValueError):
            PrivHPContinual(interval, self.make_config(10), horizon=0)

    def test_release_seals_the_summarizer(self, interval, rng):
        model = PrivHPContinual(interval, self.make_config(100), horizon=100, rng=0)
        model.update_batch(rng.random(60))
        release = model.release()
        assert isinstance(release, Release) and release.items_processed == 60
        with pytest.raises(RuntimeError):
            model.release()
        with pytest.raises(RuntimeError):
            model.update_batch(rng.random(10))
        with pytest.raises(RuntimeError):
            model.checkpoint()

    def test_rng_seed_conflict_rejected(self, interval):
        with pytest.raises(ValueError, match="disagrees"):
            PrivHPContinual(interval, self.make_config(100, seed=3), horizon=100, rng=4)


class TestContinualProtocolConformance:
    """PrivHPContinual passes the same ingest/merge/checkpoint/release
    conformance checks as PrivHP (the StreamSummarizer contract)."""

    def build(self, variant, interval, n=400, seed=0):
        builder = (
            PrivHPBuilder(interval).epsilon(5.0).pruning_k(4).stream_size(n).seed(seed)
        )
        if variant == "continual":
            builder = builder.continual()
        return builder

    @pytest.mark.parametrize("variant", ["one-shot", "continual"])
    def test_satisfies_protocol(self, variant, interval):
        summarizer = self.build(variant, interval).build()
        assert isinstance(summarizer, StreamSummarizer)
        expected = PrivHPContinual if variant == "continual" else PrivHP
        assert isinstance(summarizer, expected)

    @pytest.mark.parametrize("variant", ["one-shot", "continual"])
    def test_ingest_and_release(self, variant, interval, rng):
        data = rng.beta(2, 5, 400)
        summarizer = ingest_batches(self.build(variant, interval).build(), data, 128)
        assert summarizer.items_processed == 400
        assert summarizer.memory_words() > 0
        release = summarizer.release()
        assert isinstance(release, Release)
        assert release.items_processed == 400
        assert 0.0 <= release.mass(0.0, 0.5) <= 1.0

    @pytest.mark.parametrize("variant", ["one-shot", "continual"])
    def test_shard_merge_accumulates_all_items(self, variant, interval, rng):
        data = rng.beta(2, 5, 400)
        builder = self.build(variant, interval)
        shards = builder.build_shards(4)
        for shard, part in zip(shards, np.array_split(data, 4)):
            ingest_batches(shard, part, 64)
        merged = type(shards[0]).merge_all(shards)
        assert merged.items_processed == 400
        release = merged.release()
        assert release.items_processed == 400

    @pytest.mark.parametrize("variant", ["one-shot", "continual"])
    def test_checkpoint_resume_is_byte_identical(self, variant, interval, rng):
        data = rng.beta(2, 5, 400)
        original = ingest_batches(self.build(variant, interval).build(), data[:200], 64)
        state = json.loads(json.dumps(original.checkpoint()))
        restored = type(original).restore(state)
        ingest_batches(original, data[200:], 64)
        ingest_batches(restored, data[200:], 64)
        assert json.dumps(original.release().to_dict(), sort_keys=True) == json.dumps(
            restored.release().to_dict(), sort_keys=True
        )

    def test_continual_merge_validates_operands(self, interval, rng):
        builder = self.build("continual", interval)
        left, right = builder.build_shards(2)
        other_config = self.build("continual", interval, n=800).build()
        with pytest.raises(ValueError, match="configurations"):
            left.merge(other_config)
        with pytest.raises(TypeError):
            left.merge(object())
        released = builder.build_shards(1)[0]
        released.update_batch(rng.random(10))
        released.release()
        with pytest.raises(RuntimeError):
            left.merge(released)

    def test_continual_has_no_raw_shard_mode(self, interval):
        with pytest.raises(ValueError, match="raw shard"):
            self.build("continual", interval).build_shard()
