"""Tests for the continual-observation extension."""

import numpy as np
import pytest

from repro.continual.counter import BinaryMechanismCounter
from repro.continual.privhp import PrivHPContinual
from repro.continual.sketch import ContinualPrivateCountMinSketch
from repro.core.config import PrivHPConfig
from repro.metrics.wasserstein import wasserstein1_1d


class TestBinaryMechanismCounter:
    def test_tracks_true_count_with_large_budget(self, rng):
        counter = BinaryMechanismCounter(epsilon=200.0, horizon=256, rng=rng)
        for step in range(1, 101):
            estimate = counter.step(1.0)
            assert estimate == pytest.approx(step, abs=2.0)

    def test_true_count_exact(self, rng):
        counter = BinaryMechanismCounter(epsilon=1.0, horizon=64, rng=rng)
        for _ in range(37):
            counter.step(1.0)
        assert counter.true_count == pytest.approx(37.0)

    def test_weighted_steps(self, rng):
        counter = BinaryMechanismCounter(epsilon=500.0, horizon=32, rng=rng)
        counter.step(2.5)
        counter.step(1.5)
        assert counter.query() == pytest.approx(4.0, abs=1.0)

    def test_query_before_any_step_is_zero(self, rng):
        counter = BinaryMechanismCounter(epsilon=1.0, horizon=8, rng=rng)
        assert counter.query() == 0.0

    def test_horizon_enforced(self, rng):
        counter = BinaryMechanismCounter(epsilon=1.0, horizon=4, rng=rng)
        for _ in range(4):
            counter.step()
        with pytest.raises(RuntimeError):
            counter.step()

    def test_error_grows_with_smaller_epsilon(self, rng):
        def mean_error(epsilon):
            errors = []
            for seed in range(20):
                counter = BinaryMechanismCounter(epsilon=epsilon, horizon=128,
                                                 rng=np.random.default_rng(seed))
                for _ in range(100):
                    counter.step()
                errors.append(abs(counter.query() - 100))
            return float(np.mean(errors))

        assert mean_error(10.0) < mean_error(0.1)

    def test_memory_logarithmic_in_horizon(self):
        small = BinaryMechanismCounter(epsilon=1.0, horizon=2**6).memory_words()
        large = BinaryMechanismCounter(epsilon=1.0, horizon=2**16).memory_words()
        assert large < 4 * small

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BinaryMechanismCounter(epsilon=0.0, horizon=8)
        with pytest.raises(ValueError):
            BinaryMechanismCounter(epsilon=1.0, horizon=0)


class TestContinualSketch:
    def test_estimates_track_counts_with_large_budget(self, rng):
        sketch = ContinualPrivateCountMinSketch(width=64, depth=3, epsilon=300.0,
                                                horizon=512, seed=0, rng=rng)
        for _ in range(50):
            sketch.update("hot")
        assert sketch.query("hot") == pytest.approx(50, abs=8)

    def test_queries_available_mid_stream(self, rng):
        sketch = ContinualPrivateCountMinSketch(width=32, depth=2, epsilon=100.0,
                                                horizon=256, seed=1, rng=rng)
        estimates = []
        for step in range(1, 41):
            sketch.update("key")
            estimates.append(sketch.query("key"))
        # Estimates should grow roughly linearly with the updates.
        assert estimates[-1] > estimates[9]

    def test_memory_words_positive(self, rng):
        sketch = ContinualPrivateCountMinSketch(width=8, depth=2, epsilon=1.0,
                                                horizon=64, rng=rng)
        assert sketch.memory_words() >= 8 * 2 * 2

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ContinualPrivateCountMinSketch(width=0, depth=2, epsilon=1.0, horizon=8)
        with pytest.raises(ValueError):
            ContinualPrivateCountMinSketch(width=2, depth=2, epsilon=0.0, horizon=8)


class TestPrivHPContinual:
    def make_config(self, n, epsilon=50.0, seed=0):
        return PrivHPConfig.from_stream_size(n, epsilon=epsilon, pruning_k=4, seed=seed,
                                             depth=8, level_cutoff=4, sketch_depth=4)

    def test_snapshot_mid_stream_and_at_end(self, interval, rng):
        data = rng.beta(2, 6, size=600)
        model = PrivHPContinual(interval, self.make_config(600), horizon=600, rng=0)
        model.process(data[:300])
        mid_generator = model.snapshot()
        mid_samples = mid_generator.sample(200)
        assert np.all((mid_samples >= 0) & (mid_samples <= 1))

        model.process(data[300:])
        end_generator = model.snapshot()
        error = wasserstein1_1d(data, end_generator.sample(600))
        assert error < 0.15

    def test_multiple_snapshots_allowed(self, interval, rng):
        model = PrivHPContinual(interval, self.make_config(200), horizon=200, rng=0)
        model.process(rng.random(100))
        first = model.snapshot()
        second = model.snapshot()
        assert first.total_mass == pytest.approx(second.total_mass)

    def test_budget_ledger_sums_to_epsilon(self, interval):
        config = self.make_config(100, epsilon=2.0)
        model = PrivHPContinual(interval, config, horizon=100, rng=0)
        assert model.accountant.spent == pytest.approx(2.0)

    def test_horizon_enforced(self, interval, rng):
        model = PrivHPContinual(interval, self.make_config(50), horizon=10, rng=0)
        model.process(rng.random(10))
        with pytest.raises(RuntimeError):
            model.update(0.5)

    def test_memory_reported(self, interval, rng):
        model = PrivHPContinual(interval, self.make_config(100), horizon=100, rng=0)
        model.process(rng.random(50))
        assert model.memory_words() > 0

    def test_invalid_horizon(self, interval):
        with pytest.raises(ValueError):
            PrivHPContinual(interval, self.make_config(10), horizon=0)
