"""Tests for serialisation and the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core.config import PrivHPConfig
from repro.core.privhp import PrivHP
from repro.core.tree import PartitionTree
from repro.domain.geo import GeoDomain
from repro.domain.hypercube import Hypercube
from repro.domain.interval import UnitInterval
from repro.io.serialization import (
    domain_from_dict,
    domain_to_dict,
    generator_from_dict,
    generator_to_dict,
    load_generator,
    save_generator,
    tree_from_dict,
    tree_to_dict,
)


def fitted_generator(domain, data, seed=0):
    config = PrivHPConfig.from_stream_size(len(data), epsilon=1.0, pruning_k=4, seed=seed)
    algorithm = PrivHP(domain, config, rng=seed)
    algorithm.process(data)
    return algorithm.finalize()


class TestTreeSerialization:
    def test_round_trip_preserves_counts(self):
        tree = PartitionTree()
        tree.add_node((), 10.0)
        tree.add_node((0,), 4.0)
        tree.add_node((1,), 6.0)
        restored = tree_from_dict(tree_to_dict(tree))
        assert restored.as_dict() == tree.as_dict()

    def test_root_key_is_empty_string(self):
        tree = PartitionTree()
        tree.add_node((), 1.0)
        assert tree_to_dict(tree) == {"": 1.0}

    def test_invalid_keys_rejected(self):
        with pytest.raises(ValueError):
            tree_from_dict({"01x": 1.0})

    def test_missing_root_rejected(self):
        with pytest.raises(ValueError):
            tree_from_dict({"0": 1.0})


class TestDomainSerialization:
    @pytest.mark.parametrize(
        "domain",
        [
            UnitInterval(),
            Hypercube(3),
            GeoDomain(lat_min=24.0, lat_max=49.0, lon_min=-125.0, lon_max=-66.0),
        ],
    )
    def test_round_trip(self, domain):
        restored = domain_from_dict(domain_to_dict(domain))
        assert type(restored) is type(domain)
        assert restored.diameter() == domain.diameter()

    def test_hypercube_dimension_preserved(self):
        assert domain_from_dict(domain_to_dict(Hypercube(5))).dimension == 5

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            domain_from_dict({"type": "Banach"})


class TestGeneratorSerialization:
    def test_round_trip_preserves_distribution(self, interval, rng):
        generator = fitted_generator(interval, rng.beta(2, 5, 1500))
        restored = generator_from_dict(generator_to_dict(generator), seed=0)
        original = generator.leaf_probabilities()
        recovered = restored.leaf_probabilities()
        assert set(original) == set(recovered)
        for theta, probability in original.items():
            assert recovered[theta] == pytest.approx(probability)

    def test_save_and_load_file(self, tmp_path, interval, rng):
        generator = fitted_generator(interval, rng.random(800))
        path = save_generator(generator, tmp_path / "release.json", metadata={"epsilon": 1.0})
        document = json.loads(path.read_text())
        assert document["format"] == "privhp-generator"
        assert document["metadata"]["epsilon"] == 1.0
        restored = load_generator(path, seed=1)
        samples = restored.sample(100)
        assert np.all((samples >= 0) & (samples <= 1))

    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError):
            generator_from_dict({"format": "something-else", "version": 1})

    def test_future_version_rejected(self, interval, rng):
        generator = fitted_generator(interval, rng.random(200))
        document = generator_to_dict(generator)
        document["version"] = 99
        with pytest.raises(ValueError):
            generator_from_dict(document)

    def test_two_dimensional_round_trip(self, square, rng):
        generator = fitted_generator(square, rng.random((600, 2)))
        restored = generator_from_dict(generator_to_dict(generator), seed=0)
        assert restored.sample(20).shape == (20, 2)


class TestReleaseLoadValidation:
    """Release.load routes through repro.io, so malformed input fails the
    same way everywhere (regression tests for the former inline JSON read)."""

    def test_malformed_json_is_valueerror_naming_the_path(self, tmp_path):
        from repro.api.release import Release

        path = tmp_path / "broken.json"
        path.write_text("{this is not json")
        with pytest.raises(ValueError, match="not valid JSON") as excinfo:
            Release.load(path)
        assert "broken.json" in str(excinfo.value)

    def test_wrong_format_is_valueerror(self, tmp_path):
        from repro.api.release import Release

        path = tmp_path / "other.json"
        path.write_text(json.dumps({"format": "something-else", "version": 1}))
        with pytest.raises(ValueError, match="not a privhp-generator document"):
            Release.load(path)

    def test_future_version_is_valueerror(self, tmp_path, interval, rng):
        from repro.api.release import Release

        generator = fitted_generator(interval, rng.random(200))
        document = generator_to_dict(generator)
        document["version"] = 99
        path = tmp_path / "future.json"
        path.write_text(json.dumps(document))
        with pytest.raises(ValueError, match="newer than supported"):
            Release.load(path)

    def test_non_object_document_is_valueerror(self, tmp_path):
        from repro.api.release import Release

        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError, match="must be a JSON object"):
            Release.load(path)

    def test_missing_tree_is_valueerror(self, tmp_path):
        from repro.api.release import Release

        path = tmp_path / "treeless.json"
        path.write_text(
            json.dumps(
                {"format": "privhp-generator", "version": 1, "domain": {"type": "UnitInterval"}}
            )
        )
        with pytest.raises(ValueError, match="requires a 'tree' object"):
            Release.load(path)

    def test_load_generator_and_release_load_agree_on_errors(self, tmp_path):
        from repro.api.release import Release
        from repro.io.serialization import load_generator

        path = tmp_path / "broken.json"
        path.write_text("{oops")
        with pytest.raises(ValueError) as release_error:
            Release.load(path)
        with pytest.raises(ValueError) as generator_error:
            load_generator(path)
        assert str(release_error.value) == str(generator_error.value)

    def test_valid_release_round_trip_still_works(self, tmp_path, interval, rng):
        from repro.api.release import Release

        generator = fitted_generator(interval, rng.random(300))
        release = Release(generator, epsilon=1.0, items_processed=300, memory_words=123)
        release.save(tmp_path / "release.json")
        loaded = Release.load(tmp_path / "release.json", sampling_seed=5)
        assert loaded.epsilon == 1.0
        assert loaded.items_processed == 300
        assert loaded.memory_words == 123


class TestCLI:
    def test_summarize_generate_evaluate_pipeline(self, tmp_path, rng, capsys):
        data = rng.beta(2, 6, size=1500)
        input_path = tmp_path / "values.csv"
        np.savetxt(input_path, data, delimiter=",")
        release_path = tmp_path / "release.json"
        output_path = tmp_path / "synthetic.csv"

        assert cli_main([
            "summarize", "--input", str(input_path), "--output", str(release_path),
            "--epsilon", "1.0", "--k", "8", "--seed", "0",
        ]) == 0
        assert release_path.exists()

        assert cli_main([
            "generate", "--release", str(release_path), "--output", str(output_path),
            "--size", "500", "--seed", "1",
        ]) == 0
        synthetic = np.loadtxt(output_path, delimiter=",")
        assert synthetic.shape == (500,)
        assert np.all((synthetic >= 0) & (synthetic <= 1))

        assert cli_main([
            "evaluate", "--input", str(input_path), "--epsilon", "1.0", "--k", "8",
        ]) == 0
        captured = capsys.readouterr()
        assert "W1(data, synth)" in captured.out

    def test_cli_two_dimensional_input(self, tmp_path, rng):
        data = rng.random((400, 2))
        input_path = tmp_path / "points.csv"
        np.savetxt(input_path, data, delimiter=",")
        release_path = tmp_path / "release2d.json"
        output_path = tmp_path / "synthetic2d.csv"

        assert cli_main([
            "summarize", "--input", str(input_path), "--output", str(release_path),
        ]) == 0
        assert cli_main([
            "generate", "--release", str(release_path), "--output", str(output_path),
            "--size", "100",
        ]) == 0
        synthetic = np.loadtxt(output_path, delimiter=",")
        assert synthetic.shape == (100, 2)

    def test_cli_requires_command(self):
        with pytest.raises(SystemExit):
            cli_main([])

    def test_generate_seed_reseeds_sampling_never_tree_counts(self, tmp_path, rng):
        """Regression: reloading a release under a different --seed must leave
        the persisted tree counts untouched and only change the draws."""
        data = rng.beta(2, 6, size=1200)
        input_path = tmp_path / "values.csv"
        np.savetxt(input_path, data, delimiter=",")
        release_path = tmp_path / "release.json"
        assert cli_main([
            "summarize", "--input", str(input_path), "--output", str(release_path),
        ]) == 0
        document_before = release_path.read_text()

        out_a = tmp_path / "a.csv"
        out_b = tmp_path / "b.csv"
        out_a2 = tmp_path / "a2.csv"
        for seed, out in ((1, out_a), (2, out_b), (1, out_a2)):
            assert cli_main([
                "generate", "--release", str(release_path), "--output", str(out),
                "--size", "300", "--seed", str(seed),
            ]) == 0

        # The release file (the persisted tree counts) is bit-for-bit unchanged.
        assert release_path.read_text() == document_before
        first = np.loadtxt(out_a, delimiter=",")
        second = np.loadtxt(out_b, delimiter=",")
        repeat = np.loadtxt(out_a2, delimiter=",")
        assert not np.array_equal(first, second)  # different seeds, different draws
        assert np.array_equal(first, repeat)  # same seed reproduces exactly
        # And the decoded trees agree regardless of the sampling seed.
        tree_a = load_generator(release_path, sampling_seed=1).tree.as_dict()
        tree_b = load_generator(release_path, sampling_seed=2).tree.as_dict()
        assert tree_a == tree_b

    def test_load_generator_conflicting_seeds_rejected(self, tmp_path, interval, rng):
        generator = fitted_generator(interval, rng.random(300))
        path = save_generator(generator, tmp_path / "release.json")
        with pytest.raises(ValueError):
            load_generator(path, seed=1, sampling_seed=2)
        # Matching values (and the historical positional form) still work.
        load_generator(path, seed=3, sampling_seed=3)
        load_generator(path, seed=3)

    def test_cli_sharded_summarize_matches_unsharded(self, tmp_path, rng):
        data = rng.beta(2, 6, size=900)
        input_path = tmp_path / "values.csv"
        np.savetxt(input_path, data, delimiter=",")
        single_path = tmp_path / "single.json"
        sharded_path = tmp_path / "sharded.json"
        assert cli_main([
            "summarize", "--input", str(input_path), "--output", str(single_path),
            "--seed", "0",
        ]) == 0
        assert cli_main([
            "summarize", "--input", str(input_path), "--output", str(sharded_path),
            "--seed", "0", "--shards", "3",
        ]) == 0
        single_tree = json.loads(single_path.read_text())["tree"]
        sharded_tree = json.loads(sharded_path.read_text())["tree"]
        assert set(single_tree) == set(sharded_tree)
        for key, count in single_tree.items():
            assert sharded_tree[key] == pytest.approx(count, abs=1e-6)

    def test_cli_checkpoint_resume_pipeline(self, tmp_path, rng):
        day1 = rng.beta(2, 6, size=700)
        day2 = rng.beta(2, 6, size=500)
        day1_path = tmp_path / "day1.csv"
        day2_path = tmp_path / "day2.csv"
        np.savetxt(day1_path, day1, delimiter=",")
        np.savetxt(day2_path, day2, delimiter=",")
        state_path = tmp_path / "state.json"
        release_path = tmp_path / "release.json"

        assert cli_main([
            "checkpoint", "--input", str(day1_path), "--state", str(state_path),
            "--stream-size", "1200", "--seed", "0",
        ]) == 0
        assert state_path.exists()
        assert cli_main([
            "checkpoint", "--input", str(day2_path), "--state", str(state_path),
        ]) == 0
        assert cli_main([
            "resume", "--state", str(state_path), "--output", str(release_path),
        ]) == 0

        document = json.loads(release_path.read_text())
        assert document["metadata"]["items_processed"] == 1200

        # The resumed release matches one uninterrupted run over both days.
        combined_path = tmp_path / "combined.csv"
        np.savetxt(combined_path, np.concatenate([day1, day2]), delimiter=",")
        combined_release = tmp_path / "combined.json"
        assert cli_main([
            "summarize", "--input", str(combined_path), "--output", str(combined_release),
            "--seed", "0",
        ]) == 0
        combined_doc = json.loads(combined_release.read_text())
        assert set(document["tree"]) == set(combined_doc["tree"])
        for key, count in combined_doc["tree"].items():
            assert document["tree"][key] == pytest.approx(count, abs=1e-9)

    def test_cli_checkpoint_rejects_fit_flags_on_existing_state(self, tmp_path, rng, capsys):
        """Flags that only apply at state creation must not be silently dropped."""
        data_path = tmp_path / "data.csv"
        np.savetxt(data_path, rng.beta(2, 6, size=500), delimiter=",")
        state_path = tmp_path / "state.json"
        assert cli_main([
            "checkpoint", "--input", str(data_path), "--state", str(state_path),
            "--epsilon", "1.0",
        ]) == 0
        with pytest.raises(SystemExit) as excinfo:
            cli_main([
                "checkpoint", "--input", str(data_path), "--state", str(state_path),
                "--epsilon", "0.1",
            ])
        assert excinfo.value.code == 2
        assert "--epsilon" in capsys.readouterr().err
        with pytest.raises(SystemExit):
            cli_main([
                "checkpoint", "--input", str(data_path), "--state", str(state_path),
                "--stream-size", "9000",
            ])
        assert "--stream-size" in capsys.readouterr().err

    def test_cli_bad_input_exits_cleanly(self, tmp_path, rng, capsys):
        """User errors surface as argparse usage errors, not tracebacks."""
        data_path = tmp_path / "data.csv"
        np.savetxt(data_path, rng.beta(2, 6, size=100), delimiter=",")
        with pytest.raises(SystemExit) as excinfo:
            cli_main([
                "summarize", "--input", str(data_path),
                "--output", str(tmp_path / "r.json"), "--domain", "banach",
            ])
        assert excinfo.value.code == 2
        assert "unknown domain" in capsys.readouterr().err
        with pytest.raises(SystemExit):
            cli_main([
                "summarize", "--input", str(data_path),
                "--output", str(tmp_path / "r.json"), "--shards", "0",
            ])
        assert "--shards" in capsys.readouterr().err
        with pytest.raises(SystemExit) as excinfo:
            cli_main([
                "resume", "--state", str(tmp_path / "missing.json"),
                "--output", str(tmp_path / "r.json"),
            ])
        assert excinfo.value.code == 2  # missing file is a usage error, not a traceback

    def test_cli_preserves_large_integer_values(self, tmp_path, rng):
        """Integer domains must not lose precision to the float CSV format."""
        universe = 10**13
        data = rng.integers(universe - 1000, universe, size=300)
        input_path = tmp_path / "items.csv"
        np.savetxt(input_path, data, delimiter=",", fmt="%d")
        release_path = tmp_path / "release.json"
        output_path = tmp_path / "synthetic.csv"
        assert cli_main([
            "summarize", "--input", str(input_path), "--output", str(release_path),
            "--domain", f"discrete:{universe}",
        ]) == 0
        assert cli_main([
            "generate", "--release", str(release_path), "--output", str(output_path),
            "--size", "50",
        ]) == 0
        for line in output_path.read_text().splitlines():
            assert "." not in line and "e" not in line  # exact integers, no float notation
            assert 0 <= int(line) < universe

    def test_cli_domain_flag(self, tmp_path, rng):
        data = rng.integers(0, 2**32, size=400)
        input_path = tmp_path / "addresses.csv"
        np.savetxt(input_path, data, delimiter=",", fmt="%d")
        release_path = tmp_path / "release.json"
        output_path = tmp_path / "synthetic.csv"
        assert cli_main([
            "summarize", "--input", str(input_path), "--output", str(release_path),
            "--domain", "ipv4",
        ]) == 0
        assert json.loads(release_path.read_text())["domain"]["type"] == "IPv4Domain"
        assert cli_main([
            "generate", "--release", str(release_path), "--output", str(output_path),
            "--size", "100",
        ]) == 0
        synthetic = np.loadtxt(output_path, delimiter=",")
        assert np.all((synthetic >= 0) & (synthetic < 2**32))


class TestContinualCheckpointEnvelope:
    """Continual summarizers round-trip through the shared repro.io envelope."""

    def build(self, n=300, seed=0):
        from repro.api.builder import PrivHPBuilder

        return (
            PrivHPBuilder("interval")
            .epsilon(5.0)
            .pruning_k(4)
            .stream_size(n)
            .seed(seed)
            .continual()
            .build()
        )

    def test_save_load_dispatches_to_continual_restore(self, tmp_path, rng):
        from repro.continual.privhp import PrivHPContinual
        from repro.io.serialization import load_checkpoint, save_checkpoint

        summarizer = self.build()
        summarizer.update_batch(rng.beta(2, 5, 150))
        path = save_checkpoint(summarizer, tmp_path / "state.json")
        restored = load_checkpoint(path)
        assert isinstance(restored, PrivHPContinual)
        assert restored.items_processed == 150
        assert restored.horizon == summarizer.horizon

    def test_resume_from_disk_is_byte_identical(self, tmp_path, rng):
        from repro.io.serialization import load_checkpoint, save_checkpoint

        data = rng.beta(2, 5, 300)
        original = self.build()
        original.update_batch(data[:150])
        path = save_checkpoint(original, tmp_path / "state.json")
        restored = load_checkpoint(path)
        original.update_batch(data[150:])
        restored.update_batch(data[150:])
        assert json.dumps(original.snapshot().to_dict(), sort_keys=True) == json.dumps(
            restored.snapshot().to_dict(), sort_keys=True
        )

    def test_unknown_summarizer_kind_rejected(self, tmp_path, rng):
        from repro.io.serialization import load_checkpoint, save_checkpoint

        summarizer = self.build()
        summarizer.update_batch(rng.beta(2, 5, 100))
        path = save_checkpoint(summarizer, tmp_path / "state.json")
        document = json.loads(path.read_text())
        document["state"]["summarizer"] = "privhp-quantum"
        path.write_text(json.dumps(document))
        with pytest.raises(ValueError, match="unknown summarizer kind"):
            load_checkpoint(path)


class TestContinualCLI:
    def _write_csv(self, path, data):
        np.savetxt(path, data, delimiter=",")

    def test_summarize_continual_writes_tagged_release(self, tmp_path, rng):
        input_path = tmp_path / "data.csv"
        self._write_csv(input_path, rng.beta(2, 5, 2000))
        release_path = tmp_path / "release.json"
        assert cli_main([
            "summarize", "--input", str(input_path), "--output", str(release_path),
            "--continual", "--horizon", "5000",
        ]) == 0
        document = json.loads(release_path.read_text())
        assert document["metadata"]["continual"]["horizon"] == 5000
        assert document["metadata"]["items_processed"] == 2000

    def test_summarize_continual_sharded(self, tmp_path, rng):
        input_path = tmp_path / "data.csv"
        self._write_csv(input_path, rng.beta(2, 5, 1800))
        release_path = tmp_path / "release.json"
        assert cli_main([
            "summarize", "--input", str(input_path), "--output", str(release_path),
            "--continual", "--shards", "3",
        ]) == 0
        document = json.loads(release_path.read_text())
        assert document["metadata"]["items_processed"] == 1800

    def test_horizon_without_continual_rejected(self, tmp_path, rng, capsys):
        input_path = tmp_path / "data.csv"
        self._write_csv(input_path, rng.beta(2, 5, 100))
        with pytest.raises(SystemExit) as excinfo:
            cli_main([
                "summarize", "--input", str(input_path),
                "--output", str(tmp_path / "r.json"), "--horizon", "500",
            ])
        assert excinfo.value.code == 2
        assert "--continual" in capsys.readouterr().err

    def test_checkpoint_snapshot_resume_pipeline(self, tmp_path, rng):
        day1, day2 = tmp_path / "day1.csv", tmp_path / "day2.csv"
        self._write_csv(day1, rng.beta(2, 5, 1000))
        self._write_csv(day2, rng.beta(2, 5, 1000))
        state = tmp_path / "state.json"
        assert cli_main([
            "checkpoint", "--input", str(day1), "--state", str(state),
            "--continual", "--stream-size", "2000",
        ]) == 0
        state_before = state.read_bytes()

        snap = tmp_path / "snap.json"
        assert cli_main(["snapshot", "--state", str(state), "--output", str(snap)]) == 0
        snapshot_doc = json.loads(snap.read_text())
        assert snapshot_doc["metadata"]["items_processed"] == 1000
        assert state.read_bytes() == state_before  # snapshot never consumes state

        assert cli_main(["checkpoint", "--input", str(day2), "--state", str(state)]) == 0
        final = tmp_path / "final.json"
        assert cli_main(["resume", "--state", str(state), "--output", str(final)]) == 0
        assert json.loads(final.read_text())["metadata"]["items_processed"] == 2000

    def test_continual_flags_rejected_on_existing_state(self, tmp_path, rng, capsys):
        data_path = tmp_path / "data.csv"
        self._write_csv(data_path, rng.beta(2, 5, 200))
        state = tmp_path / "state.json"
        assert cli_main([
            "checkpoint", "--input", str(data_path), "--state", str(state),
            "--continual", "--horizon", "800",
        ]) == 0
        with pytest.raises(SystemExit) as excinfo:
            cli_main([
                "checkpoint", "--input", str(data_path), "--state", str(state),
                "--continual", "--horizon", "900",
            ])
        assert excinfo.value.code == 2
        error = capsys.readouterr().err
        assert "--continual" in error and "--horizon" in error

    def test_snapshot_of_one_shot_state_rejected(self, tmp_path, rng, capsys):
        data_path = tmp_path / "data.csv"
        self._write_csv(data_path, rng.beta(2, 5, 200))
        state = tmp_path / "state.json"
        assert cli_main(["checkpoint", "--input", str(data_path), "--state", str(state)]) == 0
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["snapshot", "--state", str(state), "--output", str(tmp_path / "s.json")])
        assert excinfo.value.code == 2
        assert "one-shot" in capsys.readouterr().err

    def test_snapshot_release_is_queryable(self, tmp_path, rng):
        data_path = tmp_path / "data.csv"
        self._write_csv(data_path, rng.beta(2, 5, 1000))
        state = tmp_path / "state.json"
        snap = tmp_path / "snap.json"
        workload = tmp_path / "workload.json"
        answers = tmp_path / "answers.json"
        workload.write_text(json.dumps([{"type": "mass", "lower": 0.0, "upper": 0.5}]))
        assert cli_main([
            "checkpoint", "--input", str(data_path), "--state", str(state),
            "--continual", "--horizon", "1000",
        ]) == 0
        assert cli_main(["snapshot", "--state", str(state), "--output", str(snap)]) == 0
        assert cli_main([
            "query", str(snap), "--workload", str(workload), "--output", str(answers),
        ]) == 0
        result = json.loads(answers.read_text())["results"][0]["answer"]
        assert 0.0 <= result <= 1.0

    def test_fresh_continual_state_requires_a_total_horizon(self, tmp_path, rng, capsys):
        """Without --horizon/--stream-size the day1/day2 workflow would
        exhaust the counters on day 2, so creation is rejected up front."""
        data_path = tmp_path / "data.csv"
        self._write_csv(data_path, rng.beta(2, 5, 100))
        with pytest.raises(SystemExit) as excinfo:
            cli_main([
                "checkpoint", "--input", str(data_path),
                "--state", str(tmp_path / "state.json"), "--continual",
            ])
        assert excinfo.value.code == 2
        assert "--horizon" in capsys.readouterr().err

    def test_exhausted_horizon_is_a_clean_usage_error(self, tmp_path, rng, capsys):
        """Overrunning a continual horizon via the CLI exits 2, no traceback."""
        data_path = tmp_path / "data.csv"
        self._write_csv(data_path, rng.beta(2, 5, 200))
        state = tmp_path / "state.json"
        assert cli_main([
            "checkpoint", "--input", str(data_path), "--state", str(state),
            "--continual", "--horizon", "300",
        ]) == 0
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["checkpoint", "--input", str(data_path), "--state", str(state)])
        assert excinfo.value.code == 2
        assert "horizon" in capsys.readouterr().err
