"""Tests for serialisation and the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core.config import PrivHPConfig
from repro.core.privhp import PrivHP
from repro.core.tree import PartitionTree
from repro.domain.geo import GeoDomain
from repro.domain.hypercube import Hypercube
from repro.domain.interval import UnitInterval
from repro.io.serialization import (
    domain_from_dict,
    domain_to_dict,
    generator_from_dict,
    generator_to_dict,
    load_generator,
    save_generator,
    tree_from_dict,
    tree_to_dict,
)


def fitted_generator(domain, data, seed=0):
    config = PrivHPConfig.from_stream_size(len(data), epsilon=1.0, pruning_k=4, seed=seed)
    algorithm = PrivHP(domain, config, rng=seed)
    algorithm.process(data)
    return algorithm.finalize()


class TestTreeSerialization:
    def test_round_trip_preserves_counts(self):
        tree = PartitionTree()
        tree.add_node((), 10.0)
        tree.add_node((0,), 4.0)
        tree.add_node((1,), 6.0)
        restored = tree_from_dict(tree_to_dict(tree))
        assert restored.as_dict() == tree.as_dict()

    def test_root_key_is_empty_string(self):
        tree = PartitionTree()
        tree.add_node((), 1.0)
        assert tree_to_dict(tree) == {"": 1.0}

    def test_invalid_keys_rejected(self):
        with pytest.raises(ValueError):
            tree_from_dict({"01x": 1.0})

    def test_missing_root_rejected(self):
        with pytest.raises(ValueError):
            tree_from_dict({"0": 1.0})


class TestDomainSerialization:
    @pytest.mark.parametrize(
        "domain",
        [
            UnitInterval(),
            Hypercube(3),
            GeoDomain(lat_min=24.0, lat_max=49.0, lon_min=-125.0, lon_max=-66.0),
        ],
    )
    def test_round_trip(self, domain):
        restored = domain_from_dict(domain_to_dict(domain))
        assert type(restored) is type(domain)
        assert restored.diameter() == domain.diameter()

    def test_hypercube_dimension_preserved(self):
        assert domain_from_dict(domain_to_dict(Hypercube(5))).dimension == 5

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            domain_from_dict({"type": "Banach"})


class TestGeneratorSerialization:
    def test_round_trip_preserves_distribution(self, interval, rng):
        generator = fitted_generator(interval, rng.beta(2, 5, 1500))
        restored = generator_from_dict(generator_to_dict(generator), seed=0)
        original = generator.leaf_probabilities()
        recovered = restored.leaf_probabilities()
        assert set(original) == set(recovered)
        for theta, probability in original.items():
            assert recovered[theta] == pytest.approx(probability)

    def test_save_and_load_file(self, tmp_path, interval, rng):
        generator = fitted_generator(interval, rng.random(800))
        path = save_generator(generator, tmp_path / "release.json", metadata={"epsilon": 1.0})
        document = json.loads(path.read_text())
        assert document["format"] == "privhp-generator"
        assert document["metadata"]["epsilon"] == 1.0
        restored = load_generator(path, seed=1)
        samples = restored.sample(100)
        assert np.all((samples >= 0) & (samples <= 1))

    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError):
            generator_from_dict({"format": "something-else", "version": 1})

    def test_future_version_rejected(self, interval, rng):
        generator = fitted_generator(interval, rng.random(200))
        document = generator_to_dict(generator)
        document["version"] = 99
        with pytest.raises(ValueError):
            generator_from_dict(document)

    def test_two_dimensional_round_trip(self, square, rng):
        generator = fitted_generator(square, rng.random((600, 2)))
        restored = generator_from_dict(generator_to_dict(generator), seed=0)
        assert restored.sample(20).shape == (20, 2)


class TestCLI:
    def test_summarize_generate_evaluate_pipeline(self, tmp_path, rng, capsys):
        data = rng.beta(2, 6, size=1500)
        input_path = tmp_path / "values.csv"
        np.savetxt(input_path, data, delimiter=",")
        release_path = tmp_path / "release.json"
        output_path = tmp_path / "synthetic.csv"

        assert cli_main([
            "summarize", "--input", str(input_path), "--output", str(release_path),
            "--epsilon", "1.0", "--k", "8", "--seed", "0",
        ]) == 0
        assert release_path.exists()

        assert cli_main([
            "generate", "--release", str(release_path), "--output", str(output_path),
            "--size", "500", "--seed", "1",
        ]) == 0
        synthetic = np.loadtxt(output_path, delimiter=",")
        assert synthetic.shape == (500,)
        assert np.all((synthetic >= 0) & (synthetic <= 1))

        assert cli_main([
            "evaluate", "--input", str(input_path), "--epsilon", "1.0", "--k", "8",
        ]) == 0
        captured = capsys.readouterr()
        assert "W1(data, synth)" in captured.out

    def test_cli_two_dimensional_input(self, tmp_path, rng):
        data = rng.random((400, 2))
        input_path = tmp_path / "points.csv"
        np.savetxt(input_path, data, delimiter=",")
        release_path = tmp_path / "release2d.json"
        output_path = tmp_path / "synthetic2d.csv"

        assert cli_main([
            "summarize", "--input", str(input_path), "--output", str(release_path),
        ]) == 0
        assert cli_main([
            "generate", "--release", str(release_path), "--output", str(output_path),
            "--size", "100",
        ]) == 0
        synthetic = np.loadtxt(output_path, delimiter=",")
        assert synthetic.shape == (100, 2)

    def test_cli_requires_command(self):
        with pytest.raises(SystemExit):
            cli_main([])
