"""Tests for the end-to-end PrivHP algorithm (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.config import PrivHPConfig
from repro.core.privhp import PrivHP
from repro.metrics.wasserstein import wasserstein1_1d


def small_config(**overrides):
    defaults = dict(
        epsilon=1.0,
        pruning_k=4,
        depth=8,
        level_cutoff=4,
        sketch_width=8,
        sketch_depth=5,
        seed=0,
    )
    defaults.update(overrides)
    return PrivHPConfig(**defaults)


class TestInitialisation:
    def test_tree_is_complete_to_cutoff(self, interval):
        algorithm = PrivHP(interval, small_config(), rng=0)
        assert len(algorithm.tree) == 2 ** (4 + 1) - 1

    def test_one_sketch_per_deep_level(self, interval):
        algorithm = PrivHP(interval, small_config(), rng=0)
        assert sorted(algorithm.sketches) == [5, 6, 7, 8]

    def test_counters_carry_initial_noise(self, interval):
        algorithm = PrivHP(interval, small_config(), rng=0)
        counts = [count for _, count in algorithm.tree.nodes()]
        assert any(abs(count) > 1e-9 for count in counts)

    def test_budget_ledger_sums_to_epsilon(self, interval):
        algorithm = PrivHP(interval, small_config(epsilon=0.7), rng=0)
        assert algorithm.accountant.spent == pytest.approx(0.7)
        assert len(algorithm.level_budgets) == algorithm.config.depth + 1

    def test_uniform_allocation_supported(self, interval):
        algorithm = PrivHP(interval, small_config(budget_allocation="uniform"), rng=0)
        budgets = algorithm.level_budgets
        assert all(b == pytest.approx(budgets[0]) for b in budgets)

    def test_privacy_summary_readable(self, interval):
        algorithm = PrivHP(interval, small_config(), rng=0)
        assert "tree level 0" in algorithm.privacy_summary()


class TestStreaming:
    def test_update_counts_items(self, interval, rng):
        algorithm = PrivHP(interval, small_config(), rng=0)
        for value in rng.random(25):
            algorithm.update(value)
        assert algorithm.items_processed == 25

    def test_process_returns_self(self, interval, rng):
        algorithm = PrivHP(interval, small_config(), rng=0)
        assert algorithm.process(rng.random(10)) is algorithm

    def test_update_after_finalize_rejected(self, interval, rng):
        algorithm = PrivHP(interval, small_config(), rng=0)
        algorithm.process(rng.random(10))
        algorithm.finalize()
        with pytest.raises(RuntimeError):
            algorithm.update(0.5)

    def test_finalize_twice_rejected(self, interval, rng):
        algorithm = PrivHP(interval, small_config(), rng=0)
        algorithm.process(rng.random(10))
        algorithm.finalize()
        with pytest.raises(RuntimeError):
            algorithm.finalize()

    def test_exact_counters_track_path_counts(self, interval):
        """With a huge budget the counters equal the true path counts (almost no noise)."""
        config = small_config(epsilon=10_000.0)
        algorithm = PrivHP(interval, config, rng=0)
        data = [0.1] * 20 + [0.9] * 10
        algorithm.process(data)
        # Level-1 cells: [0, 0.5) holds 20 points, [0.5, 1] holds 10.
        assert algorithm.tree.count((0,)) == pytest.approx(20, abs=1.0)
        assert algorithm.tree.count((1,)) == pytest.approx(10, abs=1.0)


class TestFinalize:
    def test_generator_samples_in_domain(self, interval, rng):
        algorithm = PrivHP(interval, small_config(), rng=0)
        algorithm.process(rng.beta(2, 5, size=400))
        generator = algorithm.finalize()
        samples = generator.sample(300)
        assert np.all((samples >= 0) & (samples <= 1))

    def test_grown_tree_reaches_depth(self, interval, rng):
        algorithm = PrivHP(interval, small_config(), rng=0)
        algorithm.process(rng.random(400))
        algorithm.finalize()
        assert algorithm.tree.depth() == algorithm.config.depth

    def test_grown_tree_is_consistent(self, interval, rng):
        algorithm = PrivHP(interval, small_config(), rng=0)
        algorithm.process(rng.random(400))
        algorithm.finalize()
        assert algorithm.tree.is_consistent()

    def test_memory_respects_pruning_budget(self, interval, rng):
        config = small_config()
        algorithm = PrivHP(interval, config, rng=0)
        algorithm.process(rng.random(500))
        algorithm.finalize()
        # Tree nodes: the complete tree to L*, plus one full expansion of the
        # level-L* frontier (Algorithm 2 starts from every node at L*), plus at
        # most 2k new nodes for every deeper level.
        max_nodes = (
            (2 ** (config.level_cutoff + 1) - 1)
            + 2 ** (config.level_cutoff + 1)
            + 2 * config.pruning_k * (config.depth - config.level_cutoff - 1)
        )
        assert len(algorithm.tree) <= max_nodes

    def test_generate_convenience_wrapper(self, interval, rng):
        algorithm = PrivHP(interval, small_config(), rng=0)
        samples = algorithm.generate(rng.random(200), size=150)
        assert samples.shape == (150,)
        assert algorithm.finalized

    def test_high_budget_run_has_low_error(self, interval, rng):
        """With effectively no noise the synthetic data tracks a skewed input closely."""
        data = rng.beta(2.0, 8.0, size=3000)
        config = PrivHPConfig.from_stream_size(len(data), epsilon=1000.0, pruning_k=16, seed=1)
        generator = PrivHP(interval, config, rng=1).process(data).finalize()
        synthetic = generator.sample(3000)
        low_noise_error = wasserstein1_1d(data, synthetic)
        assert low_noise_error < 0.05

    def test_more_noise_means_more_error_on_average(self, interval, rng):
        """epsilon = 1000 runs should beat epsilon = 0.1 runs on the same data."""
        data = rng.beta(2.0, 8.0, size=1500)

        def error(epsilon, seed):
            config = PrivHPConfig.from_stream_size(len(data), epsilon=epsilon, pruning_k=8, seed=seed)
            generator = PrivHP(interval, config, rng=seed).process(data).finalize()
            return wasserstein1_1d(data, generator.sample(1500))

        tight = np.mean([error(1000.0, seed) for seed in range(3)])
        loose = np.mean([error(0.1, seed) for seed in range(3)])
        assert tight < loose

    def test_works_on_hypercube(self, square, rng):
        data = np.clip(rng.normal(0.5, 0.1, size=(300, 2)), 0, 1)
        config = PrivHPConfig.from_stream_size(len(data), epsilon=2.0, pruning_k=8, seed=0)
        generator = PrivHP(square, config, rng=0).process(data).finalize()
        samples = generator.sample(100)
        assert samples.shape == (100, 2)

    def test_works_on_ipv4(self, ipv4, rng):
        addresses = rng.integers(0, 2**32, size=300)
        config = PrivHPConfig.from_stream_size(300, epsilon=2.0, pruning_k=8, seed=0, depth=12)
        generator = PrivHP(ipv4, config, rng=0).process(addresses).finalize()
        samples = generator.sample(50)
        assert np.all((samples >= 0) & (samples < 2**32))


class TestMemoryAccounting:
    def test_memory_words_positive_and_stable_under_streaming(self, interval, rng):
        algorithm = PrivHP(interval, small_config(), rng=0)
        before = algorithm.memory_words()
        algorithm.process(rng.random(300))
        after = algorithm.memory_words()
        assert before > 0
        # Streaming must not grow the summary (that is the whole point).
        assert after == before

    def test_memory_grows_only_modestly_after_finalize(self, interval, rng):
        config = small_config()
        algorithm = PrivHP(interval, config, rng=0)
        algorithm.process(rng.random(300))
        before = algorithm.memory_words()
        algorithm.finalize()
        growth = algorithm.memory_words() - before
        # Growing adds one full expansion of the level-L* frontier plus at most
        # 2k nodes (2 words each) per remaining level.
        allowed = 2 * (
            2 ** (config.level_cutoff + 1)
            + 2 * config.pruning_k * (config.depth - config.level_cutoff - 1)
        )
        assert growth <= allowed
