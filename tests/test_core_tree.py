"""Tests for the partition tree container."""

import pytest

from repro.core.tree import PartitionTree


class TestConstruction:
    def test_complete_tree_node_count(self):
        tree = PartitionTree.complete(3)
        assert len(tree) == 2**4 - 1

    def test_complete_tree_negative_depth_rejected(self):
        with pytest.raises(ValueError):
            PartitionTree.complete(-1)

    def test_complete_tree_initial_count(self):
        tree = PartitionTree.complete(2, initial_count=1.5)
        assert all(count == 1.5 for _, count in tree.nodes())

    def test_add_and_remove_node(self):
        tree = PartitionTree()
        tree.add_node((), 1.0)
        tree.add_node((0,), 0.5)
        assert (0,) in tree
        tree.remove_node((0,))
        assert (0,) not in tree

    def test_add_node_validates_bits(self):
        tree = PartitionTree()
        with pytest.raises(ValueError):
            tree.add_node((0, 2), 1.0)


class TestCounts:
    def test_increment_and_get(self):
        tree = PartitionTree.complete(1)
        tree.increment((0,), 2.0)
        tree.increment((0,), 3.0)
        assert tree.count((0,)) == pytest.approx(5.0)
        assert tree.get((1, 1), default=-1.0) == -1.0

    def test_set_count_requires_existing_node(self):
        tree = PartitionTree()
        with pytest.raises(KeyError):
            tree.set_count((0,), 1.0)

    def test_increment_requires_existing_node(self):
        tree = PartitionTree()
        with pytest.raises(KeyError):
            tree.increment((1,))

    def test_root_count_default_zero(self):
        assert PartitionTree().root_count == 0.0


class TestStructure:
    def test_leaves_of_complete_tree(self):
        tree = PartitionTree.complete(2)
        leaves = tree.leaves()
        assert len(leaves) == 4
        assert all(len(theta) == 2 for theta in leaves)

    def test_internal_nodes(self):
        tree = PartitionTree.complete(2)
        internal = tree.internal_nodes()
        assert len(internal) == 3

    def test_is_leaf_and_has_children(self):
        tree = PartitionTree.complete(1)
        assert tree.is_leaf((0,))
        assert not tree.is_leaf(())
        assert tree.has_children(())

    def test_nodes_at_level_sorted(self):
        tree = PartitionTree.complete(2)
        assert tree.nodes_at_level(2) == sorted(tree.nodes_at_level(2))

    def test_depth(self):
        tree = PartitionTree.complete(4)
        assert tree.depth() == 4
        assert PartitionTree().depth() == 0

    def test_children_present(self):
        tree = PartitionTree()
        tree.add_node(())
        tree.add_node((0,))
        assert tree.children_present(()) == (True, False)

    def test_level_counts_restricted(self):
        tree = PartitionTree.complete(2, initial_count=1.0)
        level = tree.level_counts(1)
        assert set(level) == {(0,), (1,)}


class TestInvariantsAndExport:
    def test_consistent_tree_detected(self):
        tree = PartitionTree()
        tree.add_node((), 4.0)
        tree.add_node((0,), 1.0)
        tree.add_node((1,), 3.0)
        assert tree.is_consistent()

    def test_inconsistent_sum_detected(self):
        tree = PartitionTree()
        tree.add_node((), 4.0)
        tree.add_node((0,), 1.0)
        tree.add_node((1,), 1.0)
        assert not tree.is_consistent()

    def test_negative_count_detected(self):
        tree = PartitionTree()
        tree.add_node((), -1.0)
        assert not tree.is_consistent()

    def test_memory_words_scales_with_nodes(self):
        tree = PartitionTree.complete(3)
        assert tree.memory_words() == 2 * len(tree)

    def test_copy_is_independent(self):
        tree = PartitionTree.complete(1, initial_count=1.0)
        clone = tree.copy()
        clone.set_count((), 9.0)
        assert tree.count(()) == 1.0

    def test_as_dict_snapshot(self):
        tree = PartitionTree.complete(1, initial_count=2.0)
        snapshot = tree.as_dict()
        assert snapshot[()] == 2.0
        assert len(snapshot) == 3
