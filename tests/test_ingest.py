"""Tests for the multi-tenant ingestion service (``repro.ingest``).

The load-bearing guarantees:

* **Determinism through the service** -- routing a tenant's stream through
  the worker pool produces a release byte-identical to running the same
  stream through a single in-process summarizer, even when the tenant was
  evicted to a checkpoint and restored along the way.
* **Isolation** -- tenants never share summarizer state; each worker
  exclusively owns its hash-partition of tenants.
* **Accounting** -- per-tenant/service-wide privacy budgets are enforced at
  admission; the word-level memory budget is enforced by LRU eviction.
* **Serving** -- a continual tenant is queryable over HTTP the moment it
  has data, and 404s once evicted, released, or the service is closed.
"""

from __future__ import annotations

import contextlib
import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.ingest import (
    AppendError,
    IngestService,
    MemoryLedger,
    RateLimiter,
    TenantBudgetRegistry,
    TenantSpec,
    ingest_file,
    iter_append_records,
    load_tenant_specs,
    partition_of,
    save_tenant_spec,
    watch_directory,
)
from repro.memory.accounting import measure_method
from repro.privacy.accountant import BudgetExceededError
from repro.serve.http import create_server
from repro.serve.store import ReleaseStore


def _release_bytes(release) -> str:
    """Canonical byte-level identity of a release document."""
    return json.dumps(release.to_dict(), sort_keys=True)


def _control_release(spec: TenantSpec, batches) -> str:
    """The same stream through a single in-process summarizer."""
    summarizer = spec.build_summarizer()
    domain = spec.make_domain()
    for batch in batches:
        summarizer.update_batch(domain.coerce_stream(np.asarray(batch)))
    return _release_bytes(summarizer.release())


# --------------------------------------------------------------------------- #
# tenant specs
# --------------------------------------------------------------------------- #
class TestTenantSpec:
    def test_round_trip_through_dict(self):
        spec = TenantSpec(
            "acme", domain="discrete:256", epsilon=2.0, pruning_k=4,
            stream_size=1024, continual=True, horizon=2048, seed=9,
            max_epsilon=3.0,
        )
        assert TenantSpec.from_dict(spec.to_dict()) == spec

    def test_round_trip_through_directory(self, tmp_path):
        specs = [
            TenantSpec("alpha", stream_size=64, seed=1),
            TenantSpec("beta", continual=True, stream_size=128, seed=2),
        ]
        for spec in specs:
            save_tenant_spec(spec, tmp_path)
        loaded = load_tenant_specs(tmp_path)
        assert sorted(loaded) == ["alpha", "beta"]
        assert loaded["alpha"] == specs[0]
        assert loaded["beta"] == specs[1]

    def test_batch_file_with_tenants_list(self, tmp_path):
        document = {
            "tenants": [
                {"tenant_id": "a", "stream_size": 32},
                {"tenant_id": "b", "stream_size": 32, "continual": True},
            ]
        }
        (tmp_path / "fleet.json").write_text(json.dumps(document))
        assert sorted(load_tenant_specs(tmp_path)) == ["a", "b"]

    def test_duplicate_tenant_across_files_rejected(self, tmp_path):
        save_tenant_spec(TenantSpec("dup", stream_size=32), tmp_path)
        (tmp_path / "again.json").write_text(
            json.dumps({"tenants": [{"tenant_id": "dup", "stream_size": 32}]})
        )
        with pytest.raises(ValueError, match="dup"):
            load_tenant_specs(tmp_path)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"epsilon": 0.0},
            {"epsilon": -1.0},
            {"horizon": 100},  # horizon without continual
            {"max_epsilon": 0.5},  # below epsilon
            {"domain": "no-such-domain"},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TenantSpec("t", **kwargs)

    @pytest.mark.parametrize("bad_id", ["", ".hidden", "a/b", "a b", "-lead"])
    def test_tenant_ids_must_be_file_safe(self, bad_id):
        # Tenant ids become checkpoint/release file stems, so anything that
        # could escape the directory or hide the file is rejected up front.
        with pytest.raises(ValueError):
            TenantSpec(bad_id)

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            TenantSpec.from_dict({"tenant_id": "a", "epsilonn": 1.0})


# --------------------------------------------------------------------------- #
# partitioning and accounting
# --------------------------------------------------------------------------- #
class TestPartitioning:
    def test_partition_is_stable_and_in_range(self):
        ids = [f"tenant-{i}" for i in range(500)]
        first = [partition_of(t, 8) for t in ids]
        assert first == [partition_of(t, 8) for t in ids]
        assert all(0 <= p < 8 for p in first)
        # A healthy hash spreads 500 tenants over all 8 partitions.
        assert len(set(first)) == 8

    def test_partition_documented_value(self):
        # Pinned: the partition must come from a stable (unsalted) hash so a
        # restarted service routes every tenant to the same worker.
        assert partition_of("acme", 8) == partition_of("acme", 8)
        with pytest.raises(ValueError):
            partition_of("acme", 0)


class TestTenantBudgetRegistry:
    def test_total_epsilon_sums_admitted_tenants(self):
        registry = TenantBudgetRegistry()
        registry.admit(TenantSpec("a", epsilon=1.0))
        registry.admit(TenantSpec("b", epsilon=2.5))
        assert registry.total_epsilon() == pytest.approx(3.5)
        assert sorted(registry.admitted()) == ["a", "b"]

    def test_duplicate_admission_rejected(self):
        registry = TenantBudgetRegistry()
        registry.admit(TenantSpec("a"))
        with pytest.raises(ValueError, match="already"):
            registry.admit(TenantSpec("a"))

    def test_epsilon_above_max_epsilon_rejected(self):
        with pytest.raises(ValueError):
            TenantSpec("greedy", epsilon=2.0, max_epsilon=1.0)

    def test_service_wide_budget_rejects_overflow(self):
        registry = TenantBudgetRegistry(service_budget=2.0)
        registry.admit(TenantSpec("a", epsilon=1.5))
        with pytest.raises(BudgetExceededError) as excinfo:
            registry.admit(TenantSpec("b", epsilon=1.0))
        assert "b" in str(excinfo.value)
        # The rejected tenant must not be half-admitted.
        assert registry.admitted() == ["a"]

    def test_remaining_epsilon_reflects_max(self):
        registry = TenantBudgetRegistry()
        registry.admit(TenantSpec("a", epsilon=1.0, max_epsilon=4.0))
        assert registry.remaining_epsilon("a") == pytest.approx(3.0)


class TestMemoryLedger:
    def test_record_drop_and_totals(self):
        ledger = MemoryLedger()
        ledger.record_exact("a", 100)
        ledger.record_exact("b", 50)
        ledger.record_exact("a", 120)  # re-measure replaces, not adds
        assert ledger.total_words == 170
        assert ledger.words_of("a") == 120
        assert ledger.drop("b") == 50
        assert ledger.total_words == 120
        assert ledger.resident() == ["a"]

    def test_touch_signals_exact_measure_every_interval(self):
        ledger = MemoryLedger(measure_interval=3)
        assert ledger.touch("a") is True  # first sighting: measure now
        ledger.record_exact("a", 100)
        assert [ledger.touch("a") for _ in range(3)] == [False, False, True]
        ledger.record_exact("a", 130)
        assert ledger.touch("a") is False

    def test_estimates_extrapolate_with_observed_slope(self):
        ledger = MemoryLedger(measure_interval=4)
        ledger.touch("grower")
        ledger.record_exact("grower", 100)
        for _ in range(4):
            ledger.touch("grower")
        ledger.record_exact("grower", 140)  # 10 words/touch observed
        ledger.touch("grower")
        ledger.touch("grower")
        assert ledger.words_of("grower") == 160
        assert ledger.total_words == 160
        assert ledger.exact_words_of("grower") == 140

    def test_eviction_order_is_coldest_first_when_sizes_match(self):
        # Equal sizes degenerate cost-aware ordering to exactly LRU.
        ledger = MemoryLedger()
        for tenant in ("old", "mid", "hot"):
            ledger.record_exact(tenant, 10)
        assert ledger.eviction_order() == ["old", "mid", "hot"]
        ledger.touch("old")  # touching rewarms
        assert ledger.eviction_order() == ["mid", "hot", "old"]
        # The tenant being appended right now must never be evicted for its
        # own append.
        assert ledger.eviction_order(protect="mid") == ["hot", "old"]

    def test_eviction_order_prefers_big_cold_over_small_warm(self):
        # ISSUE tentpole (4): one big cold tenant frees the budget in one
        # eviction where pure LRU would churn through many small tenants.
        ledger = MemoryLedger()
        ledger.record_exact("big-cold", 1000)
        for tenant in ("small-1", "small-2", "small-3"):
            ledger.record_exact(tenant, 10)
        for _ in range(3):  # big-cold goes untouched while the others churn
            for tenant in ("small-1", "small-2", "small-3"):
                ledger.touch(tenant)
        order = ledger.eviction_order(protect="small-3")
        assert order[0] == "big-cold"
        # Pure LRU would have put the oldest small tenant first instead.
        assert ledger.staleness_of("big-cold") > 0


# --------------------------------------------------------------------------- #
# memory accounting satellite
# --------------------------------------------------------------------------- #
class TestMeasureMethodContinual:
    def test_continual_breakdown_reports_banks_and_sketches(self):
        spec = TenantSpec("m", continual=True, stream_size=4096, seed=3)
        summarizer = spec.build_summarizer()
        summarizer.update_batch(np.linspace(0.0, 1.0, 128))
        report = measure_method(summarizer)
        assert report.method == "PrivHPContinual"
        assert report.total_words == summarizer.memory_words()
        assert any(name.startswith("counter_bank_level_") for name in report.components)
        assert any(name.startswith("sketch_level_") for name in report.components)
        assert sum(report.components.values()) == report.total_words

    def test_one_shot_dispatch_unchanged(self):
        spec = TenantSpec("o", stream_size=256, seed=3)
        summarizer = spec.build_summarizer()
        summarizer.update_batch(np.linspace(0.0, 1.0, 128))
        report = measure_method(summarizer)
        assert report.method == "PrivHP"
        assert "tree" in report.components


# --------------------------------------------------------------------------- #
# the service: determinism, isolation, lifecycle
# --------------------------------------------------------------------------- #
class TestIngestService:
    def test_release_matches_in_process_summarizer(self):
        rng = np.random.default_rng(0)
        batches = [rng.random(64) for _ in range(4)]
        spec = TenantSpec("acme", stream_size=256, seed=7)
        with IngestService(workers=3) as service:
            service.register(spec)
            for batch in batches:
                service.append("acme", batch)
            release = service.release("acme")
        assert _release_bytes(release) == _control_release(spec, batches)

    def test_continual_release_matches_in_process(self):
        rng = np.random.default_rng(1)
        batches = [rng.random(32) for _ in range(3)]
        spec = TenantSpec("cont", stream_size=256, seed=5, continual=True)
        with IngestService(workers=2) as service:
            service.register(spec)
            for batch in batches:
                service.append("cont", batch)
            release = service.release("cont")
        assert _release_bytes(release) == _control_release(spec, batches)

    def test_tenants_are_isolated(self):
        specs = [TenantSpec(f"t{i}", stream_size=64, seed=i) for i in range(6)]
        rng = np.random.default_rng(2)
        streams = {spec.tenant_id: [rng.random(16)] for spec in specs}
        with IngestService(specs, workers=3) as service:
            for tenant_id, batches in streams.items():
                for batch in batches:
                    service.append(tenant_id, batch)
            releases = {t: _release_bytes(service.release(t)) for t in streams}
        for spec in specs:
            assert releases[spec.tenant_id] == _control_release(
                spec, streams[spec.tenant_id]
            )

    def test_append_to_unknown_tenant_raises(self):
        with IngestService(workers=1) as service:
            with pytest.raises(KeyError, match="nobody"):
                service.append("nobody", [0.5])

    def test_append_after_release_fails_at_flush(self):
        spec = TenantSpec("done", stream_size=64, seed=1)
        with IngestService(workers=1) as service:
            service.register(spec)
            service.append("done", [0.5])
            service.release("done")
            service.append("done", [0.5])
            with pytest.raises(AppendError) as excinfo:
                service.flush()
            assert excinfo.value.failures[0][0] == "done"

    def test_snapshot_requires_continual(self):
        with IngestService(workers=1) as service:
            service.register(TenantSpec("one", stream_size=64, seed=1))
            service.append("one", [0.5])
            with pytest.raises(ValueError, match="one-shot"):
                service.snapshot("one")

    def test_memory_budget_requires_checkpoint_dir(self):
        with pytest.raises(ValueError, match="checkpoint"):
            IngestService(workers=1, memory_budget_words=1000)

    def test_stats_row_shape(self):
        with IngestService(workers=2) as service:
            service.register(TenantSpec("s", stream_size=64, seed=1))
            service.append("s", [0.25, 0.75])
            stats = service.stats()
        assert stats["tenants"] == 1
        assert stats["items_ingested"] == 2
        assert stats["budget"]["total_epsilon"] == pytest.approx(1.0)

    def test_close_is_idempotent(self):
        service = IngestService(workers=1)
        service.close()
        service.close()


class TestEvictionRoundTrip:
    def test_explicit_evict_restore_is_byte_identical(self, tmp_path):
        rng = np.random.default_rng(3)
        batches = [rng.random(32) for _ in range(4)]
        spec = TenantSpec("evictee", stream_size=256, seed=11, continual=True)
        with IngestService(workers=1, checkpoint_dir=tmp_path) as service:
            service.register(spec)
            service.append("evictee", batches[0])
            service.append("evictee", batches[1])
            assert service.evict("evictee") is True
            assert (tmp_path / "evictee.state.bin").exists()
            service.append("evictee", batches[2])  # transparently restored
            service.append("evictee", batches[3])
            release = service.release("evictee")
            stats = service.stats()
        assert stats["evictions"] == 1
        assert stats["restores"] == 1
        assert _release_bytes(release) == _control_release(spec, batches)

    def test_evict_without_checkpoint_dir_rejected(self):
        with IngestService(workers=1) as service:
            service.register(TenantSpec("t", stream_size=64, seed=1))
            service.append("t", [0.5])
            with pytest.raises(RuntimeError, match="checkpoint"):
                service.evict("t")

    def test_budget_pressure_evicts_cold_tenants(self, tmp_path):
        specs = [
            TenantSpec(f"b{i}", stream_size=64, seed=i, continual=True)
            for i in range(8)
        ]
        rng = np.random.default_rng(4)
        with IngestService(
            specs, workers=1, checkpoint_dir=tmp_path, memory_budget_words=4000
        ) as service:
            for _ in range(2):
                for spec in specs:
                    service.append(spec.tenant_id, rng.random(16))
            stats = service.stats()
            assert stats["evictions"] > 0
            assert stats["memory_words"] <= 4000
            # Evicted tenants live on disk, not in memory.
            assert any(tmp_path.glob("*.state.bin")) or stats["restores"] > 0

    def test_release_of_evicted_tenant_restores_first(self, tmp_path):
        spec = TenantSpec("sleeper", stream_size=64, seed=2)
        batches = [np.linspace(0.1, 0.9, 16)]
        with IngestService(workers=1, checkpoint_dir=tmp_path) as service:
            service.register(spec)
            service.append("sleeper", batches[0])
            service.evict("sleeper")
            release = service.release("sleeper")
            # The consumed checkpoint is removed on release.
            assert not (tmp_path / "sleeper.state.bin").exists()
        assert _release_bytes(release) == _control_release(spec, batches)

    def test_drain_on_close_checkpoints_residents(self, tmp_path):
        spec = TenantSpec("durable", stream_size=64, seed=6, continual=True)
        service = IngestService(workers=1, checkpoint_dir=tmp_path)
        service.register(spec)
        service.append("durable", np.linspace(0.0, 1.0, 16))
        service.close()
        assert (tmp_path / "durable.state.bin").exists()


class TestThousandTenantFleet:
    def test_fleet_under_memory_budget_stays_deterministic(self, tmp_path):
        """ISSUE acceptance: >= 1,000 registered tenants under a bounded
        memory budget (cold tenants evicted to checkpoints) produce, for
        sampled tenants, releases byte-identical to a single in-process
        summarizer run."""
        tenants = 1000
        specs = [
            TenantSpec(
                f"fleet-{i:04d}", stream_size=16, seed=i, continual=(i % 7 == 0)
            )
            for i in range(tenants)
        ]
        rng = np.random.default_rng(5)
        streams = {
            spec.tenant_id: [rng.random(8), rng.random(8)] for spec in specs
        }
        sampled = ["fleet-0000", "fleet-0007", "fleet-0123", "fleet-0999"]
        with IngestService(
            specs,
            workers=4,
            checkpoint_dir=tmp_path,
            memory_budget_words=40_000,
        ) as service:
            assert len(service.tenants()) == tenants
            for round_index in range(2):
                for spec in specs:
                    service.append(
                        spec.tenant_id, streams[spec.tenant_id][round_index]
                    )
            stats = service.stats()
            assert stats["evictions"] > 0, "budget never bit; test is vacuous"
            assert stats["memory_words"] <= 40_000
            assert stats["items_ingested"] == tenants * 16
            releases = {t: _release_bytes(service.release(t)) for t in sampled}
        for tenant_id in sampled:
            spec = specs[int(tenant_id.split("-")[1])]
            assert releases[tenant_id] == _control_release(spec, streams[tenant_id])


# --------------------------------------------------------------------------- #
# append coalescing: staging buffers, drains, and the determinism contract
# --------------------------------------------------------------------------- #
class TestCoalescedAppends:
    @pytest.mark.parametrize(
        ("workers", "staging_items", "flush_interval"),
        [
            (1, 1, None),  # every append ships alone, no timer
            (2, 2048, None),  # everything stages until a sync point
            (4, 4, 0.001),  # aggressive timer races the appenders
            (3, 2048, 0.05),  # the defaults
        ],
    )
    def test_releases_byte_identical_across_coalescing_shapes(
        self, workers, staging_items, flush_interval
    ):
        """The determinism oracle must hold for every coalescing shape:
        whether appends ship one-by-one, as timer-shipped partials, or as
        one giant staged buffer, each tenant's release equals the
        in-process control byte for byte."""
        specs = [
            TenantSpec(f"c{i}", stream_size=256, seed=i, continual=(i % 2 == 0))
            for i in range(6)
        ]
        rng = np.random.default_rng(21)
        streams = {
            spec.tenant_id: [rng.random(n) for n in (16, 1, 33, 7)] for spec in specs
        }
        with IngestService(
            specs,
            workers=workers,
            staging_items=staging_items,
            flush_interval=flush_interval,
        ) as service:
            for round_index in range(4):
                for spec in specs:
                    service.append(
                        spec.tenant_id, streams[spec.tenant_id][round_index]
                    )
            releases = {
                spec.tenant_id: _release_bytes(service.release(spec.tenant_id))
                for spec in specs
            }
        for spec in specs:
            assert releases[spec.tenant_id] == _control_release(
                spec, streams[spec.tenant_id]
            )

    def test_flush_observes_staged_but_unshipped_buffers(self):
        """With huge staging bounds and no flush timer, appends sit in the
        staging buffers; ``flush`` must ship and settle every one of them."""
        spec = TenantSpec("staged", stream_size=64, seed=3)
        with IngestService(
            [spec], workers=2, staging_items=10_000, flush_interval=None
        ) as service:
            for _ in range(5):
                service.append("staged", np.linspace(0.0, 1.0, 8))
            stats = service.flush()
            assert stats["items_ingested"] == 40
            assert service.items_processed("staged") == 40

    def test_appends_block_on_tiny_queue_without_loss_or_reorder(self):
        """Backpressure contract: a queue_size-1 inbox with per-append
        shipping and many concurrent appenders may block, but must never
        drop or reorder a tenant's batches (the releases stay byte-identical
        to the in-process control)."""
        specs = [TenantSpec(f"q{i}", stream_size=256, seed=40 + i) for i in range(4)]
        rng = np.random.default_rng(22)
        streams = {
            spec.tenant_id: [rng.random(4) for _ in range(24)] for spec in specs
        }
        errors = []

        def appender(spec):
            try:
                for batch in streams[spec.tenant_id]:
                    service.append(spec.tenant_id, batch)
            except BaseException as error:  # pragma: no cover - failure path
                errors.append(error)

        with IngestService(
            specs,
            workers=2,
            queue_size=1,
            staging_items=1,
            flush_interval=None,
        ) as service:
            threads = [
                threading.Thread(target=appender, args=(spec,)) for spec in specs
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors
            stats = service.flush()
            assert stats["items_ingested"] == 4 * 24 * 4
            releases = {
                spec.tenant_id: _release_bytes(service.release(spec.tenant_id))
                for spec in specs
            }
        for spec in specs:
            assert releases[spec.tenant_id] == _control_release(
                spec, streams[spec.tenant_id]
            )

    def test_rate_limiter_is_exact_under_concurrent_callers(self):
        """Concurrent throttle calls must never lose a consumed token: the
        total admitted without wait can exceed the burst by at most the
        refill that elapsed, and the final bucket reflects every item."""
        limiter = RateLimiter(rate=1e-6, burst=1000)  # effectively no refill
        free = []

        def consume():
            for _ in range(100):
                if limiter.throttle("shared", 1) == 0.0:
                    free.append(1)

        threads = [threading.Thread(target=consume) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # 800 items consumed against a burst of 1000 and ~zero refill:
        # every one was admitted free, and the bucket saw all of them.
        tokens, _ = limiter._buckets["shared"]
        assert len(free) == 800
        assert tokens == pytest.approx(200.0, abs=1e-3)

    def test_reply_timeout_is_validated_and_plumbed(self):
        with pytest.raises(ValueError, match="reply_timeout"):
            IngestService(workers=1, reply_timeout=0.0)
        with IngestService(workers=2, reply_timeout=5.0) as service:
            assert service.reply_timeout == 5.0
            assert all(worker.reply_timeout == 5.0 for worker in service._workers)


# --------------------------------------------------------------------------- #
# amortized accounting tolerance
# --------------------------------------------------------------------------- #
class TestAmortizedAccountingTolerance:
    def test_estimates_stay_within_tolerance_of_exact(self):
        """The ledger extrapolates between exact measures; ``audit_memory``
        compares every live estimate against a fresh exact walk.  Continual
        banks grow by a near-constant number of words per event, so the
        slope model must keep each estimate within half of (and 256 words
        of) the true count even with a long measure interval."""
        specs = [
            TenantSpec(f"a{i}", stream_size=512, seed=i, continual=True)
            for i in range(4)
        ]
        rng = np.random.default_rng(23)
        with IngestService(specs, workers=2, measure_interval=8) as service:
            for _ in range(20):
                for spec in specs:
                    service.append(spec.tenant_id, rng.random(8))
            rows = service.audit_memory()
        assert {row[0] for row in rows} == {spec.tenant_id for spec in specs}
        for tenant_id, estimated, exact in rows:
            assert abs(estimated - exact) <= max(256, 0.5 * exact), tenant_id


# --------------------------------------------------------------------------- #
# update_segments: the fused multi-batch application
# --------------------------------------------------------------------------- #
class TestUpdateSegments:
    SEGMENTS = [16, 0, 7, 33, 1, 0, 64]

    @pytest.mark.parametrize("continual", [False, True])
    def test_byte_identical_to_sequential_batches(self, continual):
        segments = [
            np.random.default_rng(31).random(n) for n in self.SEGMENTS
        ]
        spec = TenantSpec(
            "seg", stream_size=256, seed=9, continual=continual
        )
        fused = spec.build_summarizer()
        domain = spec.make_domain()
        stream = domain.coerce_stream(np.concatenate(segments))
        fused.update_segments(stream, self.SEGMENTS)
        assert _release_bytes(fused.release()) == _control_release(spec, segments)

    def test_large_segments_take_the_vectorised_path(self):
        """Segments above the small-segment pivot run the per-level numpy
        aggregation; same oracle, different code path."""
        sizes = [600, 0, 1024, 13]
        segments = [np.random.default_rng(32).random(n) for n in sizes]
        spec = TenantSpec("bigseg", stream_size=256, seed=10)
        fused = spec.build_summarizer()
        domain = spec.make_domain()
        fused.update_segments(domain.coerce_stream(np.concatenate(segments)), sizes)
        assert _release_bytes(fused.release()) == _control_release(spec, segments)

    @pytest.mark.parametrize("continual", [False, True])
    def test_segment_length_validation(self, continual):
        spec = TenantSpec("bad", stream_size=64, seed=1, continual=continual)
        summarizer = spec.build_summarizer()
        points = spec.make_domain().coerce_stream(np.linspace(0.0, 1.0, 8))
        with pytest.raises(ValueError, match="non-negative"):
            summarizer.update_segments(points, [9, -1])
        with pytest.raises(ValueError, match="sum to"):
            summarizer.update_segments(points, [4, 3])


# --------------------------------------------------------------------------- #
# asynchronous checkpoint writer
# --------------------------------------------------------------------------- #
class TestCheckpointWriter:
    @staticmethod
    def _summarizer(seed: int, items: int = 16):
        spec = TenantSpec("w", stream_size=64, seed=seed)
        summarizer = spec.build_summarizer()
        domain = spec.make_domain()
        summarizer.update_batch(domain.coerce_stream(np.linspace(0.0, 1.0, items)))
        return summarizer

    def test_write_lands_and_round_trips(self, tmp_path):
        from repro.io import CheckpointWriter
        from repro.io.serialization import load_checkpoint

        summarizer = self._summarizer(seed=1)
        expected = _release_bytes(self._summarizer(seed=1).release())
        writer = CheckpointWriter()
        try:
            path = tmp_path / "w.state.bin"
            writer.submit("w", summarizer, path, format="binary")
            assert writer.wait_for("w", timeout=30.0)
            assert path.exists()
            assert _release_bytes(load_checkpoint(path).release()) == expected
            assert writer.pop_errors() == []
        finally:
            writer.close()

    def test_resubmits_coalesce_to_the_newest_state(self, tmp_path):
        """Rapid resubmits of one stem supersede in place: every ticket is
        accounted for as a write or a skip, and the file that lands is
        loadable (write coalescing, not write loss)."""
        from repro.io import CheckpointWriter
        from repro.io.serialization import load_checkpoint

        writer = CheckpointWriter()
        try:
            path = tmp_path / "w.state.bin"
            versions = 10
            for index in range(versions):
                writer.submit("w", self._summarizer(seed=2, items=8 + index), path,
                              format="binary")
            assert writer.drain(timeout=30.0)
            assert writer.writes + writer.skipped_writes == versions
            assert writer.writes >= 1
            restored = load_checkpoint(path)
            assert restored.items_processed in range(8, 8 + versions)
        finally:
            writer.close()

    def test_take_back_returns_pending_state_without_disk(self, tmp_path):
        from repro.io import CheckpointWriter

        writer = CheckpointWriter()
        try:
            summarizer = self._summarizer(seed=3)
            writer.submit("w", summarizer, tmp_path / "w.state.bin", format="binary")
            reclaimed = writer.take_back("w", timeout=30.0)
            # Either reclaimed before the write started (identity preserved)
            # or the write already finished and take_back found nothing.
            assert reclaimed is summarizer or reclaimed is None
            assert writer.pop_errors() == []
        finally:
            writer.close()

    def test_errors_are_reported_not_raised(self, tmp_path):
        from repro.io import CheckpointWriter

        writer = CheckpointWriter()
        try:
            missing = tmp_path / "not" / "a" / "dir" / "w.state.bin"
            writer.submit("w", self._summarizer(seed=4), missing, format="binary")
            writer.drain(timeout=30.0)
            errors = writer.pop_errors()
            assert len(errors) == 1 and errors[0][0] == "w"
        finally:
            writer.close()

    def test_close_is_idempotent(self):
        from repro.io import CheckpointWriter

        writer = CheckpointWriter()
        writer.close()
        writer.close()


# --------------------------------------------------------------------------- #
# live serving over HTTP
# --------------------------------------------------------------------------- #
@contextlib.contextmanager
def _running_server(store: ReleaseStore):
    server = create_server(store, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{server.server_port}"
    finally:
        server.shutdown()
        server.server_close()


def _post(url: str, payload: dict):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as response:
        return json.loads(response.read())


class TestLiveServing:
    def test_tenant_is_queryable_once_it_has_data(self):
        store = ReleaseStore()
        spec = TenantSpec("live", stream_size=512, seed=8, continual=True)
        with IngestService(workers=1, store=store) as service:
            service.register(spec)
            assert not store.is_live("live")  # no data yet
            service.append("live", np.linspace(0.0, 1.0, 64))
            service.flush()
            assert store.is_live("live")
            with _running_server(store) as url:
                answer = _post(
                    url + "/query",
                    {"release": "live", "query": {"type": "mass", "lower": 0.0, "upper": 1.0}},
                )
                assert answer["answer"] == pytest.approx(1.0)
                assert answer["items_processed"] == 64

    def test_unregister_live_yields_404(self):
        store = ReleaseStore()
        spec = TenantSpec("gone", stream_size=256, seed=9, continual=True)
        with IngestService(workers=1, store=store) as service:
            service.register(spec)
            service.append("gone", np.linspace(0.0, 1.0, 32))
            service.flush()
            with _running_server(store) as url:
                _post(
                    url + "/query",
                    {"release": "gone", "query": {"type": "mass", "lower": 0.0, "upper": 0.5}},
                )
                assert store.unregister_live("gone") is True
                assert store.unregister_live("gone") is False  # idempotent
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    _post(
                        url + "/query",
                        {"release": "gone", "query": {"type": "mass", "lower": 0.0, "upper": 0.5}},
                    )
                assert excinfo.value.code == 404

    def test_eviction_unregisters_release_republishes_static(self, tmp_path):
        store = ReleaseStore()
        spec = TenantSpec("cycle", stream_size=256, seed=10, continual=True)
        with IngestService(workers=1, checkpoint_dir=tmp_path, store=store) as service:
            service.register(spec)
            service.append("cycle", np.linspace(0.0, 1.0, 32))
            service.flush()
            assert store.is_live("cycle")
            service.evict("cycle")
            assert not store.is_live("cycle")  # dead summarizer must 404
            service.append("cycle", np.linspace(0.0, 1.0, 32))
            service.flush()
            assert store.is_live("cycle")  # restored and re-announced
            service.release("cycle")
            assert not store.is_live("cycle")
            assert "cycle" in store  # static release remains queryable
            assert store.get("cycle").items_processed == 64

    def test_close_unregisters_all_live_tenants(self):
        store = ReleaseStore()
        service = IngestService(workers=2, store=store)
        for i in range(4):
            service.register(
                TenantSpec(f"c{i}", stream_size=128, seed=i, continual=True)
            )
            service.append(f"c{i}", np.linspace(0.0, 1.0, 16))
        service.flush()
        assert sum(store.is_live(f"c{i}") for i in range(4)) == 4
        service.close()
        assert sum(store.is_live(f"c{i}") for i in range(4)) == 0


class TestConcurrentIngestAndServe:
    def test_threads_append_disjoint_tenants_while_http_queries_run(self):
        """ISSUE satellite: N threads appending to disjoint tenants while
        HTTP queries hit the live snapshots; every answer is well-formed
        and every tenant's final release is deterministic."""
        n_threads = 4
        batches_per_tenant = 6
        store = ReleaseStore()
        specs = [
            TenantSpec(f"conc-{i}", stream_size=1024, seed=20 + i, continual=True)
            for i in range(n_threads)
        ]
        streams = {
            spec.tenant_id: [
                np.random.default_rng(100 + 10 * i + j).random(32)
                for j in range(batches_per_tenant)
            ]
            for i, spec in enumerate(specs)
        }
        errors: list[BaseException] = []
        with IngestService(specs, workers=n_threads, store=store) as service:
            # Seed every tenant so all are live before queries start.
            for spec in specs:
                service.append(spec.tenant_id, streams[spec.tenant_id][0])
            service.flush()

            def ingest(tenant_id: str) -> None:
                try:
                    for batch in streams[tenant_id][1:]:
                        service.append(tenant_id, batch)
                except BaseException as error:  # pragma: no cover - fail loud
                    errors.append(error)

            with _running_server(store) as url:
                threads = [
                    threading.Thread(target=ingest, args=(spec.tenant_id,))
                    for spec in specs
                ]
                for thread in threads:
                    thread.start()
                answers = []
                for _ in range(20):
                    for spec in specs:
                        answers.append(
                            _post(
                                url + "/query",
                                {
                                    "release": spec.tenant_id,
                                    "query": {"type": "mass", "lower": 0.0, "upper": 1.0},
                                },
                            )
                        )
                for thread in threads:
                    thread.join()
            assert not errors
            for answer in answers:
                assert answer["answer"] == pytest.approx(1.0)
            releases = {
                spec.tenant_id: _release_bytes(service.release(spec.tenant_id))
                for spec in specs
            }
        for spec in specs:
            assert releases[spec.tenant_id] == _control_release(
                spec, streams[spec.tenant_id]
            )


# --------------------------------------------------------------------------- #
# intake: files, spool directory, rate limiting
# --------------------------------------------------------------------------- #
class TestIntake:
    def test_jsonl_records(self, tmp_path):
        path = tmp_path / "in.jsonl"
        path.write_text(
            '{"tenant": "a", "values": [0.1, 0.2]}\n'
            '{"tenant": "b", "value": 0.5}\n'
        )
        records = [(t, list(np.asarray(v))) for t, v in iter_append_records(path)]
        assert records == [("a", [0.1, 0.2]), ("b", [0.5])]

    def test_csv_coalesces_consecutive_tenant_rows(self, tmp_path):
        path = tmp_path / "in.csv"
        path.write_text("a,0.1\na,0.2\nb,0.3\na,0.4\n")
        records = [(t, len(np.asarray(v))) for t, v in iter_append_records(path)]
        assert records == [("a", 2), ("b", 1), ("a", 1)]

    def test_malformed_line_names_file_and_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"tenant": "a", "values": [0.1]}\nnot json\n')
        with pytest.raises(ValueError, match=r"bad\.jsonl:2"):
            list(iter_append_records(path))

    def test_unknown_extension_rejected(self, tmp_path):
        path = tmp_path / "in.parquet"
        path.write_text("")
        with pytest.raises(ValueError, match="parquet"):
            list(iter_append_records(path))

    def test_ingest_file_counts(self, tmp_path):
        path = tmp_path / "in.jsonl"
        path.write_text('{"tenant": "a", "values": [0.1, 0.2, 0.3]}\n')
        with IngestService(workers=1) as service:
            service.register(TenantSpec("a", stream_size=64, seed=1))
            counts = ingest_file(service, path)
            assert counts == {"batches": 1, "items": 3}
            service.flush()  # appends are asynchronous until a flush barrier
            assert service.items_processed("a") == 3

    def test_watch_directory_once_renames_done(self, tmp_path):
        (tmp_path / "b.jsonl").write_text('{"tenant": "a", "values": [0.2]}\n')
        (tmp_path / "a.jsonl").write_text('{"tenant": "a", "values": [0.1]}\n')
        (tmp_path / "ignored.txt").write_text("not intake")
        seen = []
        with IngestService(workers=1) as service:
            service.register(TenantSpec("a", stream_size=64, seed=1))
            totals = watch_directory(
                service, tmp_path, once=True, on_file=lambda p, c: seen.append(p.name)
            )
        assert totals == {"files": 2, "batches": 2, "items": 2}
        assert seen == ["a.jsonl", "b.jsonl"]  # sorted order
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["a.jsonl.done", "b.jsonl.done", "ignored.txt"]

    def test_rate_limiter_with_fake_clock(self):
        now = [0.0]
        limiter = RateLimiter(rate=100.0, burst=50, clock=lambda: now[0])
        assert limiter.throttle("a", 50) == 0.0  # burst absorbs
        assert limiter.throttle("a", 25) == pytest.approx(0.25)
        assert limiter.throttle("b", 25) == 0.0  # independent bucket
        now[0] += 1.0  # refill clears the deficit and recaps at the burst
        assert limiter.throttle("a", 50) == 0.0
        assert limiter.throttle("a", 25) == pytest.approx(0.25)
        slept = []
        delay = limiter.wait("a", 100, sleep=slept.append)
        assert delay > 0 and slept == [delay]

    def test_rate_limiter_validation(self):
        with pytest.raises(ValueError):
            RateLimiter(rate=0.0)
        with pytest.raises(ValueError):
            RateLimiter(rate=10.0, burst=0)


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #
class TestIngestCLI:
    def _write_fleet(self, tmp_path, tenants=4):
        spec_dir = tmp_path / "specs"
        spec_dir.mkdir()
        document = {
            "tenants": [
                {
                    "tenant_id": f"t{i}",
                    "stream_size": 64,
                    "seed": i,
                    "continual": i % 2 == 0,
                }
                for i in range(tenants)
            ]
        }
        (spec_dir / "fleet.json").write_text(json.dumps(document))
        intake = tmp_path / "day.jsonl"
        rng = np.random.default_rng(6)
        with intake.open("w") as handle:
            for i in range(tenants):
                handle.write(
                    json.dumps({"tenant": f"t{i}", "values": rng.random(8).tolist()})
                    + "\n"
                )
        return spec_dir, intake

    def test_ingest_release_dir(self, tmp_path, capsys):
        from repro.cli import main

        spec_dir, intake = self._write_fleet(tmp_path)
        out_dir = tmp_path / "releases"
        code = main(
            [
                "ingest",
                "--specs", str(spec_dir),
                "--append", str(intake),
                "--workers", "2",
                "--release-dir", str(out_dir),
            ]
        )
        assert code == 0
        assert sorted(p.stem for p in out_dir.glob("*.json")) == [
            "t0", "t1", "t2", "t3",
        ]
        output = capsys.readouterr().out
        assert "released 4 tenant(s)" in output

    def test_ingest_accepts_coalescing_flags(self, tmp_path, capsys):
        from repro.cli import main

        spec_dir, intake = self._write_fleet(tmp_path)
        out_dir = tmp_path / "releases"
        code = main(
            [
                "ingest",
                "--specs", str(spec_dir),
                "--append", str(intake),
                "--workers", "2",
                "--flush-interval", "0",  # 0 disables the background flusher
                "--staging-items", "1",
                "--staging-bytes", "65536",
                "--reply-timeout", "30",
                "--release-dir", str(out_dir),
            ]
        )
        assert code == 0
        assert sorted(p.stem for p in out_dir.glob("*.json")) == [
            "t0", "t1", "t2", "t3",
        ]
        assert "released 4 tenant(s)" in capsys.readouterr().out

    def test_ingest_snapshot_single_tenant(self, tmp_path):
        from repro.api.release import Release
        from repro.cli import main

        spec_dir, intake = self._write_fleet(tmp_path)
        out = tmp_path / "snap.json"
        code = main(
            [
                "ingest",
                "--specs", str(spec_dir),
                "--append", str(intake),
                "--snapshot", "t0",
                "--output", str(out),
            ]
        )
        assert code == 0
        assert Release.load(out).items_processed == 8

    def test_ingest_with_memory_budget_and_watch_once(self, tmp_path, capsys):
        from repro.cli import main

        spec_dir, intake = self._write_fleet(tmp_path)
        spool = tmp_path / "spool"
        spool.mkdir()
        intake.rename(spool / intake.name)
        code = main(
            [
                "ingest",
                "--specs", str(spec_dir),
                "--watch", str(spool),
                "--once",
                "--checkpoint-dir", str(tmp_path / "ckpt"),
                "--memory-budget-words", "2000",
            ]
        )
        assert code == 0
        assert (spool / "day.jsonl.done").exists()
        assert "ingested 32 item(s)" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "argv",
        [
            ["ingest", "--specs", "{tmp}", "--burst", "5"],
            ["ingest", "--specs", "{tmp}", "--once"],
            ["ingest", "--specs", "{tmp}", "--snapshot", "t0"],
            ["ingest", "--specs", "{tmp}", "--snapshot", "t0", "--release", "t0",
             "--output", "x.json"],
        ],
    )
    def test_flag_conflicts_exit_2(self, tmp_path, argv):
        from repro.cli import main

        spec_dir, _intake = self._write_fleet(tmp_path)
        argv = [a.replace("{tmp}", str(spec_dir)) for a in argv]
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2

    def test_empty_spec_dir_exits_2(self, tmp_path):
        from repro.cli import main

        empty = tmp_path / "none"
        empty.mkdir()
        with pytest.raises(SystemExit) as excinfo:
            main(["ingest", "--specs", str(empty)])
        assert excinfo.value.code == 2
