"""Tests for the PMM baseline."""

import numpy as np
import pytest

from repro.baselines.pmm import PMMMethod, build_exact_tree
from repro.metrics.wasserstein import wasserstein1_1d


class TestBuildExactTree:
    def test_counts_are_exact_path_counts(self, interval):
        data = [0.1, 0.2, 0.8]
        tree = build_exact_tree(data, interval, depth=2)
        assert tree.count(()) == 3
        assert tree.count((0,)) == 2
        assert tree.count((1,)) == 1
        assert tree.is_consistent()

    def test_complete_structure(self, interval, rng):
        tree = build_exact_tree(rng.random(50), interval, depth=4)
        assert len(tree) == 2**5 - 1


class TestPMMMethod:
    def test_fit_returns_sampler_in_domain(self, interval, rng):
        method = PMMMethod(interval, epsilon=1.0, max_depth=8)
        sampler = method.fit(rng.random(300), rng=0)
        samples = sampler.sample(200)
        assert np.all((samples >= 0) & (samples <= 1))

    def test_memory_matches_full_tree(self, interval, rng):
        method = PMMMethod(interval, epsilon=1.0, max_depth=8)
        method.fit(rng.random(300), rng=0)
        depth = method._resolve_depth(300)
        assert method.memory_words() == 2 * (2 ** (depth + 1) - 1)

    def test_memory_zero_before_fit(self, interval):
        assert PMMMethod(interval, epsilon=1.0).memory_words() == 0

    def test_depth_scales_with_epsilon_n(self, interval):
        method = PMMMethod(interval, epsilon=1.0, max_depth=30)
        assert method._resolve_depth(1024) == 10
        assert method._resolve_depth(4096) == 12

    def test_depth_capped(self, interval):
        method = PMMMethod(interval, epsilon=1.0, max_depth=6)
        assert method._resolve_depth(10**6) == 6

    def test_high_budget_low_error(self, interval, rng):
        data = rng.beta(2, 6, size=2000)
        method = PMMMethod(interval, epsilon=500.0, max_depth=12)
        sampler = method.fit(data, rng=0)
        assert wasserstein1_1d(data, sampler.sample(2000)) < 0.02

    def test_tree_is_consistent_after_fit(self, interval, rng):
        method = PMMMethod(interval, epsilon=1.0, max_depth=8)
        method.fit(rng.random(200), rng=0)
        assert method._tree.is_consistent()

    def test_uniform_allocation_supported(self, interval, rng):
        method = PMMMethod(interval, epsilon=1.0, max_depth=8, budget_allocation="uniform")
        sampler = method.fit(rng.random(200), rng=0)
        assert sampler.total_mass >= 0

    def test_works_on_hypercube(self, square, rng):
        method = PMMMethod(square, epsilon=2.0, max_depth=8)
        sampler = method.fit(rng.random((300, 2)), rng=0)
        assert sampler.sample(50).shape == (50, 2)

    def test_invalid_parameters(self, interval):
        with pytest.raises(ValueError):
            PMMMethod(interval, epsilon=0.0)
        with pytest.raises(ValueError):
            PMMMethod(interval, epsilon=1.0, budget_allocation="bad")
        with pytest.raises(ValueError):
            PMMMethod(interval, epsilon=1.0, max_depth=0)

    def test_empty_data_rejected(self, interval):
        with pytest.raises(ValueError):
            PMMMethod(interval, epsilon=1.0).fit([], rng=0)
