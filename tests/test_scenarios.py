"""Tests for the time-varying scenario engine and its matrix integration.

The contracts pinned here are the ones the nightly drift-grid CI relies on:

* scenario streams are byte-identical for any worker count, batch split or
  consumption order (per-epoch SeedSequence spawning);
* ``sample`` equals the concatenation of ``sample_epochs`` exactly;
* malformed scenario specs fail with clean errors naming the bad field;
* size-0 requests return empty arrays across every generator (static and
  scenario) instead of crashing;
* matrix cells over scenario generators record per-epoch error trajectories
  (full for continual methods, horizon-only for one-shot ones) and the
  per-epoch accuracy gate sees them;
* multi-tenant scenario records flow through the ingestion intake format.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.experiments.runner import (
    MatrixSpec,
    aggregate_records,
    check_epoch_ordering,
    run_matrix,
)
from repro.stream.generators import (
    SCENARIO_GENERATOR_NAMES,
    available_generators,
    make_stream,
)
from repro.stream.scenarios import (
    Scenario,
    ScenarioSpecError,
    generate_epochs,
    load_scenario,
    multi_tenant_records,
    scenario_from_dict,
)

DRIFT_SPEC = {
    "type": "drift",
    "epochs": 4,
    "start": {"name": "zipf", "params": {"exponent": 0.5}},
    "end": {"name": "zipf", "params": {"exponent": 2.5}},
}

MIXTURE_SPEC = {
    "type": "mixture_shift",
    "epochs": 3,
    "components": ["uniform", {"name": "sparse_cluster", "params": {"num_clusters": 2}}],
    "start_weights": [1.0, 0.0],
    "end_weights": [0.0, 1.0],
}

FLASH_SPEC = {
    "type": "flash_crowd",
    "base": "uniform",
    "epochs": 6,
    "burst_start": 2,
    "burst_epochs": 2,
    "burst_scale": 2.0,
}


class TestScenarioSampling:
    def test_registered_in_available_generators(self):
        names = set(available_generators())
        assert SCENARIO_GENERATOR_NAMES <= names
        assert {"uniform", "zipf", "beta", "gaussian_mixture", "sparse_cluster"} <= names

    def test_sample_equals_concatenated_epochs(self):
        scenario = scenario_from_dict(DRIFT_SPEC)
        whole = scenario.sample(257, rng=42)
        parts = scenario.sample_epochs(257, rng=42)
        np.testing.assert_array_equal(whole, np.concatenate(parts))

    def test_same_seed_is_byte_identical(self):
        scenario = scenario_from_dict(MIXTURE_SPEC)
        np.testing.assert_array_equal(
            scenario.sample(300, rng=7), scenario.sample(300, rng=7)
        )
        assert not np.array_equal(scenario.sample(300, rng=7), scenario.sample(300, rng=8))

    def test_make_stream_matches_engine_output(self):
        via_registry = make_stream("drift", 200, rng=3, **{
            "epochs": DRIFT_SPEC["epochs"],
            "start": DRIFT_SPEC["start"],
            "end": DRIFT_SPEC["end"],
        })
        direct = scenario_from_dict(DRIFT_SPEC).sample(200, rng=3)
        np.testing.assert_array_equal(via_registry, direct)

    def test_generate_epochs_matches_make_stream(self):
        params = {"epochs": 4, "start": DRIFT_SPEC["start"], "end": DRIFT_SPEC["end"]}
        epochs = generate_epochs("drift", 150, rng=5, **params)
        assert len(epochs) == 4
        np.testing.assert_array_equal(
            np.concatenate(epochs), make_stream("drift", 150, rng=5, **params)
        )

    def test_multidimensional_points(self):
        stream = scenario_from_dict(MIXTURE_SPEC).sample(90, dimension=2, rng=0)
        assert stream.shape == (90, 2)
        assert np.all((stream >= 0) & (stream <= 1))

    def test_epoch_sizes_follow_weights(self):
        scenario = scenario_from_dict(FLASH_SPEC)
        sizes = scenario.epoch_sizes(80)
        assert sizes == [10, 10, 20, 20, 10, 10]
        assert sum(scenario.epoch_sizes(83)) == 83

    def test_diurnal_weights_cycle(self):
        scenario = scenario_from_dict({
            "type": "diurnal", "base": "uniform", "epochs": 8,
            "period": 8, "rate_amplitude": 0.5,
        })
        weights = [epoch.weight for epoch in scenario.epochs]
        assert max(weights) > 1.4 and min(weights) < 0.6
        assert scenario.sample(100, rng=0).shape == (100,)

    def test_schedule_switches_generators_at_boundaries(self):
        scenario = scenario_from_dict({
            "type": "schedule", "num_epochs": 4,
            "epochs": [
                {"at": 0, "generator": "uniform"},
                {"at": 2, "generator": {"name": "sparse_cluster",
                                        "params": {"num_clusters": 1}}},
            ],
        })
        assert [e.components[0].generator for e in scenario.epochs] == [
            "uniform", "uniform", "sparse_cluster", "sparse_cluster",
        ]

    def test_compose_sequence_and_overlay(self):
        sequence = scenario_from_dict({
            "type": "compose", "mode": "sequence",
            "parts": [DRIFT_SPEC, FLASH_SPEC],
        })
        assert sequence.num_epochs == 4 + 6
        overlay = scenario_from_dict({
            "type": "compose", "mode": "overlay",
            "parts": [
                {"type": "diurnal", "base": "uniform", "epochs": 6},
                FLASH_SPEC,
            ],
        })
        assert overlay.num_epochs == 6
        assert overlay.sample(120, rng=1).shape == (120,)

    def test_load_scenario_round_trips_through_file(self, tmp_path):
        path = tmp_path / "drift.json"
        path.write_text(json.dumps({**DRIFT_SPEC, "label": "named", "size": 64}))
        scenario = load_scenario(path)
        assert scenario.label == "named"
        assert scenario.default_size == 64
        np.testing.assert_array_equal(
            scenario.sample(64, rng=0), scenario_from_dict(DRIFT_SPEC).sample(64, rng=0)
        )


class TestSizeZero:
    """Every generator must return an empty array for size=0, not crash."""

    @pytest.mark.parametrize("name", sorted(
        set(available_generators()) - SCENARIO_GENERATOR_NAMES
    ))
    def test_static_generators(self, name):
        assert make_stream(name, 0, rng=0).shape == (0,)

    @pytest.mark.parametrize("name,params", [
        ("drift", {"epochs": 3, "start": DRIFT_SPEC["start"], "end": DRIFT_SPEC["end"]}),
        ("mixture_shift", {k: v for k, v in MIXTURE_SPEC.items() if k != "type"}),
        ("diurnal", {"base": "uniform", "epochs": 4}),
        ("flash_crowd", {k: v for k, v in FLASH_SPEC.items() if k != "type"}),
        ("scenario", {"spec": DRIFT_SPEC}),
    ])
    def test_scenario_generators(self, name, params):
        assert make_stream(name, 0, rng=0, **params).shape == (0,)
        epochs = generate_epochs(name, 0, rng=0, **params)
        assert all(epoch.shape == (0,) for epoch in epochs)

    def test_size_zero_multidimensional(self):
        assert make_stream("uniform", 0, dimension=3, rng=0).shape == (0, 3)
        assert scenario_from_dict(MIXTURE_SPEC).sample(0, dimension=2, rng=0).shape == (0, 2)


class TestSpecValidation:
    @pytest.mark.parametrize("spec,needle", [
        ({"type": "driftt"}, "unknown primitive 'driftt'"),
        ({"epochs": 2}, "missing its 'type'"),
        ({"type": "drift", "epochs": -2, "start": "zipf", "end": "zipf"},
         "'epochs' must be an integer >= 1, got -2"),
        ({"type": "drift", "epochs": 2, "start": "zipf", "end": "uniform"},
         "'start' names 'zipf' and 'end' names 'uniform'"),
        ({"type": "drift", "epochs": 2, "start": "zipf", "end": "zipf", "bogus": 1},
         "unknown field"),
        ({"type": "drift", "epochs": 2, "start": "drift", "end": "drift"},
         "unknown generator 'drift'"),
        ({"type": "mixture_shift", "epochs": 2, "components": ["uniform"],
          "start_weights": [-1.0], "end_weights": [1.0]}, "start_weights"),
        ({"type": "mixture_shift", "epochs": 2, "components": ["uniform"],
          "start_weights": [1.0, 2.0], "end_weights": [1.0]},
         "one weight per component"),
        ({"type": "diurnal", "base": "uniform", "epochs": 4, "rate_amplitude": 1.5},
         "rate_amplitude"),
        ({"type": "diurnal", "base": "uniform", "epochs": 4, "param_amplitude": 0.5},
         "needs 'param'"),
        ({"type": "flash_crowd", "base": "uniform", "epochs": 4,
          "burst_start": 5, "burst_epochs": 1}, "burst_start"),
        ({"type": "flash_crowd", "base": "uniform", "epochs": 4,
          "burst_start": 2, "burst_epochs": 5}, "runs past the last epoch"),
        ({"type": "flash_crowd", "base": "uniform", "epochs": 4,
          "burst_start": 1, "burst_epochs": 1, "burst_scale": 0.5}, "burst_scale"),
        ({"type": "schedule", "num_epochs": 4, "epochs": [
            {"at": 1, "generator": "uniform"}]}, "must start at 'at' 0"),
        ({"type": "schedule", "num_epochs": 4, "epochs": [
            {"at": 0, "generator": "uniform"},
            {"at": 2, "generator": "zipf"},
            {"at": 1, "generator": "beta"}]}, "non-monotone"),
        ({"type": "compose", "mode": "sideways", "parts": [DRIFT_SPEC]}, "mode"),
        ({"type": "compose", "mode": "overlay",
          "parts": [DRIFT_SPEC, FLASH_SPEC]}, "same number"),
        ({"type": "compose", "mode": "sequence",
          "parts": [{**DRIFT_SPEC, "size": 10}]}, "only valid on the top-level"),
    ])
    def test_bad_specs_name_the_field(self, spec, needle):
        with pytest.raises(ScenarioSpecError, match=needle):
            scenario_from_dict(spec)

    def test_spec_errors_are_value_errors(self):
        with pytest.raises(ValueError):
            scenario_from_dict({"type": "nope"})

    def test_negative_sample_size_rejected(self):
        with pytest.raises(ScenarioSpecError, match="non-negative"):
            scenario_from_dict(DRIFT_SPEC).sample(-1, rng=0)

    def test_scenario_generator_requires_spec_param(self):
        with pytest.raises(ScenarioSpecError, match="'spec'"):
            make_stream("scenario", 10, rng=0)

    def test_empty_scenario_rejected(self):
        with pytest.raises(ScenarioSpecError, match="at least one epoch"):
            Scenario(())


class TestMatrixTrajectories:
    def drift_grid(self, **overrides) -> MatrixSpec:
        base = dict(
            name="drift-grid",
            methods=("nonprivate", "privhp-continual"),
            domains=("interval",),
            generators=({
                "name": "drift",
                "label": "drift-zipf",
                "params": DRIFT_SPEC | {},
            },),
            epsilons=(1.0,),
            stream_sizes=(384,),
            trials=2,
            base_seed=11,
        )
        # MatrixSpec generator params must not carry the 'type' key (the
        # generator name already selects the primitive).
        base["generators"][0]["params"] = {
            k: v for k, v in DRIFT_SPEC.items() if k != "type"
        }
        base.update(overrides)
        return MatrixSpec(**base)

    def test_records_carry_trajectories(self):
        outcome = run_matrix(self.drift_grid(), workers=1)
        by_method = {}
        for record in outcome["records"]:
            by_method.setdefault(record["method_label"], []).append(record)
        continual = by_method["privhp-continual"][0]
        assert continual["num_epochs"] == 4
        assert len(continual["error_trajectory"]) == 4
        assert all(value is not None for value in continual["error_trajectory"])
        assert continual["auc_error"] is not None
        assert continual["epoch_items"][-1] == 384
        oneshot = by_method["nonprivate"][0]
        assert oneshot["error_trajectory"][:-1] == [None, None, None]
        assert oneshot["error_trajectory"][-1] == oneshot["wasserstein"]
        assert oneshot["auc_error"] is None

    def test_aggregate_has_epoch_columns(self):
        outcome = run_matrix(self.drift_grid(), workers=1)
        rows = {row["method"]: row for row in outcome["aggregate"]}
        continual = rows["privhp-continual"]
        assert continual["num_epochs"] == 4
        assert len(continual["epoch_wasserstein_mean"]) == 4
        assert len(continual["epoch_wasserstein_stderr"]) == 4
        assert continual["auc_error"] is not None
        oneshot = rows["nonprivate"]
        assert oneshot["epoch_wasserstein_mean"][:-1] == [None, None, None]
        assert "auc_error" not in oneshot

    def test_static_rows_stay_free_of_trajectory_fields(self):
        spec = self.drift_grid(generators=("gaussian_mixture",), name="static")
        outcome = run_matrix(spec, workers=1)
        for record in outcome["records"]:
            assert "error_trajectory" not in record
        for row in outcome["aggregate"]:
            assert "epoch_wasserstein_mean" not in row

    def test_results_byte_identical_across_worker_counts(self, tmp_path):
        one = tmp_path / "w1"
        four = tmp_path / "w4"
        run_matrix(self.drift_grid(), out_dir=one, workers=1)
        run_matrix(self.drift_grid(), out_dir=four, workers=4)
        assert (one / "results.jsonl").read_bytes() == (four / "results.jsonl").read_bytes()
        assert (one / "aggregate.csv").read_bytes() == (four / "aggregate.csv").read_bytes()

    def test_aggregate_csv_flattens_epoch_lists(self, tmp_path):
        run_matrix(self.drift_grid(), out_dir=tmp_path, workers=1)
        header, *lines = (tmp_path / "aggregate.csv").read_text().splitlines()
        assert "epoch_wasserstein_mean" in header
        assert "auc_error" in header
        continual_line = next(line for line in lines if "privhp-continual" in line)
        field = continual_line.split(",")[header.split(",").index("epoch_items")]
        items = [int(value) for value in field.split("|")]
        assert len(items) == 4 and items[-1] == 384  # cumulative item counts

    def test_check_epoch_ordering_flags_violations(self):
        rows = [
            {"method": "nonprivate", "domain": "interval", "generator": "drift",
             "epsilon": 1.0, "n": 64,
             "epoch_wasserstein_mean": [None, None, 0.2]},
            {"method": "privhp-continual", "domain": "interval", "generator": "drift",
             "epsilon": 1.0, "n": 64,
             "epoch_wasserstein_mean": [0.5, 0.4, 0.1]},
        ]
        violations = check_epoch_ordering(rows)
        assert len(violations) == 1
        assert "epoch 2" in violations[0] and "non-private floor" in violations[0]
        # Only epochs where both methods measured are compared.
        rows[1]["epoch_wasserstein_mean"] = [0.5, 0.4, 0.3]
        assert check_epoch_ordering(rows) == []

    def test_check_epoch_ordering_compares_privhp_to_smooth(self):
        rows = [
            {"method": "privhp", "domain": "interval", "generator": "drift",
             "epsilon": 1.0, "n": 64, "epoch_wasserstein_mean": [None, 0.5]},
            {"method": "smooth", "domain": "interval", "generator": "drift",
             "epsilon": 1.0, "n": 64, "epoch_wasserstein_mean": [None, 0.4]},
        ]
        violations = check_epoch_ordering(rows)
        assert len(violations) == 1 and "PrivHP" in violations[0]

    def test_check_epoch_ordering_ignores_static_rows(self):
        assert check_epoch_ordering([
            {"method": "privhp", "domain": "interval", "generator": "g",
             "epsilon": 1.0, "n": 64, "wasserstein": 0.5},
        ]) == []

    def test_aggregate_records_tolerates_mixed_grids(self):
        records = [
            {"domain": "interval", "generator": "drift", "n": 64, "epsilon": 1.0,
             "method_label": "m", "method": "M", "trial": 0, "wasserstein": 0.2,
             "memory_words": 10, "error_trajectory": [0.4, 0.2],
             "epoch_items": [32, 64], "auc_error": 0.3},
            {"domain": "interval", "generator": "static", "n": 64, "epsilon": 1.0,
             "method_label": "m", "method": "M", "trial": 0, "wasserstein": 0.1,
             "memory_words": 10},
        ]
        rows = aggregate_records(records)
        traj = next(row for row in rows if row["generator"] == "drift")
        static = next(row for row in rows if row["generator"] == "static")
        assert traj["epoch_wasserstein_mean"] == [0.4, 0.2]
        assert traj["epoch_items"] == [32, 64]
        assert traj["auc_error"] == 0.3
        assert "epoch_wasserstein_mean" not in static


class TestMultiTenant:
    def test_records_parse_through_intake(self, tmp_path):
        from repro.ingest.intake import iter_append_records

        scenario = scenario_from_dict(DRIFT_SPEC)
        path = tmp_path / "appends.jsonl"
        with path.open("w") as handle:
            for record in multi_tenant_records(scenario, ["a", "b"], 40, rng=0):
                handle.write(json.dumps(record) + "\n")
        parsed = list(iter_append_records(path))
        assert {tenant for tenant, _values in parsed} == {"a", "b"}
        assert sum(len(values) for tenant, values in parsed if tenant == "a") == 40

    def test_tenants_share_schedule_but_not_noise(self):
        scenario = scenario_from_dict(DRIFT_SPEC)
        records = list(multi_tenant_records(scenario, ["a", "b"], 50, rng=9))
        by_tenant = {}
        for record in records:
            by_tenant.setdefault(record["tenant"], []).append(record["values"])
        assert [len(v) for v in by_tenant["a"]] == [len(v) for v in by_tenant["b"]]
        assert by_tenant["a"] != by_tenant["b"]

    def test_deterministic_for_same_seed(self):
        scenario = scenario_from_dict(FLASH_SPEC)
        first = list(multi_tenant_records(scenario, ["x"], 30, rng=4))
        second = list(multi_tenant_records(scenario, ["x"], 30, rng=4))
        assert first == second

    def test_duplicate_tenants_rejected(self):
        scenario = scenario_from_dict(DRIFT_SPEC)
        with pytest.raises(ScenarioSpecError, match="unique"):
            list(multi_tenant_records(scenario, ["a", "a"], 10, rng=0))


class TestScenarioCLI:
    def write_spec(self, tmp_path, extra=None):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({**DRIFT_SPEC, **(extra or {})}))
        return path

    def test_writes_csv_stream(self, tmp_path, capsys):
        spec = self.write_spec(tmp_path)
        out = tmp_path / "stream.csv"
        assert cli_main([
            "scenario", str(spec), "--size", "120", "--out", str(out), "--seed", "3",
        ]) == 0
        data = np.loadtxt(out, delimiter=",")
        assert data.shape == (120,)
        np.testing.assert_allclose(
            data, scenario_from_dict(DRIFT_SPEC).sample(120, rng=3), atol=1e-9
        )
        assert "4 epoch(s)" in capsys.readouterr().out

    def test_size_defaults_to_spec_field(self, tmp_path):
        spec = self.write_spec(tmp_path, {"size": 50})
        out = tmp_path / "stream.csv"
        assert cli_main(["scenario", str(spec), "--out", str(out), "--quiet"]) == 0
        assert np.loadtxt(out, delimiter=",").shape == (50,)

    def test_missing_size_is_usage_error(self, tmp_path):
        spec = self.write_spec(tmp_path)
        with pytest.raises(SystemExit):
            cli_main(["scenario", str(spec), "--out", str(tmp_path / "x.csv")])

    def test_writes_tenant_jsonl(self, tmp_path):
        spec = self.write_spec(tmp_path)
        out = tmp_path / "appends.jsonl"
        assert cli_main([
            "scenario", str(spec), "--size", "40", "--tenants", "3",
            "--out", str(out), "--quiet",
        ]) == 0
        records = [json.loads(line) for line in out.read_text().splitlines()]
        assert len(records) == 3 * 4  # tenants x epochs
        assert {record["tenant"] for record in records} == {
            "tenant-0", "tenant-1", "tenant-2",
        }

    def test_bad_spec_is_usage_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"type": "driftt"}))
        with pytest.raises(SystemExit):
            cli_main(["scenario", str(path), "--size", "10",
                      "--out", str(tmp_path / "x.csv")])

    def test_matrix_gate_flag_passes_on_clean_grid(self, tmp_path, capsys):
        spec_path = tmp_path / "grid.json"
        spec_path.write_text(json.dumps({
            "name": "gate-grid",
            "methods": ["nonprivate", "privhp-continual"],
            "domains": ["interval"],
            "generators": [{"name": "drift", "label": "drift-zipf", "params": {
                k: v for k, v in DRIFT_SPEC.items() if k != "type"
            }}],
            "epsilons": [1.0],
            "stream_sizes": [256],
            "trials": 1,
        }))
        code = cli_main([
            "matrix", str(spec_path), "--out", str(tmp_path / "results"),
            "--gate", "--quiet",
        ])
        captured = capsys.readouterr()
        assert code == 0, captured.err
        assert "gate passed" in captured.out
