"""Tests for neighbouring relations and sensitivity helpers."""

import numpy as np
import pytest

from repro.privacy.definitions import (
    hamming_distance,
    histogram_sensitivity,
    l1_sensitivity,
    linf_sensitivity,
    neighbouring,
    sketch_sensitivity,
    tree_path_sensitivity,
)


class TestNeighbouring:
    def test_identical_streams_are_not_neighbouring(self):
        stream = [0.1, 0.2, 0.3]
        assert not neighbouring(stream, stream)

    def test_single_substitution_is_neighbouring(self):
        assert neighbouring([0.1, 0.2, 0.3], [0.1, 0.9, 0.3])

    def test_two_substitutions_are_not_neighbouring(self):
        assert not neighbouring([0.1, 0.2, 0.3], [0.5, 0.9, 0.3])

    def test_hamming_distance_counts_positions(self):
        assert hamming_distance([1, 2, 3, 4], [1, 0, 3, 0]) == 2

    def test_different_lengths_raise(self):
        with pytest.raises(ValueError):
            neighbouring([1, 2], [1, 2, 3])

    def test_array_valued_items(self):
        a = [np.array([0.1, 0.2]), np.array([0.3, 0.4])]
        b = [np.array([0.1, 0.2]), np.array([0.3, 0.5])]
        assert neighbouring(a, b)


class TestEmpiricalSensitivity:
    def test_l1_sensitivity_of_histogram_is_at_most_two(self, interval):
        def histogram(stream):
            counts = np.zeros(4)
            for x in stream:
                counts[min(int(x * 4), 3)] += 1
            return counts

        stream_a = [0.1, 0.3, 0.6, 0.9]
        stream_b = [0.1, 0.3, 0.6, 0.1]
        assert l1_sensitivity(histogram, stream_a, stream_b) == pytest.approx(2.0)

    def test_linf_sensitivity_of_histogram_is_at_most_one(self):
        def histogram(stream):
            counts = np.zeros(4)
            for x in stream:
                counts[min(int(x * 4), 3)] += 1
            return counts

        stream_a = [0.1, 0.3, 0.6, 0.9]
        stream_b = [0.1, 0.3, 0.6, 0.1]
        assert linf_sensitivity(histogram, stream_a, stream_b) == pytest.approx(1.0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            l1_sensitivity(lambda s: np.zeros(len(s)), [1, 2], [1, 3, 4])


class TestAnalyticSensitivities:
    def test_histogram_sensitivity_value(self):
        assert histogram_sensitivity() == 1.0

    def test_tree_path_sensitivity_counts_levels(self):
        assert tree_path_sensitivity(0) == 1.0
        assert tree_path_sensitivity(5) == 6.0

    def test_tree_path_sensitivity_rejects_negative_depth(self):
        with pytest.raises(ValueError):
            tree_path_sensitivity(-1)

    def test_sketch_sensitivity_equals_depth(self):
        assert sketch_sensitivity(7) == 7.0

    def test_sketch_sensitivity_rejects_non_positive_depth(self):
        with pytest.raises(ValueError):
            sketch_sensitivity(0)

    def test_tree_path_count_vector_sensitivity_matches_depth(self, interval):
        """A single substituted element changes one root-to-leaf path (L+1 counters)."""
        depth = 4

        all_cells = [
            cell
            for level in range(depth + 1)
            for cell in interval.cells_at_level(level)
        ]

        def path_counts(stream):
            counts: dict = {cell: 0 for cell in all_cells}
            for x in stream:
                path = interval.locate(x, depth)
                for level in range(depth + 1):
                    counts[path[:level]] += 1
            return np.array([counts[c] for c in all_cells], dtype=float)

        # Use well-separated points so the changed element shares no path
        # prefix beyond the root with its replacement.
        stream_a = [0.01, 0.26, 0.51, 0.99]
        stream_b = [0.01, 0.26, 0.51, 0.02]
        # The replacement changes up to `depth` counters twice (old path loses,
        # new path gains) but never the root, so the L1 change is <= 2*depth.
        assert l1_sensitivity(path_counts, stream_a, stream_a) == 0.0
        # Under add/remove accounting per path the per-stream change is depth+1.
        sensitivity = l1_sensitivity(path_counts, stream_a, stream_b)
        assert sensitivity <= 2 * depth
