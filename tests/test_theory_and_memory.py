"""Tests for the theoretical bound evaluators and memory accounting."""

import pytest

from repro.core.config import PrivHPConfig
from repro.core.privhp import PrivHP
from repro.memory.accounting import measure_method, measure_privhp
from repro.theory.bounds import (
    corollary1_bound,
    memory_words_bound,
    pmm_bound,
    privhp_approx_term,
    privhp_noise_term,
    smooth_bound,
    srrw_bound,
    theorem3_bound,
)
from repro.theory.comparison import table1_rows


class TestPrivHPBounds:
    def test_noise_term_decreases_with_epsilon(self, interval):
        loose = privhp_noise_term(interval, 4096, 0.5, 12, 8, 8, 12)
        tight = privhp_noise_term(interval, 4096, 2.0, 12, 8, 8, 12)
        assert tight < loose

    def test_noise_term_decreases_with_n(self, interval):
        small = privhp_noise_term(interval, 1024, 1.0, 10, 7, 8, 10)
        large = privhp_noise_term(interval, 65536, 1.0, 16, 10, 8, 16)
        assert large < small

    def test_approx_term_zero_for_zero_tail_and_deep_sketch(self, interval):
        value = privhp_approx_term(interval, 4096, tail_norm=0.0, depth=12,
                                   level_cutoff=8, sketch_depth=40)
        assert value == pytest.approx(0.0, abs=1e-9)

    def test_approx_term_grows_with_tail(self, interval):
        low = privhp_approx_term(interval, 4096, 10.0, 12, 8, 12)
        high = privhp_approx_term(interval, 4096, 1000.0, 12, 8, 12)
        assert high > low

    def test_theorem3_is_sum_of_terms(self, square):
        noise = privhp_noise_term(square, 4096, 1.0, 12, 8, 8, 12)
        approx = privhp_approx_term(square, 4096, 100.0, 12, 8, 12)
        total = theorem3_bound(square, 4096, 1.0, 12, 8, 8, 12, 100.0)
        assert total == pytest.approx(noise + approx)

    def test_corollary1_decreases_with_memory_for_d2(self):
        """For d >= 2 the approx term shrinks with k faster than noise grows at these scales."""
        small_k = corollary1_bound(2, 10**6, 1.0, 2, tail_norm=10**5)
        large_k = corollary1_bound(2, 10**6, 1.0, 64, tail_norm=10**5)
        assert large_k < small_k

    def test_memory_bound_polylogarithmic(self):
        assert memory_words_bound(2**20, 8) == pytest.approx(8 * 400)
        assert memory_words_bound(2**20, 8) < 2**20


class TestBaselineBounds:
    def test_pmm_beats_smooth(self):
        # The asymptotic ordering of Table 1; for d=1 the crossover happens
        # late because of PMM's log^2 factor, so use a large n.
        assert pmm_bound(1, 10**8, 1.0) < smooth_bound(1, 10**8, 1.0)
        assert pmm_bound(2, 10**5, 1.0) < smooth_bound(2, 10**5, 1.0)

    def test_srrw_close_to_pmm(self):
        ratio = srrw_bound(2, 10**5, 1.0) / pmm_bound(2, 10**5, 1.0)
        assert 1.0 <= ratio < 10.0

    def test_bounds_decrease_with_n(self):
        for bound in (pmm_bound, srrw_bound):
            assert bound(2, 10**6, 1.0) < bound(2, 10**4, 1.0)
        assert smooth_bound(2, 10**6, 1.0) < smooth_bound(2, 10**4, 1.0)

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            pmm_bound(0, 100, 1.0)
        with pytest.raises(ValueError):
            smooth_bound(2, 100, 1.0, smoothness_order=0)


class TestTable1Rows:
    def test_contains_all_methods(self):
        rows = table1_rows(2, 10**5, 1.0, 8, tail_norm=10**4)
        assert [row.method for row in rows] == ["Smooth", "SRRW", "PMM", "PrivHP"]

    def test_privhp_memory_is_smallest_for_large_n(self):
        rows = {row.method: row for row in table1_rows(2, 10**6, 1.0, 8, tail_norm=10**5)}
        assert rows["PrivHP"].memory_bound < rows["PMM"].memory_bound
        assert rows["PrivHP"].memory_bound < rows["SRRW"].memory_bound

    def test_pmm_accuracy_best_or_equal(self):
        rows = {row.method: row for row in table1_rows(2, 10**6, 1.0, 8, tail_norm=10**5)}
        assert rows["PMM"].accuracy_bound <= rows["Smooth"].accuracy_bound
        assert rows["PMM"].accuracy_bound <= rows["PrivHP"].accuracy_bound * 1.01

    def test_as_dict_round_trip(self):
        row = table1_rows(1, 1000, 1.0, 4, 100.0)[0]
        data = row.as_dict()
        assert data["method"] == "Smooth"
        assert data["accuracy_bound"] == row.accuracy_bound


class TestMemoryAccounting:
    def test_privhp_report_breaks_down_components(self, interval, rng):
        config = PrivHPConfig(epsilon=1.0, pruning_k=4, depth=8, level_cutoff=4,
                              sketch_width=8, sketch_depth=4, seed=0)
        algorithm = PrivHP(interval, config, rng=0)
        algorithm.process(rng.random(100))
        report = measure_privhp(algorithm)
        assert report.total_words == algorithm.memory_words()
        assert report.components["tree"] == algorithm.tree.memory_words()
        assert sum(report.components.values()) == report.total_words

    def test_report_as_row(self, interval, rng):
        config = PrivHPConfig(epsilon=1.0, pruning_k=2, depth=6, level_cutoff=3,
                              sketch_width=4, sketch_depth=2, seed=0)
        algorithm = PrivHP(interval, config, rng=0)
        row = measure_privhp(algorithm).as_row()
        assert row["method"] == "PrivHP"
        assert row["total_words"] > 0

    def test_measure_generic_method(self, interval, rng):
        from repro.baselines.nonprivate import NonPrivateHistogramMethod

        method = NonPrivateHistogramMethod(interval, max_depth=5)
        method.fit(rng.random(50), rng=0)
        report = measure_method(method)
        assert report.method == "NonPrivate"
        assert report.total_words == method.memory_words()
