"""Tests for the unit-interval domain."""

import numpy as np
import pytest

from repro.domain.hypercube import Hypercube


class TestGeometry:
    def test_diameter(self, interval):
        assert interval.diameter() == 1.0

    def test_distance_is_absolute_difference(self, interval):
        assert interval.distance(0.2, 0.7) == pytest.approx(0.5)

    def test_cell_bounds_root(self, interval):
        assert interval.cell_bounds(()) == (0.0, 1.0)

    def test_cell_bounds_level_two(self, interval):
        assert interval.cell_bounds((1, 0)) == (0.5, 0.75)

    def test_cell_diameter_halves_per_level(self, interval):
        for level in range(8):
            assert interval.cell_diameter((0,) * level) == pytest.approx(2.0**-level)

    def test_level_max_diameter_matches_cells(self, interval):
        for level in range(6):
            assert interval.level_max_diameter(level) == interval.cell_diameter((1,) * level)

    def test_level_total_diameter(self, interval):
        # 2^l cells of length 2^-l each sum to 1 at every level.
        for level in range(6):
            assert interval.level_total_diameter(level) == pytest.approx(1.0)


class TestLocate:
    def test_root_location_is_empty(self, interval):
        assert interval.locate(0.3, 0) == ()

    def test_locate_matches_bounds(self, interval, rng):
        for point in rng.random(50):
            for level in (1, 3, 6):
                theta = interval.locate(point, level)
                lower, upper = interval.cell_bounds(theta)
                assert lower <= point <= upper

    def test_locate_path_is_nested(self, interval):
        path = interval.locate_path(0.61, 5)
        assert len(path) == 6
        for shallow, deep in zip(path, path[1:]):
            assert deep[: len(shallow)] == shallow

    def test_out_of_domain_point_raises(self, interval):
        with pytest.raises(ValueError):
            interval.locate(1.5, 3)

    def test_locate_batch_rejects_out_of_range_and_nan(self, interval):
        """The batch path must fail loud like the scalar path, NaN included."""
        with pytest.raises(ValueError):
            interval.locate_batch(np.array([0.2, 1.5]), 3)
        with pytest.raises(ValueError):
            interval.locate_batch(np.array([0.2, np.nan]), 3)

    def test_negative_level_raises(self, interval):
        with pytest.raises(ValueError):
            interval.locate(0.5, -1)

    def test_agrees_with_one_dimensional_hypercube(self, interval, rng):
        cube = Hypercube(1)
        for point in rng.random(30):
            assert interval.locate(point, 6) == cube.locate(np.array([point]), 6)


class TestSampling:
    def test_sample_cell_stays_inside(self, interval, rng):
        theta = (1, 0, 1)
        lower, upper = interval.cell_bounds(theta)
        for _ in range(100):
            value = interval.sample_cell(theta, rng)
            assert lower <= value <= upper

    def test_sample_uniform_shape(self, interval, rng):
        samples = interval.sample_uniform(10, rng)
        assert samples.shape == (10,)

    def test_contains(self, interval):
        assert interval.contains(0.0)
        assert interval.contains(1.0)
        assert not interval.contains(-0.1)
        assert not interval.contains("not a number")


class TestBulkHelpers:
    def test_level_frequencies_partition_the_data(self, interval, rng):
        data = rng.random(200)
        counts = interval.level_frequencies(data, 4)
        assert sum(counts.values()) == 200
        for theta in counts:
            assert len(theta) == 4

    def test_cells_at_level_enumerates_all(self, interval):
        cells = list(interval.cells_at_level(3))
        assert len(cells) == 8
        assert len(set(cells)) == 8

    def test_validate_points_raises_on_outside(self, interval):
        with pytest.raises(ValueError):
            interval.validate_points([0.5, 2.0])
