"""Tests for PrivTree, DP-quantile, non-private and PrivHP-adapter methods."""

import numpy as np
import pytest

from repro.baselines.base import PrivHPMethod
from repro.baselines.nonprivate import NonPrivateHistogramMethod
from repro.baselines.privtree import PrivTreeMethod
from repro.baselines.quantile import QuantileMethod
from repro.core.config import PrivHPConfig
from repro.domain.hypercube import Hypercube
from repro.metrics.wasserstein import wasserstein1_1d


class TestPrivTree:
    def test_fit_and_sample(self, interval, rng):
        method = PrivTreeMethod(interval, epsilon=1.0, max_depth=10)
        sampler = method.fit(rng.beta(2, 5, size=400), rng=0)
        samples = sampler.sample(100)
        assert np.all((samples >= 0) & (samples <= 1))

    def test_adaptive_splitting_goes_deeper_where_data_is(self, interval, rng):
        data = np.concatenate([np.full(300, 0.125), rng.random(20)])
        method = PrivTreeMethod(interval, epsilon=5.0, max_depth=8)
        method.fit(data, rng=0)
        tree = method._tree
        # Cells covering the point mass at 0.125 should be split to depth > 2.
        deep_nodes = [theta for theta in tree.leaves() if len(theta) >= 3]
        assert deep_nodes

    def test_memory_after_fit(self, interval, rng):
        method = PrivTreeMethod(interval, epsilon=1.0, max_depth=6)
        assert method.memory_words() == 0
        method.fit(rng.random(200), rng=0)
        assert method.memory_words() > 0

    def test_high_budget_low_error(self, interval, rng):
        data = rng.beta(2, 6, size=1000)
        method = PrivTreeMethod(interval, epsilon=200.0, max_depth=10)
        sampler = method.fit(data, rng=0)
        assert wasserstein1_1d(data, sampler.sample(1000)) < 0.05

    def test_invalid_parameters(self, interval):
        with pytest.raises(ValueError):
            PrivTreeMethod(interval, epsilon=0.0)
        with pytest.raises(ValueError):
            PrivTreeMethod(interval, epsilon=1.0, structure_fraction=1.5)
        with pytest.raises(ValueError):
            PrivTreeMethod(interval, epsilon=1.0, max_depth=0)

    def test_empty_data_rejected(self, interval):
        with pytest.raises(ValueError):
            PrivTreeMethod(interval, epsilon=1.0).fit([], rng=0)


class TestQuantile:
    def test_fit_and_sample_interval(self, interval, rng):
        method = QuantileMethod(interval, epsilon=1.0, bins=128)
        sampler = method.fit(rng.beta(2, 5, size=500), rng=0)
        samples = sampler.sample(200)
        assert np.all((samples >= 0) & (samples <= 1))

    def test_discrete_domain_outputs_integers(self, discrete, rng):
        method = QuantileMethod(discrete, epsilon=1.0, bins=64)
        sampler = method.fit(rng.integers(0, 100, size=400), rng=0)
        samples = sampler.sample(100)
        assert samples.dtype.kind in "iu"
        assert np.all((samples >= 0) & (samples < 100))

    def test_quantile_function_monotone(self, interval, rng):
        method = QuantileMethod(interval, epsilon=5.0, bins=64)
        sampler = method.fit(rng.beta(2, 5, size=800), rng=0)
        values = [sampler.quantile(p) for p in np.linspace(0, 1, 21)]
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))

    def test_quantile_probability_validated(self, interval, rng):
        method = QuantileMethod(interval, epsilon=1.0)
        sampler = method.fit(rng.random(100), rng=0)
        with pytest.raises(ValueError):
            sampler.quantile(1.5)

    def test_memory_bounded_by_bins(self, interval, rng):
        method = QuantileMethod(interval, epsilon=1.0, bins=64)
        method.fit(rng.random(10_000), rng=0)
        assert method.memory_words() <= 2 * 64 + 2

    def test_high_budget_low_error(self, interval, rng):
        data = rng.beta(2, 6, size=2000)
        method = QuantileMethod(interval, epsilon=500.0, bins=256)
        sampler = method.fit(data, rng=0)
        assert wasserstein1_1d(data, sampler.sample(2000)) < 0.02

    def test_rejects_multidimensional_domain(self):
        with pytest.raises(TypeError):
            QuantileMethod(Hypercube(2), epsilon=1.0)

    def test_invalid_parameters(self, interval):
        with pytest.raises(ValueError):
            QuantileMethod(interval, epsilon=0.0)
        with pytest.raises(ValueError):
            QuantileMethod(interval, epsilon=1.0, bins=1)


class TestNonPrivate:
    def test_near_exact_reconstruction(self, interval, rng):
        data = rng.beta(2, 6, size=2000)
        method = NonPrivateHistogramMethod(interval, max_depth=12)
        sampler = method.fit(data, rng=0)
        assert wasserstein1_1d(data, sampler.sample(2000)) < 0.02

    def test_epsilon_is_infinite(self, interval):
        assert NonPrivateHistogramMethod(interval).epsilon == float("inf")

    def test_memory_after_fit(self, interval, rng):
        method = NonPrivateHistogramMethod(interval, max_depth=6)
        method.fit(rng.random(100), rng=0)
        assert method.memory_words() == 2 * (2**7 - 1)

    def test_explicit_depth_respected(self, interval, rng):
        method = NonPrivateHistogramMethod(interval, depth=3)
        method.fit(rng.random(100), rng=0)
        assert method._tree.depth() == 3

    def test_empty_data_rejected(self, interval):
        with pytest.raises(ValueError):
            NonPrivateHistogramMethod(interval).fit([], rng=0)


class TestPrivHPAdapter:
    def test_fit_produces_generator(self, interval, rng):
        method = PrivHPMethod(interval, epsilon=1.0, pruning_k=4, seed=0)
        sampler = method.fit(rng.random(300), rng=0)
        samples = sampler.sample(100)
        assert np.all((samples >= 0) & (samples <= 1))
        assert method.memory_words() > 0

    def test_explicit_config_used(self, interval, rng):
        config = PrivHPConfig(epsilon=1.0, pruning_k=2, depth=6, level_cutoff=3,
                              sketch_width=4, sketch_depth=3, seed=0)
        method = PrivHPMethod(interval, epsilon=1.0, pruning_k=2, config=config)
        method.fit(rng.random(100), rng=0)
        assert method.last_run.config is config

    def test_config_overrides_forwarded(self, interval):
        method = PrivHPMethod(interval, epsilon=1.0, pruning_k=2, depth=9)
        config = method.build_config(1000)
        assert config.depth == 9

    def test_memory_smaller_than_pmm_for_large_streams(self, interval, rng):
        """The headline Table-1 property: PrivHP's summary is much smaller than PMM's."""
        from repro.baselines.pmm import PMMMethod

        data = rng.random(8192)
        privhp = PrivHPMethod(interval, epsilon=1.0, pruning_k=4, seed=0)
        pmm = PMMMethod(interval, epsilon=1.0, max_depth=16)
        privhp.fit(data, rng=0)
        pmm.fit(data, rng=0)
        assert privhp.memory_words() < pmm.memory_words() / 2
