"""Tests for the stream abstraction, workload generators and datasets."""

import numpy as np
import pytest

from repro.domain.geo import GeoDomain
from repro.stream.datasets import (
    geo_checkin_stream,
    ipv4_traffic_stream,
    transaction_amount_stream,
)
from repro.stream.generators import (
    beta_stream,
    gaussian_mixture_stream,
    sparse_cluster_stream,
    uniform_stream,
    zipf_cell_stream,
)
from repro.stream.stream import DataStream


class Collector:
    """Minimal consumer exposing update()."""

    def __init__(self):
        self.items = []

    def update(self, item):
        self.items.append(item)


class TestDataStream:
    def test_single_pass_enforced(self):
        stream = DataStream([1, 2, 3])
        assert list(stream) == [1, 2, 3]
        with pytest.raises(RuntimeError):
            list(stream)

    def test_stats_recorded(self):
        stream = DataStream(range(100))
        list(stream)
        assert stream.stats.items == 100
        assert stream.stats.elapsed_seconds >= 0.0

    def test_feed_pushes_into_consumer(self):
        stream = DataStream(range(10))
        consumer = Collector()
        stats = stream.feed(consumer)
        assert consumer.items == list(range(10))
        assert stats.items == 10
        assert stats.items_per_second >= 0.0

    def test_feed_after_iteration_rejected(self):
        stream = DataStream(range(3))
        list(stream)
        with pytest.raises(RuntimeError):
            stream.feed(Collector())

    def test_empty_stream_stats(self):
        stats = DataStream([]).feed(Collector())
        assert stats.items == 0
        assert stats.items_per_second == 0.0
        assert stats.seconds_per_item == 0.0


class TestGenerators:
    @pytest.mark.parametrize("dimension", [1, 2, 3])
    def test_uniform_stream_shapes_and_range(self, dimension, rng):
        data = uniform_stream(200, dimension=dimension, rng=rng)
        expected_shape = (200,) if dimension == 1 else (200, dimension)
        assert data.shape == expected_shape
        assert np.all((data >= 0) & (data <= 1))

    def test_gaussian_mixture_in_cube(self, rng):
        data = gaussian_mixture_stream(500, dimension=2, rng=rng)
        assert data.shape == (500, 2)
        assert np.all((data >= 0) & (data <= 1))

    def test_zipf_stream_is_skewed(self, interval, rng):
        skewed = zipf_cell_stream(2000, dimension=1, level=6, exponent=2.0, rng=rng)
        flat = zipf_cell_stream(2000, dimension=1, level=6, exponent=0.0, rng=rng)
        from repro.metrics.tail import tail_norm

        assert tail_norm(skewed, interval, 6, 4) < tail_norm(flat, interval, 6, 4)

    def test_zipf_stream_two_dimensional(self, rng):
        data = zipf_cell_stream(300, dimension=2, level=6, exponent=1.5, rng=rng)
        assert data.shape == (300, 2)
        assert np.all((data >= 0) & (data <= 1))

    def test_sparse_cluster_concentration(self, interval, rng):
        data = sparse_cluster_stream(1000, dimension=1, num_clusters=2,
                                     cluster_width=0.005, rng=rng)
        from repro.metrics.tail import tail_norm

        # Nearly all mass sits in at most a handful of level-6 cells.
        assert tail_norm(data, interval, 6, 4) < 0.05 * 1000

    def test_beta_stream_range(self, rng):
        data = beta_stream(400, alpha=2.0, beta=5.0, rng=rng)
        assert np.all((data >= 0) & (data <= 1))

    def test_reproducible_with_seed(self):
        a = gaussian_mixture_stream(100, dimension=2, rng=7)
        b = gaussian_mixture_stream(100, dimension=2, rng=7)
        np.testing.assert_allclose(a, b)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            uniform_stream(-1)
        with pytest.raises(ValueError):
            zipf_cell_stream(10, level=0)
        with pytest.raises(ValueError):
            beta_stream(10, alpha=0.0)


class TestDatasets:
    def test_ipv4_traffic_addresses_valid(self, ipv4, rng):
        addresses = ipv4_traffic_stream(2000, rng=rng)
        assert np.all((addresses >= 0) & (addresses < 2**32))

    def test_ipv4_traffic_has_heavy_subnets(self, ipv4, rng):
        addresses = ipv4_traffic_stream(3000, num_heavy_subnets=5,
                                        heavy_fraction=0.95, rng=rng)
        counts = ipv4.level_frequencies(list(addresses), 16)
        top5 = sum(sorted(counts.values(), reverse=True)[:5])
        assert top5 > 0.7 * 3000

    def test_geo_checkins_inside_box(self, rng):
        domain = GeoDomain(lat_min=24.0, lat_max=49.0, lon_min=-125.0, lon_max=-66.0)
        points = geo_checkin_stream(1000, domain=domain, rng=rng)
        assert np.all(points[:, 0] >= domain.lat_min)
        assert np.all(points[:, 0] <= domain.lat_max)
        assert np.all(points[:, 1] >= domain.lon_min)
        assert np.all(points[:, 1] <= domain.lon_max)

    def test_geo_checkins_clustered(self, rng):
        domain = GeoDomain(lat_min=24.0, lat_max=49.0, lon_min=-125.0, lon_max=-66.0)
        points = geo_checkin_stream(2000, domain=domain, num_cities=3,
                                    city_fraction=0.95, city_spread=0.05, rng=rng)
        counts = domain.level_frequencies(points, 8)
        top_share = sum(sorted(counts.values(), reverse=True)[:8]) / 2000
        assert top_share > 0.5

    def test_transaction_amounts_normalised(self, rng):
        amounts = transaction_amount_stream(1000, rng=rng)
        assert np.all((amounts >= 0) & (amounts <= 1))

    def test_invalid_parameters(self, rng):
        with pytest.raises(ValueError):
            ipv4_traffic_stream(10, heavy_fraction=1.5)
        with pytest.raises(ValueError):
            geo_checkin_stream(10, num_cities=0)
        with pytest.raises(ValueError):
            transaction_amount_stream(10, cap=0.0)
