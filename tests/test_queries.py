"""Tests for range, CDF, marginal and quantile queries on the released tree."""

import numpy as np
import pytest

from repro.baselines.pmm import build_exact_tree
from repro.core.config import PrivHPConfig
from repro.core.privhp import PrivHP
from repro.core.tree import PartitionTree
from repro.queries.quantiles import QuantileEngine
from repro.queries.range_queries import RangeQueryEngine
from repro.queries.workload import (
    RangeQuery,
    evaluate_range_workload,
    random_range_queries,
    true_mass,
)


def exact_engine(data, domain, depth):
    """A query engine over the exact (noise-free) tree of the data."""
    tree = build_exact_tree(list(data), domain, depth)
    return RangeQueryEngine(tree, domain)


class TestRangeQueriesInterval:
    def test_full_domain_has_mass_one(self, interval, rng):
        engine = exact_engine(rng.random(200), interval, depth=6)
        assert engine.mass(0.0, 1.0) == pytest.approx(1.0)

    def test_empty_range_has_mass_zero(self, interval, rng):
        engine = exact_engine(rng.random(200), interval, depth=6)
        assert engine.mass(0.3, 0.3) == pytest.approx(0.0, abs=1e-6)

    def test_half_domain_on_uniform_data(self, interval, rng):
        engine = exact_engine(rng.random(4000), interval, depth=8)
        assert engine.mass(0.0, 0.5) == pytest.approx(0.5, abs=0.05)

    def test_matches_true_mass_on_cell_aligned_query(self, interval, rng):
        data = rng.random(1000)
        engine = exact_engine(data, interval, depth=6)
        query = RangeQuery(lower=0.25, upper=0.5)
        assert engine.mass(query.lower, query.upper) == pytest.approx(
            true_mass(data, interval, query), abs=0.001
        )

    def test_count_scales_mass_by_total(self, interval, rng):
        data = rng.random(500)
        engine = exact_engine(data, interval, depth=6)
        assert engine.count(0.0, 1.0) == pytest.approx(500, abs=0.5)

    def test_cdf_monotone(self, interval, rng):
        engine = exact_engine(rng.beta(2, 5, 800), interval, depth=8)
        values = [engine.cdf(x) for x in np.linspace(0, 1, 11)]
        assert all(a <= b + 1e-9 for a, b in zip(values, values[1:]))
        assert values[-1] == pytest.approx(1.0, abs=1e-6)

    def test_invalid_bounds_rejected(self, interval, rng):
        engine = exact_engine(rng.random(50), interval, depth=4)
        with pytest.raises(ValueError):
            engine.mass(0.7, 0.2)


class TestRangeQueriesOtherDomains:
    def test_hypercube_box_query(self, square, rng):
        data = rng.random((2000, 2))
        engine = exact_engine(data, square, depth=8)
        estimate = engine.mass((0.0, 0.0), (0.5, 0.5))
        assert estimate == pytest.approx(0.25, abs=0.05)

    def test_hypercube_dimension_mismatch(self, square, rng):
        engine = exact_engine(rng.random((100, 2)), square, depth=4)
        with pytest.raises(ValueError):
            engine.mass((0.0,), (0.5,))

    def test_ipv4_prefix_query(self, ipv4, rng):
        addresses = np.concatenate(
            [
                rng.integers(10 << 24, (10 << 24) + (1 << 24), size=700),
                rng.integers(0, 2**32, size=300),
            ]
        )
        engine = exact_engine(addresses, ipv4, depth=10)
        low = ipv4.parse("10.0.0.0")
        high = ipv4.parse("10.255.255.255")
        assert engine.mass(low, high) == pytest.approx(0.7, abs=0.07)

    def test_ipv4_accepts_dotted_quad_bounds(self, ipv4, rng):
        addresses = rng.integers(0, 2**32, size=200)
        engine = exact_engine(addresses, ipv4, depth=8)
        value = engine.mass("0.0.0.0", "255.255.255.255")
        assert value == pytest.approx(1.0)

    def test_discrete_range_query(self, discrete, rng):
        items = rng.integers(0, 100, size=1000)
        engine = exact_engine(items, discrete, depth=7)
        query = RangeQuery(lower=0, upper=49)
        assert engine.mass(0, 49) == pytest.approx(
            true_mass(items, discrete, query), abs=0.05
        )

    def test_marginal_sums_to_one(self, square, rng):
        engine = exact_engine(rng.random((500, 2)), square, depth=6)
        marginal = engine.marginal(axis=0, bins=16)
        assert marginal.sum() == pytest.approx(1.0, abs=1e-6)
        assert marginal.shape == (16,)

    def test_marginal_detects_concentration(self, square, rng):
        data = np.column_stack([np.full(500, 0.1), rng.random(500)])
        engine = exact_engine(data, square, depth=8)
        marginal = engine.marginal(axis=0, bins=10)
        # All the mass sits around x = 0.1; the leaf containing it straddles the
        # first two slabs, so together they must hold essentially everything.
        assert marginal[0] + marginal[1] > 0.9
        assert marginal[5:].sum() < 0.05

    def test_marginal_invalid_axis(self, square, rng):
        engine = exact_engine(rng.random((50, 2)), square, depth=4)
        with pytest.raises(ValueError):
            engine.marginal(axis=5)

    def test_marginal_requires_vector_domain(self, interval, rng):
        engine = exact_engine(rng.random(50), interval, depth=4)
        with pytest.raises(TypeError):
            engine.marginal(axis=0)


class TestQueriesOnPrivateRelease:
    def test_private_range_answers_close_to_truth(self, interval, rng):
        data = rng.beta(2, 6, size=4000)
        config = PrivHPConfig.from_stream_size(len(data), epsilon=2.0, pruning_k=8, seed=0)
        algorithm = PrivHP(interval, config, rng=0).process(data)
        algorithm.finalize()
        engine = RangeQueryEngine(algorithm.tree, interval)
        report = evaluate_range_workload(
            engine, data, interval, random_range_queries(interval, 30, rng=0)
        )
        assert report["mean_abs_error"] < 0.05
        assert report["max_abs_error"] < 0.2

    def test_degenerate_tree_answers_with_uniform(self, interval):
        tree = PartitionTree()
        tree.add_node((), 0.0)
        engine = RangeQueryEngine(tree, interval)
        assert engine.mass(0.0, 0.25) == pytest.approx(0.25)


class TestQuantiles:
    def test_uniform_data_quantiles(self, interval, rng):
        tree = build_exact_tree(rng.random(4000), interval, depth=10)
        engine = QuantileEngine(tree, interval)
        assert engine.quantile(0.5) == pytest.approx(0.5, abs=0.05)
        assert engine.quantile(0.9) == pytest.approx(0.9, abs=0.05)

    def test_skewed_data_quantiles(self, interval, rng):
        data = rng.beta(2, 8, size=4000)
        tree = build_exact_tree(data, interval, depth=10)
        engine = QuantileEngine(tree, interval)
        for probability in (0.1, 0.5, 0.9):
            assert engine.quantile(probability) == pytest.approx(
                float(np.quantile(data, probability)), abs=0.03
            )

    def test_quantiles_monotone(self, interval, rng):
        tree = build_exact_tree(rng.beta(2, 5, 1000), interval, depth=8)
        engine = QuantileEngine(tree, interval)
        values = engine.quantiles(np.linspace(0, 1, 21))
        assert all(a <= b + 1e-9 for a, b in zip(values, values[1:]))

    def test_median_and_iqr(self, interval, rng):
        data = rng.random(2000)
        engine = QuantileEngine(build_exact_tree(data, interval, depth=9), interval)
        assert engine.median() == pytest.approx(0.5, abs=0.05)
        assert engine.interquartile_range() == pytest.approx(0.5, abs=0.07)

    def test_discrete_domain_quantiles_are_integers(self, discrete, rng):
        items = rng.integers(0, 100, size=1000)
        engine = QuantileEngine(build_exact_tree(items, discrete, depth=7), discrete)
        value = engine.quantile(0.5)
        assert isinstance(value, int)
        assert 0 <= value < 100

    def test_invalid_probability(self, interval, rng):
        engine = QuantileEngine(build_exact_tree(rng.random(50), interval, depth=4), interval)
        with pytest.raises(ValueError):
            engine.quantile(1.5)

    def test_vector_domain_rejected(self, square):
        with pytest.raises(TypeError):
            QuantileEngine(PartitionTree(), square)

    def test_empty_tree_falls_back_to_uniform_quantile(self, interval):
        tree = PartitionTree()
        tree.add_node((), 0.0)
        engine = QuantileEngine(tree, interval)
        assert engine.quantile(0.25) == pytest.approx(0.25)


class TestWorkload:
    def test_random_queries_within_domain(self, interval, square, ipv4, discrete):
        for domain in (interval, square, ipv4, discrete):
            queries = random_range_queries(domain, 20, rng=0)
            assert len(queries) == 20

    def test_random_queries_validation(self, interval):
        with pytest.raises(ValueError):
            random_range_queries(interval, -1)
        with pytest.raises(ValueError):
            random_range_queries(interval, 5, min_width=0.9, max_width=0.1)

    def test_true_mass_matches_manual_count(self, interval):
        data = np.array([0.1, 0.2, 0.6, 0.9])
        assert true_mass(data, interval, RangeQuery(0.0, 0.5)) == pytest.approx(0.5)

    def test_evaluate_workload_structure(self, interval, rng):
        data = rng.random(300)
        engine = exact_engine(data, interval, depth=8)
        report = evaluate_range_workload(
            engine, data, interval, random_range_queries(interval, 10, rng=1)
        )
        assert report["num_queries"] == 10
        assert 0.0 <= report["mean_abs_error"] <= report["max_abs_error"]

    def test_evaluate_workload_requires_queries(self, interval, rng):
        engine = exact_engine(rng.random(50), interval, depth=4)
        with pytest.raises(ValueError):
            evaluate_range_workload(engine, rng.random(50), interval, [])
