"""Tests for the Laplace and geometric mechanisms."""

import numpy as np
import pytest

from repro.privacy.mechanisms import (
    GeometricMechanism,
    LaplaceMechanism,
    geometric_noise,
    laplace_noise,
)


class TestLaplaceNoise:
    def test_scalar_sample_is_float(self, rng):
        value = laplace_noise(1.0, rng=rng)
        assert isinstance(value, float)

    def test_array_shape(self, rng):
        values = laplace_noise(0.5, size=(3, 4), rng=rng)
        assert values.shape == (3, 4)

    def test_rejects_non_positive_scale(self):
        with pytest.raises(ValueError):
            laplace_noise(0.0)
        with pytest.raises(ValueError):
            laplace_noise(-1.0)

    def test_empirical_mean_and_absolute_deviation(self, rng):
        scale = 2.0
        samples = laplace_noise(scale, size=200_000, rng=rng)
        assert abs(np.mean(samples)) < 0.05
        # E|Laplace(b)| = b.
        assert np.mean(np.abs(samples)) == pytest.approx(scale, rel=0.05)


class TestLaplaceMechanism:
    def test_scale_is_sensitivity_over_epsilon(self):
        mechanism = LaplaceMechanism(epsilon=0.5, sensitivity=3.0)
        assert mechanism.scale == pytest.approx(6.0)

    def test_add_noise_preserves_shape(self, rng):
        mechanism = LaplaceMechanism(epsilon=1.0)
        noisy = mechanism.add_noise(np.zeros((2, 5)), rng=rng)
        assert noisy.shape == (2, 5)

    def test_add_noise_scalar_returns_float(self, rng):
        mechanism = LaplaceMechanism(epsilon=1.0)
        assert isinstance(mechanism.add_noise(3.0, rng=rng), float)

    def test_expected_absolute_error_and_variance(self):
        mechanism = LaplaceMechanism(epsilon=2.0, sensitivity=1.0)
        assert mechanism.expected_absolute_error() == pytest.approx(0.5)
        assert mechanism.variance() == pytest.approx(0.5)

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            LaplaceMechanism(epsilon=0.0)
        with pytest.raises(ValueError):
            LaplaceMechanism(epsilon=1.0, sensitivity=-1.0)

    def test_privacy_loss_ratio_bounded_empirically(self, rng):
        """Histogram of noisy outputs on neighbouring values respects exp(eps)."""
        epsilon = 1.0
        mechanism = LaplaceMechanism(epsilon=epsilon, sensitivity=1.0)
        samples_a = np.array([mechanism.add_noise(0.0, rng=rng) for _ in range(40_000)])
        samples_b = np.array([mechanism.add_noise(1.0, rng=rng) for _ in range(40_000)])
        bins = np.linspace(-4, 5, 19)
        hist_a, _ = np.histogram(samples_a, bins=bins)
        hist_b, _ = np.histogram(samples_b, bins=bins)
        mask = (hist_a > 200) & (hist_b > 200)
        ratios = hist_a[mask] / hist_b[mask]
        # Allow generous statistical slack above exp(eps).
        assert np.all(ratios < np.exp(epsilon) * 1.35)
        assert np.all(ratios > np.exp(-epsilon) / 1.35)


class TestGeometricMechanism:
    def test_noise_is_integer(self, rng):
        assert isinstance(geometric_noise(1.0, rng=rng), int)

    def test_array_of_integers(self, rng):
        values = geometric_noise(1.0, size=10, rng=rng)
        assert values.shape == (10,)
        assert np.issubdtype(values.dtype, np.integer)

    def test_add_noise_returns_int_for_scalars(self, rng):
        mechanism = GeometricMechanism(epsilon=1.0)
        assert isinstance(mechanism.add_noise(5, rng=rng), int)

    def test_expected_absolute_error_decreases_with_epsilon(self):
        loose = GeometricMechanism(epsilon=0.1).expected_absolute_error()
        tight = GeometricMechanism(epsilon=2.0).expected_absolute_error()
        assert tight < loose

    def test_empirical_mean_near_zero(self, rng):
        samples = geometric_noise(1.0, size=100_000, rng=rng)
        assert abs(np.mean(samples)) < 0.05

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            geometric_noise(0.0)
        with pytest.raises(ValueError):
            GeometricMechanism(epsilon=-1.0)
