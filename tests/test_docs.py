"""Documentation health: intra-repo links resolve, public surface is
docstringed and doctested.

CI runs the same checks standalone (``tools/check_links.py`` plus ``pytest
--doctest-modules`` in the docs job); these tests keep them enforced in the
tier-1 suite so a broken link or an undocumented public symbol fails fast
locally too.
"""

from __future__ import annotations

import doctest
import importlib
import inspect
import pathlib
import pkgutil
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "tools") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_links  # noqa: E402

#: The packages (or plain modules) whose public surface must be documented
#: (repro.api, repro.queries and repro.serve from the serving PR;
#: repro.continual from the continual-observation PR; repro.stream.scenarios
#: from the scenario-engine PR).
DOCUMENTED_PACKAGES = (
    "repro.api",
    "repro.queries",
    "repro.serve",
    "repro.continual",
    "repro.ingest",
    "repro.stream.scenarios",
)


def _iter_modules(package_name: str):
    package = importlib.import_module(package_name)
    yield package
    # Plain modules (e.g. repro.stream.scenarios) have no __path__ to walk.
    for info in pkgutil.iter_modules(getattr(package, "__path__", ()),
                                     prefix=package_name + "."):
        yield importlib.import_module(info.name)


class TestIntraRepoLinks:
    def test_readme_and_docs_links_resolve(self):
        errors = check_links.check_paths(
            [REPO_ROOT / "README.md", REPO_ROOT / "docs", REPO_ROOT / "ROADMAP.md"]
        )
        assert errors == []

    def test_checker_catches_broken_target(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("see [missing](./nope.md) and [ok](./page.md)")
        errors = check_links.check_file(page)
        assert len(errors) == 1 and "nope.md" in errors[0]

    def test_checker_catches_broken_anchor(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("# Real Heading\n\n[bad](#missing-heading) [good](#real-heading)")
        errors = check_links.check_file(page)
        assert len(errors) == 1 and "missing-heading" in errors[0]

    def test_checker_skips_external_and_code_blocks(self, tmp_path):
        page = tmp_path / "page.md"
        page.write_text(
            "[site](https://example.com/x)\n```\n[fake](./inside-code.md)\n```\n"
        )
        assert check_links.check_file(page) == []

    def test_architecture_doc_exists_and_names_the_boundary(self):
        text = (REPO_ROOT / "docs" / "ARCHITECTURE.md").read_text()
        assert "PRIVACY BOUNDARY" in text
        assert "repro.serve" in text


class TestPublicSurfaceIsDocumented:
    @pytest.mark.parametrize("package_name", DOCUMENTED_PACKAGES)
    def test_every_public_symbol_has_a_docstring(self, package_name):
        undocumented = []
        for module in _iter_modules(package_name):
            if not (module.__doc__ or "").strip():
                undocumented.append(module.__name__)
            for name in getattr(module, "__all__", []):
                member = getattr(module, name)
                if inspect.isclass(member) or inspect.isfunction(member):
                    if not (inspect.getdoc(member) or "").strip():
                        undocumented.append(f"{module.__name__}.{name}")
        assert undocumented == []

    @pytest.mark.parametrize("package_name", DOCUMENTED_PACKAGES)
    def test_every_module_carries_runnable_examples(self, package_name):
        """Each non-package module must define at least one doctest (the CI
        docs job executes them; this pins that they exist at all)."""
        finder = doctest.DocTestFinder(exclude_empty=True)
        missing = []
        for module in _iter_modules(package_name):
            # Package __init__ modules only re-export; plain modules must
            # still carry their own examples.
            if module.__name__ == package_name and hasattr(module, "__path__"):
                continue
            examples = [test for test in finder.find(module) if test.examples]
            if not examples:
                missing.append(module.__name__)
        assert missing == []

    def test_doctests_in_documented_packages_pass(self):
        """A cheap in-suite doctest sweep of the lightweight modules (the CI
        docs job runs the full --doctest-modules pass)."""
        for module_name in (
            "repro.queries.support",
            "repro.serve.cache",
            "repro.serve.batch",
            "repro.experiments.runner",
            "repro.stream.generators",
            "repro.stream.scenarios",
        ):
            module = importlib.import_module(module_name)
            result = doctest.testmod(module, verbose=False)
            assert result.failed == 0, module_name


class TestMatrixRunnerDocs:
    """The experiment-matrix runner is public surface: documented + doctested
    (it lives in ``repro.experiments``, which is otherwise internal plumbing,
    so it gets targeted coverage instead of package-wide enforcement)."""

    MODULES = ("repro.experiments.runner", "repro.stream.generators")

    @pytest.mark.parametrize("module_name", MODULES)
    def test_public_surface_has_docstrings(self, module_name):
        module = importlib.import_module(module_name)
        assert (module.__doc__ or "").strip()
        undocumented = []
        for name in module.__all__:
            member = getattr(module, name)
            if inspect.isclass(member) or inspect.isfunction(member):
                if not (inspect.getdoc(member) or "").strip():
                    undocumented.append(f"{module_name}.{name}")
        assert undocumented == []

    @pytest.mark.parametrize("module_name", MODULES)
    def test_module_carries_runnable_examples(self, module_name):
        module = importlib.import_module(module_name)
        finder = doctest.DocTestFinder(exclude_empty=True)
        examples = [test for test in finder.find(module) if test.examples]
        assert examples

    def test_architecture_doc_covers_the_matrix_runner(self):
        text = (REPO_ROOT / "docs" / "ARCHITECTURE.md").read_text()
        assert "Experiment matrix" in text
        assert "results.jsonl" in text
