"""Tests for the experiment-matrix runner (spec, store, parallel execution).

The contracts pinned here are the ones CI relies on:

* results are byte-identical for any worker count (all randomness is keyed
  by cell coordinates, never by scheduling order);
* ``--resume`` skips completed cells and completes the grid to the exact
  same bytes and aggregate a fresh run produces;
* malformed specs are rejected with clear errors before any cell runs;
* the smoke accuracy-ordering gate detects violations.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.experiments.runner import (
    AxisEntry,
    MatrixCellError,
    MatrixSpec,
    MatrixSpecError,
    ResultStore,
    aggregate_records,
    check_smoke_ordering,
    dataset_for,
    execute_cell,
    load_spec,
    run_matrix,
    smoke_spec,
)


def small_spec(**overrides) -> MatrixSpec:
    """A 4-cell grid that runs in well under a second."""
    base = dict(
        name="tiny",
        methods=(
            "nonprivate",
            {"name": "privhp", "label": "privhp-k4", "params": {"pruning_k": 4}},
        ),
        domains=("interval",),
        generators=("gaussian_mixture",),
        epsilons=(1.0,),
        stream_sizes=(192,),
        trials=2,
        base_seed=7,
    )
    base.update(overrides)
    return MatrixSpec(**base)


class TestMatrixSpec:
    def test_round_trips_through_json_document(self):
        spec = small_spec()
        assert MatrixSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec

    def test_cells_cover_the_product_with_unique_keys(self):
        spec = small_spec(epsilons=(0.5, 2.0), trials=3)
        cells = spec.cells()
        assert len(cells) == 2 * 2 * 3  # methods x epsilons x trials
        assert len({cell.key for cell in cells}) == len(cells)
        # trial varies fastest within a grid point
        assert [cell.trial for cell in cells[:3]] == [0, 1, 2]

    def test_same_dataset_for_every_method_at_a_grid_point(self):
        spec = small_spec()
        cells = spec.cells()
        by_method = {}
        for cell in cells:
            if cell.trial == 0:
                by_method[cell.method.label] = cell.dataset_coords
        assert len(set(by_method.values())) == 1
        first = dataset_for(spec, trial=0)
        again = dataset_for(spec, trial=0)
        np.testing.assert_array_equal(first, again)
        other_trial = dataset_for(spec, trial=1)
        assert not np.array_equal(first, other_trial)

    @pytest.mark.parametrize("mutation,needle", [
        (dict(methods=("no-such-method",)), "unknown method"),
        (dict(generators=("no-such-generator",)), "unknown generator"),
        (dict(domains=("hyperwhat:3",)), "bad domain spec"),
        (dict(domains=("auto",)), "auto"),
        (dict(epsilons=(0.0,)), "positive"),
        (dict(epsilons=("abc",)), "numbers"),
        (dict(stream_sizes=(0,)), "positive integer"),
        (dict(trials=0), "positive integer"),
        (dict(methods=()), "non-empty"),
        (dict(name="  "), "non-empty"),
    ])
    def test_bad_axis_values_are_rejected(self, mutation, needle):
        with pytest.raises(MatrixSpecError, match=needle):
            small_spec(**mutation)

    def test_duplicate_labels_are_rejected(self):
        with pytest.raises(MatrixSpecError, match="duplicate"):
            small_spec(methods=("privhp", "privhp"))
        with pytest.raises(MatrixSpecError, match="distinct labels"):
            small_spec(methods=(
                {"name": "privhp", "params": {"pruning_k": 2}},
                {"name": "privhp", "params": {"pruning_k": 4}},
            ))

    def test_axis_entry_with_unknown_fields_is_rejected(self):
        with pytest.raises(MatrixSpecError, match="unknown field"):
            AxisEntry.parse({"name": "privhp", "extra": 1}, "methods")
        with pytest.raises(MatrixSpecError, match="params"):
            AxisEntry.parse({"name": "privhp", "params": [1, 2]}, "methods")

    def test_from_dict_rejects_unknown_and_missing_fields(self):
        document = small_spec().to_dict()
        document["typo_field"] = 1
        with pytest.raises(MatrixSpecError, match="typo_field"):
            MatrixSpec.from_dict(document)
        with pytest.raises(MatrixSpecError, match="missing required"):
            MatrixSpec.from_dict({"name": "x"})
        with pytest.raises(MatrixSpecError, match="JSON object"):
            MatrixSpec.from_dict([1, 2])

    def test_load_spec_errors_are_clear(self, tmp_path):
        missing = tmp_path / "missing.json"
        with pytest.raises(MatrixSpecError, match="cannot read"):
            load_spec(missing)
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(MatrixSpecError, match="not valid JSON"):
            load_spec(bad)
        listy = tmp_path / "list.json"
        listy.write_text("[1, 2]")
        with pytest.raises(MatrixSpecError, match="JSON object"):
            load_spec(listy)

    def test_smoke_spec_is_valid_and_small(self):
        spec = smoke_spec()
        assert len(spec.cells()) <= 16
        assert {entry.label for entry in spec.methods} >= {"nonprivate", "privhp", "smooth"}


class TestCellExecution:
    def test_cell_failure_names_the_cell(self):
        spec = small_spec(methods=(
            {"name": "smooth", "params": {"bogus_parameter": 3}},
        ))
        cell = spec.cells()[0]
        with pytest.raises(MatrixCellError, match="method=smooth.*bogus_parameter"):
            execute_cell(cell.payload())

    def test_row_is_deterministic_and_timing_is_separate(self):
        cell = small_spec().cells()[0]
        first = execute_cell(cell.payload())
        second = execute_cell(cell.payload())
        assert first["row"] == second["row"]
        assert "fit_seconds" not in first["row"]
        assert set(first["timing"]) == {"key", "fit_seconds", "sample_seconds"}


class TestWorkerInvariance:
    def test_results_jsonl_byte_identical_for_any_worker_count(self, tmp_path):
        spec = small_spec()
        run_matrix(spec, out_dir=tmp_path / "w1", workers=1)
        run_matrix(spec, out_dir=tmp_path / "w4", workers=4)
        serial = (tmp_path / "w1" / "results.jsonl").read_bytes()
        parallel = (tmp_path / "w4" / "results.jsonl").read_bytes()
        assert serial == parallel
        assert (
            (tmp_path / "w1" / "aggregate.json").read_bytes()
            == (tmp_path / "w4" / "aggregate.json").read_bytes()
        )

    def test_in_memory_run_matches_store_run(self, tmp_path):
        spec = small_spec()
        stored = run_matrix(spec, out_dir=tmp_path / "store", workers=1)
        in_memory = run_matrix(spec, workers=1)
        drop = {"fit_seconds", "sample_seconds"}
        trim = lambda rows: [
            {k: v for k, v in row.items() if k not in drop} for row in rows
        ]
        assert trim(stored["aggregate"]) == trim(in_memory["aggregate"])


class TestResume:
    def test_resume_skips_completed_and_reproduces_identical_output(self, tmp_path):
        spec = small_spec()
        full_dir = tmp_path / "full"
        run_matrix(spec, out_dir=full_dir, workers=1)
        full_bytes = (full_dir / "results.jsonl").read_bytes()

        partial_dir = tmp_path / "partial"
        partial_dir.mkdir()
        lines = full_bytes.decode().splitlines()
        (partial_dir / "results.jsonl").write_text("\n".join(lines[:1]) + "\n")
        (partial_dir / "spec.json").write_text((full_dir / "spec.json").read_text())

        resumed = run_matrix(spec, out_dir=partial_dir, workers=1, resume=True)
        assert resumed["skipped"] == 1
        assert resumed["executed"] == len(spec.cells()) - 1
        assert (partial_dir / "results.jsonl").read_bytes() == full_bytes
        assert (
            (partial_dir / "aggregate.json").read_bytes()
            == (full_dir / "aggregate.json").read_bytes()
        )

    def test_resume_of_a_complete_store_runs_nothing(self, tmp_path):
        spec = small_spec()
        run_matrix(spec, out_dir=tmp_path, workers=1)
        again = run_matrix(spec, out_dir=tmp_path, workers=1, resume=True)
        assert again["executed"] == 0
        assert again["skipped"] == len(spec.cells())

    def test_nonempty_store_without_resume_is_an_error(self, tmp_path):
        spec = small_spec()
        run_matrix(spec, out_dir=tmp_path, workers=1)
        with pytest.raises(ValueError, match="--resume"):
            run_matrix(spec, out_dir=tmp_path, workers=1)

    def test_store_refuses_a_different_spec(self, tmp_path):
        run_matrix(small_spec(), out_dir=tmp_path, workers=1)
        different = small_spec(epsilons=(2.0,))
        with pytest.raises(ValueError, match="different"):
            run_matrix(different, out_dir=tmp_path, workers=1, resume=True)

    def test_corrupt_store_line_is_reported(self, tmp_path):
        (tmp_path / "results.jsonl").write_text('{"key": "a"}\nnot json\n')
        with pytest.raises(ValueError, match="line 2"):
            ResultStore(tmp_path)

    def test_truncated_final_line_is_discarded_and_cell_reruns(self, tmp_path):
        spec = small_spec()
        full_dir = tmp_path / "full"
        run_matrix(spec, out_dir=full_dir, workers=1)
        full_bytes = (full_dir / "results.jsonl").read_bytes()

        crashed_dir = tmp_path / "crashed"
        crashed_dir.mkdir()
        lines = full_bytes.decode().splitlines()
        # Simulate a kill mid-append: one complete line plus half of another.
        (crashed_dir / "results.jsonl").write_text(
            lines[0] + "\n" + lines[1][: len(lines[1]) // 2]
        )
        (crashed_dir / "spec.json").write_text((full_dir / "spec.json").read_text())

        store = ResultStore(crashed_dir)
        assert len(store.completed_keys()) == 1
        resumed = run_matrix(spec, out_dir=crashed_dir, workers=1, resume=True)
        assert resumed["executed"] == len(spec.cells()) - 1
        assert (crashed_dir / "results.jsonl").read_bytes() == full_bytes


class TestAggregation:
    def test_mean_and_stderr_over_trials(self):
        records = [
            {"method": "PrivHP", "method_label": "privhp", "domain": "interval",
             "generator": "g", "epsilon": 1.0, "n": 64, "trial": t,
             "wasserstein": w, "memory_words": 100 + t}
            for t, w in enumerate((0.1, 0.3))
        ]
        rows = aggregate_records(records)
        assert len(rows) == 1
        row = rows[0]
        assert row["trials"] == 2
        assert row["wasserstein"] == pytest.approx(0.2)
        assert row["wasserstein_std"] == pytest.approx(0.1)
        assert row["wasserstein_stderr"] == pytest.approx(0.1 / np.sqrt(2))
        assert row["memory_words"] == 101

    def test_rows_sorted_independently_of_record_order(self):
        def record(label, epsilon):
            return {"method": label, "method_label": label, "domain": "interval",
                    "generator": "g", "epsilon": epsilon, "n": 64, "trial": 0,
                    "wasserstein": 0.1, "memory_words": 1}
        forward = aggregate_records([record("a", 1.0), record("b", 0.5)])
        backward = aggregate_records([record("b", 0.5), record("a", 1.0)])
        assert forward == backward
        assert [row["epsilon"] for row in forward] == [0.5, 1.0]


class TestSmokeOrderingGate:
    @staticmethod
    def _row(method, wasserstein):
        return {"method": method, "domain": "interval", "generator": "g",
                "epsilon": 1.0, "n": 64, "wasserstein": wasserstein}

    def test_clean_ordering_passes(self):
        rows = [self._row("nonprivate", 0.01), self._row("privhp", 0.05),
                self._row("smooth", 0.08)]
        assert check_smoke_ordering(rows) == []

    def test_privhp_worse_than_smooth_is_flagged(self):
        rows = [self._row("privhp", 0.09), self._row("smooth", 0.08)]
        violations = check_smoke_ordering(rows)
        assert len(violations) == 1 and "PrivHP" in violations[0]

    def test_floor_above_private_is_flagged(self):
        rows = [self._row("nonprivate", 0.10), self._row("privhp", 0.05),
                self._row("smooth", 0.20)]
        violations = check_smoke_ordering(rows)
        assert len(violations) == 1 and "floor" in violations[0]


class TestMatrixCLI:
    def _write_spec(self, tmp_path) -> pathlib.Path:
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(small_spec().to_dict()))
        return path

    def test_cli_runs_a_spec_file(self, tmp_path, capsys):
        spec_path = self._write_spec(tmp_path)
        out_dir = tmp_path / "out"
        code = cli_main(["matrix", str(spec_path), "--out", str(out_dir), "--quiet"])
        assert code == 0
        for artifact in ("results.jsonl", "aggregate.json", "aggregate.csv", "spec.json"):
            assert (out_dir / artifact).exists()
        assert "4 cell(s) executed" in capsys.readouterr().out

    def test_cli_resume_completes_without_rerunning(self, tmp_path, capsys):
        spec_path = self._write_spec(tmp_path)
        out_dir = tmp_path / "out"
        assert cli_main(["matrix", str(spec_path), "--out", str(out_dir), "--quiet"]) == 0
        assert cli_main([
            "matrix", str(spec_path), "--out", str(out_dir), "--resume", "--quiet"
        ]) == 0
        assert "4 resumed" in capsys.readouterr().out

    def test_cli_rejects_rerun_without_resume(self, tmp_path):
        spec_path = self._write_spec(tmp_path)
        out_dir = tmp_path / "out"
        assert cli_main(["matrix", str(spec_path), "--out", str(out_dir), "--quiet"]) == 0
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["matrix", str(spec_path), "--out", str(out_dir), "--quiet"])
        assert excinfo.value.code == 2

    def test_cli_requires_spec_or_smoke(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["matrix", "--out", str(tmp_path)])
        assert excinfo.value.code == 2
        spec_path = self._write_spec(tmp_path)
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["matrix", str(spec_path), "--smoke", "--out", str(tmp_path / "x")])
        assert excinfo.value.code == 2

    def test_cli_rejects_malformed_spec_file(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["matrix", str(bad), "--out", str(tmp_path / "out")])
        assert excinfo.value.code == 2
