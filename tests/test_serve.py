"""Tests for the query-serving subsystem (repro.serve) and the Release
query surface.

The acceptance property pinned here: HTTP and batch answers are
byte-identical to in-process engine answers on the same release, across all
five domains -- every transport funnels through one evaluation path.
"""

from __future__ import annotations

import contextlib
import json
import socket
import struct
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.api.builder import PrivHPBuilder
from repro.api.release import Release
from repro.cli import main as cli_main
from repro.queries.quantiles import QuantileEngine
from repro.queries.range_queries import RangeQueryEngine
from repro.queries.support import QUERY_TYPES, supported_queries
from repro.serve.batch import load_workload, run_workload, run_workload_file
from repro.serve.cache import QueryCache
from repro.serve.http import create_server, start_worker_pool
from repro.serve.service import QueryService, answer_query, normalize_query, query_key
from repro.serve.store import ReleaseStore


# --------------------------------------------------------------------------- #
# fitted releases for every domain (small streams keep this fast)
# --------------------------------------------------------------------------- #
def _fit(domain_spec: str, data) -> Release:
    return (
        PrivHPBuilder(domain_spec)
        .epsilon(1.0)
        .pruning_k(4)
        .stream_size(len(data))
        .seed(3)
        .build()
        .update_batch(data)
        .release()
    )


@pytest.fixture(scope="module")
def releases() -> dict[str, Release]:
    rng = np.random.default_rng(7)
    size = 2000
    geo_points = np.column_stack(
        [rng.uniform(24.0, 49.0, size), rng.uniform(-125.0, -66.0, size)]
    )
    return {
        "interval": _fit("interval", rng.beta(2.0, 5.0, size)),
        "hypercube": _fit("hypercube:2", rng.random((size, 2))),
        "ipv4": _fit("ipv4", rng.integers(0, 2**32, size)),
        "geo": _fit("geo:24,49,-125,-66", geo_points),
        # 4096 keeps the universe deeper than the paper-default hierarchy
        # depth at n=2000 (a 1024 universe has zero-diameter levels there).
        "discrete": _fit("discrete:4096", rng.integers(0, 4096, size)),
    }


#: One representative query per supported type, per domain.
DOMAIN_QUERIES = {
    "interval": [
        {"type": "mass", "lower": 0.2, "upper": 0.6},
        {"type": "range_count", "lower": 0.0, "upper": 0.5},
        {"type": "cdf", "point": 0.3},
        {"type": "quantile", "q": 0.5},
        {"type": "quantile", "q": [0.25, 0.5, 0.75]},
    ],
    "hypercube": [
        {"type": "mass", "lower": [0.1, 0.2], "upper": [0.6, 0.9]},
        {"type": "range_count", "lower": [0.0, 0.0], "upper": [0.5, 0.5]},
        {"type": "marginal", "axis": 0, "bins": 8},
    ],
    "ipv4": [
        {"type": "mass", "lower": 0, "upper": 2**31},
        {"type": "range_count", "lower": 2**20, "upper": 2**30},
        {"type": "cdf", "point": 2**31},
        {"type": "quantile", "q": 0.5},
    ],
    "geo": [
        {"type": "mass", "lower": [30.0, -120.0], "upper": [45.0, -80.0]},
        {"type": "range_count", "lower": [24.0, -125.0], "upper": [49.0, -66.0]},
        {"type": "marginal", "axis": 1, "bins": 4},
    ],
    "discrete": [
        {"type": "mass", "lower": 100, "upper": 2000},
        {"type": "range_count", "lower": 0, "upper": 4095},
        {"type": "cdf", "point": 2048},
        {"type": "quantile", "q": 0.9},
    ],
}


def _engine_answer(release: Release, query: dict):
    """The ground-truth answer straight from the repro.queries engines."""
    engine = RangeQueryEngine(release.tree, release.domain)
    if query["type"] == "mass":
        return engine.mass(query["lower"], query["upper"])
    if query["type"] == "range_count":
        return engine.count(query["lower"], query["upper"])
    if query["type"] == "cdf":
        return engine.cdf(query["point"])
    if query["type"] == "quantile":
        quantile_engine = QuantileEngine(release.tree, release.domain)
        q = query["q"]
        if isinstance(q, list):
            return [value.item() if hasattr(value, "item") else value
                    for value in quantile_engine.quantiles(q)]
        value = quantile_engine.quantile(q)
        return value.item() if hasattr(value, "item") else value
    return [float(v) for v in engine.marginal(query["axis"], bins=query["bins"])]


# --------------------------------------------------------------------------- #
# QueryCache
# --------------------------------------------------------------------------- #
class TestQueryCache:
    def test_lookup_computes_once(self):
        cache = QueryCache(maxsize=4)
        calls = []
        assert cache.lookup("k", lambda: calls.append(1) or 42) == 42
        assert cache.lookup("k", lambda: calls.append(1) or 43) == 42
        assert len(calls) == 1

    def test_stats_track_hits_and_misses(self):
        cache = QueryCache(maxsize=4)
        cache.lookup("a", lambda: 1)
        cache.lookup("a", lambda: 1)
        cache.lookup("b", lambda: 2)
        stats = cache.stats()
        assert (stats["hits"], stats["misses"], stats["size"]) == (1, 2, 2)
        assert stats["hit_rate"] == pytest.approx(1 / 3)

    def test_lru_eviction(self):
        cache = QueryCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh 'a'; 'b' is now least recent
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3

    def test_clear_resets_everything(self):
        cache = QueryCache(maxsize=2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["hits"] == 0 and cache.stats()["misses"] == 0

    def test_rejects_nonpositive_maxsize(self):
        with pytest.raises(ValueError, match="maxsize"):
            QueryCache(maxsize=0)


# --------------------------------------------------------------------------- #
# query normalisation and the Release query surface
# --------------------------------------------------------------------------- #
class TestNormalizeQuery:
    def test_unknown_type_rejected(self, releases):
        with pytest.raises(ValueError, match="unknown query type"):
            normalize_query(releases["interval"], {"type": "median"})

    def test_unsupported_type_for_domain_rejected(self, releases):
        with pytest.raises(ValueError, match="not supported on GeoDomain"):
            normalize_query(releases["geo"], {"type": "quantile", "q": 0.5})
        with pytest.raises(ValueError, match="not supported on UnitInterval"):
            normalize_query(releases["interval"], {"type": "marginal", "axis": 0})

    def test_missing_parameters_rejected(self, releases):
        with pytest.raises(ValueError, match="lower"):
            normalize_query(releases["interval"], {"type": "mass", "upper": 1.0})
        with pytest.raises(ValueError, match="requires q"):
            normalize_query(releases["interval"], {"type": "quantile"})
        with pytest.raises(ValueError, match="requires point"):
            normalize_query(releases["interval"], {"type": "cdf"})
        with pytest.raises(ValueError, match="requires axis"):
            normalize_query(releases["hypercube"], {"type": "marginal"})

    def test_non_dict_rejected(self, releases):
        with pytest.raises(ValueError, match="JSON object"):
            normalize_query(releases["interval"], [1, 2])

    def test_canonical_form_is_spelling_independent(self, releases):
        release = releases["hypercube"]
        a = normalize_query(release, {"type": "mass", "lower": (0.1, 0.2), "upper": [0.5, 0.5]})
        b = normalize_query(release, {"type": "mass", "lower": [0.1, 0.2], "upper": (0.5, 0.5)})
        assert query_key("r", a) == query_key("r", b)

    def test_marginal_default_bins(self, releases):
        canonical = normalize_query(releases["hypercube"], {"type": "marginal", "axis": 1})
        assert canonical["bins"] == 32


class TestReleaseQuerySurface:
    def test_engines_are_lazy_and_cached(self, releases):
        release = releases["interval"]
        assert release.range_engine() is release.range_engine()
        assert release.quantile_engine() is release.quantile_engine()

    def test_supported_queries_match_support_table(self, releases):
        for release in releases.values():
            assert release.supported_queries() == supported_queries(release.domain)
            for query_type in release.supported_queries():
                assert query_type in QUERY_TYPES

    @pytest.mark.parametrize("name", sorted(DOMAIN_QUERIES))
    def test_release_methods_match_engines(self, releases, name):
        release = releases[name]
        for query in DOMAIN_QUERIES[name]:
            assert answer_query(release, query) == _engine_answer(release, query)

    def test_quantile_engine_rejected_on_vector_domains(self, releases):
        with pytest.raises(TypeError, match="ordered domain"):
            releases["hypercube"].quantile(0.5)

    def test_ipv4_accepts_dotted_quad_bounds(self, releases):
        release = releases["ipv4"]
        by_string = release.mass("0.0.0.0", "128.0.0.0")
        by_int = release.mass(0, 2**31)
        assert by_string == by_int


# --------------------------------------------------------------------------- #
# ReleaseStore
# --------------------------------------------------------------------------- #
class TestReleaseStore:
    def test_scans_directory_and_loads_lazily(self, tmp_path, releases):
        releases["interval"].save(tmp_path / "alpha.json")
        releases["ipv4"].save(tmp_path / "beta.json")
        store = ReleaseStore(tmp_path)
        assert store.names() == ["alpha", "beta"]
        assert store._loaded == {}  # nothing loaded yet
        assert store.get("alpha").mass(0.0, 1.0) == pytest.approx(1.0)
        assert "alpha" in store._loaded and "beta" not in store._loaded
        assert store.get("alpha") is store.get("alpha")

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="does not exist"):
            ReleaseStore(tmp_path / "nope")

    def test_unknown_name_is_keyerror(self, tmp_path, releases):
        releases["interval"].save(tmp_path / "only.json")
        store = ReleaseStore(tmp_path)
        with pytest.raises(KeyError, match="unknown release"):
            store.get("other")

    def test_invalid_file_is_valueerror_and_listed_with_error(self, tmp_path, releases):
        releases["interval"].save(tmp_path / "good.json")
        (tmp_path / "bad.json").write_text("{not json")
        store = ReleaseStore(tmp_path)
        with pytest.raises(ValueError, match="not valid JSON"):
            store.get("bad")
        rows = {row["name"]: row for row in store.describe()}
        assert "error" in rows["bad"] and rows["good"]["domain"] == "UnitInterval"
        assert rows["good"]["queries"] == list(supported_queries(releases["interval"].domain))

    def test_refresh_picks_up_new_and_dropped_files(self, tmp_path, releases):
        store = ReleaseStore(tmp_path)
        assert store.names() == []
        releases["interval"].save(tmp_path / "late.json")
        assert store.refresh() == ["late"]
        store.get("late")
        (tmp_path / "late.json").unlink()
        assert store.refresh() == []
        with pytest.raises(KeyError):
            store.get("late")

    def test_domain_routing(self, tmp_path, releases):
        releases["interval"].save(tmp_path / "scalar.json")
        releases["ipv4"].save(tmp_path / "addresses.json")
        store = ReleaseStore(tmp_path)
        assert store.names_for_domain("IPv4Domain") == ["addresses"]
        name, release = store.resolve(domain="unitinterval")
        assert name == "scalar" and isinstance(release, Release)
        with pytest.raises(KeyError, match="matches no release"):
            store.resolve(domain="Hypercube")

    def test_domain_routing_skips_invalid_files(self, tmp_path, releases):
        releases["interval"].save(tmp_path / "good.json")
        (tmp_path / "workload.json").write_text("[1, 2, 3]")  # legit non-release JSON
        store = ReleaseStore(tmp_path)
        assert store.names_for_domain("UnitInterval") == ["good"]
        name, _ = store.resolve(domain="UnitInterval")
        assert name == "good"

    def test_ambiguous_domain_routing_rejected(self, tmp_path, releases):
        releases["interval"].save(tmp_path / "one.json")
        releases["interval"].save(tmp_path / "two.json")
        store = ReleaseStore(tmp_path)
        with pytest.raises(ValueError, match="ambiguous"):
            store.resolve(domain="UnitInterval")

    def test_in_memory_add(self, releases):
        store = ReleaseStore()
        store.add("mem", releases["interval"])
        assert "mem" in store and len(store) == 1
        assert store.get("mem") is releases["interval"]

    def test_refresh_keeps_in_memory_releases(self, tmp_path, releases):
        store = ReleaseStore(tmp_path)
        store.add("mem", releases["interval"])
        assert store.refresh() == ["mem"]
        assert store.get("mem") is releases["interval"]


# --------------------------------------------------------------------------- #
# QueryService
# --------------------------------------------------------------------------- #
class TestQueryService:
    def _service(self, releases, names=("interval",)):
        store = ReleaseStore()
        for name in names:
            store.add(name, releases[name])
        return QueryService(store)

    def test_answers_match_engines_and_cache(self, releases):
        service = self._service(releases)
        query = {"type": "mass", "lower": 0.2, "upper": 0.6}
        first = service.answer(query, release="interval")
        second = service.answer(query, release="interval")
        assert first["answer"] == _engine_answer(releases["interval"], query)
        assert (first["cached"], second["cached"]) == (False, True)
        assert second["answer"] == first["answer"]

    def test_single_release_store_needs_no_routing(self, releases):
        service = self._service(releases)
        result = service.answer({"type": "cdf", "point": 0.5})
        assert result["release"] == "interval"

    def test_multi_release_store_requires_routing(self, releases):
        service = self._service(releases, names=("interval", "ipv4"))
        with pytest.raises(ValueError, match="by 'release' name or 'domain'"):
            service.answer({"type": "cdf", "point": 0.5})
        result = service.answer({"type": "cdf", "point": 2**31}, domain="IPv4Domain")
        assert result["release"] == "ipv4"

    def test_int_and_float_spellings_share_a_cache_entry(self, releases):
        service = self._service(releases)
        first = service.answer({"type": "mass", "lower": 0, "upper": 1})
        second = service.answer({"type": "mass", "lower": 0.0, "upper": 1.0})
        assert second["cached"] is True
        assert second["answer"] == first["answer"]

    def test_stats_counts_releases_and_cache(self, releases):
        service = self._service(releases)
        service.answer({"type": "quantile", "q": 0.5})
        stats = service.stats()
        assert stats["releases"] == 1 and stats["cache"]["misses"] == 1


# --------------------------------------------------------------------------- #
# transports: batch and HTTP are byte-identical to in-process engines
# --------------------------------------------------------------------------- #
@contextlib.contextmanager
def _running_server(store: ReleaseStore):
    server = create_server(store, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{server.server_port}"
    finally:
        server.shutdown()
        server.server_close()


def _post(url: str, payload: dict):
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode(), headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request) as response:
        return json.loads(response.read())


class TestTransportsAreByteIdentical:
    @pytest.mark.parametrize("name", sorted(DOMAIN_QUERIES))
    def test_batch_matches_engines(self, tmp_path, releases, name):
        release = releases[name]
        release_path = tmp_path / f"{name}.json"
        release.save(release_path)
        workload_path = tmp_path / "workload.json"
        workload_path.write_text(json.dumps(DOMAIN_QUERIES[name]))

        document = run_workload_file(release_path, workload_path)
        loaded = Release.load(release_path)
        assert document["num_queries"] == len(DOMAIN_QUERIES[name])
        for query, row in zip(DOMAIN_QUERIES[name], document["results"]):
            expected = _engine_answer(loaded, query)
            assert row["answer"] == expected
            # byte-identical once serialised, too
            assert json.dumps(row["answer"]) == json.dumps(expected)

    def test_http_matches_engines_across_all_domains(self, tmp_path, releases):
        for name, release in releases.items():
            release.save(tmp_path / f"{name}.json")
        store = ReleaseStore(tmp_path)
        with _running_server(store) as base:
            for name, queries in sorted(DOMAIN_QUERIES.items()):
                loaded = store.get(name)
                for query in queries:
                    result = _post(base + "/query", {"release": name, "query": query})
                    expected = _engine_answer(loaded, query)
                    assert result["answer"] == expected, (name, query)
                    assert json.dumps(result["answer"]) == json.dumps(expected)

    def test_http_batch_route_and_cache_flag(self, tmp_path, releases):
        releases["interval"].save(tmp_path / "only.json")
        with _running_server(ReleaseStore(tmp_path)) as base:
            payload = {"release": "only", "queries": DOMAIN_QUERIES["interval"]}
            first = _post(base + "/query", payload)
            second = _post(base + "/query", payload)
            assert [row["cached"] for row in first["results"]] == [False] * 5
            assert [row["cached"] for row in second["results"]] == [True] * 5
            assert [row["answer"] for row in first["results"]] == [
                row["answer"] for row in second["results"]
            ]

    def test_http_sampling_is_never_exposed(self, tmp_path, releases):
        # Serving is read-only post-processing: the only POST route is /query.
        releases["interval"].save(tmp_path / "only.json")
        with _running_server(ReleaseStore(tmp_path)) as base:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(base + "/sample", {"size": 10})
            assert excinfo.value.code == 404


class TestHTTPEndpoints:
    @pytest.fixture()
    def served(self, tmp_path, releases):
        releases["interval"].save(tmp_path / "scalar.json")
        releases["hypercube"].save(tmp_path / "plane.json")
        with _running_server(ReleaseStore(tmp_path)) as base:
            yield base

    def test_healthz(self, served):
        payload = json.loads(urllib.request.urlopen(served + "/healthz").read())
        assert payload == {"status": "ok", "releases": 2}

    def test_releases_listing(self, served):
        payload = json.loads(urllib.request.urlopen(served + "/releases").read())
        rows = {row["name"]: row for row in payload["releases"]}
        assert rows["scalar"]["domain"] == "UnitInterval"
        assert rows["plane"]["queries"] == ["mass", "range_count", "marginal"]

    def test_stats_reports_cache(self, served):
        _post(served + "/query", {"release": "scalar", "query": {"type": "cdf", "point": 0.5}})
        payload = json.loads(urllib.request.urlopen(served + "/stats").read())
        assert payload["cache"]["misses"] == 1

    @pytest.mark.parametrize(
        "payload, code, message",
        [
            ({"release": "missing", "query": {"type": "cdf", "point": 0.5}}, 404, "unknown release"),
            ({"release": "scalar", "query": {"type": "nope"}}, 400, "unknown query type"),
            ({"release": "scalar"}, 400, "'query' object or a 'queries' list"),
            ({"release": "scalar", "queries": {"type": "cdf"}}, 400, "must be a list"),
            ({"release": "scalar", "query": {"type": "marginal", "axis": 0}}, 400, "not supported"),
            # two releases served, so omitting the routing is a client error
            ({"query": {"type": "cdf", "point": 0.5}}, 400, "must address a release"),
        ],
    )
    def test_error_statuses(self, served, payload, code, message):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(served + "/query", payload)
        assert excinfo.value.code == code
        body = json.loads(excinfo.value.read())
        assert message in body["error"]

    def test_unknown_get_path_is_404(self, served):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(served + "/nope")
        assert excinfo.value.code == 404

    def test_invalid_json_body_is_400(self, served):
        request = urllib.request.Request(served + "/query", data=b"{oops")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400


# --------------------------------------------------------------------------- #
# batch workload files and the CLI
# --------------------------------------------------------------------------- #
class TestBatchWorkloads:
    def test_load_workload_accepts_list_and_object(self, tmp_path):
        queries = [{"type": "cdf", "point": 0.5}]
        (tmp_path / "list.json").write_text(json.dumps(queries))
        (tmp_path / "object.json").write_text(json.dumps({"queries": queries}))
        assert load_workload(tmp_path / "list.json") == queries
        assert load_workload(tmp_path / "object.json") == queries

    def test_load_workload_rejects_garbage(self, tmp_path):
        (tmp_path / "bad.json").write_text("{broken")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_workload(tmp_path / "bad.json")
        (tmp_path / "scalar.json").write_text("42")
        with pytest.raises(ValueError, match="must be a JSON list"):
            load_workload(tmp_path / "scalar.json")

    def test_run_workload_validates_each_query(self, releases):
        with pytest.raises(ValueError, match="unknown query type"):
            run_workload(releases["interval"], [{"type": "wat"}])

    def test_cli_query_prints_and_writes(self, tmp_path, releases, capsys):
        release_path = tmp_path / "release.json"
        releases["interval"].save(release_path)
        workload = tmp_path / "queries.json"
        workload.write_text(json.dumps(DOMAIN_QUERIES["interval"]))

        assert cli_main(["query", str(release_path), "--workload", str(workload)]) == 0
        printed = json.loads(capsys.readouterr().out)
        assert printed["num_queries"] == 5

        output = tmp_path / "answers.json"
        assert cli_main(
            ["query", str(release_path), "--workload", str(workload), "--output", str(output)]
        ) == 0
        written = json.loads(output.read_text())
        assert written["results"] == printed["results"]

    def test_cli_query_bad_workload_exits_cleanly(self, tmp_path, releases, capsys):
        release_path = tmp_path / "release.json"
        releases["interval"].save(release_path)
        workload = tmp_path / "queries.json"
        workload.write_text("{broken")
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["query", str(release_path), "--workload", str(workload)])
        assert excinfo.value.code == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_cli_serve_missing_store_exits_cleanly(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["serve", "--store", str(tmp_path / "nope"), "--port", "0"])
        assert excinfo.value.code == 2
        assert "does not exist" in capsys.readouterr().err


# --------------------------------------------------------------------------- #
# live snapshot serving (continual summarizers registered in a store)
# --------------------------------------------------------------------------- #
def _live_summarizer(n=3000, epsilon=5.0, seed=0):
    return (
        PrivHPBuilder("interval")
        .epsilon(epsilon)
        .pruning_k(4)
        .stream_size(n)
        .seed(seed)
        .continual()
        .build()
    )


class TestLiveServing:
    def test_register_live_requires_a_snapshot_source(self, releases):
        store = ReleaseStore()
        with pytest.raises(TypeError, match="snapshot"):
            store.register_live("bad", releases["interval"])
        with pytest.raises(ValueError):
            store.register_live("", _live_summarizer())

    def test_live_names_are_addressable_and_flagged(self):
        summarizer = _live_summarizer()
        summarizer.update_batch(np.random.default_rng(1).beta(2, 5, 1000))
        store = ReleaseStore()
        store.register_live("stream", summarizer)
        assert "stream" in store and store.names() == ["stream"]
        assert store.is_live("stream") and store.version_of("stream") == 1000
        info = store.info("stream")
        assert info["live"] is True and info["items_processed"] == 1000

    def test_snapshot_refreshes_only_when_stream_advances(self):
        summarizer = _live_summarizer()
        summarizer.update_batch(np.random.default_rng(1).beta(2, 5, 1000))
        store = ReleaseStore()
        store.register_live("stream", summarizer)
        first = store.get("stream")
        assert store.get("stream") is first  # unchanged stream: same snapshot
        summarizer.update_batch(np.random.default_rng(2).beta(2, 5, 500))
        second = store.get("stream")
        assert second is not first
        assert (first.items_processed, second.items_processed) == (1000, 1500)

    def test_cache_invalidated_when_stream_advances(self):
        summarizer = _live_summarizer()
        data = np.random.default_rng(3).beta(2, 5, 3000)
        summarizer.update_batch(data[:1500])
        store = ReleaseStore()
        store.register_live("stream", summarizer)
        service = QueryService(store)
        query = {"type": "mass", "lower": 0.0, "upper": 0.25}
        first = service.answer(query)
        repeat = service.answer(query)
        assert (first["cached"], repeat["cached"]) == (False, True)
        assert repeat["items_processed"] == 1500
        summarizer.update_batch(data[1500:])
        fresh = service.answer(query)
        assert fresh["cached"] is False  # the old memoized answer is dead
        assert fresh["items_processed"] == 3000
        assert service.answer(query)["cached"] is True

    def test_mid_stream_http_answers_match_in_process_snapshot(self):
        """Acceptance: an HTTP answer against a live stream is byte-identical
        to answering an in-process snapshot() of the same state."""
        summarizer = _live_summarizer()
        data = np.random.default_rng(4).beta(2, 5, 3000)
        summarizer.update_batch(data[:2000])
        store = ReleaseStore()
        store.register_live("stream", summarizer)
        queries = [
            {"type": "mass", "lower": 0.1, "upper": 0.6},
            {"type": "cdf", "point": 0.5},
            {"type": "quantile", "q": [0.25, 0.5, 0.75]},
            {"type": "range_count", "lower": 0.0, "upper": 1.0},
        ]
        with _running_server(store) as base:
            local = summarizer.snapshot()
            for query in queries:
                served = _post(base + "/query", {"release": "stream", "query": query})
                expected = answer_query(local, query)
                assert served["answer"] == expected, query
                assert served["items_processed"] == 2000
            # ingest more mid-serving; answers follow the new state
            summarizer.update_batch(data[2000:])
            local = summarizer.snapshot()
            for query in queries:
                served = _post(base + "/query", {"release": "stream", "query": query})
                assert served["answer"] == answer_query(local, query), query
                assert served["items_processed"] == 3000

    def test_answer_many_reports_one_version_per_batch(self):
        """A batch against a live release resolves the snapshot once: every
        row carries the same ``items_processed``, even while an ingesting
        thread advances the stream mid-batch (the per-query loop this
        replaced could mix versions inside one response)."""
        summarizer = _live_summarizer(n=20_000)
        data = np.random.default_rng(8).beta(2, 5, 20_000)
        summarizer.update_batch(data[:100])  # non-degenerate starting state
        store = ReleaseStore()
        store.register_live("stream", summarizer)
        service = QueryService(store)
        stop = threading.Event()
        errors = []

        def ingest():
            try:
                for chunk in np.array_split(data[100:], 200):
                    summarizer.update_batch(chunk)
            except Exception as error:  # pragma: no cover - failure reporting
                errors.append(error)
            finally:
                stop.set()

        thread = threading.Thread(target=ingest)
        thread.start()
        rng = np.random.default_rng(9)
        batches = 0
        while not stop.is_set():
            bounds = np.sort(rng.random((32, 2)), axis=1)
            batch = [
                {"type": "mass", "lower": float(low), "upper": float(high)}
                for low, high in bounds
            ]
            results = service.answer_many(batch)
            versions = {row["items_processed"] for row in results}
            assert len(versions) == 1, f"batch mixed snapshot versions: {versions}"
            batches += 1
        thread.join()
        assert not errors and batches > 0
        final = service.answer_many([{"type": "mass", "lower": 0.0, "upper": 1.0}])
        assert final[0]["items_processed"] == 20_000

    def test_serving_while_ingesting_is_race_free(self):
        """Concurrent ingestion and querying never observe torn state: every
        served answer equals the answer of a consistent snapshot."""
        summarizer = _live_summarizer(n=20_000)
        data = np.random.default_rng(5).beta(2, 5, 20_000)
        store = ReleaseStore()
        store.register_live("stream", summarizer)
        service = QueryService(store)
        errors = []

        def ingest():
            try:
                for chunk in np.array_split(data, 40):
                    summarizer.update_batch(chunk)
            except Exception as error:  # pragma: no cover - failure reporting
                errors.append(error)

        thread = threading.Thread(target=ingest)
        thread.start()
        query = {"type": "mass", "lower": 0.0, "upper": 0.5}
        answers = []
        while thread.is_alive():
            answers.append(service.answer(query)["answer"])
        thread.join()
        assert not errors
        final = service.answer(query)
        assert final["items_processed"] == 20_000
        for answer in answers:
            assert 0.0 <= answer <= 1.0


# --------------------------------------------------------------------------- #
# serving-layer concurrency: the races fixed in the serve/queries layers
# --------------------------------------------------------------------------- #
class _CountingSummarizer:
    """Wraps a continual summarizer, counting (and optionally slowing down)
    ``snapshot()`` calls to make snapshot races observable."""

    def __init__(self, inner, delay: float = 0.0):
        self._inner = inner
        self._delay = delay
        self._count_lock = threading.Lock()
        self.snapshot_calls = 0

    @property
    def items_processed(self):
        return self._inner.items_processed

    def update_batch(self, data):
        return self._inner.update_batch(data)

    def snapshot(self):
        with self._count_lock:
            self.snapshot_calls += 1
        if self._delay:
            time.sleep(self._delay)
        return self._inner.snapshot()


def _run_concurrently(worker, count: int) -> list:
    """Run ``worker()`` in ``count`` threads released together by a barrier;
    returns the collected results, re-raising the first failure."""
    barrier = threading.Barrier(count)
    results: list = [None] * count
    errors: list[BaseException] = []

    def target(index: int) -> None:
        try:
            barrier.wait()
            results[index] = worker()
        except BaseException as error:  # pragma: no cover - failure reporting
            errors.append(error)

    threads = [threading.Thread(target=target, args=(index,)) for index in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]
    return results


class TestConcurrentColdStart:
    def test_concurrent_engine_construction_builds_once(self, monkeypatch):
        """N threads hitting a cold release compile one leaf table, not N:
        the per-release lock makes lazy engine construction single-flight."""
        import repro.api.release as release_module

        rng = np.random.default_rng(21)
        release = _fit("interval", rng.beta(2.0, 5.0, 2000))
        calls = []
        real_engine = release_module.RangeQueryEngine

        def slow_factory(tree, domain):
            calls.append(threading.get_ident())
            time.sleep(0.05)  # widen the race window
            return real_engine(tree, domain)

        monkeypatch.setattr(release_module, "RangeQueryEngine", slow_factory)
        engines = _run_concurrently(release.range_engine, 12)
        assert len(calls) == 1
        assert all(engine is engines[0] for engine in engines)
        # and the warm path never calls the factory again
        assert release.range_engine() is engines[0] and len(calls) == 1

    def test_concurrent_disk_loads_share_one_release(self, tmp_path, releases):
        """Concurrent first reads of a release file end up with one canonical
        object (so its compiled engines are shared), not one copy per racer."""
        releases["interval"].save(tmp_path / "cold.json")
        store = ReleaseStore(tmp_path)
        loaded = _run_concurrently(lambda: store.get("cold"), 8)
        assert all(release is loaded[0] for release in loaded)


class TestLiveSnapshotSingleFlight:
    def test_concurrent_readers_share_one_snapshot(self):
        """The check-then-act race in ``ReleaseStore.get``: concurrent cold
        readers of one live version take exactly one ``snapshot()``."""
        summarizer = _CountingSummarizer(_live_summarizer(), delay=0.05)
        summarizer.update_batch(np.random.default_rng(22).beta(2, 5, 1000))
        store = ReleaseStore()
        store.register_live("stream", summarizer)
        snapshots = _run_concurrently(lambda: store.get("stream"), 12)
        assert summarizer.snapshot_calls == 1
        assert all(snapshot is snapshots[0] for snapshot in snapshots)
        assert snapshots[0].items_processed == 1000

    def test_readers_racing_ingestion_snapshot_once_per_version(self):
        """Many readers hammering a live name while an ingesting thread
        advances it never take more snapshots than there are versions."""
        chunks = 20
        summarizer = _CountingSummarizer(_live_summarizer(n=10_000))
        data = np.random.default_rng(23).beta(2, 5, 10_000)
        summarizer.update_batch(data[:100])
        store = ReleaseStore()
        store.register_live("stream", summarizer)
        stop = threading.Event()

        def read_until_done() -> int:
            reads = 0
            while not stop.is_set():
                release = store.get("stream")
                assert 100 <= release.items_processed <= 10_000
                reads += 1
            return reads

        readers = [
            threading.Thread(target=read_until_done)
            for _ in range(8)
        ]
        for thread in readers:
            thread.start()
        try:
            for chunk in np.array_split(data[100:], chunks):
                summarizer.update_batch(chunk)
        finally:
            stop.set()
        for thread in readers:
            thread.join()
        assert store.get("stream").items_processed == 10_000
        # one initial version + one per ingested chunk is the ceiling; the
        # pre-fix store would re-snapshot per racing reader instead.
        assert summarizer.snapshot_calls <= chunks + 1


class TestCacheSingleFlight:
    def test_cold_key_computes_once_under_contention(self):
        """A thundering herd on one cold key costs one evaluation; the herd
        parks on the in-flight event and is counted in ``inflight_waits``."""
        cache = QueryCache(maxsize=8)
        computing = threading.Event()
        release_compute = threading.Event()
        calls = []

        def compute():
            calls.append(1)
            computing.set()
            assert release_compute.wait(10)
            return 42

        results: list = []
        computer = threading.Thread(target=lambda: results.append(cache.lookup("k", compute)))
        computer.start()
        assert computing.wait(10)
        waiters = [
            threading.Thread(target=lambda: results.append(cache.lookup("k", compute)))
            for _ in range(4)
        ]
        for thread in waiters:
            thread.start()
        deadline = time.time() + 10
        while cache.stats()["inflight_waits"] < 4:  # all four parked
            assert time.time() < deadline
            time.sleep(0.001)
        release_compute.set()
        computer.join()
        for thread in waiters:
            thread.join()
        assert results == [42] * 5
        assert len(calls) == 1
        stats = cache.stats()
        assert stats["misses"] == 1 and stats["hits"] == 4
        assert stats["inflight_waits"] == 4

    def test_failed_computation_releases_the_key(self):
        """A computer that raises must not wedge the key: its waiters (or the
        next caller) elect a new computer instead of waiting forever."""
        cache = QueryCache(maxsize=8)
        with pytest.raises(RuntimeError, match="boom"):
            cache.lookup("k", lambda: (_ for _ in ()).throw(RuntimeError("boom")))
        assert cache.lookup("k", lambda: 7) == 7

    def test_clear_resets_inflight_waits(self):
        cache = QueryCache(maxsize=8)
        assert cache.stats()["inflight_waits"] == 0
        cache.clear()
        assert cache.stats()["inflight_waits"] == 0


class TestClientDisconnect:
    def test_mid_response_disconnect_is_counted_not_raised(self, releases):
        """A client that resets the connection while its answer is being
        computed must not unwind the handler thread: the failed write is
        swallowed and counted, and the server keeps serving."""
        summarizer = _CountingSummarizer(_live_summarizer(), delay=0.3)
        summarizer.update_batch(np.random.default_rng(24).beta(2, 5, 1000))
        store = ReleaseStore()
        store.register_live("stream", summarizer)
        with _running_server(store) as base:
            port = int(base.rsplit(":", 1)[1])
            body = json.dumps(
                {"release": "stream", "query": {"type": "mass", "lower": 0.1, "upper": 0.9}}
            ).encode()
            client = socket.create_connection(("127.0.0.1", port), timeout=10)
            client.sendall(
                b"POST /query HTTP/1.1\r\nHost: x\r\nContent-Type: application/json\r\n"
                + f"Content-Length: {len(body)}\r\n\r\n".encode()
                + body
            )
            time.sleep(0.05)  # let the server read the request and start the
            # (deliberately slow) snapshot; the RST below lands mid-compute.
            client.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
            )
            client.close()

            deadline = time.time() + 10
            while True:
                stats = json.loads(urllib.request.urlopen(base + "/stats").read())
                if stats["write_failures"] >= 1:
                    break
                assert time.time() < deadline, "write failure never counted"
                time.sleep(0.02)
            # the server is still healthy and answers normally
            result = _post(
                base + "/query",
                {"release": "stream", "query": {"type": "mass", "lower": 0.1, "upper": 0.9}},
            )
            assert 0.0 <= result["answer"] <= 1.0


@pytest.mark.skipif(
    not hasattr(socket, "SO_REUSEPORT"), reason="platform lacks SO_REUSEPORT"
)
class TestWorkerPool:
    def test_pool_workers_share_a_port_and_answer_identically(self, tmp_path, releases):
        releases["interval"].save(tmp_path / "only.json")
        # Bind the parent server with SO_REUSEPORT on an ephemeral port; the
        # pool workers then join it on the now-fixed port (the CLI's
        # --workers path uses a user-chosen fixed port instead).
        server = create_server(ReleaseStore(tmp_path), port=0, reuse_port=True)
        port = server.server_port
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        pool = start_worker_pool(tmp_path, port=port, workers=2)
        try:
            deadline = time.time() + 30
            while True:
                try:
                    urllib.request.urlopen(f"http://127.0.0.1:{port}/healthz", timeout=5).read()
                    break
                except OSError:
                    assert time.time() < deadline
                    time.sleep(0.05)
            query = {"type": "mass", "lower": 0.2, "upper": 0.6}
            expected = releases["interval"].mass(0.2, 0.6)
            # separate connections spread across the pool by the kernel;
            # every worker must produce the identical answer
            for _ in range(12):
                result = _post(
                    f"http://127.0.0.1:{port}/query", {"release": "only", "query": query}
                )
                assert result["answer"] == expected
        finally:
            server.shutdown()
            server.server_close()
            for process in pool:
                process.terminate()
            for process in pool:
                process.join()

    def test_pool_rejects_ephemeral_port_and_zero_workers(self, tmp_path):
        with pytest.raises(ValueError, match="explicit --port"):
            start_worker_pool(tmp_path, port=0, workers=2)
        with pytest.raises(ValueError, match="at least 1"):
            start_worker_pool(tmp_path, port=8080, workers=0)

    def test_cli_rejects_bad_worker_flags(self, tmp_path, capsys):
        for argv in (
            ["serve", "--store", str(tmp_path), "--workers", "0"],
            ["serve", "--store", str(tmp_path), "--workers", "2", "--port", "0"],
        ):
            with pytest.raises(SystemExit) as excinfo:
                cli_main(argv)
            assert excinfo.value.code == 2
        assert "--workers" in capsys.readouterr().err
