"""Tests for the per-level privacy budget allocation (Lemma 5)."""

import math

import pytest

from repro.core.budget import allocate_budgets, optimal_budgets, uniform_budgets


class TestUniformBudgets:
    def test_sums_to_epsilon(self):
        budgets = uniform_budgets(1.0, depth=9)
        assert len(budgets) == 10
        assert sum(budgets) == pytest.approx(1.0)

    def test_all_levels_equal(self):
        budgets = uniform_budgets(2.0, depth=4)
        assert all(b == pytest.approx(budgets[0]) for b in budgets)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            uniform_budgets(0.0, 3)
        with pytest.raises(ValueError):
            uniform_budgets(1.0, -1)


class TestOptimalBudgets:
    def test_sums_to_epsilon(self, interval):
        budgets = optimal_budgets(interval, 1.0, depth=10, level_cutoff=6, pruning_k=4, sketch_depth=8)
        assert sum(budgets) == pytest.approx(1.0)
        assert len(budgets) == 11

    def test_all_positive(self, square):
        budgets = optimal_budgets(square, 0.5, depth=12, level_cutoff=8, pruning_k=8, sketch_depth=10)
        assert all(b > 0 for b in budgets)

    def test_exact_levels_follow_sqrt_gamma_on_interval(self, interval):
        """On [0,1], Gamma_l = 1 for every level, so exact-level budgets are equal."""
        budgets = optimal_budgets(interval, 1.0, depth=8, level_cutoff=4, pruning_k=2, sketch_depth=4)
        exact = budgets[: 4 + 1]
        assert all(b == pytest.approx(exact[0]) for b in exact)

    def test_sketch_levels_decay_with_cell_diameter(self, interval):
        """Sketch-level budgets scale like sqrt(gamma_{l-1}) = 2^{-(l-1)/2} on [0,1]."""
        budgets = optimal_budgets(interval, 1.0, depth=10, level_cutoff=2, pruning_k=4, sketch_depth=6)
        for level in range(4, 10):
            ratio = budgets[level + 1] / budgets[level]
            assert ratio == pytest.approx(1.0 / math.sqrt(2.0), rel=1e-6)

    def test_hypercube_exact_levels_grow_with_gamma(self, square):
        """On [0,1]^d, Gamma_l grows with l so deeper exact levels get more budget."""
        budgets = optimal_budgets(square, 1.0, depth=10, level_cutoff=6, pruning_k=4, sketch_depth=6)
        exact = budgets[: 6 + 1]
        assert exact[-1] > exact[1]

    def test_invalid_inputs(self, interval):
        with pytest.raises(ValueError):
            optimal_budgets(interval, 1.0, depth=4, level_cutoff=6, pruning_k=2, sketch_depth=2)
        with pytest.raises(ValueError):
            optimal_budgets(interval, 1.0, depth=4, level_cutoff=2, pruning_k=0, sketch_depth=2)
        with pytest.raises(ValueError):
            optimal_budgets(interval, -1.0, depth=4, level_cutoff=2, pruning_k=2, sketch_depth=2)


class TestAllocateDispatch:
    def test_optimal_dispatch(self, interval):
        budgets = allocate_budgets(interval, 1.0, 6, 3, 2, 4, method="optimal")
        assert sum(budgets) == pytest.approx(1.0)

    def test_uniform_dispatch(self, interval):
        budgets = allocate_budgets(interval, 1.0, 6, 3, 2, 4, method="uniform")
        assert budgets == uniform_budgets(1.0, 6)

    def test_unknown_method_rejected(self, interval):
        with pytest.raises(ValueError):
            allocate_budgets(interval, 1.0, 6, 3, 2, 4, method="magic")

    def test_optimal_noise_cost_not_worse_than_uniform(self, interval):
        """The Lemma-5 allocation minimises sum(weight_l / sigma_l)."""
        depth, cutoff, k, j = 10, 5, 4, 8
        optimal = allocate_budgets(interval, 1.0, depth, cutoff, k, j, method="optimal")
        uniform = allocate_budgets(interval, 1.0, depth, cutoff, k, j, method="uniform")

        def noise_cost(budgets):
            cost = 0.0
            for level in range(depth + 1):
                if level <= cutoff:
                    weight = interval.level_total_diameter(max(level - 1, 0))
                else:
                    weight = j * k * interval.level_max_diameter(level - 1)
                cost += weight / budgets[level]
            return cost

        assert noise_cost(optimal) <= noise_cost(uniform) + 1e-9
