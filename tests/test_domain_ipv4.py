"""Tests for the IPv4 address-space domain."""

import pytest

from repro.domain.ipv4 import ADDRESS_SPACE


class TestAddressConversion:
    def test_parse_and_format_roundtrip(self, ipv4):
        for address in ["0.0.0.0", "10.0.0.1", "192.168.1.255", "255.255.255.255"]:
            assert ipv4.format(ipv4.parse(address)) == address

    def test_parse_rejects_bad_addresses(self, ipv4):
        with pytest.raises(ValueError):
            ipv4.parse("10.0.0")
        with pytest.raises(ValueError):
            ipv4.parse("10.0.0.300")

    def test_format_rejects_out_of_range(self, ipv4):
        with pytest.raises(ValueError):
            ipv4.format(ADDRESS_SPACE)


class TestGeometry:
    def test_diameter(self, ipv4):
        assert ipv4.diameter() == 1.0

    def test_distance_normalised(self, ipv4):
        assert ipv4.distance(0, ADDRESS_SPACE - 1) == pytest.approx(1.0, rel=1e-6)
        assert ipv4.distance("10.0.0.1", "10.0.0.1") == 0.0

    def test_cell_diameter_matches_prefix_length(self, ipv4):
        assert ipv4.cell_diameter(()) == 1.0
        assert ipv4.cell_diameter((0,) * 8) == pytest.approx(2.0**-8)

    def test_level_max_diameter(self, ipv4):
        assert ipv4.level_max_diameter(16) == pytest.approx(2.0**-16)


class TestPrefixCells:
    def test_locate_matches_prefix_bits(self, ipv4):
        address = ipv4.parse("192.168.0.1")
        bits = ipv4.locate(address, 8)
        prefix_value = 0
        for bit in bits:
            prefix_value = (prefix_value << 1) | bit
        assert prefix_value == 192

    def test_locate_accepts_dotted_quad(self, ipv4):
        assert ipv4.locate("10.0.0.1", 8) == ipv4.locate(ipv4.parse("10.0.0.1"), 8)

    def test_locate_rejects_excess_depth(self, ipv4):
        with pytest.raises(ValueError):
            ipv4.locate(0, 33)

    def test_cell_range_matches_cidr(self, ipv4):
        theta = ipv4.locate("10.0.0.0", 8)
        low, high = ipv4.cell_range(theta)
        assert ipv4.format(low) == "10.0.0.0"
        assert ipv4.format(high) == "10.255.255.255"
        assert ipv4.cidr(theta) == "10.0.0.0/8"

    def test_sample_cell_within_prefix(self, ipv4, rng):
        theta = ipv4.locate("172.16.0.0", 12)
        low, high = ipv4.cell_range(theta)
        for _ in range(50):
            address = ipv4.sample_cell(theta, rng)
            assert low <= address <= high

    def test_contains(self, ipv4):
        assert ipv4.contains("8.8.8.8")
        assert ipv4.contains(12345)
        assert not ipv4.contains(-1)
        assert not ipv4.contains("not.an.ip.addr")

    def test_level_frequencies_groups_by_prefix(self, ipv4):
        data = [ipv4.parse("10.0.0.1"), ipv4.parse("10.0.0.2"), ipv4.parse("192.168.0.1")]
        counts = ipv4.level_frequencies(data, 8)
        assert sorted(counts.values()) == [1, 2]
