"""Tests for the Misra-Gries heavy-hitter summary."""

import pytest

from repro.sketch.misra_gries import MisraGries


class TestMisraGries:
    def test_never_overestimates(self):
        summary = MisraGries(capacity=4)
        stream = ["a"] * 30 + ["b"] * 20 + ["c"] * 5 + ["d", "e", "f", "g"] * 3
        for item in stream:
            summary.update(item)
        assert summary.query("a") <= 30
        assert summary.query("b") <= 20

    def test_error_bounded_by_total_over_capacity(self):
        capacity = 8
        summary = MisraGries(capacity=capacity)
        stream = [i % 40 for i in range(4000)]
        for item in stream:
            summary.update(item)
        true_count = 100
        for key in range(40):
            assert summary.query(key) >= true_count - summary.error_bound() - 1e-9

    def test_heavy_hitter_detected(self):
        summary = MisraGries(capacity=4)
        stream = ["hot"] * 500 + [f"cold{i}" for i in range(300)]
        for item in stream:
            summary.update(item)
        hitters = summary.heavy_hitters(threshold=100)
        assert "hot" in hitters

    def test_capacity_respected(self):
        summary = MisraGries(capacity=3)
        for i in range(100):
            summary.update(i)
        assert len(summary.counters) <= 3

    def test_weighted_updates(self):
        summary = MisraGries(capacity=4)
        summary.update("x", 5.0)
        summary.update("y", 2.0)
        assert summary.query("x") == pytest.approx(5.0)
        assert summary.total == pytest.approx(7.0)

    def test_negative_update_rejected(self):
        summary = MisraGries(capacity=2)
        with pytest.raises(ValueError):
            summary.update("x", -1.0)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            MisraGries(capacity=0)

    def test_memory_words_tracks_counters(self):
        summary = MisraGries(capacity=10)
        summary.update_many(["a", "b", "c"])
        assert summary.memory_words() == 6

    def test_update_many_with_counts(self):
        summary = MisraGries(capacity=4)
        summary.update_many(["a", "b"], counts=[3.0, 4.0])
        assert summary.query("b") == pytest.approx(4.0)
