"""Tests for the PrivHP configuration container."""

import math

import pytest

from repro.core.config import PrivHPConfig


class TestValidation:
    def test_valid_config(self):
        config = PrivHPConfig(
            epsilon=1.0, pruning_k=4, depth=10, level_cutoff=6, sketch_width=8, sketch_depth=5
        )
        assert config.num_sketch_levels == 4

    def test_epsilon_positive(self):
        with pytest.raises(ValueError):
            PrivHPConfig(epsilon=0.0, pruning_k=4, depth=10, level_cutoff=6,
                         sketch_width=8, sketch_depth=5)

    def test_cutoff_within_depth(self):
        with pytest.raises(ValueError):
            PrivHPConfig(epsilon=1.0, pruning_k=4, depth=5, level_cutoff=6,
                         sketch_width=8, sketch_depth=5)

    def test_pruning_k_positive(self):
        with pytest.raises(ValueError):
            PrivHPConfig(epsilon=1.0, pruning_k=0, depth=5, level_cutoff=3,
                         sketch_width=8, sketch_depth=5)

    def test_budget_allocation_values(self):
        with pytest.raises(ValueError):
            PrivHPConfig(epsilon=1.0, pruning_k=1, depth=5, level_cutoff=3,
                         sketch_width=8, sketch_depth=5, budget_allocation="greedy")


class TestDerivedQuantities:
    def test_exact_tree_nodes(self):
        config = PrivHPConfig(epsilon=1.0, pruning_k=2, depth=8, level_cutoff=4,
                              sketch_width=4, sketch_depth=4)
        assert config.exact_tree_nodes == 2**5 - 1

    def test_memory_budget_words(self):
        config = PrivHPConfig(epsilon=1.0, pruning_k=2, depth=6, level_cutoff=3,
                              sketch_width=4, sketch_depth=2)
        expected = 2 * (2**4 - 1) + 3 * 4 * 2
        assert config.memory_budget_words() == expected

    def test_with_overrides(self):
        config = PrivHPConfig(epsilon=1.0, pruning_k=2, depth=6, level_cutoff=3,
                              sketch_width=4, sketch_depth=2)
        modified = config.with_overrides(epsilon=2.0)
        assert modified.epsilon == 2.0
        assert modified.depth == config.depth


class TestFromStreamSize:
    def test_paper_defaults(self):
        config = PrivHPConfig.from_stream_size(stream_size=4096, epsilon=1.0, pruning_k=8)
        assert config.depth == math.ceil(math.log2(4096))
        assert config.sketch_depth == math.ceil(math.log2(4096))
        assert config.sketch_width == 16
        assert 0 <= config.level_cutoff <= config.depth

    def test_cutoff_respects_lemma10_lower_bound(self):
        config = PrivHPConfig.from_stream_size(stream_size=1 << 14, epsilon=1.0, pruning_k=32)
        assert config.level_cutoff >= math.ceil(math.log2(32))

    def test_cutoff_capped_at_depth_for_tiny_streams(self):
        config = PrivHPConfig.from_stream_size(stream_size=8, epsilon=1.0, pruning_k=4)
        assert config.level_cutoff <= config.depth

    def test_epsilon_scales_depth(self):
        low = PrivHPConfig.from_stream_size(stream_size=4096, epsilon=0.25, pruning_k=4)
        high = PrivHPConfig.from_stream_size(stream_size=4096, epsilon=4.0, pruning_k=4)
        assert high.depth > low.depth

    def test_explicit_overrides_win(self):
        config = PrivHPConfig.from_stream_size(
            stream_size=4096, epsilon=1.0, pruning_k=8, depth=20, sketch_depth=3, sketch_width=64
        )
        assert config.depth == 20
        assert config.sketch_depth == 3
        assert config.sketch_width == 64

    def test_memory_grows_with_k(self):
        small = PrivHPConfig.from_stream_size(stream_size=1 << 14, epsilon=1.0, pruning_k=2)
        large = PrivHPConfig.from_stream_size(stream_size=1 << 14, epsilon=1.0, pruning_k=64)
        assert large.memory_budget_words() > small.memory_budget_words()

    def test_memory_polylogarithmic_in_n(self):
        """Doubling n many times should grow memory far slower than n."""
        small = PrivHPConfig.from_stream_size(stream_size=1 << 10, epsilon=1.0, pruning_k=8)
        large = PrivHPConfig.from_stream_size(stream_size=1 << 20, epsilon=1.0, pruning_k=8)
        growth = large.memory_budget_words() / small.memory_budget_words()
        assert growth < 2**10 / 8  # vastly sublinear in the 1024x data growth

    def test_metadata_records_hint(self):
        config = PrivHPConfig.from_stream_size(stream_size=100, epsilon=1.0, pruning_k=2)
        assert config.metadata["stream_size_hint"] == 100

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            PrivHPConfig.from_stream_size(stream_size=0, epsilon=1.0, pruning_k=1)
        with pytest.raises(ValueError):
            PrivHPConfig.from_stream_size(stream_size=10, epsilon=-1.0, pruning_k=1)
        with pytest.raises(ValueError):
            PrivHPConfig.from_stream_size(stream_size=10, epsilon=1.0, pruning_k=0)
