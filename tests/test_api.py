"""Tests for the unified Summarizer/Release API (repro.api)."""

import json

import numpy as np
import pytest

from repro.api.builder import PrivHPBuilder
from repro.api.registry import (
    available_domains,
    available_methods,
    infer_domain,
    make_domain,
    make_method,
    register_domain,
)
from repro.api.release import Release
from repro.api.summarizer import StreamSummarizer, ingest_batches
from repro.baselines.base import PrivHPContinualMethod, PrivHPMethod
from repro.core.config import PrivHPConfig
from repro.core.privhp import PrivHP
from repro.core.tree import PartitionTree
from repro.domain.discrete import DiscreteDomain
from repro.domain.geo import GeoDomain
from repro.domain.hypercube import Hypercube
from repro.domain.interval import UnitInterval
from repro.domain.ipv4 import IPv4Domain
from repro.io.serialization import load_checkpoint, save_checkpoint


def small_config(**overrides):
    defaults = dict(
        epsilon=1.0,
        pruning_k=4,
        depth=8,
        level_cutoff=4,
        sketch_width=8,
        sketch_depth=5,
        seed=0,
    )
    defaults.update(overrides)
    return PrivHPConfig(**defaults)


def domain_datasets(rng):
    """One (domain, data, config) triple per concrete domain."""
    geo = GeoDomain(lat_min=24.0, lat_max=49.0, lon_min=-125.0, lon_max=-66.0)
    geo_points = np.column_stack(
        [24.0 + 25.0 * rng.random(300), -125.0 + 59.0 * rng.random(300)]
    )
    return [
        (UnitInterval(), rng.beta(2, 5, 400), small_config()),
        (Hypercube(2), rng.random((300, 2)), small_config()),
        (Hypercube(3), rng.random((200, 3)), small_config(depth=9, level_cutoff=3)),
        (geo, geo_points, small_config()),
        (IPv4Domain(), rng.integers(0, 2**32, 300), small_config(depth=12)),
        (DiscreteDomain(97), rng.integers(0, 97, 300), small_config(depth=6, level_cutoff=3)),
    ]


class TestBatchEquivalence:
    def test_batch_equals_sequential_on_every_domain(self, rng):
        """update_batch must produce identical raw state to per-item update."""
        for domain, data, config in domain_datasets(rng):
            sequential = PrivHP(domain, config, add_noise=False)
            for point in data:
                sequential.update(point)
            batched = PrivHP(domain, config, add_noise=False)
            batched.update_batch(data)

            assert batched.items_processed == sequential.items_processed
            assert batched.tree.as_dict() == sequential.tree.as_dict(), type(domain).__name__
            for level, sketch in sequential.sketches.items():
                assert np.array_equal(
                    batched.sketches[level].table, sketch.table
                ), f"{type(domain).__name__} level {level}"
                assert batched.sketches[level].updates == sketch.updates
                assert batched.sketches[level].total == pytest.approx(sketch.total)

    def test_batch_equals_sequential_with_noise(self, interval, rng):
        """In noisy mode the states agree up to float summation order."""
        data = rng.random(500)
        config = small_config()
        sequential = PrivHP(interval, config)
        for point in data:
            sequential.update(point)
        batched = PrivHP(interval, config)
        batched.update_batch(data)
        for theta, count in sequential.tree.as_dict().items():
            assert batched.tree.count(theta) == pytest.approx(count, abs=1e-9)

    def test_split_batches_equal_one_batch(self, interval, rng):
        data = rng.random(300)
        whole = PrivHP(interval, small_config(), add_noise=False).update_batch(data)
        parts = PrivHP(interval, small_config(), add_noise=False)
        for chunk in np.array_split(data, 7):
            parts.update_batch(chunk)
        assert whole.tree.as_dict() == parts.tree.as_dict()

    def test_empty_batch_is_a_no_op(self, interval):
        algorithm = PrivHP(interval, small_config(), add_noise=False)
        algorithm.update_batch(np.array([]))
        assert algorithm.items_processed == 0

    def test_update_batch_returns_self_and_rejects_after_release(self, interval, rng):
        algorithm = PrivHP(interval, small_config())
        assert algorithm.update_batch(rng.random(50)) is algorithm
        algorithm.release()
        with pytest.raises(RuntimeError):
            algorithm.update_batch(rng.random(10))


class TestShardMerge:
    def test_merge_equals_single_stream_released_tree(self, interval, rng):
        """N-way shard merge must release the same tree as one stream (same noise)."""
        data = rng.beta(2, 6, 1200)
        builder = (
            PrivHPBuilder(interval).epsilon(1.0).pruning_k(8).stream_size(len(data)).seed(3)
        )
        shards = builder.build_shards(4)
        for shard, part in zip(shards, np.array_split(data, 4)):
            shard.update_batch(part)
        merged_release = PrivHP.merge_all(shards).release()

        single = builder.build_shard()
        single.update_batch(data)
        single_release = single.release()

        merged_tree = merged_release.tree.as_dict()
        single_tree = single_release.tree.as_dict()
        assert set(merged_tree) == set(single_tree)
        for theta, count in single_tree.items():
            assert merged_tree[theta] == pytest.approx(count, abs=1e-9)

    def test_merged_release_passes_budget_accounting(self, interval, rng):
        data = rng.random(600)
        builder = (
            PrivHPBuilder(interval).epsilon(0.7).pruning_k(4).stream_size(len(data)).seed(0)
        )
        shards = builder.build_shards(3)
        for shard, part in zip(shards, np.array_split(data, 3)):
            shard.update_batch(part)
        merged = PrivHP.merge_all(shards)
        assert merged.accountant.spent == 0.0  # raw shards spent nothing yet
        release = merged.release()
        merged.accountant.assert_within_budget()
        assert merged.accountant.spent == pytest.approx(0.7)
        assert release.epsilon == pytest.approx(0.7)

    def test_merge_tracks_items_processed(self, interval, rng):
        builder = PrivHPBuilder(interval).stream_size(200).seed(0)
        first, second = builder.build_shards(2)
        first.update_batch(rng.random(120))
        second.update_batch(rng.random(80))
        assert first.merge(second).items_processed == 200

    def test_merging_noisy_summarizers_rejected(self, interval):
        noisy_a = PrivHP(interval, small_config())
        noisy_b = PrivHP(interval, small_config())
        with pytest.raises(ValueError):
            noisy_a.merge(noisy_b)

    def test_merging_different_configs_rejected(self, interval):
        shard_a = PrivHP(interval, small_config(), add_noise=False)
        shard_b = PrivHP(interval, small_config(pruning_k=8), add_noise=False)
        with pytest.raises(ValueError):
            shard_a.merge(shard_b)

    def test_merging_different_domains_rejected(self):
        shard_a = PrivHP(UnitInterval(), small_config(), add_noise=False)
        shard_b = PrivHP(Hypercube(1), small_config(), add_noise=False)
        with pytest.raises(ValueError):
            shard_a.merge(shard_b)

    def test_merge_all_requires_a_shard(self):
        with pytest.raises(ValueError):
            PrivHP.merge_all([])

    def test_partition_tree_merge_sums_counts(self):
        left = PartitionTree()
        left.add_node((), 3.0)
        left.add_node((0,), 2.0)
        right = PartitionTree()
        right.add_node((), 1.0)
        right.add_node((1,), 4.0)
        merged = left.merge(right)
        assert merged.as_dict() == {(): 4.0, (0,): 2.0, (1,): 4.0}


class TestCheckpointRestore:
    def test_round_trip_release_is_byte_for_byte(self, interval, rng, tmp_path):
        """checkpoint -> restore -> release must equal the uninterrupted run exactly."""
        data = rng.beta(2, 5, 800)
        builder = (
            PrivHPBuilder(interval).epsilon(1.0).pruning_k(4).stream_size(len(data)).seed(11)
        )
        original = builder.build()
        original.update_batch(data[:400])
        path = save_checkpoint(original, tmp_path / "state.json")

        restored = load_checkpoint(path)
        original.update_batch(data[400:])
        restored.update_batch(data[400:])

        original_doc = json.dumps(original.release().to_dict(), sort_keys=True)
        restored_doc = json.dumps(restored.release().to_dict(), sort_keys=True)
        assert original_doc == restored_doc

    def test_round_trip_of_raw_shard_defers_noise_identically(self, interval, rng, tmp_path):
        data = rng.random(500)
        builder = (
            PrivHPBuilder(interval).epsilon(1.0).pruning_k(4).stream_size(len(data)).seed(5)
        )
        shard = builder.build_shard()
        shard.update_batch(data)
        path = save_checkpoint(shard, tmp_path / "shard.json")
        restored = load_checkpoint(path)
        assert not restored.noise_applied
        assert shard.release().tree.as_dict() == restored.release().tree.as_dict()

    def test_restored_accountant_preserves_ledger(self, interval, rng, tmp_path):
        algorithm = PrivHP(interval, small_config(epsilon=0.5))
        algorithm.update_batch(rng.random(100))
        restored = load_checkpoint(save_checkpoint(algorithm, tmp_path / "s.json"))
        assert restored.accountant.spent == pytest.approx(algorithm.accountant.spent)
        assert restored.items_processed == 100
        restored.accountant.assert_within_budget()

    def test_checkpoint_after_release_rejected(self, interval, rng):
        algorithm = PrivHP(interval, small_config())
        algorithm.update_batch(rng.random(50))
        algorithm.release()
        with pytest.raises(RuntimeError):
            algorithm.checkpoint()

    def test_non_default_bit_generator_round_trips(self, interval, rng, tmp_path):
        """MT19937/Philox state carries ndarrays that must survive JSON."""
        data = rng.random(200)
        config = small_config()
        original = PrivHP(interval, config, rng=np.random.Generator(np.random.MT19937(3)))
        original.update_batch(data[:100])
        restored = load_checkpoint(save_checkpoint(original, tmp_path / "mt.json"))
        original.update_batch(data[100:])
        restored.update_batch(data[100:])
        assert original.release().tree.as_dict() == restored.release().tree.as_dict()

    def test_future_checkpoint_version_rejected(self, interval, rng, tmp_path):
        algorithm = PrivHP(interval, small_config())
        path = save_checkpoint(algorithm, tmp_path / "s.json")
        document = json.loads(path.read_text())
        document["version"] = 99
        path.write_text(json.dumps(document))
        with pytest.raises(ValueError):
            load_checkpoint(path)

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"format": "something-else", "version": 1, "state": {}}))
        with pytest.raises(ValueError):
            load_checkpoint(path)


class TestBuilder:
    def test_build_resolves_paper_defaults(self, interval):
        summarizer = (
            PrivHPBuilder(interval).epsilon(2.0).pruning_k(16).stream_size(4096).seed(1).build()
        )
        expected = PrivHPConfig.from_stream_size(4096, epsilon=2.0, pruning_k=16, seed=1)
        assert summarizer.config == expected

    def test_domain_accepts_registry_specs(self):
        summarizer = PrivHPBuilder("hypercube:3").stream_size(100).build()
        assert isinstance(summarizer.domain, Hypercube)
        assert summarizer.domain.dimension == 3

    def test_overrides_forwarded(self):
        summarizer = PrivHPBuilder("interval").stream_size(1000).override(depth=9).build()
        assert summarizer.config.depth == 9

    def test_explicit_config_bypasses_defaults(self, interval):
        config = small_config()
        summarizer = PrivHPBuilder(interval).config(config).build()
        assert summarizer.config is config

    def test_explicit_config_conflicting_settings_rejected(self, interval):
        """An explicit config must not silently win over disagreeing setters."""
        config = small_config()
        with pytest.raises(ValueError, match="epsilon"):
            PrivHPBuilder(interval).config(config).epsilon(config.epsilon / 2).build()
        with pytest.raises(ValueError, match="stream_size"):
            PrivHPBuilder(interval).config(config).stream_size(10**6).build()
        with pytest.raises(ValueError, match="pruning_k"):
            PrivHPBuilder(interval).config(config).pruning_k(config.pruning_k + 1).build()
        with pytest.raises(ValueError, match="depth"):
            PrivHPBuilder(interval).config(config).override(depth=config.depth + 1).build()
        # Agreeing setters are fine.
        agreed = (
            PrivHPBuilder(interval)
            .config(config)
            .epsilon(config.epsilon)
            .pruning_k(config.pruning_k)
            .build()
        )
        assert agreed.config is config

    def test_stream_size_required_without_config(self, interval):
        with pytest.raises(ValueError):
            PrivHPBuilder(interval).build()

    def test_domain_required(self):
        with pytest.raises(ValueError):
            PrivHPBuilder().stream_size(100).build()

    def test_build_shards_share_config_and_hashes(self, interval):
        shards = PrivHPBuilder(interval).stream_size(500).seed(2).build_shards(3)
        assert len(shards) == 3
        assert all(not shard.noise_applied for shard in shards)
        seeds = {
            tuple(sketch.seed for sketch in shard.sketches.values()) for shard in shards
        }
        assert len(seeds) == 1

    def test_privhp_satisfies_protocol(self, interval):
        summarizer = PrivHPBuilder(interval).stream_size(100).build()
        assert isinstance(summarizer, StreamSummarizer)


class TestRegistry:
    @pytest.mark.parametrize(
        "spec, expected_type",
        [
            ("interval", UnitInterval),
            ("unit_interval", UnitInterval),
            ("hypercube:4", Hypercube),
            ("ipv4", IPv4Domain),
            ("geo:24,49,-125,-66", GeoDomain),
            ("discrete:512", DiscreteDomain),
        ],
    )
    def test_make_domain_specs(self, spec, expected_type):
        assert isinstance(make_domain(spec), expected_type)

    def test_domain_passthrough(self, interval):
        assert make_domain(interval) is interval

    def test_auto_infers_from_shape(self, rng):
        assert isinstance(make_domain("auto", data=rng.random(10)), UnitInterval)
        cube = make_domain("auto", data=rng.random((10, 3)))
        assert isinstance(cube, Hypercube) and cube.dimension == 3
        assert isinstance(infer_domain(rng.random(5)), UnitInterval)

    def test_auto_without_data_rejected(self):
        with pytest.raises(ValueError):
            make_domain("auto")

    def test_unknown_domain_rejected(self):
        with pytest.raises(ValueError):
            make_domain("banach")

    def test_bad_spec_arguments_raise_value_error(self):
        """Factory arity/type mistakes surface as ValueError, not TypeError."""
        with pytest.raises(ValueError, match="discrete domain takes"):
            make_domain("discrete")
        with pytest.raises(ValueError, match="hypercube domain takes"):
            make_domain("hypercube:2,3")
        with pytest.raises(ValueError, match="bad arguments"):
            make_domain("interval:3")

    def test_registration_extends_the_registry(self):
        register_domain("unit_interval_alias_for_test", lambda: UnitInterval())
        assert "unit_interval_alias_for_test" in available_domains()
        assert isinstance(make_domain("unit_interval_alias_for_test"), UnitInterval)

    def test_builtin_methods_registered(self):
        assert {"privhp", "pmm", "privtree", "quantile", "smooth", "srrw"} <= set(
            available_methods()
        )

    def test_make_method_constructs_adapter(self, interval):
        method = make_method("privhp", interval, epsilon=1.0, pruning_k=4, seed=0)
        assert isinstance(method, PrivHPMethod)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            make_method("does-not-exist")

    def test_importing_api_does_not_import_baselines(self):
        """Baseline registration is deferred to the first method lookup."""
        import os
        import pathlib
        import subprocess
        import sys

        import repro

        source_root = str(pathlib.Path(repro.__file__).resolve().parent.parent)
        environment = dict(os.environ)
        environment["PYTHONPATH"] = os.pathsep.join(
            [source_root] + [p for p in [environment.get("PYTHONPATH")] if p]
        )
        code = (
            "import sys; import repro.api; "
            "loaded = [m for m in sys.modules if m.startswith('repro.baselines')]; "
            "assert not loaded, loaded"
        )
        result = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True, env=environment
        )
        assert result.returncode == 0, result.stderr


class TestRelease:
    def fitted_release(self, interval, rng):
        data = rng.beta(2, 5, 600)
        return (
            PrivHPBuilder(interval)
            .epsilon(1.0)
            .pruning_k(4)
            .stream_size(len(data))
            .seed(0)
            .build()
            .update_batch(data)
            .release()
        )

    def test_release_carries_metadata(self, interval, rng):
        release = self.fitted_release(interval, rng)
        assert release.epsilon == 1.0
        assert release.items_processed == 600
        assert release.memory_words > 0
        assert release.metadata["config"]["pruning_k"] == 4

    def test_save_load_round_trip(self, interval, rng, tmp_path):
        release = self.fitted_release(interval, rng)
        path = release.save(tmp_path / "release.json")
        loaded = Release.load(path, sampling_seed=0)
        assert loaded.epsilon == release.epsilon
        assert loaded.items_processed == release.items_processed
        assert loaded.tree.as_dict() == release.tree.as_dict()
        samples = loaded.sample(50)
        assert np.all((samples >= 0) & (samples <= 1))

    def test_sampling_seed_never_touches_tree(self, interval, rng, tmp_path):
        release = self.fitted_release(interval, rng)
        path = release.save(tmp_path / "release.json")
        first = Release.load(path, sampling_seed=1)
        second = Release.load(path, sampling_seed=2)
        assert first.tree.as_dict() == second.tree.as_dict()
        assert not np.array_equal(first.sample(100), second.sample(100))

    def test_reseed_affects_sampling_only(self, interval, rng):
        release = self.fitted_release(interval, rng)
        before = release.tree.as_dict()
        draw_a = release.reseed(7).sample(50)
        draw_b = release.reseed(7).sample(50)
        assert np.array_equal(draw_a, draw_b)
        assert release.tree.as_dict() == before

    def test_loading_legacy_generator_document(self, interval, rng, tmp_path):
        """Documents written by plain save_generator (no release metadata) load."""
        from repro.io.serialization import save_generator

        data = rng.random(300)
        config = small_config()
        generator = PrivHP(interval, config, rng=0).process(data).finalize()
        path = save_generator(generator, tmp_path / "legacy.json", metadata={"epsilon": 1.0})
        release = Release.load(path)
        assert release.epsilon == 1.0
        assert release.sample(10).shape == (10,)


class TestRngPrecedence:
    def test_conflicting_int_rng_and_seed_rejected(self, interval):
        with pytest.raises(ValueError):
            PrivHP(interval, small_config(seed=0), rng=1)

    def test_matching_int_rng_accepted(self, interval):
        PrivHP(interval, small_config(seed=3), rng=3)

    def test_generator_rng_always_accepted(self, interval):
        PrivHP(interval, small_config(seed=0), rng=np.random.default_rng(99))

    def test_int_rng_with_unset_seed_accepted(self, interval):
        PrivHP(interval, small_config(seed=None), rng=42)

    def test_sketch_hash_seeds_derive_from_one_seed_sequence(self, interval):
        first = PrivHP(interval, small_config(seed=0))
        second = PrivHP(interval, small_config(seed=0))
        assert [s.seed for s in first.sketches.values()] == [
            s.seed for s in second.sketches.values()
        ]
        different = PrivHP(interval, small_config(seed=1))
        assert [s.seed for s in first.sketches.values()] != [
            s.seed for s in different.sketches.values()
        ]


class TestPrivHPMethodStreaming:
    def test_unsized_iterable_without_stream_size_rejected(self, interval, rng):
        method = PrivHPMethod(interval, epsilon=1.0, pruning_k=4, seed=0)
        with pytest.raises(ValueError):
            method.fit(iter(rng.random(100)), rng=0)

    def test_unsized_iterable_with_stream_size_fits(self, interval, rng):
        method = PrivHPMethod(interval, epsilon=1.0, pruning_k=4, seed=0, stream_size=100)
        sampler = method.fit(iter(rng.random(100)), rng=0)
        assert sampler.sample(20).shape == (20,)
        assert method.last_run.items_processed == 100

    def test_sized_data_uses_batches(self, interval, rng):
        method = PrivHPMethod(interval, epsilon=1.0, pruning_k=4, seed=0)
        method.batch_size = 64
        method.fit(rng.random(300), rng=0)
        assert method.last_run.items_processed == 300


class TestIngestBatchesLazySources:
    """ingest_batches accepts unsized iterables by chunking lazily."""

    def build(self, interval, n=200):
        return PrivHPBuilder(interval).stream_size(n).seed(0).build()

    def test_generator_source_matches_array_source(self, interval, rng):
        data = rng.random(200)
        from_array = ingest_batches(self.build(interval), data, 64)
        from_generator = ingest_batches(
            self.build(interval), (point for point in data), 64
        )
        assert from_generator.items_processed == 200
        assert from_generator.tree.as_dict() == from_array.tree.as_dict()

    def test_generator_buffers_at_most_one_batch(self, interval):
        """The lazy path never materialises the stream: update_batch sees
        chunks bounded by batch_size."""
        sizes = []
        summarizer = self.build(interval, n=100)
        original = summarizer.update_batch

        def recording(points):
            sizes.append(len(points))
            return original(points)

        summarizer.update_batch = recording
        ingest_batches(summarizer, (value / 100 for value in range(100)), 32)
        assert sizes == [32, 32, 32, 4]

    def test_empty_generator_is_a_no_op(self, interval):
        summarizer = ingest_batches(self.build(interval), iter(()), 32)
        assert summarizer.items_processed == 0

    def test_bad_batch_size_rejected_for_lazy_sources_too(self, interval):
        with pytest.raises(ValueError):
            ingest_batches(self.build(interval), iter([0.5]), 0)

    def test_continual_summarizer_accepts_generator_source(self, interval, rng):
        summarizer = (
            PrivHPBuilder(interval).stream_size(200).seed(0).continual().build()
        )
        data = rng.random(200)
        ingest_batches(summarizer, (point for point in data), 64)
        assert summarizer.items_processed == 200
        assert summarizer.events == 4


class TestBuilderContinual:
    def test_build_returns_continual_summarizer(self, interval):
        from repro.continual.privhp import PrivHPContinual

        summarizer = PrivHPBuilder(interval).stream_size(100).seed(0).continual().build()
        assert isinstance(summarizer, PrivHPContinual)
        assert summarizer.horizon == 100

    def test_explicit_horizon_overrides_stream_size(self, interval):
        summarizer = (
            PrivHPBuilder(interval).stream_size(100).seed(0).continual(horizon=500).build()
        )
        assert summarizer.horizon == 500

    def test_horizon_required(self, interval):
        builder = PrivHPBuilder(interval).config(
            PrivHPConfig.from_stream_size(100, epsilon=1.0, pruning_k=4, seed=0)
        ).continual()
        with pytest.raises(ValueError, match="horizon"):
            builder.build()

    def test_continual_shards_have_independent_noise_but_shared_hashes(self, interval):
        shards = (
            PrivHPBuilder(interval).stream_size(200).seed(3).continual().build_shards(3)
        )
        hash_seeds = {
            tuple(sketch.seed for sketch in shard._sketches.values()) for shard in shards
        }
        assert len(hash_seeds) == 1
        for shard in shards:
            shard.update_batch(np.full(10, 0.25))
        roots = {float(shard._banks[0].query_all()[0]) for shard in shards}
        assert len(roots) == 3  # same data, different noise draws


class TestContinualMethodRegistry:
    def test_privhp_continual_registered(self):
        assert "privhp-continual" in available_methods()

    def test_make_method_constructs_continual_adapter(self, interval):
        method = make_method(
            "privhp-continual", interval, epsilon=1.0, pruning_k=4, seed=0
        )
        assert isinstance(method, PrivHPContinualMethod)

    def test_fit_returns_sampler_over_snapshot(self, interval, rng):
        method = PrivHPContinualMethod(interval, epsilon=5.0, pruning_k=4, seed=0)
        sampler = method.fit(rng.random(300), rng=0)
        assert sampler.sample(20).shape == (20,)
        assert method.last_run.items_processed == 300
        assert method.memory_words() > 0
