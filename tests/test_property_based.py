"""Property-based tests (hypothesis) for the core data structures and invariants."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.consistency import enforce_consistency, enforce_subtree_consistency
from repro.core.partition import select_top_k
from repro.core.tree import PartitionTree
from repro.domain.hypercube import Hypercube
from repro.domain.interval import UnitInterval
from repro.metrics.tail import head_norm, tail_norm_from_counts
from repro.metrics.wasserstein import wasserstein1_1d
from repro.sketch.countmin import CountMinSketch
from repro.sketch.hashing import canonical_key

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

finite_floats = st.floats(min_value=-50.0, max_value=50.0,
                          allow_nan=False, allow_infinity=False)
unit_floats = st.floats(min_value=0.0, max_value=1.0,
                        allow_nan=False, allow_infinity=False)
bits = st.lists(st.integers(min_value=0, max_value=1), min_size=0, max_size=12)


class TestConsistencyProperties:
    @SETTINGS
    @given(parent=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
           left=finite_floats, right=finite_floats)
    def test_single_step_restores_invariants(self, parent, left, right):
        tree = PartitionTree()
        tree.add_node((), parent)
        tree.add_node((0,), left)
        tree.add_node((1,), right)
        enforce_consistency(tree, ())
        assert tree.count((0,)) >= -1e-9
        assert tree.count((1,)) >= -1e-9
        assert tree.count((0,)) + tree.count((1,)) == np.float64(parent).item() or \
            abs(tree.count((0,)) + tree.count((1,)) - parent) < 1e-6 * max(1.0, abs(parent)) + 1e-9

    @SETTINGS
    @given(counts=st.lists(finite_floats, min_size=15, max_size=15))
    def test_subtree_consistency_on_complete_depth3_tree(self, counts):
        tree = PartitionTree.complete(3, initial_count=0.0)
        for theta, value in zip(sorted(tree, key=lambda c: (len(c), c)), counts):
            tree.set_count(theta, value)
        enforce_subtree_consistency(tree, ())
        assert tree.is_consistent(tolerance=1e-6)

    @SETTINGS
    @given(counts=st.lists(st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                           min_size=15, max_size=15))
    def test_consistency_preserves_root_mass_when_root_nonnegative(self, counts):
        tree = PartitionTree.complete(3, initial_count=0.0)
        for theta, value in zip(sorted(tree, key=lambda c: (len(c), c)), counts):
            tree.set_count(theta, value)
        root_before = tree.count(())
        enforce_subtree_consistency(tree, ())
        assert abs(tree.count(()) - root_before) < 1e-9


class TestSketchProperties:
    @SETTINGS
    @given(keys=st.lists(st.integers(min_value=0, max_value=200), min_size=1, max_size=300))
    def test_countmin_never_underestimates(self, keys):
        sketch = CountMinSketch(width=16, depth=4, seed=0)
        true_counts: dict = {}
        for key in keys:
            sketch.update(key)
            true_counts[key] = true_counts.get(key, 0) + 1
        for key, count in true_counts.items():
            assert sketch.query(key) >= count - 1e-9

    @SETTINGS
    @given(keys=st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=200))
    def test_countmin_total_preserved(self, keys):
        sketch = CountMinSketch(width=8, depth=3, seed=1)
        for key in keys:
            sketch.update(key)
        # Every row holds the full stream mass.
        table = sketch.table
        for row in range(3):
            assert table[row].sum() == len(keys)

    @SETTINGS
    @given(key_a=bits, key_b=bits)
    def test_canonical_key_injective_on_short_bit_tuples(self, key_a, key_b):
        if tuple(key_a) != tuple(key_b):
            assert canonical_key(tuple(key_a)) != canonical_key(tuple(key_b))
        else:
            assert canonical_key(tuple(key_a)) == canonical_key(tuple(key_b))


class TestDomainProperties:
    @SETTINGS
    @given(point=unit_floats, level=st.integers(min_value=0, max_value=16))
    def test_interval_locate_cell_contains_point(self, point, level):
        domain = UnitInterval()
        theta = domain.locate(point, level)
        lower, upper = domain.cell_bounds(theta)
        assert lower <= point <= upper
        assert len(theta) == level

    @SETTINGS
    @given(coords=st.lists(unit_floats, min_size=3, max_size=3),
           level=st.integers(min_value=0, max_value=12))
    def test_hypercube_locate_cell_contains_point(self, coords, level):
        domain = Hypercube(3)
        point = np.array(coords)
        theta = domain.locate(point, level)
        lower, upper = domain.cell_bounds(theta)
        assert np.all(point >= lower - 1e-12)
        assert np.all(point <= upper + 1e-12)

    @SETTINGS
    @given(theta=bits, seed=st.integers(min_value=0, max_value=1000))
    def test_sample_cell_round_trips_through_locate(self, theta, seed):
        domain = UnitInterval()
        point = domain.sample_cell(tuple(theta), np.random.default_rng(seed))
        assert domain.locate(point, len(theta)) == tuple(theta)


class TestMetricProperties:
    @SETTINGS
    @given(a=st.lists(unit_floats, min_size=1, max_size=60),
           b=st.lists(unit_floats, min_size=1, max_size=60))
    def test_wasserstein_symmetry_and_nonnegativity(self, a, b):
        forward = wasserstein1_1d(a, b)
        backward = wasserstein1_1d(b, a)
        assert forward >= 0.0
        assert abs(forward - backward) < 1e-9
        assert forward <= 1.0 + 1e-9

    @SETTINGS
    @given(a=st.lists(unit_floats, min_size=1, max_size=40),
           b=st.lists(unit_floats, min_size=1, max_size=40),
           c=st.lists(unit_floats, min_size=1, max_size=40))
    def test_wasserstein_triangle_inequality(self, a, b, c):
        assert wasserstein1_1d(a, c) <= wasserstein1_1d(a, b) + wasserstein1_1d(b, c) + 1e-9

    @SETTINGS
    @given(counts=st.lists(st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
                           min_size=0, max_size=50),
           k=st.integers(min_value=0, max_value=60))
    def test_head_plus_tail_equals_total(self, counts, k):
        total = sum(counts)
        assert head_norm(counts, k) + tail_norm_from_counts(counts, k) == \
            np.float64(total) or abs(head_norm(counts, k) + tail_norm_from_counts(counts, k) - total) < 1e-6

    @SETTINGS
    @given(counts=st.lists(st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
                           min_size=1, max_size=50))
    def test_tail_monotone_decreasing_in_k(self, counts):
        values = [tail_norm_from_counts(counts, k) for k in range(len(counts) + 1)]
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))


class TestTopKProperties:
    @SETTINGS
    @given(values=st.dictionaries(
        keys=st.tuples(st.integers(0, 1), st.integers(0, 1), st.integers(0, 1)),
        values=st.floats(min_value=-100, max_value=100, allow_nan=False),
        min_size=0, max_size=8),
        k=st.integers(min_value=0, max_value=10))
    def test_top_k_returns_largest_values(self, values, k):
        selected = select_top_k(values, k)
        assert len(selected) == min(k, len(values))
        if selected:
            worst_selected = min(values[theta] for theta in selected)
            unselected = [count for theta, count in values.items() if theta not in selected]
            if unselected:
                assert worst_selected >= max(unselected) - 1e-12
