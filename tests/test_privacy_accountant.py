"""Tests for the basic-composition budget accountant."""

import pytest

from repro.privacy.accountant import BudgetAccountant, BudgetExceededError, PrivacySpend


class TestPrivacySpend:
    def test_negative_spend_rejected(self):
        with pytest.raises(ValueError):
            PrivacySpend(epsilon=-0.1, label="bad")

    def test_fields_stored(self):
        spend = PrivacySpend(epsilon=0.25, label="level 3")
        assert spend.epsilon == 0.25
        assert spend.label == "level 3"


class TestBudgetAccountant:
    def test_spend_accumulates(self):
        accountant = BudgetAccountant(total_budget=1.0)
        accountant.spend(0.4, "a")
        accountant.spend(0.3, "b")
        assert accountant.spent == pytest.approx(0.7)
        assert accountant.remaining == pytest.approx(0.3)

    def test_over_budget_raises(self):
        accountant = BudgetAccountant(total_budget=0.5)
        accountant.spend(0.4)
        with pytest.raises(BudgetExceededError):
            accountant.spend(0.2)

    def test_exact_budget_with_floating_point_slack_allowed(self):
        accountant = BudgetAccountant(total_budget=1.0)
        for _ in range(3):
            accountant.spend(1.0 / 3.0)
        assert accountant.spent == pytest.approx(1.0)
        accountant.assert_within_budget()

    def test_unbounded_accountant_never_raises(self):
        accountant = BudgetAccountant(total_budget=None)
        accountant.spend(100.0)
        assert accountant.remaining == float("inf")
        accountant.assert_within_budget()

    def test_can_spend_predicts_spend(self):
        accountant = BudgetAccountant(total_budget=1.0)
        accountant.spend(0.8)
        assert accountant.can_spend(0.2)
        assert not accountant.can_spend(0.3)

    def test_ledger_records_labels(self):
        accountant = BudgetAccountant(total_budget=1.0)
        accountant.spend(0.5, "tree level 0")
        accountant.spend(0.25, "sketch level 3")
        labels = [entry.label for entry in accountant.ledger]
        assert labels == ["tree level 0", "sketch level 3"]

    def test_summary_mentions_totals(self):
        accountant = BudgetAccountant(total_budget=2.0)
        accountant.spend(0.5, "x")
        text = accountant.summary()
        assert "x" in text
        assert "0.5" in text
        assert "2" in text

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            BudgetAccountant(total_budget=0.0)
