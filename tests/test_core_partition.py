"""Tests for GrowPartition (Algorithm 2)."""

import pytest

from repro.core.partition import grow_partition, select_top_k
from repro.core.tree import PartitionTree


class ExactSketch:
    """A stand-in sketch that returns exact counts from a dictionary."""

    def __init__(self, counts):
        self.counts = dict(counts)

    def query(self, theta):
        return float(self.counts.get(tuple(theta), 0.0))


class TestSelectTopK:
    def test_selects_largest(self):
        counts = {(0,): 5.0, (1,): 9.0, (0, 0): 1.0}
        assert select_top_k(counts, 2) == [(1,), (0,)]

    def test_deterministic_tie_break(self):
        counts = {(1,): 3.0, (0,): 3.0}
        assert select_top_k(counts, 1) == [(0,)]

    def test_k_larger_than_population(self):
        counts = {(0,): 1.0}
        assert select_top_k(counts, 5) == [(0,)]

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            select_top_k({}, -1)


class TestGrowPartition:
    def make_initial_tree(self):
        """Exact-counter tree of depth 1 holding 100 points: 70 left, 30 right."""
        tree = PartitionTree()
        tree.add_node((), 100.0)
        tree.add_node((0,), 70.0)
        tree.add_node((1,), 30.0)
        return tree

    def make_sketches(self):
        """Exact level-2 and level-3 counts consistent with the depth-1 tree."""
        level2 = ExactSketch({(0, 0): 50.0, (0, 1): 20.0, (1, 0): 25.0, (1, 1): 5.0})
        level3 = ExactSketch(
            {
                (0, 0, 0): 40.0,
                (0, 0, 1): 10.0,
                (0, 1, 0): 15.0,
                (0, 1, 1): 5.0,
                (1, 0, 0): 20.0,
                (1, 0, 1): 5.0,
                (1, 1, 0): 3.0,
                (1, 1, 1): 2.0,
            }
        )
        return {2: level2, 3: level3}

    def test_grows_to_requested_depth(self):
        tree = grow_partition(
            self.make_initial_tree(), self.make_sketches(), pruning_k=2, level_cutoff=1, depth=3
        )
        assert tree.depth() == 3

    def test_keeps_only_hot_branches(self):
        tree = grow_partition(
            self.make_initial_tree(), self.make_sketches(), pruning_k=2, level_cutoff=1, depth=3
        )
        # Level 2 contains all four children (both level-1 nodes are expanded),
        # but level 3 only contains children of the top-2 level-2 nodes.
        assert len(tree.nodes_at_level(2)) == 4
        assert len(tree.nodes_at_level(3)) == 4
        level3 = set(tree.nodes_at_level(3))
        assert level3 == {(0, 0, 0), (0, 0, 1), (1, 0, 0), (1, 0, 1)}

    def test_result_is_consistent(self):
        tree = grow_partition(
            self.make_initial_tree(), self.make_sketches(), pruning_k=2, level_cutoff=1, depth=3
        )
        assert tree.is_consistent()

    def test_total_mass_preserved(self):
        tree = grow_partition(
            self.make_initial_tree(), self.make_sketches(), pruning_k=2, level_cutoff=1, depth=3
        )
        assert tree.root_count == pytest.approx(100.0)

    def test_exact_counts_pass_through_unchanged(self):
        """With exact sketches and consistent inputs, counts stay exact."""
        tree = grow_partition(
            self.make_initial_tree(), self.make_sketches(), pruning_k=2, level_cutoff=1, depth=3
        )
        assert tree.count((0, 0)) == pytest.approx(50.0)
        assert tree.count((1, 0)) == pytest.approx(25.0)
        assert tree.count((0, 0, 0)) == pytest.approx(40.0)

    def test_consistency_disabled_keeps_raw_estimates(self):
        noisy = {2: ExactSketch({(0, 0): 45.0, (0, 1): 30.0, (1, 0): 20.0, (1, 1): 4.0})}
        tree = grow_partition(
            self.make_initial_tree(), noisy, pruning_k=2, level_cutoff=1, depth=2,
            apply_consistency=False,
        )
        # Raw estimates are stored without being reconciled with the parents.
        assert tree.count((0, 0)) == pytest.approx(45.0)
        assert tree.count((0, 1)) == pytest.approx(30.0)
        assert not tree.is_consistent()

    def test_missing_sketch_level_raises(self):
        with pytest.raises(KeyError):
            grow_partition(self.make_initial_tree(), {}, pruning_k=2, level_cutoff=1, depth=2)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            grow_partition(self.make_initial_tree(), {}, pruning_k=0, level_cutoff=1, depth=2)
        with pytest.raises(ValueError):
            grow_partition(self.make_initial_tree(), {}, pruning_k=1, level_cutoff=4, depth=2)

    def test_degenerate_no_sketch_levels(self):
        """When L* = L the function only runs the consistency pass."""
        tree = grow_partition(self.make_initial_tree(), {}, pruning_k=2, level_cutoff=1, depth=1)
        assert tree.depth() == 1
        assert tree.is_consistent()

    def test_negative_sketch_estimates_are_repaired(self):
        noisy = {2: ExactSketch({(0, 0): -5.0, (0, 1): 80.0, (1, 0): 10.0, (1, 1): 25.0})}
        tree = grow_partition(
            self.make_initial_tree(), noisy, pruning_k=2, level_cutoff=1, depth=2
        )
        assert tree.is_consistent()
        assert tree.count((0, 0)) >= 0.0
