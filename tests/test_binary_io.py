"""Serialization test battery for the binary envelope format (repro.io.binary).

The acceptance property pinned here: the binary format is *exactly* the JSON
format in different bytes.  save -> load -> save is a byte-level fixed point,
JSON <-> binary conversion is lossless in both directions, query answers
through a binary-loaded Release equal the JSON path bit for bit on all five
domains (one-shot and continual snapshots), and every malformed input --
truncation, magic/version/manifest/dtype tampering -- fails with a clean
``ValueError`` naming the offending path.
"""

from __future__ import annotations

import json
import pathlib
import struct
import threading

import numpy as np
import pytest

from repro.api.builder import PrivHPBuilder
from repro.api.release import Release
from repro.cli import main as cli_main
from repro.io.binary import (
    BINARY_FORMAT_VERSION,
    MAGIC,
    convert_file,
    detect_format,
    load_binary,
    save_binary,
)
from repro.io.serialization import (
    load_checkpoint,
    save_checkpoint,
    summarizer_to_dict,
)
from repro.serve.store import ReleaseStore

DOMAINS = ("interval", "hypercube", "ipv4", "geo", "discrete")

#: One representative query batch per domain (exercises every engine kind).
DOMAIN_QUERIES = {
    "interval": [
        ("mass", 0.2, 0.6),
        ("range_count", 0.0, 0.5),
        ("cdf", 0.3),
        ("quantile", 0.5),
        ("quantiles", [0.1, 0.25, 0.5, 0.75, 0.9]),
    ],
    "hypercube": [
        ("mass", [0.1, 0.2], [0.6, 0.9]),
        ("range_count", [0.0, 0.0], [0.5, 0.5]),
        ("marginal", 0, 8),
    ],
    "ipv4": [
        ("mass", 0, 2**31),
        ("range_count", 2**20, 2**30),
        ("cdf", 2**31),
        ("quantile", 0.5),
        ("quantiles", [0.25, 0.5, 0.75]),
    ],
    "geo": [
        ("mass", [30.0, -120.0], [45.0, -80.0]),
        ("range_count", [24.0, -125.0], [49.0, -66.0]),
        ("marginal", 1, 4),
    ],
    "discrete": [
        ("mass", 100, 2000),
        ("range_count", 0, 4095),
        ("cdf", 2048),
        ("quantile", 0.9),
        ("quantiles", [0.1, 0.5, 0.9]),
    ],
}


def _fit(domain_spec: str, data) -> Release:
    summarizer = (
        PrivHPBuilder(domain_spec)
        .epsilon(1.0)
        .pruning_k(4)
        .stream_size(len(data))
        .seed(3)
        .build()
    )
    summarizer.update_batch(data)
    return summarizer.release()


@pytest.fixture(scope="module")
def releases() -> dict[str, Release]:
    rng = np.random.default_rng(7)
    size = 1200
    geo_points = np.column_stack(
        [rng.uniform(24.0, 49.0, size), rng.uniform(-125.0, -66.0, size)]
    )
    return {
        "interval": _fit("interval", rng.beta(2.0, 5.0, size)),
        "hypercube": _fit("hypercube:2", rng.random((size, 2))),
        "ipv4": _fit("ipv4", rng.integers(0, 2**32, size)),
        "geo": _fit("geo:24,49,-125,-66", geo_points),
        "discrete": _fit("discrete:4096", rng.integers(0, 4096, size)),
    }


def _answers(release: Release, domain: str) -> list:
    """Raw bytes of every representative answer (exact comparison material)."""
    out = []
    for query in DOMAIN_QUERIES[domain]:
        kind = query[0]
        if kind == "mass":
            out.append(release.mass(query[1], query[2]))
        elif kind == "range_count":
            out.append(release.range_count(query[1], query[2]))
        elif kind == "cdf":
            out.append(release.cdf(query[1]))
        elif kind == "quantile":
            out.append(release.quantile(query[1]))
        elif kind == "quantiles":
            out.append(release.quantiles(query[1]).tobytes())
        elif kind == "marginal":
            out.append(release.marginal(query[1], bins=query[2]).tobytes())
    return out


def _canonical(document) -> str:
    return json.dumps(document, sort_keys=True)


# --------------------------------------------------------------------------- #
# round trips: fixed point, losslessness, identical answers
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("domain", DOMAINS)
class TestReleaseRoundTrip:
    def test_save_load_is_lossless(self, releases, domain, tmp_path):
        document = releases[domain].to_dict()
        path = save_binary(document, tmp_path / "release.bin", verify=True)
        assert detect_format(path) == "binary"
        assert _canonical(load_binary(path)) == _canonical(document)

    def test_save_load_save_is_a_byte_fixed_point(self, releases, domain, tmp_path):
        document = releases[domain].to_dict()
        first = save_binary(document, tmp_path / "first.bin")
        second = save_binary(load_binary(first), tmp_path / "second.bin")
        assert first.read_bytes() == second.read_bytes()

    def test_json_binary_json_conversion_is_byte_identical(self, releases, domain, tmp_path):
        json_path = releases[domain].save(tmp_path / "release.json")
        converted = convert_file(json_path, tmp_path / "release.bin", "binary")
        # The converter writes the identical envelope a direct save produces...
        assert converted.read_bytes() == save_binary(
            releases[domain].to_dict(), tmp_path / "direct.bin"
        ).read_bytes()
        # ...and converting back reproduces the original JSON file exactly.
        back = convert_file(converted, tmp_path / "back.json", "json")
        assert back.read_bytes() == json_path.read_bytes()

    def test_binary_release_answers_equal_json_path_exactly(self, releases, domain, tmp_path):
        json_path = releases[domain].save(tmp_path / "release.json", format="json")
        bin_path = releases[domain].save(tmp_path / "release.bin", format="binary")
        from_json = Release.load(json_path)
        from_binary = Release.load(bin_path)
        assert _answers(from_binary, domain) == _answers(from_json, domain)
        assert from_binary.epsilon == from_json.epsilon
        assert from_binary.items_processed == from_json.items_processed
        assert from_binary.memory_words == from_json.memory_words
        assert from_binary.metadata == from_json.metadata

    def test_binary_release_samples_equal_json_path_exactly(self, releases, domain, tmp_path):
        bin_path = releases[domain].save(tmp_path / "release.bin")
        from_json = Release.load(releases[domain].save(tmp_path / "r.json"), sampling_seed=11)
        from_binary = Release.load(bin_path, sampling_seed=11)
        assert np.asarray(from_binary.sample(64)).tobytes() == np.asarray(
            from_json.sample(64)
        ).tobytes()

    def test_roundtrip_through_release_object_preserves_document(
        self, releases, domain, tmp_path
    ):
        # Loading a binary release and re-saving it (both formats) must
        # reproduce the original artefacts byte for byte -- the lazy tree and
        # pre-seeded engines are invisible to persistence.
        bin_path = releases[domain].save(tmp_path / "release.bin")
        json_path = releases[domain].save(tmp_path / "release.json")
        loaded = Release.load(bin_path)
        assert loaded.save(tmp_path / "again.bin").read_bytes() == bin_path.read_bytes()
        assert loaded.save(tmp_path / "again.json").read_bytes() == json_path.read_bytes()


class TestContinualSnapshotRoundTrip:
    @pytest.fixture(scope="class")
    def continual(self):
        rng = np.random.default_rng(13)
        summarizer = (
            PrivHPBuilder("interval")
            .epsilon(1.0)
            .pruning_k(4)
            .stream_size(600)
            .seed(5)
            .continual()
            .build()
        )
        summarizer.update_batch(rng.beta(2.0, 5.0, 400))
        return summarizer

    def test_snapshot_binary_answers_equal_json(self, continual, tmp_path):
        snapshot = continual.snapshot()
        json_path = snapshot.save(tmp_path / "snap.json")
        bin_path = snapshot.save(tmp_path / "snap.bin")
        assert _answers(Release.load(bin_path), "interval") == _answers(
            Release.load(json_path), "interval"
        )

    def test_snapshot_document_is_lossless(self, continual, tmp_path):
        document = continual.snapshot().to_dict()
        path = save_binary(document, tmp_path / "snap.bin", verify=True)
        assert _canonical(load_binary(path)) == _canonical(document)


class TestCheckpointRoundTrip:
    def _build(self, continual: bool):
        builder = (
            PrivHPBuilder("interval").epsilon(1.0).pruning_k(4).stream_size(400).seed(9)
        )
        if continual:
            builder = builder.continual()
        return builder.build()

    @pytest.mark.parametrize("continual", [False, True], ids=["oneshot", "continual"])
    def test_binary_checkpoint_restores_identically_to_json(self, continual, tmp_path):
        rng = np.random.default_rng(3)
        data = rng.beta(2.0, 5.0, 400)
        summarizer = self._build(continual)
        summarizer.update_batch(data[:200])
        json_path = save_checkpoint(summarizer, tmp_path / "state.json", format="json")
        bin_path = save_checkpoint(summarizer, tmp_path / "state.bin", format="binary")
        assert detect_format(json_path) == "json"
        assert detect_format(bin_path) == "binary"
        from_json = load_checkpoint(json_path)
        from_binary = load_checkpoint(bin_path)
        from_json.update_batch(data[200:])
        from_binary.update_batch(data[200:])
        assert _canonical(from_binary.release().to_dict()) == _canonical(
            from_json.release().to_dict()
        )

    @pytest.mark.parametrize("continual", [False, True], ids=["oneshot", "continual"])
    def test_checkpoint_save_load_save_fixed_point(self, continual, tmp_path):
        summarizer = self._build(continual)
        summarizer.update_batch(np.random.default_rng(3).beta(2.0, 5.0, 300))
        document = summarizer_to_dict(summarizer)
        first = save_binary(document, tmp_path / "first.bin", verify=True)
        second = save_binary(load_binary(first), tmp_path / "second.bin")
        assert first.read_bytes() == second.read_bytes()

    def test_checkpoint_json_binary_json_is_byte_identical(self, tmp_path):
        summarizer = self._build(False)
        summarizer.update_batch(np.random.default_rng(3).beta(2.0, 5.0, 300))
        json_path = save_checkpoint(summarizer, tmp_path / "state.json")
        bin_path = convert_file(json_path, tmp_path / "state.bin", "binary")
        back = convert_file(bin_path, tmp_path / "back.json", "json")
        assert back.read_bytes() == json_path.read_bytes()

    def test_mt19937_rng_state_survives_binary_roundtrip(self, tmp_path):
        # The PCG64 default keeps its 128-bit state ints in the JSON header;
        # MT19937's 624-word key is exactly the kind of state that lands in a
        # raw integer section, so pin that both formats restore it bit-for-bit.
        rng = np.random.default_rng(3)
        data = rng.beta(2.0, 5.0, 300)
        summarizer = self._build(False)
        summarizer._rng = np.random.Generator(np.random.MT19937(17))
        summarizer.update_batch(data[:150])
        json_path = save_checkpoint(summarizer, tmp_path / "state.json", format="json")
        bin_path = save_checkpoint(summarizer, tmp_path / "state.bin", format="binary")
        from_json = load_checkpoint(json_path)
        from_binary = load_checkpoint(bin_path)
        assert (
            from_binary._rng.bit_generator.state["bit_generator"] == "MT19937"
        )
        from_json.update_batch(data[150:])
        from_binary.update_batch(data[150:])
        assert _canonical(from_binary.release().to_dict()) == _canonical(
            from_json.release().to_dict()
        )

    def test_cli_checkpoint_defaults_to_binary_with_json_optout(self, tmp_path):
        data_path = tmp_path / "data.csv"
        np.savetxt(data_path, np.random.default_rng(1).beta(2, 5, 300), delimiter=",")
        binary_state = tmp_path / "state.bin"
        json_state = tmp_path / "state.json"
        assert cli_main(
            ["checkpoint", "--input", str(data_path), "--state", str(binary_state)]
        ) == 0
        assert binary_state.read_bytes()[: len(MAGIC)] == MAGIC
        assert cli_main(
            [
                "checkpoint",
                "--input",
                str(data_path),
                "--state",
                str(json_state),
                "--format",
                "json",
            ]
        ) == 0
        assert json.loads(json_state.read_text())["format"] == "privhp-checkpoint"
        # Both resume through autodetection to the same release.
        out_a, out_b = tmp_path / "a.json", tmp_path / "b.json"
        assert cli_main(["resume", "--state", str(binary_state), "--output", str(out_a)]) == 0
        assert cli_main(["resume", "--state", str(json_state), "--output", str(out_b)]) == 0
        assert out_a.read_bytes() == out_b.read_bytes()


class TestConvertCLI:
    def test_convert_infers_target_from_suffix_and_roundtrips(self, releases, tmp_path):
        json_path = releases["interval"].save(tmp_path / "release.json")
        assert cli_main(["convert", str(json_path), str(tmp_path / "release.bin")]) == 0
        assert detect_format(tmp_path / "release.bin") == "binary"
        assert cli_main(
            ["convert", str(tmp_path / "release.bin"), str(tmp_path / "back.json")]
        ) == 0
        assert (tmp_path / "back.json").read_bytes() == json_path.read_bytes()

    def test_convert_explicit_target_overrides_suffix(self, releases, tmp_path):
        json_path = releases["interval"].save(tmp_path / "release.json")
        assert cli_main(
            ["convert", str(json_path), str(tmp_path / "release.dat"), "--to", "binary"]
        ) == 0
        assert detect_format(tmp_path / "release.dat") == "binary"

    def test_convert_rejects_non_state_files(self, tmp_path, capsys):
        stray = tmp_path / "stray.json"
        stray.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["convert", str(stray), str(tmp_path / "out.bin")])
        assert excinfo.value.code == 2
        assert "unknown document format" in capsys.readouterr().err


# --------------------------------------------------------------------------- #
# corrupt / adversarial inputs
# --------------------------------------------------------------------------- #
_PREFIX = struct.Struct("<8sIQ")


def _read_envelope_parts(path: pathlib.Path):
    blob = path.read_bytes()
    magic, version, header_length = _PREFIX.unpack_from(blob, 0)
    header = json.loads(blob[_PREFIX.size : _PREFIX.size + header_length])
    data_start = (_PREFIX.size + header_length + 63) // 64 * 64
    return header, blob[data_start:]


def _write_envelope(path: pathlib.Path, header: dict, data: bytes) -> pathlib.Path:
    """Reassemble an envelope from a (possibly doctored) header + data region.

    Section offsets are relative to the aligned data start, so the data
    region can be reattached verbatim under any header size.
    """
    header_bytes = json.dumps(header, sort_keys=True, separators=(",", ":")).encode()
    prefix = _PREFIX.pack(MAGIC, BINARY_FORMAT_VERSION, len(header_bytes))
    padding = b"\x00" * ((-(len(prefix) + len(header_bytes))) % 64)
    path.write_bytes(prefix + header_bytes + padding + data)
    return path


@pytest.fixture()
def envelope_path(releases, tmp_path) -> pathlib.Path:
    return save_binary(releases["interval"].to_dict(), tmp_path / "release.bin")


class TestCorruptInputs:
    def _assert_clean_failure(self, path, match: str):
        with pytest.raises(ValueError, match=match) as excinfo:
            Release.load(path)
        assert str(path) in str(excinfo.value)
        with pytest.raises(ValueError):
            load_binary(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.bin"
        path.write_bytes(b"")
        # Zero bytes has no magic: autodetected as JSON and rejected as such.
        with pytest.raises(ValueError):
            Release.load(path)

    def test_truncated_prefix(self, envelope_path):
        envelope_path.write_bytes(envelope_path.read_bytes()[:12])
        self._assert_clean_failure(envelope_path, "truncated")

    def test_truncated_section_region(self, envelope_path):
        blob = envelope_path.read_bytes()
        envelope_path.write_bytes(blob[: len(blob) - 256])
        self._assert_clean_failure(envelope_path, "past the end of the file")

    def test_wrong_magic_is_treated_as_json(self, envelope_path):
        blob = envelope_path.read_bytes()
        envelope_path.write_bytes(b"NOTMAGIC" + blob[8:])
        # No magic -> the JSON loader gets it and rejects it cleanly.
        with pytest.raises(ValueError, match="not valid JSON"):
            Release.load(envelope_path)

    def test_newer_version_rejected(self, envelope_path):
        blob = bytearray(envelope_path.read_bytes())
        blob[8:12] = struct.pack("<I", BINARY_FORMAT_VERSION + 1)
        envelope_path.write_bytes(bytes(blob))
        self._assert_clean_failure(envelope_path, "newer than supported")

    def test_header_length_past_eof(self, envelope_path):
        blob = bytearray(envelope_path.read_bytes())
        blob[12:20] = struct.pack("<Q", 2**40)
        envelope_path.write_bytes(bytes(blob))
        self._assert_clean_failure(envelope_path, "truncated")

    def test_header_not_json(self, envelope_path):
        blob = bytearray(envelope_path.read_bytes())
        blob[_PREFIX.size : _PREFIX.size + 4] = b"\xff\xfe\xfd\xfc"
        envelope_path.write_bytes(bytes(blob))
        self._assert_clean_failure(envelope_path, "not valid JSON")

    def test_manifest_length_mismatch(self, envelope_path):
        header, data = _read_envelope_parts(envelope_path)
        header["sections"][0]["nbytes"] += 8
        _write_envelope(envelope_path, header, data)
        self._assert_clean_failure(envelope_path, "disagrees")

    def test_dtype_spoof_to_disallowed_dtype(self, envelope_path):
        header, data = _read_envelope_parts(envelope_path)
        header["sections"][0]["dtype"] = "<U8"
        _write_envelope(envelope_path, header, data)
        self._assert_clean_failure(envelope_path, "disallowed dtype")

    def test_dtype_spoof_to_wrong_width_caught_by_manifest(self, envelope_path):
        header, data = _read_envelope_parts(envelope_path)
        entry = next(e for e in header["sections"] if e["dtype"] == "<f8")
        entry["dtype"] = "<i4"
        _write_envelope(envelope_path, header, data)
        self._assert_clean_failure(envelope_path, "disagrees")

    def test_duplicate_section_names(self, envelope_path):
        header, data = _read_envelope_parts(envelope_path)
        header["sections"].append(dict(header["sections"][0]))
        _write_envelope(envelope_path, header, data)
        self._assert_clean_failure(envelope_path, "duplicate or invalid section name")

    def test_negative_shape(self, envelope_path):
        header, data = _read_envelope_parts(envelope_path)
        header["sections"][0]["shape"] = [-1]
        _write_envelope(envelope_path, header, data)
        self._assert_clean_failure(envelope_path, "invalid shape")

    def test_marker_referencing_unknown_section(self, envelope_path):
        header, data = _read_envelope_parts(envelope_path)
        header["document"]["tree"]["__tree__"]["counts"] = "s999"
        _write_envelope(envelope_path, header, data)
        with pytest.raises(ValueError, match="unknown section"):
            load_binary(envelope_path)
        with pytest.raises(ValueError, match="unknown section"):
            Release.load(envelope_path).tree.leaves()

    def test_section_offset_past_eof(self, envelope_path):
        header, data = _read_envelope_parts(envelope_path)
        header["sections"][0]["offset"] = 2**40
        _write_envelope(envelope_path, header, data)
        self._assert_clean_failure(envelope_path, "past the end of the file")

    def test_missing_document(self, envelope_path):
        header, data = _read_envelope_parts(envelope_path)
        del header["document"]
        _write_envelope(envelope_path, header, data)
        self._assert_clean_failure(envelope_path, "no document")

    def test_load_binary_rejects_unknown_mode(self, envelope_path):
        with pytest.raises(ValueError, match="mode"):
            load_binary(envelope_path, mode="zero-copy")

    def test_checkpoint_envelope_rejected_by_release_loader(self, tmp_path):
        summarizer = PrivHPBuilder("interval").epsilon(1.0).stream_size(50).seed(1).build()
        summarizer.update_batch(np.linspace(0.05, 0.95, 50))
        path = save_checkpoint(summarizer, tmp_path / "state.bin", format="binary")
        with pytest.raises(ValueError, match="privhp-generator"):
            Release.load(path)

    def test_document_with_marker_keys_rejected_at_save(self, tmp_path):
        with pytest.raises(ValueError, match="marker"):
            save_binary(
                {"format": "privhp-checkpoint", "state": {"__section__": "s0"}},
                tmp_path / "bad.bin",
            )


# --------------------------------------------------------------------------- #
# stores and ingestion under concurrency
# --------------------------------------------------------------------------- #
class TestStoreAndConcurrency:
    def test_store_lists_and_loads_binary_releases(self, releases, tmp_path):
        for domain in DOMAINS:
            releases[domain].save(tmp_path / f"{domain}.bin")
        store = ReleaseStore(tmp_path)
        assert store.names() == sorted(DOMAINS)
        for domain in DOMAINS:
            assert _answers(store.get(domain), domain) == _answers(releases[domain], domain)

    def test_binary_preferred_over_json_for_same_stem(self, releases, tmp_path):
        release = releases["interval"]
        release.save(tmp_path / "demo.json")
        binary_copy = Release.load(release.save(tmp_path / "scratch.bin"))
        binary_copy.epsilon = 2.5  # distinguishable marker
        binary_copy.save(tmp_path / "demo.bin")
        (tmp_path / "scratch.bin").unlink()
        store = ReleaseStore(tmp_path)
        assert store.names() == ["demo"]
        assert store.get("demo").epsilon == 2.5

    def test_concurrent_cold_loads_share_one_release_and_engines(self, releases, tmp_path):
        releases["interval"].save(tmp_path / "shared.bin")
        store = ReleaseStore(tmp_path)
        workers = 8
        barrier = threading.Barrier(workers)
        loaded: list[Release] = []
        errors: list[BaseException] = []
        lock = threading.Lock()

        def hammer():
            try:
                barrier.wait()
                release = store.get("shared")
                answer = release.quantile(0.5)
                with lock:
                    loaded.append((release, answer))
            except BaseException as error:  # noqa: BLE001 - surfaced below
                with lock:
                    errors.append(error)

        threads = [threading.Thread(target=hammer) for _ in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(loaded) == workers
        first_release, first_answer = loaded[0]
        # One canonical Release object -> one mmap, one set of compiled
        # tables; every thread answered from the same engines.
        assert all(release is first_release for release, _ in loaded)
        assert all(answer == first_answer for _, answer in loaded)
        engines = first_release._engines
        assert set(engines) == {"range", "quantile"}

    def test_ingest_evict_binary_restore_is_byte_identical(self, tmp_path):
        from repro.ingest import IngestService, TenantSpec

        spec = TenantSpec("tenant", stream_size=128, seed=4, continual=False)
        rng = np.random.default_rng(21)
        batches = [rng.beta(2.0, 5.0, 32) for _ in range(4)]

        control = spec.build_summarizer()
        for batch in batches:
            control.update_batch(spec.make_domain().coerce_stream(batch))
        control_bytes = _canonical(control.release().to_dict())

        checkpoint_dir = tmp_path / "ckpt"
        with IngestService(workers=2, checkpoint_dir=checkpoint_dir) as service:
            service.register(spec)
            service.append("tenant", batches[0])
            service.append("tenant", batches[1])
            assert service.evict("tenant") is True
            assert (checkpoint_dir / "tenant.state.bin").exists()
            assert detect_format(checkpoint_dir / "tenant.state.bin") == "binary"
            service.append("tenant", batches[2])  # transparently restored
            service.append("tenant", batches[3])
            release = service.release("tenant")
            assert service.stats()["restores"] >= 1
        assert _canonical(release.to_dict()) == control_bytes

    def test_ingest_json_checkpoint_format_still_supported(self, tmp_path):
        from repro.ingest import IngestService, TenantSpec

        spec = TenantSpec("tenant", stream_size=64, seed=4)
        checkpoint_dir = tmp_path / "ckpt"
        with IngestService(
            workers=1, checkpoint_dir=checkpoint_dir, checkpoint_format="json"
        ) as service:
            service.register(spec)
            service.append("tenant", np.linspace(0.1, 0.9, 32))
            assert service.evict("tenant") is True
            path = checkpoint_dir / "tenant.state.json"
            assert path.exists()
            assert json.loads(path.read_text())["format"] == "privhp-checkpoint"
            service.append("tenant", np.linspace(0.1, 0.9, 32))
            service.release("tenant")


# --------------------------------------------------------------------------- #
# frozen v1 fixture: future schema changes must keep reading old bytes
# --------------------------------------------------------------------------- #
GOLDEN_FIXTURE = pathlib.Path(__file__).parent / "data" / "golden_release_v1.bin"


class TestGoldenFixture:
    """Pin the committed version-1 envelope (tools/make_golden_fixture.py).

    If a schema change breaks these answers, every binary checkpoint already
    on disk breaks with it: bump the version and keep reading v1 instead.
    """

    def test_golden_v1_envelope_answers(self):
        release = Release.load(GOLDEN_FIXTURE)
        assert release.items_processed == 512
        assert release.epsilon == 1.0
        assert release.mass(0.1, 0.5) == 0.7537717587931612
        assert release.cdf(0.25) == 0.4533572127669593
        assert release.quantile(0.5) == 0.25484385000120435
        assert release.quantiles([0.1, 0.9]).tolist() == [
            0.091456220758332,
            0.5571482140354804,
        ]
        assert release.range_count(0.0, 0.3) == 297.235509204325

    def test_golden_v1_envelope_is_still_the_current_fixed_point(self, tmp_path):
        document = load_binary(GOLDEN_FIXTURE)
        resaved = save_binary(document, tmp_path / "resaved.bin")
        assert resaved.read_bytes() == GOLDEN_FIXTURE.read_bytes()
