"""Tests for the finite ordered domain."""

import pytest

from repro.domain.discrete import DiscreteDomain


class TestConstruction:
    def test_minimum_size(self):
        with pytest.raises(ValueError):
            DiscreteDomain(size=1)

    def test_max_depth_covers_universe(self):
        domain = DiscreteDomain(size=100)
        assert 2**domain.max_depth >= 100


class TestGeometry:
    def test_diameter(self, discrete):
        assert discrete.diameter() == 1.0

    def test_distance_normalised(self, discrete):
        assert discrete.distance(0, 99) == pytest.approx(1.0)
        assert discrete.distance(10, 10) == 0.0

    def test_cell_range_root_covers_everything(self, discrete):
        assert discrete.cell_range(()) == (0, 99)

    def test_cell_ranges_partition(self, discrete):
        low0, high0 = discrete.cell_range((0,))
        low1, high1 = discrete.cell_range((1,))
        assert low0 == 0
        assert high1 == 99
        assert high0 + 1 == low1

    def test_cell_diameter_shrinks(self, discrete):
        assert discrete.cell_diameter(()) > discrete.cell_diameter((0,)) > discrete.cell_diameter((0, 0))


class TestLocateAndSample:
    def test_locate_respects_ranges(self, discrete):
        for item in (0, 17, 49, 50, 99):
            for level in (1, 3, 5):
                theta = discrete.locate(item, level)
                low, high = discrete.cell_range(theta)
                assert low <= item <= high

    def test_locate_beyond_max_depth_is_well_defined(self, discrete):
        theta = discrete.locate(42, discrete.max_depth + 3)
        assert len(theta) == discrete.max_depth + 3

    def test_locate_rejects_out_of_universe(self, discrete):
        with pytest.raises(ValueError):
            discrete.locate(100, 2)

    def test_sample_cell_inside_range(self, discrete, rng):
        theta = discrete.locate(25, 3)
        low, high = discrete.cell_range(theta)
        for _ in range(50):
            assert low <= discrete.sample_cell(theta, rng) <= high

    def test_sample_empty_cell_raises(self):
        domain = DiscreteDomain(size=3)
        deep = (1, 1, 1, 1)
        if domain.cell_range(deep)[0] > domain.cell_range(deep)[1]:
            with pytest.raises(ValueError):
                domain.sample_cell(deep, __import__("numpy").random.default_rng(0))

    def test_contains(self, discrete):
        assert discrete.contains(0)
        assert discrete.contains(99)
        assert not discrete.contains(100)
        assert not discrete.contains("x")
