"""Tests for the private (oblivious-noise) sketch wrappers."""

import numpy as np
import pytest

from repro.sketch.countmin import CountMinSketch
from repro.sketch.private import (
    PrivateCountMinSketch,
    PrivateCountSketch,
    privatize_sketch_array,
)


class TestPrivatizeSketchArray:
    def test_adds_noise_with_correct_shape(self, rng):
        table = np.zeros((3, 16))
        noisy = privatize_sketch_array(table, epsilon=1.0, rng=rng)
        assert noisy.shape == (3, 16)
        assert not np.allclose(noisy, 0.0)

    def test_noise_scale_matches_depth_over_epsilon(self, rng):
        table = np.zeros((4, 2000))
        noisy = privatize_sketch_array(table, epsilon=2.0, rng=rng)
        # E|Laplace(depth/eps)| = depth/eps = 2.
        assert np.mean(np.abs(noisy)) == pytest.approx(2.0, rel=0.1)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            privatize_sketch_array(np.zeros(5), epsilon=1.0)
        with pytest.raises(ValueError):
            privatize_sketch_array(np.zeros((2, 2)), epsilon=0.0)


class TestPrivateCountMinSketch:
    def test_noise_applied_at_initialisation(self):
        sketch = PrivateCountMinSketch(width=16, depth=3, epsilon=1.0, seed=0, rng=0)
        assert sketch.noise_applied
        # Even before any update, a query returns (pure noise) not exactly zero.
        assert sketch.query((0, 1)) != 0.0

    def test_estimates_track_true_counts_when_budget_is_large(self):
        sketch = PrivateCountMinSketch(width=256, depth=4, epsilon=100.0, seed=1, rng=1)
        for _ in range(50):
            sketch.update((0, 0, 1))
        assert sketch.query((0, 0, 1)) == pytest.approx(50, abs=3)

    def test_noise_scale_property(self):
        sketch = PrivateCountMinSketch(width=8, depth=5, epsilon=0.5, seed=0, rng=0)
        assert sketch.noise_scale == pytest.approx(10.0)
        assert sketch.sensitivity == 5.0

    def test_memory_words(self):
        sketch = PrivateCountMinSketch(width=16, depth=4, epsilon=1.0, seed=0, rng=0)
        assert sketch.memory_words() == 64

    def test_error_bound_includes_noise(self):
        sketch = PrivateCountMinSketch(width=16, depth=4, epsilon=0.5, seed=0, rng=0)
        assert sketch.error_bound(tail_norm=0.0, total_norm=0.0) >= sketch.noise_scale

    def test_invalid_epsilon_rejected(self):
        with pytest.raises(ValueError):
            PrivateCountMinSketch(width=8, depth=2, epsilon=0.0)

    def test_same_seed_rng_reproducible(self):
        def build():
            sketch = PrivateCountMinSketch(width=32, depth=3, epsilon=1.0, seed=7, rng=7)
            sketch.update_many([(i % 4,) for i in range(20)])
            return sketch.query((1,))

        assert build() == pytest.approx(build())

    def test_noisy_tables_on_neighbouring_streams_overlap(self):
        """The noisy tables built from neighbouring streams differ by O(noise).

        This is a sanity check of the oblivious-release argument rather than a
        formal DP test: on neighbouring inputs the un-noised tables differ by
        exactly `depth` cells of magnitude 1, which the Laplace(depth/eps)
        noise is calibrated to hide.
        """
        stream_a = [(i % 8,) for i in range(64)]
        stream_b = list(stream_a)
        stream_b[0] = (7,)

        raw_a = CountMinSketch(width=16, depth=3, seed=5)
        raw_b = CountMinSketch(width=16, depth=3, seed=5)
        raw_a.update_many(stream_a)
        raw_b.update_many(stream_b)
        difference = np.abs(raw_a.table - raw_b.table)
        assert difference.sum() == pytest.approx(2 * 3)  # one removal + one addition per row
        assert difference.max() == pytest.approx(1.0)


class TestPrivateCountSketch:
    def test_initial_noise_and_queries(self):
        sketch = PrivateCountSketch(width=64, depth=5, epsilon=50.0, seed=0, rng=0)
        for _ in range(30):
            sketch.update("hot")
        assert sketch.query("hot") == pytest.approx(30, abs=5)

    def test_memory_and_sensitivity(self):
        sketch = PrivateCountSketch(width=8, depth=3, epsilon=1.0, seed=0, rng=0)
        assert sketch.memory_words() == 24
        assert sketch.sensitivity == 3.0

    def test_update_batch_matches_per_item_updates(self):
        """The mixin's batch path works for Count-Sketch, not just Count-Min."""
        keys = np.array([5, 9, 200, 513], dtype=np.uint64)
        counts = np.array([3.0, 1.0, 2.0, 4.0])
        batched = PrivateCountSketch(width=32, depth=4, epsilon=1.0, seed=2, rng=0)
        batched.update_batch(keys, counts)
        sequential = PrivateCountSketch(width=32, depth=4, epsilon=1.0, seed=2, rng=0)
        for key, count in zip(keys, counts):
            for _ in range(int(count)):
                sequential.update(int(key))
        np.testing.assert_allclose(batched.table, sequential.table)
        assert batched.updates == sequential.updates
