"""A 100-tenant ingestion fleet, end to end: specs → workers → evictions → releases.

Registers 100 tenants (a mix of one-shot and continual summarizers) with the
multi-tenant ingestion service, streams batched appends through the
hash-partitioned worker pool under a memory budget tight enough to force
LRU eviction of cold tenants to checkpoint files, queries a live continual
tenant over HTTP *while ingestion is still running*, and finally releases
the fleet -- verifying for one sampled tenant that the release is
byte-identical to running its stream through a single in-process
summarizer (evictions and worker routing are invisible in the output).

Run with::

    python examples/ingest_demo.py
"""

from __future__ import annotations

import json
import tempfile
import threading
import urllib.request
from pathlib import Path

import numpy as np

from repro.ingest import IngestService, TenantSpec
from repro.serve import create_server
from repro.serve.store import ReleaseStore

TENANTS = 100
ROUNDS = 3
BATCH = 64


def post_json(url: str, payload: dict) -> dict:
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode(), headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request) as response:
        return json.loads(response.read())


def main() -> None:
    # --- the fleet: every third tenant is continual (live-queryable) ------
    specs = [
        TenantSpec(
            f"tenant-{index:03d}",
            stream_size=ROUNDS * BATCH,
            seed=index,
            continual=(index % 3 == 0),
        )
        for index in range(TENANTS)
    ]
    rng = np.random.default_rng(0)
    streams = {
        spec.tenant_id: [rng.beta(2.0, 6.0, size=BATCH) for _ in range(ROUNDS)]
        for spec in specs
    }

    with tempfile.TemporaryDirectory() as workdir:
        checkpoint_dir = Path(workdir) / "ckpt"
        store = ReleaseStore()
        with IngestService(
            specs,
            workers=4,
            checkpoint_dir=checkpoint_dir,
            memory_budget_words=100_000,  # tight on purpose: forces evictions
            store=store,
        ) as service:
            print(
                f"registered {len(service.tenants())} tenants across 4 workers "
                f"(budget: {service.budget_registry.total_epsilon():.0f} total epsilon)"
            )

            # --- serve live snapshots while ingesting ---------------------
            server = create_server(store, port=0)
            threading.Thread(target=server.serve_forever, daemon=True).start()
            base = f"http://127.0.0.1:{server.server_port}"
            try:
                for round_index in range(ROUNDS):
                    for spec in specs:
                        service.append(
                            spec.tenant_id, streams[spec.tenant_id][round_index]
                        )
                    service.flush()
                    # Evicted tenants are unregistered (they must 404, not
                    # serve stale state), so probe one that is live right now.
                    live = [s.tenant_id for s in specs if store.is_live(s.tenant_id)]
                    answer = post_json(
                        base + "/query",
                        {
                            "release": live[0],
                            "query": {"type": "quantile", "q": [0.5]},
                        },
                    )
                    print(
                        f"round {round_index + 1}: {len(live)} tenants live over "
                        f"HTTP; {live[0]} median so far = {answer['answer'][0]:.3f} "
                        f"({answer['items_processed']} items)"
                    )
                stats = service.stats()
                print(
                    f"ingested {stats['items_ingested']} items; "
                    f"{stats['evictions']} evictions / {stats['restores']} restores "
                    f"kept residency at {stats['memory_words']} words "
                    f"(budget 100000)"
                )

                # --- release the fleet ------------------------------------
                releases = {
                    spec.tenant_id: service.release(spec.tenant_id) for spec in specs
                }
                print(
                    f"released {len(releases)} tenants; "
                    f"live entries now {sum(store.is_live(s.tenant_id) for s in specs)} "
                    "(released tenants serve as static entries instead)"
                )
            finally:
                server.shutdown()
                server.server_close()

        # --- determinism check: the service changed nothing ---------------
        sampled = specs[42]
        control = sampled.build_summarizer()
        for batch in streams[sampled.tenant_id]:
            control.update_batch(batch)
        service_doc = json.dumps(releases[sampled.tenant_id].to_dict(), sort_keys=True)
        control_doc = json.dumps(control.release().to_dict(), sort_keys=True)
        print(
            f"{sampled.tenant_id} release is byte-identical to an in-process "
            f"run: {service_doc == control_doc}"
        )


if __name__ == "__main__":
    main()
