"""Fit → release → serve, end to end: the query side of private synthetic data.

Fits PrivHP on a generated stream, saves the epsilon-DP release to disk,
answers range/quantile queries three ways -- in-process through the
``Release`` query surface, in batch through the workload runner, and over
HTTP against a live ``repro serve`` endpoint -- and shows that all three
agree exactly (they share one evaluation path).  Everything after the
release is pure post-processing: no further privacy budget is spent, no
matter how many queries are answered.

Run with::

    python examples/serve_demo.py
"""

from __future__ import annotations

import json
import tempfile
import threading
import urllib.request
from pathlib import Path

import numpy as np

from repro.api import PrivHPBuilder, Release
from repro.serve import create_server, run_workload_file

QUERIES = [
    {"type": "range_count", "lower": 0.0, "upper": 0.25},
    {"type": "mass", "lower": 0.25, "upper": 0.75},
    {"type": "quantile", "q": [0.25, 0.5, 0.75]},
    {"type": "cdf", "point": 0.5},
]


def post_json(url: str, payload: dict) -> dict:
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode(), headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request) as response:
        return json.loads(response.read())


def main() -> None:
    rng = np.random.default_rng(11)
    stream = rng.beta(2.0, 6.0, size=30_000)

    # --- fit and release (the only step that touches sensitive data) ------
    release = (
        PrivHPBuilder("interval")
        .epsilon(1.0)
        .pruning_k(8)
        .stream_size(len(stream))
        .seed(11)
        .build()
        .update_batch(stream)
        .release()
    )

    with tempfile.TemporaryDirectory() as workdir:
        store_dir = Path(workdir) / "releases"
        store_dir.mkdir()
        release_path = store_dir / "sessions.json"
        release.save(release_path)
        print(f"released {release.items_processed} items at epsilon={release.epsilon}, "
              f"saved to {release_path.name}")

        # --- 1) in-process queries on the loaded release ------------------
        served = Release.load(release_path)
        print("\nin-process answers:")
        for query in QUERIES:
            if query["type"] == "range_count":
                answer = served.range_count(query["lower"], query["upper"])
            elif query["type"] == "mass":
                answer = served.mass(query["lower"], query["upper"])
            elif query["type"] == "quantile":
                answer = [float(value) for value in served.quantiles(query["q"])]
            else:
                answer = served.cdf(query["point"])
            print(f"  {query['type']:12s} -> {answer}")

        # --- 2) batch mode: the `repro query` core ------------------------
        workload_path = Path(workdir) / "queries.json"
        workload_path.write_text(json.dumps(QUERIES))
        batch = run_workload_file(release_path, workload_path)
        print(f"\nbatch mode answered {batch['num_queries']} queries "
              f"on domain {batch['domain']}")

        # --- 3) HTTP: a live `repro serve` endpoint -----------------------
        server = create_server(str(store_dir), port=0)  # port 0 -> free port
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{server.server_port}"
        try:
            listing = json.loads(urllib.request.urlopen(base + "/releases").read())
            row = listing["releases"][0]
            print(f"\nserving {row['name']!r} ({row['domain']}) at {base}; "
                  f"query types: {', '.join(row['queries'])}")
            print("HTTP answers (twice, to exercise the cache):")
            for _ in range(2):
                for query, batch_row in zip(QUERIES, batch["results"]):
                    result = post_json(
                        base + "/query", {"release": "sessions", "query": query}
                    )
                    agrees = result["answer"] == batch_row["answer"]
                    print(f"  {query['type']:12s} -> {result['answer']} "
                          f"(cached={result['cached']}, matches batch={agrees})")
            stats = json.loads(urllib.request.urlopen(base + "/stats").read())
            print(f"cache stats: {stats['cache']['hits']} hits, "
                  f"{stats['cache']['misses']} misses "
                  f"(hit rate {stats['cache']['hit_rate']:.0%})")
        finally:
            server.shutdown()
            server.server_close()


if __name__ == "__main__":
    main()
