"""A continual summarizer tracking a drifting distribution, epoch by epoch.

Builds a time-varying ``drift`` scenario (Zipf exponent 0.5 -> 2.5, so the
stream sharpens from nearly uniform to heavily concentrated), feeds it to a
continual-observation summarizer one epoch at a time, and measures the
1-Wasserstein error of a snapshot at every epoch boundary -- the same
per-epoch trajectory the experiment matrix records for scenario cells.

Three things to watch in the output:

* the continual snapshots *track* the drift: error stays bounded at every
  epoch even as the distribution moves under the summarizer;
* a one-shot PrivHP fit on the full stream is only measured at the horizon
  -- it has no mid-stream story, which is exactly why trajectory rows carry
  ``None`` at interior epochs for one-shot methods;
* the scenario stream is byte-identical however it is batched: the whole
  run re-derives from one seed.

Run with::

    python examples/scenario_demo.py
"""

from __future__ import annotations

import csv
import pathlib
import tempfile

import numpy as np

from repro.api import PrivHPBuilder
from repro.api.summarizer import ingest_batches
from repro.domain.interval import UnitInterval
from repro.metrics.wasserstein import empirical_wasserstein
from repro.stream.scenarios import scenario_from_dict

STREAM_SIZE = 20_000
EPSILON = 1.0
SEED = 7

SCENARIO = {
    "type": "drift",
    "label": "zipf-sharpen",
    "epochs": 8,
    "start": {"name": "zipf", "params": {"exponent": 0.5}},
    "end": {"name": "zipf", "params": {"exponent": 2.5}},
}


def main() -> None:
    scenario = scenario_from_dict(SCENARIO)
    epochs = scenario.sample_epochs(STREAM_SIZE, rng=SEED)
    domain = UnitInterval()
    print(f"scenario {scenario.label!r}: {scenario.num_epochs} epochs, "
          f"{STREAM_SIZE} items total")

    summarizer = (
        PrivHPBuilder(domain)
        .epsilon(EPSILON)
        .stream_size(STREAM_SIZE)
        .seed(SEED)
        .continual()
        .build()
    )

    rows = []
    seen = np.empty(0)
    eval_rng = np.random.default_rng(SEED)
    print(f"\n{'epoch':>5} {'items':>7} {'W1(seen, snapshot)':>20}")
    for index, epoch in enumerate(epochs):
        ingest_batches(summarizer, epoch, batch_size=4096)
        seen = np.concatenate([seen, epoch])
        synthetic = summarizer.snapshot().generator.sample(len(seen))
        error = empirical_wasserstein(seen, synthetic, domain=domain, rng=eval_rng)
        rows.append({"epoch": index, "items": len(seen), "wasserstein": error})
        print(f"{index:>5} {len(seen):>7} {error:>20.5f}")

    # One-shot comparison: fit the whole stream at once, measure at the
    # horizon only (the interior epochs have no one-shot counterpart).
    one_shot = (
        PrivHPBuilder(domain)
        .epsilon(EPSILON)
        .stream_size(STREAM_SIZE)
        .seed(SEED)
        .build()
    )
    ingest_batches(one_shot, np.concatenate(epochs), batch_size=4096)
    release = one_shot.release()
    horizon_error = empirical_wasserstein(
        seen, release.sample(len(seen)), domain=domain, rng=eval_rng
    )
    print(f"\none-shot PrivHP at the horizon: W1 = {horizon_error:.5f}")
    print(f"continual at the horizon:       W1 = {rows[-1]['wasserstein']:.5f}")

    out = pathlib.Path(tempfile.gettempdir()) / "scenario_trajectory.csv"
    with out.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=["epoch", "items", "wasserstein"])
        writer.writeheader()
        writer.writerows(rows)
    print(f"\nwrote the error trajectory to {out}")


if __name__ == "__main__":
    main()
