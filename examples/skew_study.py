"""Skew study: how data skew and the pruning parameter interact.

Theorem 1's approximation term is ``||tail_k||_1 / (M^{1/d} n)``: the less
mass lives outside the top-k cells, the cheaper pruning is.  This example
sweeps the Zipf exponent of the workload and the pruning parameter k, printing
the measured tail fraction, the Wasserstein error and the memory used -- the
practical guidance being that heavier skew lets you run with a much smaller k
(and therefore less memory) at no utility cost.

Run with::

    python examples/skew_study.py
"""

from __future__ import annotations

import numpy as np

from repro import UnitInterval, empirical_wasserstein
from repro.baselines import PrivHPMethod
from repro.experiments.harness import format_table
from repro.metrics.tail import tail_norm
from repro.stream.generators import zipf_cell_stream


def main() -> None:
    domain = UnitInterval()
    stream_size = 8_000
    epsilon = 1.0
    rows = []

    for exponent in (0.0, 1.0, 2.0):
        data = zipf_cell_stream(
            stream_size, dimension=1, level=8, exponent=exponent,
            rng=np.random.default_rng(int(exponent * 10)),
        )
        for pruning_k in (2, 8, 32):
            method = PrivHPMethod(domain, epsilon=epsilon, pruning_k=pruning_k, seed=1)
            sampler = method.fit(data, rng=np.random.default_rng(1))
            synthetic = sampler.sample(stream_size)
            rows.append(
                {
                    "zipf_exponent": exponent,
                    "k": pruning_k,
                    "tail_fraction": tail_norm(data, domain, level=8, k=pruning_k) / stream_size,
                    "wasserstein": empirical_wasserstein(data, synthetic),
                    "memory_words": method.memory_words(),
                }
            )

    print(format_table(rows))
    print(
        "\nreading the table: the tail fraction (the paper's ||tail_k||_1 / n) falls both "
        "with the Zipf exponent and with k.  Shrinking k cuts the memory footprint by more "
        "than an order of magnitude while the Wasserstein error stays at the noise floor -- "
        "and under heavy skew (exponent 2) the smallest k is already enough, which is the "
        "interpolation Theorem 1 formalises."
    )


if __name__ == "__main__":
    main()
