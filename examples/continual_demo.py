"""Fit → snapshot → query over HTTP, *while the stream is still running*.

Builds a continual-observation summarizer (``PrivHPContinual`` via
``PrivHPBuilder(...).continual()``), registers it **live** in a
``ReleaseStore``, and then interleaves batched ingestion with HTTP queries
against the same endpoint a static store would use.  Because the continual
state is epsilon-DP after every event, each snapshot the server takes is
pure post-processing: querying the stream mid-ingestion -- however often --
spends no additional privacy budget.

Three things to watch in the output:

* the served ``items_processed`` advances with the stream, and the query
  cache invalidates automatically (the first answer after new data is
  always ``cached=False``);
* every HTTP answer is byte-identical to answering an in-process
  ``summarizer.snapshot()`` of the same state;
* a mid-stream snapshot saved with ``snapshot()`` keeps working after the
  stream moves on (it is a full, frozen ``Release``).

Run with::

    python examples/continual_demo.py
"""

from __future__ import annotations

import json
import threading
import urllib.request

import numpy as np

from repro.api import PrivHPBuilder
from repro.serve import ReleaseStore, create_server
from repro.serve.service import answer_query

STREAM_SIZE = 40_000
CHUNKS = 4
QUERY = {"type": "mass", "lower": 0.0, "upper": 0.25}


def post_json(url: str, payload: dict) -> dict:
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode(), headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request) as response:
        return json.loads(response.read())


def main() -> None:
    rng = np.random.default_rng(23)
    stream = rng.beta(2.0, 6.0, size=STREAM_SIZE)

    # --- a continual summarizer: private at every point of the stream -----
    summarizer = (
        PrivHPBuilder("interval")
        .epsilon(1.0)
        .pruning_k(8)
        .stream_size(STREAM_SIZE)
        .seed(23)
        .continual()
        .build()
    )

    # --- serve it live, before a single item has been ingested ------------
    store = ReleaseStore()
    store.register_live("traffic", summarizer)
    server = create_server(store, port=0)  # port 0 -> free port
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{server.server_port}"
    print(f"serving live stream 'traffic' at {base}")

    mid_snapshot = None
    try:
        for index, chunk in enumerate(np.array_split(stream, CHUNKS), start=1):
            summarizer.update_batch(chunk)
            if index == CHUNKS // 2:
                mid_snapshot = summarizer.snapshot()  # frozen mid-stream release

            # Query over HTTP mid-ingestion; repeat to exercise the cache.
            first = post_json(base + "/query", {"release": "traffic", "query": QUERY})
            repeat = post_json(base + "/query", {"release": "traffic", "query": QUERY})
            local = answer_query(summarizer.snapshot(), QUERY)
            print(
                f"  after {first['items_processed']:>6d} items: "
                f"mass[0,0.25] = {first['answer']:.4f} "
                f"(cached={first['cached']}/{repeat['cached']}, "
                f"matches in-process snapshot: {first['answer'] == local})"
            )

        final = summarizer.release()
        print(f"stream sealed at {final.items_processed} items, "
              f"epsilon={final.epsilon}, memory={final.memory_words} words")
        if mid_snapshot is not None:
            print(f"the mid-stream snapshot still answers: "
                  f"{mid_snapshot.items_processed} items, "
                  f"median={float(mid_snapshot.quantile(0.5)):.4f}")
        stats = json.loads(urllib.request.urlopen(base + "/stats").read())
        print(f"cache stats: {stats['cache']['hits']} hits, "
              f"{stats['cache']['misses']} misses "
              f"(every new version invalidates its predecessor's entries)")
    finally:
        server.shutdown()
        server.server_close()


if __name__ == "__main__":
    main()
