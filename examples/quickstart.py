"""Quickstart: private synthetic data for a one-dimensional stream.

Streams a skewed dataset through PrivHP under a modest privacy budget,
generates synthetic data, and reports the 1-Wasserstein distance to the
original alongside the memory the summary occupied and the per-level privacy
ledger.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import PrivHP, PrivHPConfig, UnitInterval, empirical_wasserstein
from repro.memory.accounting import measure_privhp


def main() -> None:
    rng = np.random.default_rng(7)

    # A skewed "sensitive" stream: e.g. normalised session durations.
    stream = rng.beta(2.0, 8.0, size=20_000)
    domain = UnitInterval()

    # Paper defaults: depth L = log2(eps n), sketch depth j = log2 n,
    # sketch width 2k, exact counters down to L* = log2(k log^2 n).
    config = PrivHPConfig.from_stream_size(
        stream_size=len(stream), epsilon=1.0, pruning_k=8, seed=7
    )
    print("PrivHP configuration:")
    print(f"  epsilon          = {config.epsilon}")
    print(f"  pruning k        = {config.pruning_k}")
    print(f"  hierarchy depth  = {config.depth} (L)")
    print(f"  exact levels     = 0..{config.level_cutoff} (L*)")
    print(f"  sketches         = {config.num_sketch_levels} x ({config.sketch_depth} rows, "
          f"{config.sketch_width} buckets)")

    # One pass over the stream; nothing else is ever stored.
    algorithm = PrivHP(domain, config)
    algorithm.process(stream)

    # Grow the pruned partition and sample synthetic data (pure post-processing).
    generator = algorithm.finalize()
    synthetic = generator.sample(len(stream))

    error = empirical_wasserstein(stream, synthetic)
    uniform_error = empirical_wasserstein(stream, rng.random(len(stream)))
    report = measure_privhp(algorithm)

    print("\nresults:")
    print(f"  W1(data, synthetic)        = {error:.5f}")
    print(f"  W1(data, uniform baseline) = {uniform_error:.5f}")
    print(f"  memory held by PrivHP      = {report.total_words} words "
          f"(stream length {len(stream)})")
    print(f"  synthetic sample mean      = {synthetic.mean():.4f} "
          f"(true mean {stream.mean():.4f})")
    print(f"  synthetic 90th percentile  = {np.percentile(synthetic, 90):.4f} "
          f"(true {np.percentile(stream, 90):.4f})")

    print()
    print(algorithm.privacy_summary())


if __name__ == "__main__":
    main()
