"""Quickstart: private synthetic data through the unified Summarizer/Release API.

Builds a PrivHP summarizer with the fluent builder, ingests a skewed dataset
in vectorised batches, releases, and reports the 1-Wasserstein distance to
the original alongside the memory the summary occupied and the per-level
privacy ledger.  The end shows the sharded variant: raw per-shard summaries
merged into one release with the noise injected exactly once.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import PrivHP, PrivHPBuilder, empirical_wasserstein
from repro.api import ingest_batches
from repro.memory.accounting import measure_privhp


def main() -> None:
    rng = np.random.default_rng(7)

    # A skewed "sensitive" stream: e.g. normalised session durations.
    stream = rng.beta(2.0, 8.0, size=20_000)

    # Paper defaults (depth L = log2(eps n), sketch depth j = log2 n, sketch
    # width 2k, exact counters down to L* = log2(k log^2 n)) resolved by the
    # builder from (stream_size, epsilon, k).
    builder = (
        PrivHPBuilder("interval")
        .epsilon(1.0)
        .pruning_k(8)
        .stream_size(len(stream))
        .seed(7)
    )
    summarizer = builder.build()
    config = summarizer.config
    print("PrivHP configuration:")
    print(f"  epsilon          = {config.epsilon}")
    print(f"  pruning k        = {config.pruning_k}")
    print(f"  hierarchy depth  = {config.depth} (L)")
    print(f"  exact levels     = 0..{config.level_cutoff} (L*)")
    print(f"  sketches         = {config.num_sketch_levels} x ({config.sketch_depth} rows, "
          f"{config.sketch_width} buckets)")

    # One vectorised pass over the stream; nothing else is ever stored.
    ingest_batches(summarizer, stream, batch_size=4096)

    # Grow the pruned partition and sample (pure post-processing).  The
    # Release bundles the generator with its privacy/memory metadata and can
    # be persisted with release.save(path) / Release.load(path).
    release = summarizer.release()
    synthetic = release.sample(len(stream))

    error = empirical_wasserstein(stream, synthetic)
    uniform_error = empirical_wasserstein(stream, rng.random(len(stream)))
    report = measure_privhp(summarizer)

    print("\nresults:")
    print(f"  W1(data, synthetic)        = {error:.5f}")
    print(f"  W1(data, uniform baseline) = {uniform_error:.5f}")
    print(f"  memory held by PrivHP      = {report.total_words} words "
          f"(stream length {len(stream)})")
    print(f"  synthetic sample mean      = {synthetic.mean():.4f} "
          f"(true mean {stream.mean():.4f})")
    print(f"  synthetic 90th percentile  = {np.percentile(synthetic, 90):.4f} "
          f"(true {np.percentile(stream, 90):.4f})")

    print()
    print(summarizer.privacy_summary())

    # Sharded ingestion: raw shard summaries merge linearly; the single noise
    # injection happens at the merged release, so the budget is spent once.
    shards = builder.build_shards(4)
    for shard, part in zip(shards, np.array_split(stream, 4)):
        shard.update_batch(part)
    sharded_release = PrivHP.merge_all(shards).release()
    sharded_error = empirical_wasserstein(stream, sharded_release.sample(len(stream)))
    print(f"\nsharded (4-way merge) W1     = {sharded_error:.5f} "
          f"(epsilon spent once: {sharded_release.epsilon})")


if __name__ == "__main__":
    main()
