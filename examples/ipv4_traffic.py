"""Network telemetry: private synthetic source-address traces.

The paper motivates PrivHP with resource-constrained analysis of sensitive
streams and names the IPv4 address space as a target metric domain.  This
example streams a synthetic flow log (heavy-hitter subnets plus background
scan traffic) through PrivHP and then answers two downstream questions *from
the synthetic data only*:

* which /8 blocks carry the most traffic, and
* what fraction of traffic the top subnets carry,

comparing the answers against the (sensitive) original trace.

Run with::

    python examples/ipv4_traffic.py
"""

from __future__ import annotations

import numpy as np

from repro import IPv4Domain, PrivHP, PrivHPConfig
from repro.stream.datasets import ipv4_traffic_stream
from repro.stream.stream import DataStream


def top_prefixes(domain: IPv4Domain, addresses, prefix_length: int, count: int):
    """The ``count`` most frequent /prefix_length blocks with their shares."""
    frequencies = domain.level_frequencies(list(addresses), prefix_length)
    total = sum(frequencies.values())
    ranked = sorted(frequencies.items(), key=lambda item: item[1], reverse=True)[:count]
    return [(domain.cidr(theta), freq / total) for theta, freq in ranked]


def main() -> None:
    rng = np.random.default_rng(11)
    domain = IPv4Domain()

    # A synthetic flow log: most packets from a few popular /16s.
    trace = ipv4_traffic_stream(
        size=30_000, num_heavy_subnets=10, heavy_fraction=0.85, zipf_exponent=1.4, rng=rng
    )

    config = PrivHPConfig.from_stream_size(
        stream_size=len(trace), epsilon=1.0, pruning_k=16, seed=11, depth=20
    )
    algorithm = PrivHP(domain, config)

    stream = DataStream(trace, name="flow-log")
    stats = stream.feed(algorithm)
    generator = algorithm.finalize()
    synthetic = generator.sample(len(trace))

    print(f"processed {stats.items} packets at "
          f"{stats.items_per_second:,.0f} updates/second")
    print(f"summary memory: {algorithm.memory_words()} words "
          f"for a stream of {len(trace)} addresses\n")

    true_top = top_prefixes(domain, trace, prefix_length=8, count=5)
    synthetic_top = top_prefixes(domain, synthetic, prefix_length=8, count=5)

    print("top /8 blocks (original trace)        top /8 blocks (synthetic data)")
    for (true_cidr, true_share), (syn_cidr, syn_share) in zip(true_top, synthetic_top):
        print(f"  {true_cidr:<18} {true_share:6.1%}        {syn_cidr:<18} {syn_share:6.1%}")

    true_heavy = {cidr for cidr, _ in true_top}
    synthetic_heavy = {cidr for cidr, _ in synthetic_top}
    overlap = len(true_heavy & synthetic_heavy)
    print(f"\noverlap in top-5 /8 blocks: {overlap}/5")

    # Share of traffic carried by the true heavy /16 subnets, measured both ways.
    true_share = sum(share for _, share in top_prefixes(domain, trace, 16, 10))
    synthetic_share = sum(share for _, share in top_prefixes(domain, synthetic, 16, 10))
    print(f"traffic share of the top-10 /16 subnets: "
          f"original {true_share:.1%}, synthetic {synthetic_share:.1%}")


if __name__ == "__main__":
    main()
