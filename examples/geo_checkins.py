"""Location analytics: private synthetic check-in coordinates.

Streams clustered (latitude, longitude) check-ins through PrivHP over a
geographic bounding box and uses the synthetic output for two downstream
tasks -- a density heat-map over a coarse grid and per-city visit shares --
comparing both against the original sensitive data.

Run with::

    python examples/geo_checkins.py
"""

from __future__ import annotations

import numpy as np

from repro import GeoDomain, PrivHP, PrivHPConfig
from repro.metrics.wasserstein import empirical_wasserstein
from repro.stream.datasets import geo_checkin_stream


def density_grid(domain: GeoDomain, points, level: int) -> dict:
    """Normalised frequency of each level-``level`` cell."""
    counts = domain.level_frequencies(list(points), level)
    total = sum(counts.values())
    return {cell: count / total for cell, count in counts.items()}


def main() -> None:
    rng = np.random.default_rng(23)
    domain = GeoDomain(lat_min=24.0, lat_max=49.0, lon_min=-125.0, lon_max=-66.0)

    checkins = geo_checkin_stream(
        size=25_000, domain=domain, num_cities=6, city_fraction=0.9,
        city_spread=0.2, rng=rng,
    )

    config = PrivHPConfig.from_stream_size(
        stream_size=len(checkins), epsilon=1.0, pruning_k=24, seed=23
    )
    algorithm = PrivHP(domain, config)
    algorithm.process(checkins)
    generator = algorithm.finalize()
    synthetic = generator.sample(len(checkins))

    print(f"stream length {len(checkins)}, summary memory "
          f"{algorithm.memory_words()} words\n")

    # Downstream task 1: coarse density map (level 6 = 8x8 grid over the box).
    true_density = density_grid(domain, checkins, level=6)
    synthetic_density = density_grid(domain, synthetic, level=6)
    cells = set(true_density) | set(synthetic_density)
    l1_gap = sum(abs(true_density.get(c, 0.0) - synthetic_density.get(c, 0.0)) for c in cells)
    print(f"L1 distance between 8x8 density maps: {l1_gap:.4f} (0 = identical, 2 = disjoint)")

    # Downstream task 2: visit share of the busiest cells.
    top_true = sorted(true_density.items(), key=lambda item: item[1], reverse=True)[:5]
    print("\nbusiest grid cells            original   synthetic")
    for cell, share in top_true:
        print(f"  cell {''.join(map(str, cell)):<12}        {share:8.1%}   "
              f"{synthetic_density.get(cell, 0.0):8.1%}")

    # Overall fidelity in the Wasserstein metric used by the paper.
    distance = empirical_wasserstein(checkins, synthetic, domain=domain)
    uniform = np.column_stack(
        [
            domain.lat_min + rng.random(len(checkins)) * (domain.lat_max - domain.lat_min),
            domain.lon_min + rng.random(len(checkins)) * (domain.lon_max - domain.lon_min),
        ]
    )
    uniform_distance = empirical_wasserstein(checkins, uniform, domain=domain)
    print(f"\nW1 upper bound (data, synthetic) = {distance:.4f}")
    print(f"W1 upper bound (data, uniform)   = {uniform_distance:.4f}")


if __name__ == "__main__":
    main()
