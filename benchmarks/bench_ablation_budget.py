"""Experiment A-budget: Lemma-5 optimal budget split versus a uniform split.

Lemma 5 derives the per-level privacy budgets that minimise the noise term of
the utility bound.  The ablation runs PrivHP with both allocations on the same
workload; the optimal split should be at least as accurate on average.
"""

from __future__ import annotations

from repro.experiments.ablations import budget_ablation


def test_budget_allocation_ablation_d1(benchmark, report_table):
    rows = benchmark.pedantic(
        budget_ablation,
        kwargs=dict(dimension=1, stream_size=4096, epsilon=0.5, pruning_k=8,
                    repetitions=3, seed=0),
        rounds=1,
        iterations=1,
    )
    report_table("Budget allocation ablation (d=1)", rows)
    by_allocation = {row["allocation"]: row for row in rows}
    assert by_allocation["optimal"]["wasserstein"] <= \
        by_allocation["uniform"]["wasserstein"] * 1.5 + 0.01


def test_budget_allocation_ablation_d2(benchmark, report_table):
    rows = benchmark.pedantic(
        budget_ablation,
        kwargs=dict(dimension=2, stream_size=2048, epsilon=0.5, pruning_k=8,
                    repetitions=2, seed=0),
        rounds=1,
        iterations=1,
    )
    report_table("Budget allocation ablation (d=2)", rows)
    assert len(rows) == 2
