"""Multi-tenant ingestion throughput: 1k tenants through the worker pool.

The ingestion service (``repro.ingest``) exists so thousands of private
streams can share one process; this benchmark pins down what that sharing
costs.  It registers 1,000 tenants (a mix of one-shot PrivHP and continual
summarizers), drives round-robin appends through the hash-partitioned worker
pool, and reports:

* **aggregate items/second** -- wall-clock throughput from the first append
  to a fully flushed service (includes lazy summarizer construction, which
  is the real cold-start cost of a fresh tenant);
* **append-call latency** (mean and p99) -- with staging-buffer coalescing an
  ``IngestService.append`` is usually just an array append under a partition
  lock; it only blocks when a shipped fan-in batch meets a full worker inbox,
  so the p99 measures the backpressure a caller actually feels;
* **eviction churn** -- evictions per append plus the asynchronous
  checkpoint-writer counters (writes, coalesced skips, take-backs), which is
  how the bounded-memory mode's cost is kept honest.

An optional eviction variant re-runs the same workload under a word budget
tight enough to force checkpoint eviction/restore churn, recording how much
throughput the bounded-memory mode costs.

The smoke entry point (``python benchmarks/bench_ingest.py --smoke``) merges
the rows into ``BENCH_performance.json`` under ``"ingest_service"`` (keeping
the other benchmark families intact) and enforces two acceptance gates:
aggregate throughput of at least ``THROUGHPUT_GATE_ITEMS_PER_SECOND``
items/second on the unbudgeted run, and at most
``EVICTION_CHURN_GATE_PER_APPEND`` evictions per append on the budgeted run
(the pre-coalescing service churned ~0.94 evictions per append on the same
budget shape).  Both gates sit far from the measured development-machine
numbers so a noisy CI runner does not flap.
"""

from __future__ import annotations

import argparse
import json
import shutil
import tempfile
import time

import numpy as np

from bench_performance import merge_benchmark_result
from repro.ingest import IngestService, TenantSpec

#: Acceptance gate for the unbudgeted run.  Measured ~200k items/s on a
#: 4-core dev container (1k tenants, 4 workers, smoke sizes) with staged
#: append coalescing -- up from ~22k before it; gated ~5x below the
#: measurement so a noisy CI runner does not flap.
THROUGHPUT_GATE_ITEMS_PER_SECOND = 40_000.0

#: Acceptance gate for eviction churn on the budgeted smoke run, in
#: evictions per append call.  The pre-coalescing, synchronous-eviction
#: service churned ~0.94 evictions/append under the same quarter-peak
#: budget; coalesced drains plus cost-aware eviction keep the measured
#: number well under half that.
EVICTION_CHURN_GATE_PER_APPEND = 0.5


def tenant_specs(
    tenants: int, items_per_tenant: int, continual_every: int = 4
) -> list[TenantSpec]:
    """1k-tenant fleet: every ``continual_every``-th tenant is continual."""
    return [
        TenantSpec(
            f"bench-{index:04d}",
            stream_size=int(items_per_tenant),
            seed=index,
            continual=(index % continual_every == 0),
        )
        for index in range(tenants)
    ]


def measure_ingest_throughput(
    tenants: int = 1000,
    items_per_tenant: int = 128,
    workers: int = 4,
    rounds: int = 4,
    memory_budget_words: int | None = None,
) -> dict:
    """Drive round-robin appends across the fleet; returns the benchmark row.

    Appends interleave across tenants (every tenant gets one batch per
    round) so each worker constantly switches between its residents --
    the service's worst realistic access pattern, and the one that makes
    LRU eviction churn when ``memory_budget_words`` is set.
    """
    specs = tenant_specs(tenants, items_per_tenant)
    per_round = max(1, items_per_tenant // rounds)
    values = np.random.default_rng(0).random((rounds, per_round))
    latencies = []

    checkpoint_dir = None
    if memory_budget_words is not None:
        checkpoint_dir = tempfile.mkdtemp(prefix="bench-ingest-")
    try:
        with IngestService(
            specs,
            workers=workers,
            checkpoint_dir=checkpoint_dir,
            memory_budget_words=memory_budget_words,
        ) as service:
            start = time.perf_counter()
            for round_index in range(rounds):
                batch = values[round_index]
                for spec in specs:
                    append_start = time.perf_counter()
                    service.append(spec.tenant_id, batch)
                    latencies.append(time.perf_counter() - append_start)
            service.flush()
            elapsed = time.perf_counter() - start
            stats = service.stats()
    finally:
        if checkpoint_dir is not None:
            shutil.rmtree(checkpoint_dir, ignore_errors=True)

    latency = np.asarray(latencies)
    total_items = tenants * rounds * per_round
    row = {
        "tenants": int(tenants),
        "workers": int(workers),
        "items_per_tenant": int(rounds * per_round),
        "total_items": int(total_items),
        "memory_budget_words": memory_budget_words,
        "items_per_second": total_items / elapsed,
        "appends_per_second": len(latencies) / elapsed,
        "append_latency_mean_ms": float(latency.mean() * 1e3),
        "append_latency_p99_ms": float(np.percentile(latency, 99) * 1e3),
        "resident_words": stats["memory_words"],
        "evictions": stats["evictions"],
        "restores": stats["restores"],
        "evictions_per_append": stats["evictions"] / len(latencies),
    }
    checkpoint = stats.get("checkpoint")
    if checkpoint is not None:
        row["checkpoint_writes"] = checkpoint["writes"]
        row["checkpoint_skipped_writes"] = checkpoint["skipped_writes"]
        row["checkpoint_take_backs"] = checkpoint["take_backs"]
    return row


def run_ingest_smoke(
    tenants: int = 1000,
    items_per_tenant: int = 128,
    workers: int = 4,
    with_eviction: bool = True,
) -> dict:
    """Measure the fleet (unbudgeted + budgeted) and record the rows.

    Only this CI smoke entry point writes ``BENCH_performance.json``;
    pytest runs never dirty the working tree.
    """
    unbounded = measure_ingest_throughput(
        tenants=tenants, items_per_tenant=items_per_tenant, workers=workers
    )
    section = {"throughput": unbounded}
    if with_eviction:
        # A budget around a quarter of the resident peak forces steady
        # eviction/restore churn without thrashing every single append.
        budget = max(1024, int(unbounded["resident_words"] // 4))
        section["throughput_bounded_memory"] = measure_ingest_throughput(
            tenants=tenants,
            items_per_tenant=items_per_tenant,
            workers=workers,
            memory_budget_words=budget,
        )
    merge_benchmark_result({"ingest_service": section})
    return section


def test_ingest_fleet_throughput(report_table):
    """Acceptance gate (pytest flavour): a small fleet keeps its throughput
    floor and the p99 append latency stays in single-digit milliseconds.

    Sizes are cut far below the smoke run so the benchmark suite stays
    fast; the CI smoke entry point gates the full 1k-tenant number.
    """
    row = measure_ingest_throughput(tenants=100, items_per_tenant=16, workers=2)
    report_table("Ingestion service throughput (100 tenants)", [row])
    assert row["items_per_second"] >= 1_000.0
    assert row["evictions"] == 0  # no budget, nothing may be evicted


def test_bounded_memory_run_matches_item_totals():
    """Eviction churn must not lose items: a budgeted run ingests exactly
    the same item total as the unbudgeted fleet."""
    free = measure_ingest_throughput(tenants=32, items_per_tenant=16, workers=2)
    tight = measure_ingest_throughput(
        tenants=32,
        items_per_tenant=16,
        workers=2,
        memory_budget_words=max(1024, free["resident_words"] // 8),
    )
    assert tight["total_items"] == free["total_items"]
    assert tight["evictions"] > 0  # the budget actually bit
    assert tight["restores"] > 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tenants", type=int, default=1000, help="fleet size")
    parser.add_argument(
        "--items-per-tenant", type=int, default=128, help="items appended per tenant"
    )
    parser.add_argument("--workers", type=int, default=4, help="worker threads")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: smaller per-tenant streams, records "
        "BENCH_performance.json and enforces the throughput gate",
    )
    args = parser.parse_args()

    if args.smoke:
        section = run_ingest_smoke(tenants=args.tenants, workers=args.workers)
    else:
        section = run_ingest_smoke(
            tenants=args.tenants,
            items_per_tenant=args.items_per_tenant,
            workers=args.workers,
        )
    print(json.dumps(section, indent=2, sort_keys=True))
    throughput = section["throughput"]["items_per_second"]
    if throughput < THROUGHPUT_GATE_ITEMS_PER_SECOND:
        raise SystemExit(
            f"ingest throughput {throughput:,.0f} items/s is below the "
            f"{THROUGHPUT_GATE_ITEMS_PER_SECOND:,.0f} items/s gate"
        )
    print(
        f"throughput gate passed: {throughput:,.0f} items/s across "
        f"{section['throughput']['tenants']} tenants "
        f"(p99 append {section['throughput']['append_latency_p99_ms']:.2f} ms)"
    )
    bounded = section.get("throughput_bounded_memory")
    if bounded is not None:
        churn = bounded["evictions_per_append"]
        if churn > EVICTION_CHURN_GATE_PER_APPEND:
            raise SystemExit(
                f"eviction churn {churn:.3f} evictions/append is above the "
                f"{EVICTION_CHURN_GATE_PER_APPEND:.2f} gate"
            )
        print(
            f"eviction churn gate passed: {churn:.3f} evictions/append "
            f"({bounded['evictions']} evictions, "
            f"{bounded['items_per_second']:,.0f} items/s under budget)"
        )
    return 0


if __name__ == "__main__":  # CI smoke entry: records BENCH_performance.json
    raise SystemExit(main())
