"""Shared configuration for the benchmark suite.

Each benchmark regenerates one of the paper's tables or trade-off analyses
(see DESIGN.md's experiment index and EXPERIMENTS.md for the recorded
results).  The benchmarks print their result tables to stdout so that running
``pytest benchmarks/ --benchmark-only -s`` reproduces the numbers in
EXPERIMENTS.md; the timed quantity is the full experiment run.
"""

from __future__ import annotations

import pathlib
import sys

import pytest

# Allow running from a source checkout without installation.
_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def print_section(title: str, body: str) -> None:
    """Print a titled result block (visible with pytest -s or -rA)."""
    print(f"\n=== {title} ===")
    print(body)


@pytest.fixture
def report_table():
    """Fixture returning a helper that formats and prints experiment rows."""
    from repro.experiments.harness import format_table

    def _report(title: str, rows):
        print_section(title, format_table(rows))
        return rows

    return _report
