"""Query-serving throughput: cold engines vs cached engines vs memoized answers.

The serving subsystem (``repro.serve``) has three progressively cheaper
paths for answering a query on a release:

1. **cold** -- construct a fresh ``RangeQueryEngine`` per query (what naive
   callers did before ``Release`` cached its engines): pays the
   leaf-probability precomputation every time.
2. **warm** -- the engine is built once and cached on the ``Release``
   (``Release.range_engine()``); each query only walks the leaves.
3. **memoized** -- a repeated workload served through ``QueryService``'s
   ``QueryCache``: repeats cost one dictionary lookup.

On top of the in-process paths sits the HTTP load harness
(:func:`measure_serving_load`): a release served from a store directory by
``workers`` processes sharing one port via ``SO_REUSEPORT``, driven by
hundreds-to-thousands of concurrent keep-alive clients, recording warm
(engine-evaluated) and memoized (cache-hit) queries/sec plus p50/p99
latency.

The smoke entry point (``python benchmarks/bench_serve.py [--smoke]``)
measures all paths on one released interval summary and merges the numbers
into ``BENCH_performance.json`` under ``"query_serving"`` (the load harness
lands in ``"query_serving"."load_test"``), gating warm throughput against
regression.
"""

from __future__ import annotations

import http.client
import json
import tempfile
import threading
import time

import numpy as np

from bench_performance import merge_benchmark_result
from repro.api.builder import PrivHPBuilder
from repro.queries.range_queries import RangeQueryEngine
from repro.queries.workload import random_range_queries
from repro.serve.http import create_server, start_worker_pool
from repro.serve.service import QueryService
from repro.serve.store import ReleaseStore

#: CI regression gates (see ``__main__``): the vectorised in-process warm
#: path must stay >= 10x the ~194 q/s the retired per-leaf loop measured,
#: and the HTTP load harness must not regress below a floor that even a
#: 2-core CI runner clears comfortably.
WARM_QPS_GATE = 2_000.0
LOAD_WARM_QPS_GATE = 300.0


def _fit_release(stream_size: int = 50_000, seed: int = 0):
    data = np.random.default_rng(seed).beta(2.0, 5.0, size=stream_size)
    return (
        PrivHPBuilder("interval")
        .epsilon(1.0)
        .pruning_k(8)
        .stream_size(stream_size)
        .seed(seed)
        .build()
        .update_batch(data)
        .release()
    )


def measure_query_throughput(
    stream_size: int = 50_000, num_queries: int = 200, repeats: int = 5
) -> dict:
    """Measure the three serving paths (no files written)."""
    release = _fit_release(stream_size=stream_size)
    queries = random_range_queries(release.domain, num_queries, rng=1)

    start = time.perf_counter()
    cold_answers = [
        RangeQueryEngine(release.tree, release.domain).mass(q.lower, q.upper) for q in queries
    ]
    cold_seconds = time.perf_counter() - start

    release.range_engine()  # build once, outside the timed region
    start = time.perf_counter()
    warm_answers = [release.mass(q.lower, q.upper) for q in queries]
    warm_seconds = time.perf_counter() - start

    store = ReleaseStore()
    store.add("bench", release)
    service = QueryService(store)
    workload = [
        {"type": "mass", "lower": q.lower, "upper": q.upper} for q in queries
    ]
    start = time.perf_counter()
    for _ in range(repeats):
        service.answer_many(workload, release="bench")
    memoized_seconds = time.perf_counter() - start

    assert cold_answers == warm_answers  # same engines, same answers

    return {
        "stream_size": stream_size,
        "num_queries": num_queries,
        "leaves": len(release.tree.leaves()),
        "cold_queries_per_second": num_queries / cold_seconds,
        "warm_queries_per_second": num_queries / warm_seconds,
        "memoized_queries_per_second": (num_queries * repeats) / memoized_seconds,
        "warm_over_cold_speedup": cold_seconds / warm_seconds,
        "cache_hit_rate": service.cache.stats()["hit_rate"],
    }


def _percentiles_ms(latencies: list[float]) -> dict:
    values = np.asarray(latencies)
    return {
        "p50_ms": float(np.percentile(values, 50) * 1000.0),
        "p99_ms": float(np.percentile(values, 99) * 1000.0),
    }


def _drive_clients(
    host: str,
    port: int,
    per_client_queries: list[list[dict]],
    warmup_per_client: list[list[dict]] | None = None,
) -> dict:
    """Run one load phase: one keep-alive connection per client thread.

    Every client POSTs its queries one request at a time (single-query
    ``/query`` bodies, the latency-sensitive shape), recording wall-clock
    per request.  Returns aggregate queries/sec plus latency percentiles.

    The phase is split by two barriers: after connecting, every client runs
    its (unrecorded) ``warmup_per_client`` requests, then all clients
    rendezvous again before the measured window starts.  Without the
    warmup, the first request per connection pays TCP setup plus the
    server workers' cold caches, and with thousands of clients those
    one-off costs *are* the p99 -- the measured window must only contain
    steady-state requests.
    """
    clients = len(per_client_queries)
    start_barrier = threading.Barrier(clients + 1)
    measure_barrier = threading.Barrier(clients + 1)
    latencies: list[list[float]] = [[] for _ in per_client_queries]
    errors: list[BaseException] = []

    def client(index: int, queries: list[dict]) -> None:
        try:
            connection = http.client.HTTPConnection(host, port, timeout=60)
            body_for = lambda q: json.dumps({"release": "bench", "query": q})  # noqa: E731

            def post(query: dict) -> None:
                connection.request(
                    "POST", "/query", body=body_for(query),
                    headers={"Content-Type": "application/json"},
                )
                response = connection.getresponse()
                payload = response.read()
                if response.status != 200:
                    raise RuntimeError(f"HTTP {response.status}: {payload[:200]!r}")

            start_barrier.wait()
            if warmup_per_client is not None:
                for query in warmup_per_client[index]:
                    post(query)
            measure_barrier.wait()
            for query in queries:
                start = time.perf_counter()
                post(query)
                latencies[index].append(time.perf_counter() - start)
            connection.close()
        except BaseException as error:  # surfaced after the join below
            errors.append(error)
            for barrier in (start_barrier, measure_barrier):
                try:
                    barrier.abort()
                except Exception:
                    pass

    threads = [
        threading.Thread(target=client, args=(index, queries), daemon=True)
        for index, queries in enumerate(per_client_queries)
    ]
    for thread in threads:
        thread.start()
    start_barrier.wait()
    measure_barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise RuntimeError(f"{len(errors)} client(s) failed; first: {errors[0]}") from errors[0]
    flat = [latency for per_client in latencies for latency in per_client]
    return {
        "requests": len(flat),
        "queries_per_second": len(flat) / elapsed,
        **_percentiles_ms(flat),
    }


def measure_serving_load(
    stream_size: int = 50_000,
    workers: int = 4,
    clients: int = 1_000,
    requests_per_client: int = 20,
    memo_pool: int = 64,
) -> dict:
    """Drive the HTTP serving path with many concurrent keep-alive clients.

    Two phases against a ``--workers``-style ``SO_REUSEPORT`` process pool
    (the parent's threaded server is worker 1, so ``workers=1`` needs no
    subprocess):

    * **warm** -- every request is a distinct mass query, so each one is a
      cache miss evaluated by the compiled engine.
    * **memoized** -- all clients sample a small shared pool, so after each
      worker has seen the pool once, answers come from the query cache.

    Each phase runs an unrecorded per-connection warmup window before the
    measured one (see :func:`_drive_clients`), so connection setup and
    cold worker caches never pollute the reported percentiles.
    """
    release = _fit_release(stream_size=stream_size)
    rng = np.random.default_rng(9)

    def mass_query(lower: float, upper: float) -> dict:
        return {"type": "mass", "lower": float(lower), "upper": float(upper)}

    total = clients * requests_per_client
    warm_bounds = np.sort(rng.random((total, 2)), axis=1)
    warm_queries = [mass_query(low, high) for low, high in warm_bounds]
    warm_per_client = [
        warm_queries[index * requests_per_client : (index + 1) * requests_per_client]
        for index in range(clients)
    ]
    # Distinct warmup queries per client (never reused in the measured
    # window): they absorb connection setup and the workers' cold start so
    # the recorded warm percentiles only contain steady-state requests.
    warmup_bounds = np.sort(rng.random((clients * 2, 2)), axis=1)
    warmup_queries = [mass_query(low, high) for low, high in warmup_bounds]
    warm_warmup = [warmup_queries[index * 2 : (index + 1) * 2] for index in range(clients)]
    memo_bounds = np.sort(rng.random((memo_pool, 2)), axis=1)
    memo_queries = [mass_query(low, high) for low, high in memo_bounds]
    memo_per_client = [
        [memo_queries[(index + step) % memo_pool] for step in range(requests_per_client)]
        for index in range(clients)
    ]
    # The memoized warmup replays each client's first pool entries, which
    # both warms the connection and primes the shared query caches, so the
    # measured memoized window is hits from its very first request.
    memo_warmup = [queries[:2] for queries in memo_per_client]

    with tempfile.TemporaryDirectory(prefix="bench_serve_") as directory:
        release.save(f"{directory}/bench.json")
        # The parent's threaded server doubles as worker 1 and, bound with
        # SO_REUSEPORT on an ephemeral port, race-freely picks the fixed
        # port the remaining workers share.
        server = create_server(directory, port=0, verbose=False, reuse_port=True)
        host, port = "127.0.0.1", server.server_port
        server_thread = threading.Thread(target=server.serve_forever, daemon=True)
        server_thread.start()
        pool = (
            start_worker_pool(directory, host=host, port=port, workers=workers - 1)
            if workers > 1
            else []
        )
        try:
            deadline = time.time() + 30
            while True:  # wait until the pool accepts connections
                try:
                    probe = http.client.HTTPConnection(host, port, timeout=5)
                    probe.request("GET", "/healthz")
                    probe.getresponse().read()
                    probe.close()
                    break
                except OSError:
                    if time.time() > deadline:
                        raise
                    time.sleep(0.05)
            warm = _drive_clients(host, port, warm_per_client, warmup_per_client=warm_warmup)
            memoized = _drive_clients(host, port, memo_per_client, warmup_per_client=memo_warmup)
        finally:
            server.shutdown()
            server.server_close()
            for process in pool:
                process.terminate()
            for process in pool:
                process.join()
    return {
        "stream_size": stream_size,
        "workers": workers,
        "clients": clients,
        "requests_per_client": requests_per_client,
        "warm": warm,
        "memoized": memoized,
    }


def run_query_throughput_smoke(
    stream_size: int = 50_000,
    num_queries: int = 200,
    repeats: int = 5,
    load: dict | None = None,
) -> dict:
    """Measure the serving paths and merge the row into the tracked JSON.

    ``load`` (keyword arguments for :func:`measure_serving_load`) adds the
    HTTP load-harness numbers under ``"load_test"``.  Only this CI smoke
    entry point (``python benchmarks/bench_serve.py``) writes
    ``BENCH_performance.json``; pytest runs never dirty the working tree.
    """
    row = measure_query_throughput(
        stream_size=stream_size, num_queries=num_queries, repeats=repeats
    )
    if load is not None:
        row["load_test"] = measure_serving_load(stream_size=stream_size, **load)
    merge_benchmark_result({"query_serving": row})
    return row


def test_cached_engine_beats_cold_construction(report_table):
    """Acceptance gate: the cached-engine path must beat per-query engine
    construction, and the memoized path must beat both.

    The gate is looser than the recorded ~3x at n=50k because the ratio
    shrinks with the tree (construction is one leaf pass, a query is one
    heavier leaf pass) and CI machines are noisy.
    """
    row = measure_query_throughput(stream_size=20_000, num_queries=100, repeats=5)
    report_table("Query serving throughput (interval, n=20k)", [row])
    assert row["warm_over_cold_speedup"] >= 1.3
    assert row["memoized_queries_per_second"] >= row["warm_queries_per_second"]


def test_service_answers_match_direct_engine():
    """The served answer is exactly the engine's answer (no drift through
    the cache or canonicalisation)."""
    release = _fit_release(stream_size=5_000)
    store = ReleaseStore()
    store.add("bench", release)
    service = QueryService(store)
    for query in random_range_queries(release.domain, 20, rng=2):
        served = service.answer(
            {"type": "mass", "lower": query.lower, "upper": query.upper}, release="bench"
        )
        assert served["answer"] == release.mass(query.lower, query.upper)


if __name__ == "__main__":  # CI smoke entry: records BENCH_performance.json
    import sys

    smoke = "--smoke" in sys.argv[1:]
    load_params = (
        {"workers": 2, "clients": 50, "requests_per_client": 10}
        if smoke
        else {"workers": 4, "clients": 1_000, "requests_per_client": 20}
    )
    result = run_query_throughput_smoke(load=load_params)
    print(json.dumps(result, indent=2, sort_keys=True))
    failures = []
    if result["warm_over_cold_speedup"] < 2.0:
        failures.append(
            f"cached-engine speedup {result['warm_over_cold_speedup']:.2f}x is below the 2x gate"
        )
    if result["warm_queries_per_second"] < WARM_QPS_GATE:
        failures.append(
            f"warm throughput {result['warm_queries_per_second']:.0f} q/s is below "
            f"the {WARM_QPS_GATE:.0f} q/s regression gate"
        )
    if result["load_test"]["warm"]["queries_per_second"] < LOAD_WARM_QPS_GATE:
        failures.append(
            f"HTTP load warm throughput "
            f"{result['load_test']['warm']['queries_per_second']:.0f} q/s is below "
            f"the {LOAD_WARM_QPS_GATE:.0f} q/s regression gate"
        )
    if failures:
        raise SystemExit("; ".join(failures))
