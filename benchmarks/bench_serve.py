"""Query-serving throughput: cold engines vs cached engines vs memoized answers.

The serving subsystem (``repro.serve``) has three progressively cheaper
paths for answering a query on a release:

1. **cold** -- construct a fresh ``RangeQueryEngine`` per query (what naive
   callers did before ``Release`` cached its engines): pays the
   leaf-probability precomputation every time.
2. **warm** -- the engine is built once and cached on the ``Release``
   (``Release.range_engine()``); each query only walks the leaves.
3. **memoized** -- a repeated workload served through ``QueryService``'s
   ``QueryCache``: repeats cost one dictionary lookup.

The smoke entry point (``python benchmarks/bench_serve.py``) measures
queries/sec for all three paths on one released interval summary and merges
the numbers into ``BENCH_performance.json`` under ``"query_serving"``.
"""

from __future__ import annotations

import json
import time

import numpy as np

from bench_performance import merge_benchmark_result
from repro.api.builder import PrivHPBuilder
from repro.queries.range_queries import RangeQueryEngine
from repro.queries.workload import random_range_queries
from repro.serve.service import QueryService
from repro.serve.store import ReleaseStore


def _fit_release(stream_size: int = 50_000, seed: int = 0):
    data = np.random.default_rng(seed).beta(2.0, 5.0, size=stream_size)
    return (
        PrivHPBuilder("interval")
        .epsilon(1.0)
        .pruning_k(8)
        .stream_size(stream_size)
        .seed(seed)
        .build()
        .update_batch(data)
        .release()
    )


def measure_query_throughput(
    stream_size: int = 50_000, num_queries: int = 200, repeats: int = 5
) -> dict:
    """Measure the three serving paths (no files written)."""
    release = _fit_release(stream_size=stream_size)
    queries = random_range_queries(release.domain, num_queries, rng=1)

    start = time.perf_counter()
    cold_answers = [
        RangeQueryEngine(release.tree, release.domain).mass(q.lower, q.upper) for q in queries
    ]
    cold_seconds = time.perf_counter() - start

    release.range_engine()  # build once, outside the timed region
    start = time.perf_counter()
    warm_answers = [release.mass(q.lower, q.upper) for q in queries]
    warm_seconds = time.perf_counter() - start

    store = ReleaseStore()
    store.add("bench", release)
    service = QueryService(store)
    workload = [
        {"type": "mass", "lower": q.lower, "upper": q.upper} for q in queries
    ]
    start = time.perf_counter()
    for _ in range(repeats):
        service.answer_many(workload, release="bench")
    memoized_seconds = time.perf_counter() - start

    assert cold_answers == warm_answers  # same engines, same answers

    return {
        "stream_size": stream_size,
        "num_queries": num_queries,
        "leaves": len(release.tree.leaves()),
        "cold_queries_per_second": num_queries / cold_seconds,
        "warm_queries_per_second": num_queries / warm_seconds,
        "memoized_queries_per_second": (num_queries * repeats) / memoized_seconds,
        "warm_over_cold_speedup": cold_seconds / warm_seconds,
        "cache_hit_rate": service.cache.stats()["hit_rate"],
    }


def run_query_throughput_smoke(
    stream_size: int = 50_000, num_queries: int = 200, repeats: int = 5
) -> dict:
    """Measure the serving paths and merge the row into the tracked JSON.

    Only this CI smoke entry point (``python benchmarks/bench_serve.py``)
    writes ``BENCH_performance.json``; pytest runs never dirty the working
    tree.
    """
    row = measure_query_throughput(
        stream_size=stream_size, num_queries=num_queries, repeats=repeats
    )
    merge_benchmark_result({"query_serving": row})
    return row


def test_cached_engine_beats_cold_construction(report_table):
    """Acceptance gate: the cached-engine path must beat per-query engine
    construction, and the memoized path must beat both.

    The gate is looser than the recorded ~3x at n=50k because the ratio
    shrinks with the tree (construction is one leaf pass, a query is one
    heavier leaf pass) and CI machines are noisy.
    """
    row = measure_query_throughput(stream_size=20_000, num_queries=100, repeats=5)
    report_table("Query serving throughput (interval, n=20k)", [row])
    assert row["warm_over_cold_speedup"] >= 1.3
    assert row["memoized_queries_per_second"] >= row["warm_queries_per_second"]


def test_service_answers_match_direct_engine():
    """The served answer is exactly the engine's answer (no drift through
    the cache or canonicalisation)."""
    release = _fit_release(stream_size=5_000)
    store = ReleaseStore()
    store.add("bench", release)
    service = QueryService(store)
    for query in random_range_queries(release.domain, 20, rng=2):
        served = service.answer(
            {"type": "mass", "lower": query.lower, "upper": query.upper}, release="bench"
        )
        assert served["answer"] == release.mass(query.lower, query.upper)


if __name__ == "__main__":  # CI smoke entry: records BENCH_performance.json
    result = run_query_throughput_smoke()
    print(json.dumps(result, indent=2, sort_keys=True))
    if result["warm_over_cold_speedup"] < 2.0:
        raise SystemExit(
            f"cached-engine speedup {result['warm_over_cold_speedup']:.2f}x is below the 2x gate"
        )
