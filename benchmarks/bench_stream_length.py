"""Experiment F-n: utility and memory versus the stream length n.

Corollary 1: error shrinks roughly like 1/(eps n) plus the tail term, while
memory grows only as k log^2 n.  The benchmark sweeps n, recording both.
"""

from __future__ import annotations

from repro.experiments.tradeoffs import stream_length_tradeoff


def test_stream_length_sweep_d1(benchmark, report_table):
    rows = benchmark.pedantic(
        stream_length_tradeoff,
        kwargs=dict(
            stream_sizes=(512, 1024, 2048, 4096, 8192),
            dimension=1,
            epsilon=1.0,
            pruning_k=8,
            repetitions=2,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    report_table("Utility and memory vs stream length (d=1)", rows)

    # Error at the largest n should beat error at the smallest n.
    assert rows[-1]["wasserstein"] <= rows[0]["wasserstein"]
    # Memory grows, but dramatically slower than the 16x data growth.
    memory_growth = rows[-1]["memory_words"] / rows[0]["memory_words"]
    assert 1.0 <= memory_growth < 8.0
    # Predicted bounds shrink monotonically with n.
    bounds = [row["predicted_bound"] for row in rows]
    assert all(a >= b for a, b in zip(bounds, bounds[1:]))
