"""Experiment F-skew: utility versus data skew (the ||tail_k||_1 term).

Theorem 3's approximation term scales with the tail norm of the level-wise
frequency vector.  Sweeping the Zipf exponent of the workload changes the tail
norm by orders of magnitude; the benchmark verifies that the measured tail
norm is monotone in the exponent and that utility does not degrade as the
stream becomes more skewed (pruning becomes cheaper).
"""

from __future__ import annotations

from repro.experiments.skew import skew_experiment


def test_skew_sweep_d1(benchmark, report_table):
    rows = benchmark.pedantic(
        skew_experiment,
        kwargs=dict(
            exponents=(0.0, 0.5, 1.0, 1.5, 2.0),
            dimension=1,
            stream_size=4096,
            epsilon=1.0,
            pruning_k=8,
            repetitions=2,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    report_table("Utility vs skew (Zipf exponent sweep, d=1)", rows)

    tails = [row["tail_norm"] for row in rows]
    assert all(a >= b for a, b in zip(tails, tails[1:])), "tail norm must shrink with skew"
    # The predicted bound shrinks with the tail norm.
    bounds = [row["predicted_bound"] for row in rows]
    assert bounds[-1] <= bounds[0]
    # Heavily skewed streams should be reconstructed at least as well as the
    # uniform one (allowing a small tolerance for sampling noise).
    assert rows[-1]["wasserstein"] <= rows[0]["wasserstein"] + 0.03
