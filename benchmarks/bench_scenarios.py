"""Scenario-engine throughput: items/second and epochs/second materialised.

The scenario engine (``repro.stream.scenarios``) sits on the experiment
matrix's hot path -- every trajectory cell materialises its stream through
it -- so generation must stay cheap relative to fitting.  This benchmark
times three representative workloads (a parameter drift, a mixture shift,
and a composed diurnal + flash-crowd overlay) and records items/second and
epochs/second for each, plus the multi-tenant record path feeding
``repro.ingest``.

The smoke entry point (``python benchmarks/bench_scenarios.py --smoke``)
merges the rows into ``BENCH_performance.json`` under ``"scenarios"``
(preserving the other benchmark families) and enforces the acceptance gate:
single-stream generation must sustain at least ``ITEMS_GATE`` items/second.
"""

from __future__ import annotations

import argparse
import json
import time

from bench_performance import merge_benchmark_result
from repro.stream.scenarios import multi_tenant_records, scenario_from_dict

#: Acceptance gate on single-stream materialisation.  The engine routinely
#: sustains hundreds of thousands of items/second; the gate is set an order
#: of magnitude below that so only real regressions (e.g. per-item Python
#: loops creeping into the epoch samplers) trip it on slow CI runners.
ITEMS_GATE = 50_000.0

#: The benchmarked workloads: one per primitive family the nightly grid uses.
WORKLOADS = {
    "drift": {
        "type": "drift",
        "epochs": 8,
        "start": {"name": "zipf", "params": {"exponent": 0.5}},
        "end": {"name": "zipf", "params": {"exponent": 2.5}},
    },
    "mixture_shift": {
        "type": "mixture_shift",
        "epochs": 8,
        "components": [
            "uniform",
            {"name": "sparse_cluster", "params": {"num_clusters": 2}},
        ],
        "start_weights": [1.0, 0.0],
        "end_weights": [0.0, 1.0],
    },
    "overlay": {
        "type": "compose",
        "mode": "overlay",
        "parts": [
            {"type": "diurnal", "base": "uniform", "epochs": 12},
            {
                "type": "flash_crowd",
                "base": "uniform",
                "epochs": 12,
                "burst_start": 4,
                "burst_epochs": 3,
                "burst_scale": 2.0,
            },
        ],
    },
}


def measure_scenarios(size: int = 100_000, repeats: int = 3) -> dict:
    """Time each workload; returns ``{name: row}`` benchmark rows."""
    rows = {}
    for name, spec in WORKLOADS.items():
        scenario = scenario_from_dict(spec)
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            stream = scenario.sample(size, rng=0)
            best = min(best, time.perf_counter() - start)
        assert len(stream) == size
        rows[name] = {
            "size": int(size),
            "epochs": scenario.num_epochs,
            "items_per_second": size / best,
            "epochs_per_second": scenario.num_epochs / best,
        }
    return rows


def measure_multi_tenant(
    size_per_tenant: int = 20_000, tenants: int = 8, repeats: int = 3
) -> dict:
    """Time the tenant-tagged record path that feeds ``repro ingest``."""
    scenario = scenario_from_dict(WORKLOADS["drift"])
    ids = [f"tenant-{index}" for index in range(tenants)]
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        records = sum(
            1 for _record in multi_tenant_records(scenario, ids, size_per_tenant, rng=0)
        )
        best = min(best, time.perf_counter() - start)
    total_items = size_per_tenant * tenants
    return {
        "tenants": int(tenants),
        "size_per_tenant": int(size_per_tenant),
        "records": int(records),
        "items_per_second": total_items / best,
    }


def run_smoke(size: int = 100_000) -> dict:
    """Measure, merge into BENCH_performance.json, return the section."""
    section = {
        "size": int(size),
        "workloads": measure_scenarios(size=size),
        "multi_tenant": measure_multi_tenant(size_per_tenant=size // 5),
    }
    merge_benchmark_result({"scenarios": section})
    return section


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--size", type=int, default=1_000_000, help="items per single-stream workload"
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI mode: smaller size, merge into BENCH_performance.json, "
        "enforce the throughput gate",
    )
    args = parser.parse_args()

    if args.smoke:
        section = run_smoke(size=min(args.size, 100_000))
    else:
        section = {
            "size": args.size,
            "workloads": measure_scenarios(size=args.size),
            "multi_tenant": measure_multi_tenant(size_per_tenant=args.size // 5),
        }
    print(json.dumps(section, indent=2, sort_keys=True))

    slowest = min(
        row["items_per_second"] for row in section["workloads"].values()
    )
    if slowest < ITEMS_GATE:
        raise SystemExit(
            f"scenario generation throughput {slowest:,.0f} items/s is below "
            f"the {ITEMS_GATE:,.0f} items/s gate"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
