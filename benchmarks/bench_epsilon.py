"""Experiment F-eps: utility versus the privacy budget epsilon.

The noise term of Theorem 1 scales as 1/(eps n); the benchmark sweeps epsilon
at fixed n and k and checks that both the theoretical bound and the measured
error decrease (weakly, given sampling noise) as epsilon grows.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.tradeoffs import epsilon_tradeoff


def test_epsilon_tradeoff_d1(benchmark, report_table):
    rows = benchmark.pedantic(
        epsilon_tradeoff,
        kwargs=dict(
            epsilons=(0.25, 0.5, 1.0, 2.0, 4.0),
            dimension=1,
            stream_size=4096,
            pruning_k=8,
            repetitions=3,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    report_table("Utility vs epsilon (d=1)", rows)

    bounds = [row["predicted_bound"] for row in rows]
    assert all(a >= b for a, b in zip(bounds, bounds[1:])), "bound must decrease with epsilon"
    # Measured error at the largest epsilon should beat the smallest epsilon.
    assert rows[-1]["wasserstein"] <= rows[0]["wasserstein"]
    # And the overall trend should be decreasing (Spearman-style sign check).
    errors = np.array([row["wasserstein"] for row in rows])
    assert np.mean(np.diff(errors) <= 1e-3) >= 0.5
