"""Experiment F-mem: utility versus memory (the pruning parameter k).

Theorem 1 / Corollary 1 claim an "almost smooth interpolation between space
usage and utility" controlled by k.  The benchmark sweeps k at fixed n and
epsilon on a Zipf-skewed workload, recording the measured Wasserstein error,
the words of state held, and the theoretical bound.
"""

from __future__ import annotations

from repro.experiments.tradeoffs import memory_tradeoff


def test_memory_tradeoff_d1(benchmark, report_table):
    rows = benchmark.pedantic(
        memory_tradeoff,
        kwargs=dict(
            pruning_values=(2, 4, 8, 16, 32),
            dimension=1,
            stream_size=4096,
            epsilon=1.0,
            repetitions=2,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    report_table("Utility vs memory (d=1, Zipf workload)", rows)

    memories = [row["memory_words"] for row in rows]
    # Memory grows with k up to a small boundary artefact: once L* reaches the
    # full depth the sketches disappear, which can shave a few hundred words
    # off the very largest k.  Allow a 10% tolerance on the monotone growth.
    assert all(later >= 0.9 * earlier for earlier, later in zip(memories, memories[1:])), (
        "memory must grow (within tolerance) with k"
    )
    assert max(memories) >= 4 * min(memories), "the sweep should span a real memory range"
    # The largest memory budget should not be less accurate than the smallest
    # by any meaningful margin (utility improves, or at worst saturates).
    assert rows[-1]["wasserstein"] <= rows[0]["wasserstein"] + 0.02


def test_memory_tradeoff_d2(benchmark, report_table):
    rows = benchmark.pedantic(
        memory_tradeoff,
        kwargs=dict(
            pruning_values=(4, 16),
            dimension=2,
            stream_size=2048,
            epsilon=1.0,
            repetitions=2,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    report_table("Utility vs memory (d=2, Zipf workload)", rows)
    assert rows[1]["memory_words"] >= rows[0]["memory_words"]
