"""Experiment T1: empirical reproduction of the paper's Table 1.

Compares Smooth, SRRW, PMM and PrivHP (plus the non-private floor) on the same
workload for d = 1 and d = 2, reporting the measured 1-Wasserstein error and
the memory footprint next to the theoretical bounds.  The claim reproduced is
the *shape*: PMM/SRRW most accurate with Theta(eps n) / Theta(d n) memory,
Smooth least accurate, PrivHP within a small factor of PMM while holding an
order of magnitude less state.
"""

from __future__ import annotations

from repro.experiments.harness import format_table
from repro.experiments.table1 import run_table1


def _run_and_report(dimension: int, stream_size: int, report_table) -> dict:
    report = run_table1(
        dimension=dimension,
        stream_size=stream_size,
        epsilon=1.0,
        pruning_k=8,
        repetitions=2,
        seed=0,
    )
    print(f"\npredicted bounds (d={dimension}, no leading constants):")
    print(format_table(report["predicted"]))
    report_table(f"Table 1 measured, d={dimension}, n={stream_size}", report["measured"])
    return report


def test_table1_d1(benchmark, report_table):
    """Table 1, Omega = [0, 1]."""
    report = benchmark.pedantic(
        _run_and_report, args=(1, 4096, report_table), rounds=1, iterations=1
    )
    measured = {row["method"]: row for row in report["measured"]}
    # Qualitative Table-1 shape: every private method beats no structure at
    # all, PMM is the most accurate private method, and PrivHP holds far less
    # memory than PMM while staying within a small factor in accuracy.
    assert measured["PrivHP"]["memory_words"] < measured["PMM"]["memory_words"]
    assert measured["PMM"]["wasserstein"] <= measured["Smooth"]["wasserstein"] * 1.5
    assert measured["PrivHP"]["wasserstein"] <= 10 * measured["PMM"]["wasserstein"] + 0.02


def test_table1_d2(benchmark, report_table):
    """Table 1, Omega = [0, 1]^2."""
    report = benchmark.pedantic(
        _run_and_report, args=(2, 2048, report_table), rounds=1, iterations=1
    )
    measured = {row["method"]: row for row in report["measured"]}
    assert measured["PrivHP"]["memory_words"] < measured["PMM"]["memory_words"]
    assert measured["PrivHP"]["wasserstein"] <= 1.0
