"""Experiment-matrix throughput: cells/second, serial vs process-parallel.

The matrix runner (``repro.experiments.runner``) exists so the full
reproduction grid can be executed at hardware speed; this benchmark pins the
parallel path down with one row: cells/second at ``--workers 1`` versus
``--workers <cpu count>`` on a 16-cell PrivHP grid, including the result
store's atomic-write overhead (each run writes a real on-disk store, exactly
like ``repro matrix``).

The smoke entry point (``python benchmarks/bench_matrix.py``) merges the row
into ``BENCH_performance.json`` under ``"experiment_matrix"`` (preserving the
other benchmark families) and enforces the acceptance gate: parallel speedup
``>= 2x`` whenever the machine has at least 4 cores.  On smaller machines the
row is still recorded but the gate is skipped -- there is nothing meaningful
to gate on one core.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import tempfile
import time

from bench_performance import merge_benchmark_result
from repro.experiments.runner import MatrixSpec, run_matrix

#: Acceptance gate: the process pool must beat the serial loop by at least
#: this factor, enforced only on machines with >= GATE_MIN_CORES cores.
SPEEDUP_GATE = 2.0
GATE_MIN_CORES = 4


def bench_spec(trials: int = 8, stream_size: int = 4096) -> MatrixSpec:
    """The benchmark grid: 2 methods x ``trials`` seeds on one dataset axis."""
    return MatrixSpec(
        name="bench-matrix",
        methods=("privhp", "nonprivate"),
        domains=("interval",),
        generators=("gaussian_mixture",),
        epsilons=(1.0,),
        stream_sizes=(int(stream_size),),
        trials=int(trials),
        base_seed=0,
        pruning_k=8,
    )


def _timed_run(spec: MatrixSpec, workers: int) -> float:
    out_dir = tempfile.mkdtemp(prefix="bench-matrix-")
    try:
        start = time.perf_counter()
        run_matrix(spec, out_dir=out_dir, workers=workers)
        return time.perf_counter() - start
    finally:
        shutil.rmtree(out_dir, ignore_errors=True)


def measure_matrix_throughput(
    trials: int = 8,
    stream_size: int = 4096,
    workers: int | None = None,
) -> dict:
    """Measure serial vs parallel grid execution; returns the benchmark row."""
    cores = os.cpu_count() or 1
    if workers is None:
        workers = max(1, cores)
    spec = bench_spec(trials=trials, stream_size=stream_size)
    cells = len(spec.cells())

    serial_seconds = _timed_run(spec, workers=1)
    parallel_seconds = _timed_run(spec, workers=workers)
    gate_applied = cores >= GATE_MIN_CORES
    return {
        "cells": cells,
        "stream_size": int(stream_size),
        "cores": cores,
        "workers": int(workers),
        "serial_cells_per_second": cells / serial_seconds,
        "parallel_cells_per_second": cells / parallel_seconds,
        "speedup": serial_seconds / parallel_seconds,
        "gate_applied": gate_applied,
        # A recorded ``gate_applied: false`` with no reason looks like a bug
        # in the benchmark; the persisted row must say *why* it was skipped.
        "gate_skip_reason": (
            None
            if gate_applied
            else f"only {cores} core(s) (< {GATE_MIN_CORES}) on this runner"
        ),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trials", type=int, default=8, help="seeds per method")
    parser.add_argument("--stream-size", type=int, default=4096, help="items per cell")
    parser.add_argument(
        "--workers", type=int, default=None,
        help="parallel worker count (default: the machine's core count)",
    )
    args = parser.parse_args()

    row = measure_matrix_throughput(
        trials=args.trials, stream_size=args.stream_size, workers=args.workers
    )
    merge_benchmark_result({"experiment_matrix": row})
    print(json.dumps(row, indent=2, sort_keys=True))
    if row["gate_applied"] and row["speedup"] < SPEEDUP_GATE:
        raise SystemExit(
            f"parallel matrix speedup {row['speedup']:.2f}x is below the "
            f"{SPEEDUP_GATE}x gate on {row['cores']} cores"
        )
    if not row["gate_applied"]:
        print(f"(speedup gate skipped: {row['gate_skip_reason']})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
