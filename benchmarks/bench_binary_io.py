"""Experiment IO-bin: binary envelope vs JSON for cold starts and checkpoints.

The binary state format exists for two hot paths: serving-side cold starts
(a Release must answer its first query without a parse-then-recompile step)
and ingest-side checkpoint churn (evict/restore cycles at high frequency).
This benchmark measures both against the JSON path on the same artefacts --
a ~1k-leaf release loaded cold through its first range and quantile query,
and a continual summarizer's full save+load round trip -- and records the
rows into ``BENCH_performance.json`` under ``"binary_io"``.

The CI smoke entry point (``python benchmarks/bench_binary_io.py --smoke``)
enforces the speedup gates: binary cold-load >= 10x JSON, binary checkpoint
round-trip >= 5x JSON.
"""

from __future__ import annotations

import argparse
import json
import shutil
import tempfile
import time
from pathlib import Path

import numpy as np

from bench_performance import merge_benchmark_result

COLD_LOAD_GATE = 10.0
CHECKPOINT_GATE = 5.0


def _build_release(stream_size: int, seed: int = 3):
    from repro.api.builder import PrivHPBuilder

    rng = np.random.default_rng(seed)
    summarizer = (
        PrivHPBuilder("interval")
        .epsilon(1.0)
        .pruning_k(8)
        .stream_size(stream_size)
        .seed(seed)
        .build()
    )
    summarizer.update_batch(rng.beta(2.0, 5.0, stream_size))
    return summarizer.release()


def _build_continual(stream_size: int, seed: int = 5):
    from repro.api.builder import PrivHPBuilder

    rng = np.random.default_rng(seed)
    summarizer = (
        PrivHPBuilder("interval")
        .epsilon(1.0)
        .pruning_k(8)
        .stream_size(stream_size)
        .seed(seed)
        .continual()
        .build()
    )
    summarizer.update_batch(rng.beta(2.0, 5.0, stream_size // 2))
    return summarizer


def _best_of(repeats: int, run) -> float:
    """Minimum wall time over ``repeats`` runs (robust to scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best


def measure_cold_load(stream_size: int = 16384, repeats: int = 5) -> dict:
    """Release cold start: load + first mass + first quantile, JSON vs binary.

    The timed region is exactly what a serving process pays when a store
    directory is opened and the first query for a release arrives: the JSON
    path parses the document, rebuilds the tree and compiles both query
    tables; the binary path maps the file and reconstructs the engines from
    the compiled sections.
    """
    from repro.api.release import Release

    release = _build_release(stream_size)
    leaves = len(release.tree.leaves())
    workdir = Path(tempfile.mkdtemp(prefix="bench-binary-io-"))
    try:
        json_path = release.save(workdir / "release.json")
        bin_path = release.save(workdir / "release.bin")

        def cold(path):
            def run():
                loaded = Release.load(path)
                loaded.mass(0.2, 0.6)
                loaded.quantile(0.5)

            return run

        # Answers must agree exactly before timing means anything.
        a, b = Release.load(json_path), Release.load(bin_path)
        assert a.mass(0.2, 0.6) == b.mass(0.2, 0.6)
        assert a.quantile(0.5) == b.quantile(0.5)

        json_seconds = _best_of(repeats, cold(json_path))
        binary_seconds = _best_of(repeats, cold(bin_path))
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return {
        "stream_size": int(stream_size),
        "leaves": int(leaves),
        "json_cold_load_ms": json_seconds * 1e3,
        "binary_cold_load_ms": binary_seconds * 1e3,
        "speedup": json_seconds / binary_seconds,
    }


def measure_checkpoint_roundtrip(stream_size: int = 60000, repeats: int = 5) -> dict:
    """Full checkpoint round trip (save + load), JSON vs binary.

    Uses a mid-stream continual summarizer -- the artefact the ingest
    service's eviction path writes at high frequency -- whose counter banks
    and sketch tables dominate the document.
    """
    from repro.io.serialization import load_checkpoint, save_checkpoint

    summarizer = _build_continual(stream_size)
    workdir = Path(tempfile.mkdtemp(prefix="bench-binary-io-"))
    try:
        json_path = workdir / "state.json"
        bin_path = workdir / "state.bin"

        def roundtrip(path, format):
            def run():
                save_checkpoint(summarizer, path, format=format)
                load_checkpoint(path)

            return run

        json_seconds = _best_of(repeats, roundtrip(json_path, "json"))
        binary_seconds = _best_of(repeats, roundtrip(bin_path, "binary"))
        json_bytes = json_path.stat().st_size
        binary_bytes = bin_path.stat().st_size
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return {
        "stream_size": int(stream_size),
        "items_processed": int(summarizer.items_processed),
        "json_roundtrip_ms": json_seconds * 1e3,
        "binary_roundtrip_ms": binary_seconds * 1e3,
        "json_bytes": int(json_bytes),
        "binary_bytes": int(binary_bytes),
        "roundtrips_per_second": 1.0 / binary_seconds,
        "speedup": json_seconds / binary_seconds,
    }


def run_binary_io_smoke(
    release_stream_size: int = 16384, checkpoint_stream_size: int = 60000
) -> dict:
    """Measure both rows and record them under ``binary_io``.

    Only this CI smoke entry point writes ``BENCH_performance.json``;
    pytest runs never dirty the working tree.
    """
    section = {
        "release_cold_load": measure_cold_load(release_stream_size),
        "checkpoint_roundtrip": measure_checkpoint_roundtrip(checkpoint_stream_size),
        "gates": {
            "cold_load_min_speedup": COLD_LOAD_GATE,
            "checkpoint_min_speedup": CHECKPOINT_GATE,
        },
    }
    merge_benchmark_result({"binary_io": section})
    return section


def test_binary_cold_load_beats_json(report_table):
    """Acceptance gate (pytest flavour, small sizes): the binary path must
    clearly win even on a modest release; the CI smoke entry enforces the
    full 10x/5x gates at the 1k-leaf sizes."""
    row = measure_cold_load(stream_size=8192, repeats=3)
    report_table("Release cold load, JSON vs binary", [row])
    assert row["speedup"] >= 3.0


def test_binary_checkpoint_roundtrip_beats_json(report_table):
    row = measure_checkpoint_roundtrip(stream_size=20000, repeats=3)
    report_table("Checkpoint round trip, JSON vs binary", [row])
    assert row["speedup"] >= 2.0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--release-stream-size", type=int, default=16384,
        help="stream length for the cold-load release (~1k leaves at defaults)",
    )
    parser.add_argument(
        "--checkpoint-stream-size", type=int, default=60000,
        help="stream length for the checkpointed continual summarizer",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI mode: records BENCH_performance.json and enforces the gates",
    )
    args = parser.parse_args()

    section = run_binary_io_smoke(
        release_stream_size=args.release_stream_size,
        checkpoint_stream_size=args.checkpoint_stream_size,
    )
    print(json.dumps(section, indent=2, sort_keys=True))

    cold = section["release_cold_load"]["speedup"]
    roundtrip = section["checkpoint_roundtrip"]["speedup"]
    if cold < COLD_LOAD_GATE:
        raise SystemExit(
            f"binary cold load is only {cold:.1f}x JSON "
            f"(gate: >= {COLD_LOAD_GATE:.0f}x at "
            f"{section['release_cold_load']['leaves']} leaves)"
        )
    if roundtrip < CHECKPOINT_GATE:
        raise SystemExit(
            f"binary checkpoint round trip is only {roundtrip:.1f}x JSON "
            f"(gate: >= {CHECKPOINT_GATE:.0f}x)"
        )
    print(
        f"binary_io gates passed: cold load {cold:.1f}x "
        f"(>= {COLD_LOAD_GATE:.0f}x), checkpoint round trip {roundtrip:.1f}x "
        f"(>= {CHECKPOINT_GATE:.0f}x)"
    )
    return 0


if __name__ == "__main__":  # CI smoke entry: records BENCH_performance.json
    raise SystemExit(main())
