"""Continual-path throughput: batched vs item-loop ingestion, snapshot latency.

The continual summarizer (``repro.continual.PrivHPContinual``) used to be an
item-at-a-time dead end (~1.9k items/s while the one-shot batch path ran at
~700k items/s).  Its batch-native refactor advances every counter bank and
continual sketch once per ingestion *event* instead of once per item, so a
whole batch costs one vectorised locate pass plus a handful of numpy steps.

This benchmark pins that down with three numbers:

1. **loop** -- items/s of per-item :meth:`~repro.continual.privhp.PrivHPContinual.update`
   (measured on a bounded prefix; the loop rate is length-independent).
2. **batch** -- items/s of :func:`repro.api.summarizer.ingest_batches` over
   the full stream.
3. **snapshot** -- seconds to produce a full mid-stream
   :class:`~repro.api.release.Release` (the live-serving refresh cost).

The smoke entry point (``python benchmarks/bench_continual.py``) merges the
row into ``BENCH_performance.json`` under ``"continual"`` and enforces the
acceptance gate (batch >= 50x loop); ``--smoke`` runs a smaller stream with
the same gate and no JSON write, which is what CI uses to keep the continual
path from silently regressing to the item loop.
"""

from __future__ import annotations

import argparse
import json
import time

import numpy as np

from bench_performance import merge_benchmark_result
from repro.api.builder import PrivHPBuilder
from repro.api.summarizer import ingest_batches

#: Acceptance gate: batched continual ingestion must beat the item loop by
#: at least this factor (the ISSUE 4 criterion at n=100k).
SPEEDUP_GATE = 50.0


def measure_continual_throughput(
    stream_size: int = 100_000,
    batch_size: int = 16384,
    loop_items: int = 2_000,
    snapshot_repeats: int = 3,
    seed: int = 0,
) -> dict:
    """Measure loop vs batch continual ingestion and mid-stream snapshot cost.

    The loop path is timed on a ``loop_items`` prefix (per-item cost does not
    depend on position in the stream, and a full 100k-item loop would
    dominate CI time); the batch path ingests the full stream.
    """
    data = np.random.default_rng(seed).beta(2.0, 5.0, size=stream_size)
    builder = (
        PrivHPBuilder("interval")
        .epsilon(1.0)
        .pruning_k(8)
        .stream_size(stream_size)
        .seed(seed)
        .continual()
    )

    loop_items = min(int(loop_items), int(stream_size))
    loop_model = builder.build(rng=np.random.default_rng(seed))
    start = time.perf_counter()
    loop_model.process(data[:loop_items])
    loop_seconds = time.perf_counter() - start

    batch_model = builder.build(rng=np.random.default_rng(seed))
    start = time.perf_counter()
    ingest_batches(batch_model, data, batch_size)
    batch_seconds = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(snapshot_repeats):
        release = batch_model.snapshot()
    snapshot_seconds = (time.perf_counter() - start) / snapshot_repeats

    loop_rate = loop_items / loop_seconds if loop_seconds > 0 else 0.0
    batch_rate = stream_size / batch_seconds if batch_seconds > 0 else 0.0
    return {
        "n": int(stream_size),
        "batch_size": int(batch_size),
        "loop_items_measured": loop_items,
        "loop_items_per_second": loop_rate,
        "batch_items_per_second": batch_rate,
        "speedup": batch_rate / loop_rate if loop_rate > 0 else 0.0,
        "snapshot_seconds": snapshot_seconds,
        "snapshot_leaves": len(release.tree.leaves()),
        "memory_words": batch_model.memory_words(),
    }


def run_continual_smoke(stream_size: int = 100_000) -> dict:
    """Measure the continual paths and merge the row into the tracked JSON.

    Only this entry point (``python benchmarks/bench_continual.py``) writes
    ``BENCH_performance.json``; pytest runs never dirty the working tree.
    """
    row = measure_continual_throughput(stream_size=stream_size)
    merge_benchmark_result({"continual": row})
    return row


def test_continual_batch_speedup(report_table):
    """Acceptance gate: batched continual ingestion >= 50x the item loop."""
    row = measure_continual_throughput(stream_size=20_000, loop_items=1_000)
    report_table("Batched vs per-item continual ingestion (n=20k)", [row])
    assert row["speedup"] >= SPEEDUP_GATE


def test_snapshot_latency_bounded(report_table):
    """Mid-stream snapshots (the live-serving refresh) stay sub-second."""
    row = measure_continual_throughput(
        stream_size=20_000, loop_items=1, snapshot_repeats=3
    )
    report_table("Continual snapshot latency (n=20k)", [row])
    assert row["snapshot_seconds"] < 1.0


if __name__ == "__main__":  # CI smoke entry
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small-stream gate for CI: same speedup check, no JSON write",
    )
    arguments = parser.parse_args()
    if arguments.smoke:
        result = measure_continual_throughput(stream_size=20_000, loop_items=1_000)
    else:
        result = run_continual_smoke()
    print(json.dumps(result, indent=2, sort_keys=True))
    if result["speedup"] < SPEEDUP_GATE:
        raise SystemExit(
            f"continual batch speedup {result['speedup']:.2f}x is below the "
            f"{SPEEDUP_GATE:.0f}x gate"
        )
