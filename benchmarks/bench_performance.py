"""Experiment F-perf: update throughput and memory growth (Corollary 1).

Corollary 1 claims O(log(eps n)) update time and M = O(k log^2 n) memory; the
generator is produced in O(M log n) time.  The benchmark measures per-item
update latency, finalize latency and the words held across stream lengths, and
separately times single updates with pytest-benchmark's timer.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.core.config import PrivHPConfig
from repro.core.privhp import PrivHP
from repro.domain.interval import UnitInterval
from repro.experiments.performance import batch_speedup_experiment, throughput_experiment

RESULT_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_performance.json"


def merge_benchmark_result(update: dict, path: pathlib.Path = RESULT_PATH) -> dict:
    """Merge ``update`` into the tracked benchmark JSON, preserving other keys.

    ``BENCH_performance.json`` records several benchmark families, one
    top-level section each (``ingestion``, ``query_serving``, ``continual``);
    each smoke entry point updates only its own section so running one never
    erases the others.
    """
    document = {}
    if path.exists():
        try:
            document = json.loads(path.read_text())
        except json.JSONDecodeError:
            document = {}
    if not isinstance(document, dict):
        document = {}
    document.update(update)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return document


def run_batch_speedup_smoke(stream_size: int = 100_000) -> dict:
    """Run the loop-vs-batch ingestion comparison and record the result.

    The row (items/sec for both paths plus their ratio) is merged into
    ``BENCH_performance.json`` under the ``"ingestion"`` section so CI can
    track the ingestion-throughput trajectory across commits.
    """
    row = batch_speedup_experiment(stream_size=stream_size)
    merge_benchmark_result({"ingestion": row})
    return row


def test_batch_ingestion_speedup(report_table):
    """Acceptance gate: update_batch must beat the per-item loop >= 3x at n=100k.

    Measures only -- the tracked BENCH_performance.json is written by the CI
    smoke entry point (``python benchmarks/bench_performance.py``), not by
    pytest runs, so local benchmarking never dirties the working tree.
    """
    row = batch_speedup_experiment(stream_size=100_000)
    report_table("Batched vs per-item ingestion (n=100k)", [row])
    assert row["speedup"] >= 3.0


def test_throughput_and_memory_growth(benchmark, report_table):
    rows = benchmark.pedantic(
        throughput_experiment,
        kwargs=dict(
            stream_sizes=(1024, 2048, 4096, 8192),
            dimension=1,
            epsilon=1.0,
            pruning_k=8,
            synthetic_size=1024,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    report_table("Throughput and memory vs stream length", rows)

    # Memory stays within a constant factor of the k log^2 n prediction.
    for row in rows:
        assert row["memory_words"] <= 12 * row["memory_bound_k_log2n"]
    # Update latency grows slowly (roughly with L = log(eps n)), so the
    # largest stream is at most a few times slower per item than the smallest.
    assert rows[-1]["seconds_per_update"] <= 6 * rows[0]["seconds_per_update"] + 1e-4


def test_single_update_latency(benchmark):
    """Micro-benchmark of PrivHP.update (the O(log eps n) path)."""
    domain = UnitInterval()
    config = PrivHPConfig.from_stream_size(stream_size=8192, epsilon=1.0, pruning_k=8, seed=0)
    algorithm = PrivHP(domain, config, rng=0)
    values = iter(np.random.default_rng(1).random(1_000_000))

    benchmark(lambda: algorithm.update(next(values)))


def test_sampling_latency(benchmark):
    """Micro-benchmark of drawing one synthetic point from a finalized generator."""
    domain = UnitInterval()
    config = PrivHPConfig.from_stream_size(stream_size=4096, epsilon=1.0, pruning_k=8, seed=0)
    algorithm = PrivHP(domain, config, rng=0)
    algorithm.process(np.random.default_rng(2).random(4096))
    generator = algorithm.finalize()

    benchmark(lambda: generator.sample_one())


if __name__ == "__main__":  # CI smoke entry: no pytest-benchmark machinery needed
    result = run_batch_speedup_smoke()
    print(json.dumps(result, indent=2, sort_keys=True))
    if result["speedup"] < 3.0:
        raise SystemExit(f"ingestion speedup {result['speedup']:.2f}x is below the 3x gate")
