"""Experiment F-perf: update throughput and memory growth (Corollary 1).

Corollary 1 claims O(log(eps n)) update time and M = O(k log^2 n) memory; the
generator is produced in O(M log n) time.  The benchmark measures per-item
update latency, finalize latency and the words held across stream lengths, and
separately times single updates with pytest-benchmark's timer.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import PrivHPConfig
from repro.core.privhp import PrivHP
from repro.domain.interval import UnitInterval
from repro.experiments.performance import throughput_experiment


def test_throughput_and_memory_growth(benchmark, report_table):
    rows = benchmark.pedantic(
        throughput_experiment,
        kwargs=dict(
            stream_sizes=(1024, 2048, 4096, 8192),
            dimension=1,
            epsilon=1.0,
            pruning_k=8,
            synthetic_size=1024,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    report_table("Throughput and memory vs stream length", rows)

    # Memory stays within a constant factor of the k log^2 n prediction.
    for row in rows:
        assert row["memory_words"] <= 12 * row["memory_bound_k_log2n"]
    # Update latency grows slowly (roughly with L = log(eps n)), so the
    # largest stream is at most a few times slower per item than the smallest.
    assert rows[-1]["seconds_per_update"] <= 6 * rows[0]["seconds_per_update"] + 1e-4


def test_single_update_latency(benchmark):
    """Micro-benchmark of PrivHP.update (the O(log eps n) path)."""
    domain = UnitInterval()
    config = PrivHPConfig.from_stream_size(stream_size=8192, epsilon=1.0, pruning_k=8, seed=0)
    algorithm = PrivHP(domain, config, rng=0)
    values = iter(np.random.default_rng(1).random(1_000_000))

    benchmark(lambda: algorithm.update(next(values)))


def test_sampling_latency(benchmark):
    """Micro-benchmark of drawing one synthetic point from a finalized generator."""
    domain = UnitInterval()
    config = PrivHPConfig.from_stream_size(stream_size=4096, epsilon=1.0, pruning_k=8, seed=0)
    algorithm = PrivHP(domain, config, rng=0)
    algorithm.process(np.random.default_rng(2).random(4096))
    generator = algorithm.finalize()

    benchmark(lambda: generator.sample_one())
