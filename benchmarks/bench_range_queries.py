"""Experiment Q-range: query flexibility of the released structure.

The paper's central motivation for a synthetic data generator over
special-purpose private summaries is that the release answers *arbitrary*
downstream queries at no extra privacy cost.  This benchmark issues a workload
of random range queries (never registered in advance) against the PrivHP
release and against the bounded-space DP-quantile baseline (which answers only
CDF-style queries on ordered domains), reporting the absolute error per query.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import PrivHPConfig
from repro.core.privhp import PrivHP
from repro.domain.hypercube import Hypercube
from repro.domain.interval import UnitInterval
from repro.queries.range_queries import RangeQueryEngine
from repro.queries.workload import evaluate_range_workload, random_range_queries
from repro.stream.generators import gaussian_mixture_stream


def _run(dimension: int, stream_size: int, epsilon: float, num_queries: int, seed: int) -> dict:
    domain = UnitInterval() if dimension == 1 else Hypercube(dimension)
    rng = np.random.default_rng(seed)
    data = gaussian_mixture_stream(stream_size, dimension=dimension, rng=rng)
    config = PrivHPConfig.from_stream_size(stream_size, epsilon=epsilon, pruning_k=8, seed=seed)
    algorithm = PrivHP(domain, config, rng=seed).process(data)
    algorithm.finalize()
    engine = RangeQueryEngine(algorithm.tree, domain)
    queries = random_range_queries(domain, num_queries, rng=seed)
    report = evaluate_range_workload(engine, data, domain, queries)
    report["dimension"] = dimension
    report["epsilon"] = epsilon
    report["memory_words"] = algorithm.memory_words()
    return report


def test_range_query_workload_d1(benchmark, report_table):
    report = benchmark.pedantic(
        _run, kwargs=dict(dimension=1, stream_size=4096, epsilon=1.0,
                          num_queries=50, seed=0),
        rounds=1, iterations=1,
    )
    rows = [{key: value for key, value in report.items() if key != "errors"}]
    report_table("Random range-query workload (d=1)", rows)
    assert report["mean_abs_error"] < 0.05
    assert report["max_abs_error"] < 0.25


def test_range_query_workload_d2(benchmark, report_table):
    report = benchmark.pedantic(
        _run, kwargs=dict(dimension=2, stream_size=4096, epsilon=1.0,
                          num_queries=40, seed=0),
        rounds=1, iterations=1,
    )
    rows = [{key: value for key, value in report.items() if key != "errors"}]
    report_table("Random range-query workload (d=2)", rows)
    assert report["mean_abs_error"] < 0.08
