"""Experiment A-sketch: sketch width/depth sweeps and Count-Min vs Misra-Gries.

Lemma 4 bounds the Count-Min error by ``tail_w / w + 2^{-j+1} n``; the sweep
verifies that the measured estimation error falls with both width and depth on
the exact cell-frequency vectors PrivHP sketches.  The comparison row
reproduces the related-work argument for preferring the hash-based sketch over
the counter-based (Misra-Gries) one on skewed streams.
"""

from __future__ import annotations

from repro.experiments.ablations import sketch_ablation


def test_sketch_parameter_sweep(benchmark, report_table):
    report = benchmark.pedantic(
        sketch_ablation,
        kwargs=dict(widths=(4, 8, 16, 32, 64), depths=(2, 4, 8, 12),
                    stream_size=8192, level=10, zipf_exponent=1.2, seed=0),
        rounds=1,
        iterations=1,
    )
    report_table("Count-Min error vs width (depth=6)", report["width_sweep"])
    report_table("Count-Min error vs depth (width=16)", report["depth_sweep"])
    report_table("Count-Min vs Misra-Gries (same state budget)", report["sketch_comparison"])

    widths = report["width_sweep"]
    assert widths[-1]["mean_abs_error"] <= widths[0]["mean_abs_error"]
    depths = report["depth_sweep"]
    assert depths[-1]["mean_abs_error"] <= depths[0]["mean_abs_error"] * 1.5 + 1.0
