"""Experiment A-consistency: Algorithm 3 enabled versus disabled.

Section 4.4 notes (following the private-histogram literature) that enforcing
consistency can improve utility at the same privacy budget; it is also what
makes the tree a well-formed probability measure for the sampler.  The
ablation compares both settings on the same workload.
"""

from __future__ import annotations

from repro.experiments.ablations import consistency_ablation


def test_consistency_ablation_d1(benchmark, report_table):
    rows = benchmark.pedantic(
        consistency_ablation,
        kwargs=dict(dimension=1, stream_size=4096, epsilon=0.5, pruning_k=8,
                    repetitions=3, seed=0),
        rounds=1,
        iterations=1,
    )
    report_table("Consistency ablation (d=1)", rows)
    by_setting = {row["consistency"]: row for row in rows}
    # Consistency should not hurt; allow a generous tolerance for run noise.
    assert by_setting[True]["wasserstein"] <= by_setting[False]["wasserstein"] * 1.5 + 0.01
