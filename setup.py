"""Setuptools entry point.

The project deliberately keeps packaging on this legacy ``setup.py`` path --
the repo's ``pyproject.toml`` carries lint configuration only and has no
``[build-system]`` table -- so that ``pip install -e .`` works in fully
offline environments: PEP 517 editable builds require downloading ``wheel``
into an isolated build environment, whereas the path below only needs the
setuptools already present on the machine.  If your pip still attempts an
isolated build because ``pyproject.toml`` exists, pass
``--no-build-isolation``.
"""

from setuptools import setup

setup()
