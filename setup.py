"""Setuptools entry point.

The project deliberately ships a ``setup.py`` + ``setup.cfg`` pair instead of
a ``pyproject.toml`` build-system table so that ``pip install -e .`` works in
fully offline environments: PEP 517 editable builds require downloading
``wheel`` into an isolated build environment, whereas the legacy path below
only needs the setuptools already present on the machine.
"""

from setuptools import setup

setup()
