"""Reconstructing the Theorem-3 proof pipeline on real data.

``T_exact`` (Step 1 of the proof) is the tree obtained by pruning with *exact*
counts: at every level below the cut-off only the k truly heaviest cells are
expanded, and every kept cell carries its exact cardinality.  Its distance to
the empirical measure isolates the unavoidable cost of pruning
(Lemma 7: ``<= ||tail_k||_1 / n * sum gamma_l``), with no privacy noise and no
sketch error involved.

``decompose_error`` measures, on a concrete dataset, the empirical distance of
(a) ``T_exact`` and (b) the actual PrivHP release from the data, and reports
the difference as the combined noise + approximation cost -- the quantity the
remaining terms of Theorem 3 bound.  These diagnostics require access to the
raw data and are analysis-only tools; they are never part of the private
release path.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import PrivHPConfig
from repro.core.privhp import PrivHP
from repro.core.sampler import SyntheticDataGenerator
from repro.core.tree import PartitionTree
from repro.domain.base import Domain
from repro.metrics.tail import tail_norm
from repro.metrics.wasserstein import empirical_wasserstein
from repro.theory.bounds import privhp_approx_term, privhp_noise_term

__all__ = ["build_exact_pruned_tree", "decompose_error"]


def build_exact_pruned_tree(
    data,
    domain: Domain,
    pruning_k: int,
    level_cutoff: int,
    depth: int,
) -> PartitionTree:
    """Construct ``T_exact``: exact counts, exact top-k pruning (proof Step 1)."""
    if pruning_k < 1:
        raise ValueError(f"pruning_k must be at least 1, got {pruning_k}")
    if not 0 <= level_cutoff <= depth:
        raise ValueError("level_cutoff must lie in [0, depth]")
    data = list(data)
    if not data:
        raise ValueError("data must be non-empty")

    # Exact frequencies per level, computed once.
    level_frequencies = {
        level: domain.level_frequencies(data, level) for level in range(depth + 1)
    }

    tree = PartitionTree()
    # Complete portion: every cell down to the cut-off level.
    for level in range(level_cutoff + 1):
        for theta in domain.cells_at_level(level):
            tree.add_node(theta, float(level_frequencies[level].get(theta, 0)))

    # Pruned portion: expand only the exactly-heaviest k cells per level.
    hot = tree.nodes_at_level(level_cutoff)
    for level in range(level_cutoff + 1, depth + 1):
        frequencies = level_frequencies[level]
        children = []
        for theta in hot:
            for child in (theta + (0,), theta + (1,)):
                tree.add_node(child, float(frequencies.get(child, 0)))
                children.append(child)
        children.sort(key=lambda cell: (-tree.count(cell), cell))
        hot = children[:pruning_k]
    return tree


def decompose_error(
    data,
    domain: Domain,
    config: PrivHPConfig,
    rng: np.random.Generator | int | None = None,
    synthetic_size: int | None = None,
) -> dict:
    """Measure the proof-pipeline error decomposition on a dataset.

    Returns a dictionary with the measured Wasserstein distance of the exactly
    pruned tree (pure pruning cost), of the actual PrivHP release (total
    cost), their difference (noise + approximation cost), the relevant tail
    norm, and the corresponding Theorem-3 terms for reference.
    """
    data = list(data)
    if not data:
        raise ValueError("data must be non-empty")
    generator = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    if synthetic_size is None:
        synthetic_size = len(data)
    data_array = np.asarray(data)

    exact_tree = build_exact_pruned_tree(
        data, domain, config.pruning_k, config.level_cutoff, config.depth
    )
    exact_sampler = SyntheticDataGenerator(exact_tree, domain, rng=generator)
    exact_error = empirical_wasserstein(
        data_array, np.asarray(exact_sampler.sample(synthetic_size)), domain=domain
    )

    algorithm = PrivHP(domain, config, rng=generator)
    algorithm.process(data)
    release = algorithm.finalize()
    total_error = empirical_wasserstein(
        data_array, np.asarray(release.sample(synthetic_size)), domain=domain
    )

    tail = tail_norm(data, domain, level=config.depth, k=config.pruning_k)
    return {
        "exact_pruning_error": float(exact_error),
        "total_error": float(total_error),
        "noise_and_approx_error": float(max(total_error - exact_error, 0.0)),
        "tail_norm": float(tail),
        "tail_fraction": float(tail / len(data)),
        "predicted_noise_term": privhp_noise_term(
            domain, len(data), config.epsilon, config.depth, config.level_cutoff,
            config.pruning_k, config.sketch_depth,
        ),
        "predicted_approx_term": privhp_approx_term(
            domain, len(data), tail, config.depth, config.level_cutoff, config.sketch_depth,
        ),
        "memory_words": algorithm.memory_words(),
    }
