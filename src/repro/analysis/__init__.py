"""Error-decomposition diagnostics following the Theorem-3 proof pipeline.

Section 7 of the paper analyses PrivHP through a sequence of intermediate
trees: the fully exact tree, the exactly-pruned tree ``T_exact`` (Step 1,
quantifying the pure pruning cost), and the final noisy tree ``T_PrivHP``
(Steps 2-3, adding approximate pruning, noise and consistency errors).  This
package reconstructs those intermediate objects from the raw data so that the
measured error can be attributed to its sources, mirroring the
``Delta_noise + Delta_approx`` split of the bound.
"""

from repro.analysis.decomposition import (
    build_exact_pruned_tree,
    decompose_error,
)

__all__ = ["build_exact_pruned_tree", "decompose_error"]
