"""Command-line interface for PrivHP.

Three sub-commands cover the typical workflow:

* ``summarize`` -- stream a CSV of sensitive values through PrivHP and write
  the released (epsilon-DP) generator to a JSON file.
* ``generate`` -- load a released generator and emit synthetic data as CSV.
* ``evaluate`` -- fit, generate and report the Wasserstein error and memory
  footprint in one go (no artefacts written), useful for quick parameter
  exploration.

Example::

    python -m repro.cli summarize --input values.csv --epsilon 1.0 --k 8 \
        --output release.json
    python -m repro.cli generate --release release.json --size 10000 \
        --output synthetic.csv
"""

from __future__ import annotations

import argparse
import pathlib
import sys

import numpy as np

from repro.core.config import PrivHPConfig
from repro.core.privhp import PrivHP
from repro.domain.hypercube import Hypercube
from repro.domain.interval import UnitInterval
from repro.io.serialization import load_generator, save_generator
from repro.metrics.wasserstein import empirical_wasserstein

__all__ = ["main", "build_parser"]


def _load_csv(path: str | pathlib.Path) -> np.ndarray:
    """Load a headerless CSV of floats (one row per record)."""
    data = np.loadtxt(path, delimiter=",", ndmin=2)
    if data.shape[1] == 1:
        return data.ravel()
    return data


def _make_domain(data: np.ndarray):
    """Pick the domain from the data's shape ([0,1] or [0,1]^d)."""
    if data.ndim == 1:
        return UnitInterval()
    return Hypercube(data.shape[1])


def _write_csv(path: str | pathlib.Path, data: np.ndarray) -> None:
    array = np.asarray(data)
    if array.ndim == 1:
        array = array.reshape(-1, 1)
    np.savetxt(path, array, delimiter=",", fmt="%.10g")


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for the ``repro`` command-line tool."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PrivHP: private synthetic data generation in bounded memory",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    summarize = subparsers.add_parser(
        "summarize", help="stream a CSV through PrivHP and save the private release"
    )
    summarize.add_argument("--input", required=True, help="CSV of values in [0,1]^d (no header)")
    summarize.add_argument("--output", required=True, help="path for the release JSON")
    summarize.add_argument("--epsilon", type=float, default=1.0, help="privacy budget")
    summarize.add_argument("--k", type=int, default=8, help="pruning parameter")
    summarize.add_argument("--seed", type=int, default=0, help="random seed")

    generate = subparsers.add_parser(
        "generate", help="sample synthetic data from a saved release"
    )
    generate.add_argument("--release", required=True, help="release JSON from 'summarize'")
    generate.add_argument("--output", required=True, help="CSV path for the synthetic data")
    generate.add_argument("--size", type=int, required=True, help="number of synthetic points")
    generate.add_argument("--seed", type=int, default=0, help="random seed")

    evaluate = subparsers.add_parser(
        "evaluate", help="fit, generate and report utility/memory in one step"
    )
    evaluate.add_argument("--input", required=True, help="CSV of values in [0,1]^d (no header)")
    evaluate.add_argument("--epsilon", type=float, default=1.0, help="privacy budget")
    evaluate.add_argument("--k", type=int, default=8, help="pruning parameter")
    evaluate.add_argument("--seed", type=int, default=0, help="random seed")

    return parser


def _command_summarize(args: argparse.Namespace) -> int:
    data = _load_csv(args.input)
    domain = _make_domain(data)
    config = PrivHPConfig.from_stream_size(
        stream_size=len(data), epsilon=args.epsilon, pruning_k=args.k, seed=args.seed
    )
    algorithm = PrivHP(domain, config)
    algorithm.process(data)
    generator = algorithm.finalize()
    save_generator(
        generator,
        args.output,
        metadata={
            "epsilon": args.epsilon,
            "pruning_k": args.k,
            "stream_size": int(len(data)),
            "memory_words": algorithm.memory_words(),
        },
    )
    print(f"wrote release to {args.output} "
          f"(epsilon={args.epsilon}, memory={algorithm.memory_words()} words)")
    return 0


def _command_generate(args: argparse.Namespace) -> int:
    generator = load_generator(args.release, seed=args.seed)
    synthetic = generator.sample(args.size)
    _write_csv(args.output, synthetic)
    print(f"wrote {args.size} synthetic records to {args.output}")
    return 0


def _command_evaluate(args: argparse.Namespace) -> int:
    data = _load_csv(args.input)
    domain = _make_domain(data)
    config = PrivHPConfig.from_stream_size(
        stream_size=len(data), epsilon=args.epsilon, pruning_k=args.k, seed=args.seed
    )
    algorithm = PrivHP(domain, config)
    algorithm.process(data)
    generator = algorithm.finalize()
    synthetic = generator.sample(len(data))
    error = empirical_wasserstein(np.asarray(data), np.asarray(synthetic), domain=domain)
    print(f"stream size      : {len(data)}")
    print(f"epsilon          : {args.epsilon}")
    print(f"pruning k        : {args.k}")
    print(f"memory (words)   : {algorithm.memory_words()}")
    print(f"W1(data, synth)  : {error:.6f}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point used by ``python -m repro.cli`` and the tests."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "summarize":
        return _command_summarize(args)
    if args.command == "generate":
        return _command_generate(args)
    if args.command == "evaluate":
        return _command_evaluate(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
