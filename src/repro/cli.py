"""Command-line interface for PrivHP, built on the unified ``repro.api`` surface.

Twelve sub-commands cover the workflow:

* ``summarize`` -- stream a CSV of sensitive values through PrivHP (batched,
  optionally sharded) and write the released (epsilon-DP) generator to JSON.
  With ``--continual`` (and an optional ``--horizon``) the fit runs the
  continual-observation variant, whose state is private at every point of
  the stream.
* ``generate`` -- load a released generator and emit synthetic data as CSV.
  ``--seed`` reseeds *sampling only*; the persisted tree counts are never
  re-noised.
* ``evaluate`` -- fit, generate and report the Wasserstein error and memory
  footprint in one go (no artefacts written).
* ``checkpoint`` -- ingest a CSV into a durable mid-stream state file (new or
  existing), without releasing.  States are written in the binary envelope
  format by default (``--format json`` for the text form); every consumer
  autodetects either.
* ``convert`` -- convert a release or checkpoint file between the JSON
  interchange format and the mmap-loadable binary envelope (lossless both
  ways).
* ``resume`` -- restore a state file, optionally ingest more data, and
  release.
* ``snapshot`` -- write a mid-stream release from a *continual* checkpoint
  without consuming it (the state file stays resumable).
* ``serve`` -- expose a directory of releases as a JSON-over-HTTP query
  endpoint (``repro.serve``); pure post-processing, no privacy cost.
* ``query`` -- answer a JSON workload file against one release, no server
  needed.
* ``matrix`` -- run a declarative experiment grid (methods x domains x
  generators x epsilon x n x trials) through the parallel, resumable matrix
  runner; ``--smoke`` runs the built-in CI grid and gates the accuracy
  ordering; ``--gate`` applies the same gate (plus its per-epoch variant for
  scenario cells) to any grid.
* ``scenario`` -- materialise a time-varying scenario spec
  (``repro.stream.scenarios``) into a CSV stream, or with ``--tenants`` into
  tenant-tagged JSONL ready for ``repro ingest --append``; prints the
  per-epoch schedule table.
* ``ingest`` -- run the multi-tenant ingestion service (``repro.ingest``)
  over a directory of tenant specs: append tenant-tagged JSONL/CSV files
  (one-off via ``--append`` or continuously via ``--watch``), optionally
  serving live snapshots over HTTP while ingesting, then snapshot or
  release tenants.

Example::

    python -m repro.cli matrix spec.json --out results/ --workers 4 --resume
    python -m repro.cli matrix --smoke --out smoke-results/
    python -m repro.cli scenario drift.json --size 10000 --out stream.csv
    python -m repro.cli scenario drift.json --size 5000 --tenants 4 \
        --out appends.jsonl

    python -m repro.cli summarize --input values.csv --epsilon 1.0 --k 8 \
        --domain auto --shards 4 --output release.json
    python -m repro.cli generate --release release.json --size 10000 \
        --output synthetic.csv
    python -m repro.cli checkpoint --input day1.csv --state state.json \
        --continual --stream-size 2000000
    python -m repro.cli snapshot --state state.json --output day1_release.json
    python -m repro.cli checkpoint --input day2.csv --state state.json
    python -m repro.cli resume --state state.json --output release.json
    python -m repro.cli serve --store releases/ --port 8080
    python -m repro.cli query release.json --workload queries.json
    python -m repro.cli ingest --specs tenants/ --append day1.jsonl \
        --checkpoint-dir ckpt/ --memory-budget-words 200000 \
        --release-dir releases/
    python -m repro.cli ingest --specs tenants/ --watch spool/ --serve --port 8080
"""

from __future__ import annotations

import argparse
import pathlib
import sys

import numpy as np

from repro.api.builder import PrivHPBuilder
from repro.api.registry import available_domains, make_domain
from repro.api.release import Release
from repro.api.summarizer import DEFAULT_BATCH_SIZE, ingest_batches
from repro.core.privhp import PrivHP
from repro.ingest.partition import DEFAULT_REPLY_TIMEOUT
from repro.io.serialization import load_checkpoint, save_checkpoint
from repro.metrics.wasserstein import empirical_wasserstein

__all__ = ["main", "build_parser"]


def _load_csv(path: str | pathlib.Path) -> np.ndarray:
    """Load a headerless CSV of floats (one row per record)."""
    data = np.loadtxt(path, delimiter=",", ndmin=2)
    if data.shape[1] == 1:
        return data.ravel()
    return data


def _write_csv(path: str | pathlib.Path, data: np.ndarray) -> None:
    array = np.asarray(data)
    if array.ndim == 1:
        array = array.reshape(-1, 1)
    # Integer domains (discrete, ipv4) must not lose precision to a float
    # significant-digit format.
    fmt = "%d" if np.issubdtype(array.dtype, np.integer) else "%.10g"
    np.savetxt(path, array, delimiter=",", fmt=fmt)


#: (flag, attribute, default, type, help) fit parameters; ``checkpoint``
#: declares them with a None default so flags that only apply to a fresh
#: state can be detected (and rejected) when the state file already exists.
_FIT_ARGUMENTS = (
    ("--epsilon", "epsilon", 1.0, float, "privacy budget"),
    ("--k", "k", 8, int, "pruning parameter"),
    ("--seed", "seed", 0, int, "random seed"),
    (
        "--domain",
        "domain",
        "auto",
        str,
        "domain spec: 'auto' (infer from data shape) or one of "
        f"{', '.join(available_domains())} with optional ':args' "
        "(e.g. hypercube:3, discrete:4096, geo:24,49,-125,-66)",
    ),
)


def _add_fit_arguments(parser: argparse.ArgumentParser, deferred_defaults: bool = False) -> None:
    for flag, _attribute, default, value_type, help_text in _FIT_ARGUMENTS:
        parser.add_argument(
            flag,
            type=value_type,
            default=None if deferred_defaults else default,
            help=help_text,
        )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=DEFAULT_BATCH_SIZE,
        help="items per vectorised ingestion batch",
    )
    parser.add_argument(
        "--continual",
        action="store_true",
        default=None if deferred_defaults else False,
        help="fit the continual-observation variant (state private at every "
        "point of the stream; snapshot-able mid-stream)",
    )
    parser.add_argument(
        "--horizon",
        type=int,
        default=None,
        help="maximum stream length the continual counters must survive "
        "(default: the expected stream size)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for the ``repro`` command-line tool."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PrivHP: private synthetic data generation in bounded memory",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    summarize = subparsers.add_parser(
        "summarize", help="stream a CSV through PrivHP and save the private release"
    )
    summarize.add_argument("--input", required=True, help="CSV of sensitive values (no header)")
    summarize.add_argument("--output", required=True, help="path for the release JSON")
    _add_fit_arguments(summarize)
    summarize.add_argument(
        "--shards",
        type=int,
        default=1,
        help="ingest through N raw shard summaries merged before the single "
        "noise injection (noise is never double-counted)",
    )

    generate = subparsers.add_parser(
        "generate", help="sample synthetic data from a saved release"
    )
    generate.add_argument("--release", required=True, help="release JSON from 'summarize'")
    generate.add_argument("--output", required=True, help="CSV path for the synthetic data")
    generate.add_argument("--size", type=int, required=True, help="number of synthetic points")
    generate.add_argument(
        "--seed",
        type=int,
        default=0,
        help="seed for sampling only; the persisted tree counts are never re-noised",
    )

    evaluate = subparsers.add_parser(
        "evaluate", help="fit, generate and report utility/memory in one step"
    )
    evaluate.add_argument("--input", required=True, help="CSV of sensitive values (no header)")
    _add_fit_arguments(evaluate)

    checkpoint = subparsers.add_parser(
        "checkpoint",
        help="ingest a CSV into a durable mid-stream state file (create or extend)",
    )
    checkpoint.add_argument("--input", required=True, help="CSV of sensitive values (no header)")
    checkpoint.add_argument(
        "--state", required=True, help="checkpoint JSON (resumed when it already exists)"
    )
    _add_fit_arguments(checkpoint, deferred_defaults=True)
    checkpoint.add_argument(
        "--stream-size",
        type=int,
        default=None,
        help="expected total stream length for the paper defaults "
        "(defaults to the first input's length)",
    )
    checkpoint.add_argument(
        "--format",
        choices=("binary", "json"),
        default="binary",
        help="state file format: 'binary' (default; raw-array envelope, "
        "fastest to write and reload) or 'json' (interchange text); "
        "resuming autodetects either",
    )

    snapshot = subparsers.add_parser(
        "snapshot",
        help="write a mid-stream release from a continual checkpoint "
        "(the state file is left untouched and stays resumable)",
    )
    snapshot.add_argument(
        "--state", required=True, help="continual checkpoint JSON from 'checkpoint --continual'"
    )
    snapshot.add_argument("--output", required=True, help="path for the release JSON")
    snapshot.add_argument(
        "--seed",
        type=int,
        default=None,
        help="seed for sampling from the snapshot only; the private state is never re-noised",
    )

    resume = subparsers.add_parser(
        "resume", help="restore a checkpoint, optionally ingest more data, and release"
    )
    resume.add_argument("--state", required=True, help="checkpoint JSON from 'checkpoint'")
    resume.add_argument("--output", required=True, help="path for the release JSON")
    resume.add_argument("--input", default=None, help="optional extra CSV to ingest first")
    resume.add_argument(
        "--batch-size", type=int, default=DEFAULT_BATCH_SIZE,
        help="items per vectorised ingestion batch",
    )

    serve = subparsers.add_parser(
        "serve", help="serve a directory of releases over JSON/HTTP"
    )
    serve.add_argument(
        "--store", required=True, help="directory of release JSON files to serve"
    )
    serve.add_argument("--port", type=int, default=8080, help="TCP port to listen on")
    serve.add_argument("--host", default="127.0.0.1", help="interface to bind")
    serve.add_argument(
        "--cache-size", type=int, default=4096, help="memoized answers kept (LRU)"
    )
    serve.add_argument(
        "--workers", type=int, default=1,
        help="worker processes sharing the port via SO_REUSEPORT "
        "(default 1: a single in-process threaded server)",
    )
    serve.add_argument(
        "--quiet", action="store_true", help="suppress per-request access logging"
    )

    query = subparsers.add_parser(
        "query", help="answer a JSON workload file against one release"
    )
    query.add_argument("release", help="release JSON from 'summarize'")
    query.add_argument(
        "--workload", required=True,
        help="JSON file: a list of query objects (or {'queries': [...]})",
    )
    query.add_argument(
        "--output", default=None,
        help="path for the answers JSON (default: print to stdout)",
    )

    matrix = subparsers.add_parser(
        "matrix",
        help="run a declarative experiment grid (parallel, resumable)",
    )
    matrix.add_argument(
        "spec", nargs="?", default=None,
        help="MatrixSpec JSON file (omit with --smoke)",
    )
    matrix.add_argument(
        "--out", default="matrix-results",
        help="result directory (results.jsonl, aggregate.json/.csv, spec.json)",
    )
    matrix.add_argument(
        "--workers", type=int, default=1,
        help="worker processes; results are byte-identical for any value",
    )
    matrix.add_argument(
        "--resume", action="store_true",
        help="skip cells already recorded in the result store",
    )
    matrix.add_argument(
        "--smoke", action="store_true",
        help="run the built-in smoke grid and fail on the accuracy-ordering gate",
    )
    matrix.add_argument(
        "--gate", action="store_true",
        help="fail on accuracy-ordering violations (floor <= private, PrivHP "
        "<= Smooth) -- applied per epoch for scenario cells",
    )
    matrix.add_argument(
        "--quiet", action="store_true", help="suppress per-cell progress lines"
    )

    scenario = subparsers.add_parser(
        "scenario",
        help="materialise a time-varying scenario spec into a stream file",
    )
    scenario.add_argument("spec", help="scenario spec JSON (repro.stream.scenarios)")
    scenario.add_argument(
        "--out", required=True,
        help="output path: CSV stream, or tenant-tagged JSONL with --tenants",
    )
    scenario.add_argument(
        "--size", type=int, default=None,
        help="total items (per tenant with --tenants); defaults to the "
        "spec's 'size' field",
    )
    scenario.add_argument(
        "--dimension", type=int, default=1, help="point dimensionality (default 1)"
    )
    scenario.add_argument(
        "--seed", type=int, default=0,
        help="root seed; the same seed materialises byte-identical streams "
        "for any batch size or worker count",
    )
    scenario.add_argument(
        "--tenants", type=int, default=None, metavar="N",
        help="write correlated multi-tenant JSONL append records for N "
        "tenants (tenant-0..tenant-N-1) instead of a single CSV stream; "
        "feed the file to 'repro ingest --append'",
    )
    scenario.add_argument(
        "--quiet", action="store_true", help="suppress the per-epoch schedule table"
    )

    ingest = subparsers.add_parser(
        "ingest",
        help="run the multi-tenant ingestion service over a directory of tenant specs",
    )
    ingest.add_argument(
        "--specs", required=True,
        help="directory of tenant spec JSON files (one per tenant, or batch "
        "files with a 'tenants' list)",
    )
    ingest.add_argument(
        "--append", action="append", default=[], metavar="FILE",
        help="tenant-tagged append file (.jsonl or .csv); repeatable, "
        "ingested in the order given",
    )
    ingest.add_argument(
        "--watch", default=None, metavar="DIR",
        help="spool directory to poll for append files (each renamed to "
        "*.done after ingestion); runs until Ctrl-C unless --once",
    )
    ingest.add_argument(
        "--poll-interval", type=float, default=1.0,
        help="seconds between --watch directory scans",
    )
    ingest.add_argument(
        "--once", action="store_true",
        help="drain the --watch directory in a single pass and exit",
    )
    ingest.add_argument(
        "--workers", type=int, default=4,
        help="worker threads; each exclusively owns a hash-partition of tenants",
    )
    ingest.add_argument(
        "--checkpoint-dir", default=None,
        help="directory for evicted-tenant checkpoints (required with "
        "--memory-budget-words; created if missing)",
    )
    ingest.add_argument(
        "--memory-budget-words", type=int, default=None,
        help="service-wide resident-summarizer budget in words; cold tenants "
        "are evicted to --checkpoint-dir and restored on their next append",
    )
    ingest.add_argument(
        "--rate-limit", type=float, default=None,
        help="per-tenant intake rate limit in items/second (token bucket)",
    )
    ingest.add_argument(
        "--burst", type=float, default=None,
        help="token-bucket burst size in items (default: one second of rate)",
    )
    ingest.add_argument(
        "--batch-size", type=int, default=DEFAULT_BATCH_SIZE,
        help="items per append batch when reading CSV intake files",
    )
    ingest.add_argument(
        "--serve", action="store_true",
        help="serve live snapshots of continual tenants over JSON/HTTP "
        "while ingesting (repro.serve; pure post-processing)",
    )
    ingest.add_argument("--port", type=int, default=8080, help="TCP port for --serve")
    ingest.add_argument("--host", default="127.0.0.1", help="interface for --serve")
    ingest.add_argument(
        "--snapshot", default=None, metavar="TENANT",
        help="after ingesting, write a mid-stream release of this continual "
        "tenant to --output (the tenant keeps ingesting state)",
    )
    ingest.add_argument(
        "--release", default=None, metavar="TENANT",
        help="after ingesting, release this tenant to --output (final; the "
        "tenant stops accepting appends)",
    )
    ingest.add_argument(
        "--output", default=None,
        help="release JSON path for --snapshot/--release",
    )
    ingest.add_argument(
        "--release-dir", default=None, metavar="DIR",
        help="release every (still-unreleased) tenant into DIR as "
        "<tenant>.json before exiting",
    )
    ingest.add_argument(
        "--checkpoint-format",
        choices=("binary", "json"),
        default="binary",
        help="format for evicted-tenant checkpoints (default binary; "
        "restores autodetect either)",
    )
    ingest.add_argument(
        "--flush-interval", type=float, default=0.05, metavar="SECONDS",
        help="staging-buffer flush cadence in seconds; 0 disables the "
        "background flusher so staged appends ship only on size thresholds "
        "and explicit flushes (default 0.05)",
    )
    ingest.add_argument(
        "--staging-items", type=int, default=2048,
        help="ship a partition's staged appends to its worker once this "
        "many items accumulate (default 2048)",
    )
    ingest.add_argument(
        "--staging-bytes", type=int, default=1 << 20,
        help="ship a partition's staged appends once they hold this many "
        "bytes (default 1 MiB)",
    )
    ingest.add_argument(
        "--reply-timeout", type=float, default=DEFAULT_REPLY_TIMEOUT,
        help="seconds to wait for a worker reply (register/snapshot/"
        f"release/stats) before failing (default {DEFAULT_REPLY_TIMEOUT:.0f})",
    )

    convert = subparsers.add_parser(
        "convert",
        help="convert a release or checkpoint file between JSON and binary",
    )
    convert.add_argument("source", help="release or checkpoint file (JSON or binary)")
    convert.add_argument("output", help="path for the converted file")
    convert.add_argument(
        "--to",
        choices=("binary", "json"),
        default=None,
        help="target format (default: inferred from the output suffix -- "
        "'.bin' means binary, anything else JSON)",
    )

    return parser


def _build_summarizer(args: argparse.Namespace, data: np.ndarray, stream_size: int):
    domain = make_domain(args.domain, data=data)
    builder = (
        PrivHPBuilder(domain)
        .epsilon(args.epsilon)
        .pruning_k(args.k)
        .stream_size(stream_size)
        .seed(args.seed)
    )
    if getattr(args, "continual", False):
        builder = builder.continual(horizon=args.horizon)
    elif getattr(args, "horizon", None) is not None:
        raise ValueError("--horizon only applies together with --continual")
    return builder, domain


def _command_summarize(args: argparse.Namespace) -> int:
    if args.shards < 1:
        raise ValueError(f"--shards must be at least 1, got {args.shards}")
    data = _load_csv(args.input)
    builder, domain = _build_summarizer(args, data, len(data))
    data = domain.coerce_stream(data)
    if args.shards > 1:
        shards = builder.build_shards(args.shards)
        for shard, part in zip(shards, np.array_split(data, args.shards)):
            ingest_batches(shard, part, args.batch_size)
        # PrivHP shards merge raw (one noise injection at release); continual
        # shards merge their already-private states.  Both expose merge_all.
        summarizer = type(shards[0]).merge_all(shards)
    else:
        summarizer = builder.build()
        ingest_batches(summarizer, data, args.batch_size)
    release = summarizer.release()
    release.metadata.update({"pruning_k": args.k, "stream_size": int(len(data))})
    release.save(args.output)
    variant = "continual " if args.continual else ""
    print(
        f"wrote {variant}release to {args.output} (epsilon={args.epsilon}, "
        f"shards={args.shards}, memory={release.memory_words} words)"
    )
    return 0


def _command_generate(args: argparse.Namespace) -> int:
    release = Release.load(args.release, sampling_seed=args.seed)
    synthetic = release.sample(args.size)
    _write_csv(args.output, synthetic)
    print(f"wrote {args.size} synthetic records to {args.output}")
    return 0


def _command_evaluate(args: argparse.Namespace) -> int:
    data = _load_csv(args.input)
    builder, domain = _build_summarizer(args, data, len(data))
    data = domain.coerce_stream(data)
    summarizer = builder.build()
    ingest_batches(summarizer, data, args.batch_size)
    release = summarizer.release()
    synthetic = release.sample(len(data))
    error = empirical_wasserstein(np.asarray(data), np.asarray(synthetic), domain=domain)
    print(f"stream size      : {len(data)}")
    print(f"epsilon          : {args.epsilon}")
    print(f"pruning k        : {args.k}")
    print(f"memory (words)   : {release.memory_words}")
    print(f"W1(data, synth)  : {error:.6f}")
    return 0


def _command_checkpoint(args: argparse.Namespace) -> int:
    data = _load_csv(args.input)
    state_path = pathlib.Path(args.state)
    if state_path.exists():
        ignored = [
            flag
            for flag, attribute, _default, _type, _help in _FIT_ARGUMENTS
            if getattr(args, attribute) is not None
        ]
        if args.stream_size is not None:
            ignored.append("--stream-size")
        if args.continual:
            ignored.append("--continual")
        if args.horizon is not None:
            ignored.append("--horizon")
        if ignored:
            raise ValueError(
                f"{', '.join(ignored)} only apply when creating a new state "
                f"file, but {state_path} already exists and carries its own "
                "configuration; drop the flag(s) or start a fresh state"
            )
        summarizer = load_checkpoint(state_path)
        data = summarizer.domain.coerce_stream(data)
    else:
        for _flag, attribute, default, _type, _help in _FIT_ARGUMENTS:
            if getattr(args, attribute) is None:
                setattr(args, attribute, default)
        if args.continual is None:
            args.continual = False
        if args.continual and args.horizon is None and args.stream_size is None:
            # A continual state that will be extended across runs needs its
            # counters sized for the *total* stream; defaulting to the first
            # slice's length would exhaust the horizon on the second run.
            raise ValueError(
                "creating a continual state requires --horizon (or "
                "--stream-size) covering the total stream across all future "
                "checkpoint runs, not just this input"
            )
        stream_size = args.stream_size if args.stream_size is not None else len(data)
        builder, domain = _build_summarizer(args, data, stream_size)
        data = domain.coerce_stream(data)
        summarizer = builder.build()
    ingest_batches(summarizer, data, args.batch_size)
    save_checkpoint(summarizer, state_path, format=args.format)
    print(
        f"checkpointed {summarizer.items_processed} items to {state_path} "
        f"(memory={summarizer.memory_words()} words)"
    )
    return 0


def _command_snapshot(args: argparse.Namespace) -> int:
    summarizer = load_checkpoint(args.state)
    if not hasattr(summarizer, "snapshot"):
        raise ValueError(
            f"{args.state} holds a one-shot checkpoint; only continual states "
            "(created with 'checkpoint --continual') support mid-stream "
            "snapshots -- use 'resume' to finish and release it instead"
        )
    release = summarizer.snapshot(sampling_seed=args.seed)
    release.save(args.output)
    print(
        f"wrote snapshot of {release.items_processed} items to {args.output} "
        f"(epsilon={release.epsilon}, memory={release.memory_words} words); "
        f"{args.state} is unchanged and stays resumable"
    )
    return 0


def _command_resume(args: argparse.Namespace) -> int:
    summarizer = load_checkpoint(args.state)
    if args.input is not None:
        data = summarizer.domain.coerce_stream(_load_csv(args.input))
        ingest_batches(summarizer, data, args.batch_size)
    release = summarizer.release()
    release.save(args.output)
    print(
        f"wrote release to {args.output} ({release.items_processed} items, "
        f"epsilon={release.epsilon}, memory={release.memory_words} words)"
    )
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    from repro.serve.http import create_server, start_worker_pool
    from repro.serve.store import ReleaseStore

    if args.workers < 1:
        raise ValueError(f"--workers must be at least 1, got {args.workers}")
    if args.workers > 1:
        if args.port == 0:
            raise ValueError("--workers needs an explicit --port (port 0 would bind "
                             "a different ephemeral port per worker)")
        names = ReleaseStore(args.store).names()
        processes = start_worker_pool(
            args.store,
            host=args.host,
            port=args.port,
            workers=args.workers,
            cache_size=args.cache_size,
            verbose=not args.quiet,
        )
        print(
            f"serving {len(names)} release(s) from {args.store} on "
            f"http://{args.host}:{args.port} with {args.workers} workers "
            f"(SO_REUSEPORT; GET /releases, /stats, /healthz; POST /query) -- Ctrl-C to stop"
        )
        try:
            for process in processes:
                process.join()
        except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
            pass
        finally:
            for process in processes:
                process.terminate()
            for process in processes:
                process.join()
        return 0

    server = create_server(
        args.store,
        host=args.host,
        port=args.port,
        cache_size=args.cache_size,
        verbose=not args.quiet,
    )
    names = server.service.store.names()
    print(
        f"serving {len(names)} release(s) from {args.store} on "
        f"http://{args.host}:{server.server_port} "
        f"(GET /releases, /stats, /healthz; POST /query) -- Ctrl-C to stop"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    finally:
        server.server_close()
    return 0


def _command_query(args: argparse.Namespace) -> int:
    import json

    from repro.serve.batch import run_workload_file

    document = run_workload_file(args.release, args.workload)
    text = json.dumps(document, indent=2, sort_keys=True)
    if args.output is None:
        print(text)
    else:
        pathlib.Path(args.output).write_text(text + "\n")
        print(f"wrote {document['num_queries']} answers to {args.output}")
    return 0


def _command_matrix(args: argparse.Namespace) -> int:
    from repro.experiments.harness import format_table
    from repro.experiments.runner import (
        check_epoch_ordering,
        check_smoke_ordering,
        load_spec,
        run_matrix,
        smoke_spec,
    )

    if args.smoke and args.spec is not None:
        raise ValueError("--smoke runs the built-in grid; drop the SPEC argument")
    if not args.smoke and args.spec is None:
        raise ValueError("pass a MatrixSpec JSON file or --smoke")
    spec = smoke_spec() if args.smoke else load_spec(args.spec)

    def progress(completed: int, total: int, key: str) -> None:
        if not args.quiet:
            print(f"[{completed}/{total}] {key}")

    outcome = run_matrix(
        spec,
        out_dir=args.out,
        workers=args.workers,
        resume=args.resume,
        progress=progress,
    )
    # The table keeps the scalar columns; per-epoch trajectories live in the
    # aggregate artifacts.
    print(format_table([
        {k: v for k, v in row.items() if not isinstance(v, list)}
        for row in outcome["aggregate"]
    ]))
    print(
        f"grid {spec.name!r}: {outcome['executed']} cell(s) executed, "
        f"{outcome['skipped']} resumed; artifacts in {args.out}/ "
        "(results.jsonl, aggregate.json, aggregate.csv)"
    )
    if args.smoke or args.gate:
        violations = check_smoke_ordering(outcome["aggregate"])
        violations += check_epoch_ordering(outcome["aggregate"])
        if violations:
            for violation in violations:
                print(f"ACCURACY GATE VIOLATION: {violation}", file=sys.stderr)
            return 1
        print("accuracy ordering gate passed (floor <= private, PrivHP <= Smooth)")
    return 0


def _command_scenario(args: argparse.Namespace) -> int:
    import json

    from repro.experiments.harness import format_table
    from repro.stream.scenarios import load_scenario

    scenario = load_scenario(args.spec)
    size = args.size if args.size is not None else scenario.default_size
    if size is None:
        raise ValueError(
            "pass --size (the spec has no top-level 'size' field to default to)"
        )
    if size < 0:
        raise ValueError(f"--size must be non-negative, got {size}")
    if args.dimension < 1:
        raise ValueError(f"--dimension must be at least 1, got {args.dimension}")
    if not args.quiet:
        print(f"scenario {scenario.label!r}: {scenario.num_epochs} epoch(s)")
        print(format_table(scenario.describe(size)))
    if args.tenants is not None:
        if args.tenants < 1:
            raise ValueError(f"--tenants must be at least 1, got {args.tenants}")
        from repro.stream.scenarios import multi_tenant_records

        tenants = [f"tenant-{index}" for index in range(args.tenants)]
        records = 0
        with open(args.out, "w") as handle:
            for record in multi_tenant_records(
                scenario, tenants, size, dimension=args.dimension, rng=args.seed
            ):
                handle.write(json.dumps(record) + "\n")
                records += 1
        print(
            f"wrote {records} append record(s) ({args.tenants} tenant(s) x "
            f"{scenario.num_epochs} epoch(s), {size} items/tenant) to {args.out}"
        )
        return 0
    stream = scenario.sample(size, dimension=args.dimension, rng=args.seed)
    _write_csv(args.out, stream)
    print(f"wrote {len(stream)} items across {scenario.num_epochs} epoch(s) to {args.out}")
    return 0


def _command_ingest(args: argparse.Namespace) -> int:
    import threading

    from repro.ingest import (
        IngestService,
        RateLimiter,
        ingest_file,
        load_tenant_specs,
        watch_directory,
    )
    from repro.serve.store import ReleaseStore

    if args.burst is not None and args.rate_limit is None:
        raise ValueError("--burst only applies together with --rate-limit")
    if args.once and args.watch is None:
        raise ValueError("--once only applies together with --watch")
    if (args.snapshot or args.release) and args.output is None:
        raise ValueError("--snapshot/--release need --output for the release JSON")
    if args.snapshot is not None and args.release is not None:
        raise ValueError("pass --snapshot or --release, not both")
    specs = load_tenant_specs(args.specs)
    if not specs:
        raise ValueError(f"no tenant spec files (*.json) found in {args.specs}")
    limiter = (
        RateLimiter(args.rate_limit, burst=args.burst)
        if args.rate_limit is not None
        else None
    )
    store = ReleaseStore() if args.serve else None
    server = None
    totals = {"files": 0, "batches": 0, "items": 0}

    def report(path, counts) -> None:
        # Totals accumulate per file (not from the intake loops' return
        # values) so an interrupted --watch still reports what it ingested.
        print(f"ingested {counts['items']} item(s) from {path}")
        totals["files"] += 1
        totals["batches"] += counts["batches"]
        totals["items"] += counts["items"]

    with IngestService(
        specs,
        workers=args.workers,
        checkpoint_dir=args.checkpoint_dir,
        memory_budget_words=args.memory_budget_words,
        store=store,
        checkpoint_format=args.checkpoint_format,
        staging_items=args.staging_items,
        staging_bytes=args.staging_bytes,
        flush_interval=args.flush_interval if args.flush_interval > 0 else None,
        reply_timeout=args.reply_timeout,
    ) as service:
        print(
            f"ingestion service: {len(service.tenants())} tenant(s) across "
            f"{args.workers} worker(s)"
        )
        if args.serve:
            from repro.serve.http import create_server

            server = create_server(store, host=args.host, port=args.port)
            threading.Thread(target=server.serve_forever, daemon=True).start()
            print(
                f"serving live snapshots on http://{args.host}:{server.server_port} "
                "(GET /releases, /stats, /healthz; POST /query)"
            )
        try:
            for path in args.append:
                counts = ingest_file(
                    service, path, batch_size=args.batch_size, limiter=limiter
                )
                report(path, counts)
            if args.watch is not None:
                watch_directory(
                    service,
                    args.watch,
                    batch_size=args.batch_size,
                    limiter=limiter,
                    poll_interval=args.poll_interval,
                    once=args.once,
                    on_file=report,
                )
        except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
            print("stopping (keyboard interrupt)")
        service.flush()
        if args.snapshot is not None:
            release = service.snapshot(args.snapshot)
            release.save(args.output)
            print(
                f"wrote snapshot of tenant {args.snapshot!r} "
                f"({release.items_processed} items) to {args.output}"
            )
        if args.release is not None:
            release = service.release(args.release)
            release.save(args.output)
            print(
                f"wrote release of tenant {args.release!r} "
                f"({release.items_processed} items) to {args.output}"
            )
        if args.release_dir is not None:
            out_dir = pathlib.Path(args.release_dir)
            out_dir.mkdir(parents=True, exist_ok=True)
            released = 0
            for tenant_id in service.tenants():
                if tenant_id == args.release:
                    continue  # already released above
                service.release(tenant_id).save(out_dir / f"{tenant_id}.json")
                released += 1
            print(f"released {released} tenant(s) into {out_dir}/")
        stats = service.stats()
        print(
            f"ingested {totals['items']} item(s) in {totals['batches']} "
            f"batch(es) from {totals['files']} file(s); "
            f"evictions={stats['evictions']}, restores={stats['restores']}, "
            f"resident_words={stats['memory_words']}, "
            f"total_epsilon={stats['budget']['total_epsilon']}"
        )
    if server is not None:
        server.shutdown()
        server.server_close()
    return 0


def _command_convert(args: argparse.Namespace) -> int:
    from repro.io.binary import convert_file

    output = pathlib.Path(args.output)
    target = args.to if args.to is not None else ("binary" if output.suffix == ".bin" else "json")
    convert_file(args.source, output, target)
    print(f"converted {args.source} to {target} at {output}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point used by ``python -m repro.cli`` and the tests."""
    parser = build_parser()
    args = parser.parse_args(argv)
    commands = {
        "summarize": _command_summarize,
        "generate": _command_generate,
        "evaluate": _command_evaluate,
        "checkpoint": _command_checkpoint,
        "snapshot": _command_snapshot,
        "resume": _command_resume,
        "serve": _command_serve,
        "query": _command_query,
        "matrix": _command_matrix,
        "scenario": _command_scenario,
        "ingest": _command_ingest,
        "convert": _command_convert,
    }
    handler = commands.get(args.command)
    if handler is None:
        parser.error(f"unknown command {args.command!r}")
        return 2
    try:
        return handler(args)
    except (ValueError, OSError, RuntimeError) as error:
        # Bad user input (unknown domain, flag conflicts, malformed or
        # missing files, a continual horizon exhausted by extra input)
        # surfaces as a clean usage error with exit code 2, not a traceback.
        parser.error(str(error))
        return 2  # pragma: no cover - parser.error raises SystemExit


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
