"""Closed-form evaluators for the paper's theoretical bounds.

These functions compute the right-hand sides of Theorem 3, Lemma 5 and
Corollary 1 (and the Table-1 rows for the baselines) for concrete parameter
settings.  They are used by the benchmarks to print the predicted scaling next
to the measured one, and by tests that verify qualitative properties of the
bounds (monotonicity in memory, the claimed crossovers, etc.).
"""

from repro.theory.bounds import (
    corollary1_bound,
    memory_words_bound,
    pmm_bound,
    privhp_noise_term,
    smooth_bound,
    srrw_bound,
    theorem3_bound,
)
from repro.theory.comparison import table1_rows

__all__ = [
    "corollary1_bound",
    "memory_words_bound",
    "pmm_bound",
    "privhp_noise_term",
    "smooth_bound",
    "srrw_bound",
    "table1_rows",
    "theorem3_bound",
]
