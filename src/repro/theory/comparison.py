"""Table 1, evaluated numerically: accuracy and memory of each method.

The rows mirror the paper's Table 1 (Smooth, SRRW, PMM, PrivHP), reporting for
a concrete ``(d, n, epsilon, k, tail)`` setting both the accuracy bound and
the memory bound of every method.  The Table-1 benchmark prints these
predicted rows next to the measured ones so the reproduction is auditable at
a glance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.theory.bounds import (
    corollary1_bound,
    memory_words_bound,
    pmm_bound,
    smooth_bound,
    srrw_bound,
)

__all__ = ["Table1Row", "table1_rows"]


@dataclass(frozen=True)
class Table1Row:
    """A single method's predicted accuracy and memory."""

    method: str
    accuracy_bound: float
    memory_bound: float

    def as_dict(self) -> dict:
        """Flat representation for tabular printing."""
        return {
            "method": self.method,
            "accuracy_bound": self.accuracy_bound,
            "memory_bound": self.memory_bound,
        }


def table1_rows(
    dimension: int,
    stream_size: int,
    epsilon: float,
    pruning_k: int,
    tail_norm: float,
    smoothness_order: int = 3,
) -> list[Table1Row]:
    """Evaluate every Table-1 row for one parameter setting.

    Memory bounds follow the paper: ``Theta(d n)`` for Smooth and SRRW,
    ``Theta(eps n)`` for PMM and ``O(k log^2 n)`` for PrivHP.
    """
    rows = [
        Table1Row(
            method="Smooth",
            accuracy_bound=smooth_bound(dimension, stream_size, epsilon, smoothness_order),
            memory_bound=float(dimension * stream_size),
        ),
        Table1Row(
            method="SRRW",
            accuracy_bound=srrw_bound(dimension, stream_size, epsilon),
            memory_bound=float(dimension * stream_size),
        ),
        Table1Row(
            method="PMM",
            accuracy_bound=pmm_bound(dimension, stream_size, epsilon),
            memory_bound=float(epsilon * stream_size),
        ),
        Table1Row(
            method="PrivHP",
            accuracy_bound=corollary1_bound(
                dimension, stream_size, epsilon, pruning_k, tail_norm
            ),
            memory_bound=memory_words_bound(stream_size, pruning_k),
        ),
    ]
    return rows
