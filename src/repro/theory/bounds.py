"""Evaluating the paper's accuracy and memory bounds numerically.

All functions return the bound *without* the unspecified leading constants
(i.e. the expression inside the O(.)), which is the right object for checking
scaling shapes: ratios between parameter settings are meaningful even though
absolute values are not.
"""

from __future__ import annotations

import math

from repro.domain.base import Domain

__all__ = [
    "privhp_noise_term",
    "privhp_approx_term",
    "theorem3_bound",
    "corollary1_bound",
    "memory_words_bound",
    "pmm_bound",
    "srrw_bound",
    "smooth_bound",
]


def _gamma(domain: Domain, level: int) -> float:
    """``gamma_level`` with ``gamma_{-1} = diam(Omega)``."""
    if level < 0:
        return domain.diameter()
    return domain.level_max_diameter(level)


def _big_gamma(domain: Domain, level: int) -> float:
    """``Gamma_level`` with ``Gamma_{-1} = Gamma_0``."""
    if level < 0:
        return domain.level_total_diameter(0)
    return domain.level_total_diameter(level)


def privhp_noise_term(
    domain: Domain,
    stream_size: int,
    epsilon: float,
    depth: int,
    level_cutoff: int,
    pruning_k: int,
    sketch_depth: int,
) -> float:
    """The Lemma-5 noise term: ``(sum sqrt(Gamma) + sum sqrt(jk gamma))^2 / (eps n)``."""
    if stream_size < 1 or epsilon <= 0:
        raise ValueError("stream_size must be positive and epsilon > 0")
    total = 0.0
    for level in range(level_cutoff + 1):
        total += math.sqrt(_big_gamma(domain, level - 1))
    for level in range(level_cutoff + 1, depth + 1):
        total += math.sqrt(sketch_depth * pruning_k * _gamma(domain, level - 1))
    return total**2 / (epsilon * stream_size)


def privhp_approx_term(
    domain: Domain,
    stream_size: int,
    tail_norm: float,
    depth: int,
    level_cutoff: int,
    sketch_depth: int,
) -> float:
    """The Theorem-3 approximation term: ``(tail/n + 2^-j) * sum gamma_{l-1}``."""
    if stream_size < 1:
        raise ValueError("stream_size must be positive")
    diameter_sum = sum(_gamma(domain, level - 1) for level in range(level_cutoff + 1, depth + 1))
    return (tail_norm / stream_size + 2.0 ** (-sketch_depth)) * diameter_sum


def theorem3_bound(
    domain: Domain,
    stream_size: int,
    epsilon: float,
    depth: int,
    level_cutoff: int,
    pruning_k: int,
    sketch_depth: int,
    tail_norm: float,
) -> float:
    """Theorem 3 with the Lemma-5 optimal budgets: noise term + approximation term."""
    noise = privhp_noise_term(
        domain, stream_size, epsilon, depth, level_cutoff, pruning_k, sketch_depth
    )
    approx = privhp_approx_term(
        domain, stream_size, tail_norm, depth, level_cutoff, sketch_depth
    )
    return noise + approx


def memory_words_bound(stream_size: int, pruning_k: int) -> float:
    """Corollary 1's memory budget ``M = k * log2(n)^2`` (in words, no constants)."""
    if stream_size < 2:
        return float(pruning_k)
    return pruning_k * math.log2(stream_size) ** 2


def corollary1_bound(
    dimension: int,
    stream_size: int,
    epsilon: float,
    pruning_k: int,
    tail_norm: float,
) -> float:
    """Corollary 1 evaluated numerically.

    ``O(log^2(M)/(eps n) + tail/(M n))`` for d = 1 and
    ``O(M^{1-1/d}/(eps n) + tail/(M^{1/d} n))`` for d >= 2.
    """
    if dimension < 1:
        raise ValueError(f"dimension must be at least 1, got {dimension}")
    memory = max(memory_words_bound(stream_size, pruning_k), 2.0)
    if dimension == 1:
        noise = math.log2(memory) ** 2 / (epsilon * stream_size)
        approx = tail_norm / (memory * stream_size)
    else:
        noise = memory ** (1.0 - 1.0 / dimension) / (epsilon * stream_size)
        approx = tail_norm / (memory ** (1.0 / dimension) * stream_size)
    return noise + approx


def pmm_bound(dimension: int, stream_size: int, epsilon: float) -> float:
    """PMM's Table-1 accuracy: ``log^2(eps n)/(eps n)`` (d=1) or ``(eps n)^{-1/d}``."""
    if dimension < 1:
        raise ValueError(f"dimension must be at least 1, got {dimension}")
    budget = max(epsilon * stream_size, 2.0)
    if dimension == 1:
        return math.log2(budget) ** 2 / budget
    return budget ** (-1.0 / dimension)


def srrw_bound(dimension: int, stream_size: int, epsilon: float) -> float:
    """SRRW's Table-1 accuracy: ``(log^{3/2}(eps n) / (eps n))^{1/d}``."""
    if dimension < 1:
        raise ValueError(f"dimension must be at least 1, got {dimension}")
    budget = max(epsilon * stream_size, 2.0)
    return (math.log2(budget) ** 1.5 / budget) ** (1.0 / dimension)


def smooth_bound(
    dimension: int,
    stream_size: int,
    epsilon: float,
    smoothness_order: int = 3,
) -> float:
    """Smooth's Table-1 accuracy: ``eps^{-1} n^{-K/(2d+K)}``."""
    if dimension < 1:
        raise ValueError(f"dimension must be at least 1, got {dimension}")
    if smoothness_order < 1:
        raise ValueError(f"smoothness_order must be at least 1, got {smoothness_order}")
    exponent = smoothness_order / (2.0 * dimension + smoothness_order)
    return (1.0 / epsilon) * stream_size ** (-exponent)
