"""Core PrivHP implementation: the paper's primary contribution.

* :mod:`repro.core.tree` -- the bit-indexed partition tree.
* :mod:`repro.core.consistency` -- Algorithm 3 (consistency enforcement).
* :mod:`repro.core.partition` -- Algorithm 2 (growing the pruned partition).
* :mod:`repro.core.budget` -- per-level privacy budget allocation (Lemma 5).
* :mod:`repro.core.config` -- parameter container with the paper's defaults.
* :mod:`repro.core.privhp` -- Algorithm 1, the one-pass streaming algorithm.
* :mod:`repro.core.sampler` -- the synthetic data generator (Section 5).
"""

from repro.core.budget import allocate_budgets
from repro.core.config import PrivHPConfig
from repro.core.consistency import enforce_consistency, enforce_subtree_consistency
from repro.core.partition import grow_partition
from repro.core.privhp import PrivHP
from repro.core.sampler import SyntheticDataGenerator
from repro.core.tree import PartitionTree

__all__ = [
    "PartitionTree",
    "PrivHP",
    "PrivHPConfig",
    "SyntheticDataGenerator",
    "allocate_budgets",
    "enforce_consistency",
    "enforce_subtree_consistency",
    "grow_partition",
]
