"""Growing the pruned partition from the level-wise sketches (Algorithm 2).

After the stream has been processed, the exact-counter tree covers levels
``0 .. L*`` and each deeper level ``l`` is summarised by a private sketch.
GrowPartition extends the tree one level at a time: the current hot nodes are
branched into their two children, the children's counts are read from the
level's sketch, consistency is enforced locally, and the ``k`` largest new
counts become the next generation of hot nodes.

Everything here is deterministic given its (already private) inputs, so the
output partition is private by post-processing (Lemma 2).
"""

from __future__ import annotations

from repro.core.consistency import enforce_consistency, enforce_subtree_consistency
from repro.core.tree import PartitionTree
from repro.domain.base import Cell

__all__ = ["grow_partition", "select_top_k"]


def select_top_k(counts: dict[Cell, float], k: int) -> list[Cell]:
    """The ``k`` cells with the largest counts, ties broken by cell index.

    Deterministic tie-breaking keeps the whole pipeline reproducible, which
    matters because the grown structure feeds directly into the sampler.
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    ordered = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
    return [theta for theta, _ in ordered[:k]]


def grow_partition(
    tree: PartitionTree,
    sketches: dict[int, object],
    pruning_k: int,
    level_cutoff: int,
    depth: int,
    apply_consistency: bool = True,
) -> PartitionTree:
    """Grow ``tree`` from level ``level_cutoff`` down to ``depth`` using the sketches.

    Parameters
    ----------
    tree:
        The exact-counter tree produced by the parsing phase; modified in
        place and also returned.
    sketches:
        Mapping ``level -> sketch`` for each level in
        ``level_cutoff+1 .. depth``.  Only ``sketch.query(theta)`` is used.
    pruning_k:
        Number of hot branches retained per level (the paper's ``k``).
    level_cutoff:
        ``L*``, the deepest exact-counter level.
    depth:
        ``L``, the final hierarchy depth.  The paper's pseudocode stops the
        loop at ``L - 1``; we grow through level ``L`` so that every
        initialised sketch informs the partition, which matches the proof
        pipeline (the leaves of ``T_exact`` sit at level ``L``).
    apply_consistency:
        Whether Algorithm 3 runs while growing (disabled only by the
        consistency ablation).
    """
    if pruning_k < 1:
        raise ValueError(f"pruning_k must be at least 1, got {pruning_k}")
    if not 0 <= level_cutoff <= depth:
        raise ValueError(
            f"level_cutoff must lie in [0, depth]; got {level_cutoff} with depth {depth}"
        )
    for level in range(level_cutoff + 1, depth + 1):
        if level not in sketches:
            raise KeyError(f"no sketch provided for level {level}")

    # Line 2: make the exact-counter portion of the tree internally consistent.
    if apply_consistency:
        enforce_subtree_consistency(tree, ())
    elif tree.root_count < 0:
        # Even without consistency the sampler needs a non-negative total mass.
        tree.set_count((), 0.0)

    # Line 3: the initial hot set is every node at the cutoff level.
    hot: list[Cell] = tree.nodes_at_level(level_cutoff)

    for level in range(level_cutoff + 1, depth + 1):
        sketch = sketches[level]
        for theta in hot:
            for child in (theta + (0,), theta + (1,)):
                estimate = float(sketch.query(child))
                if child in tree:
                    tree.set_count(child, estimate)
                else:
                    tree.add_node(child, estimate)
            if apply_consistency:
                enforce_consistency(tree, theta)
        # Line 10: the next hot set is the top-k of the counts just created.
        level_counts = {
            theta + (bit,): tree.count(theta + (bit,))
            for theta in hot
            for bit in (0, 1)
        }
        hot = select_top_k(level_counts, pruning_k)

    return tree
