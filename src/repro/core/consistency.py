"""Consistency enforcement between parent and child counts (Algorithm 3).

After noise injection the tree violates two invariants that the sampler
relies on: counts can be negative, and the children of a node no longer sum
to their parent.  Algorithm 3 repairs both by evenly redistributing the
surplus/deficit ``Lambda`` between the two children, with two correction
steps:

* **Type 1** -- clamp negative child counts to zero before redistribution.
* **Type 2** -- if the even redistribution would itself push a child below
  zero, give the smaller child zero and the larger child the full parent
  count.

Both corrections only ever *reduce* the error in the child counts (Lemma 6's
case analysis), which is why the utility bound may assume the plain even
split.
"""

from __future__ import annotations

from repro.core.tree import PartitionTree
from repro.domain.base import Cell

__all__ = ["enforce_consistency", "enforce_subtree_consistency"]


def enforce_consistency(tree: PartitionTree, theta: Cell) -> None:
    """Make the two children of ``theta`` consistent with their parent.

    Mirrors Algorithm 3 exactly.  Both children must already be stored in the
    tree; the parent's count is treated as authoritative (it was made
    consistent with *its* parent in an earlier call).
    """
    theta = tuple(theta)
    left, right = theta + (0,), theta + (1,)
    if left not in tree or right not in tree:
        raise KeyError(f"both children of {theta} must be present to enforce consistency")

    parent_count = tree.count(theta)

    # Error correction type 1: child counts must be non-negative beforehand.
    for child in (left, right):
        if tree.count(child) < 0:
            tree.set_count(child, 0.0)

    left_count = tree.count(left)
    right_count = tree.count(right)
    surplus = left_count + right_count - parent_count

    if min(left_count - surplus / 2.0, right_count - surplus / 2.0) < 0:
        # Error correction type 2: an even split would go negative, so the
        # smaller child gets zero and the larger child inherits the parent.
        if left_count <= right_count:
            smaller, larger = left, right
        else:
            smaller, larger = right, left
        tree.set_count(smaller, 0.0)
        tree.set_count(larger, parent_count)
    else:
        tree.set_count(left, left_count - surplus / 2.0)
        tree.set_count(right, right_count - surplus / 2.0)


def enforce_subtree_consistency(tree: PartitionTree, root: Cell = ()) -> None:
    """Apply Algorithm 3 to every internal node below ``root`` in depth-first order.

    This is the pre-growth pass of Algorithm 2 (line 2): the exact-counter
    portion of the tree is made consistent from the root downwards so that
    every parent count is already consistent before its children are
    adjusted.  A non-negative root is enforced first because the root has no
    parent to inherit a correction from.
    """
    root = tuple(root)
    if root not in tree:
        raise KeyError(f"root {root} is not in the tree")
    if root == () and tree.count(root) < 0:
        tree.set_count(root, 0.0)

    stack: list[Cell] = [root]
    while stack:
        theta = stack.pop()
        left, right = theta + (0,), theta + (1,)
        left_present = left in tree
        right_present = right in tree
        if left_present and right_present:
            enforce_consistency(tree, theta)
            # Depth-first: children are processed after their own counts have
            # been fixed relative to this node.
            stack.append(right)
            stack.append(left)
        elif left_present or right_present:
            # The tree only ever stores both children or neither (PrivHP adds
            # them in pairs); a half-present pair indicates a construction bug.
            raise ValueError(f"node {theta} has exactly one stored child; the tree is malformed")
