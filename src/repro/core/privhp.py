"""PrivHP: the one-pass bounded-memory private synthetic data generator.

This module implements Algorithm 1 of the paper end to end:

1. **Initialisation** -- build a complete binary partition tree of depth
   ``L*`` whose counters are pre-loaded with ``Laplace(1/sigma_l)`` noise, and
   one private Count-Min sketch per level ``L*+1 .. L`` pre-loaded with
   ``Laplace(j/sigma_l)`` noise per cell.
2. **Parsing** -- each stream item performs a root-to-leaf walk, incrementing
   the exact counter at levels ``<= L*`` and updating the level sketch below.
3. **Growing** -- after the stream, :func:`repro.core.partition.grow_partition`
   (Algorithm 2) extends the tree to depth ``L`` keeping ``k`` hot branches
   per level, and the result is wrapped in a
   :class:`~repro.core.sampler.SyntheticDataGenerator`.

The privacy argument (Theorem 2) is baked into the structure: all noise is
injected during initialisation with per-level budgets summing to ``epsilon``,
and everything that happens after the stream is deterministic post-processing
of those noisy statistics.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.core.budget import allocate_budgets
from repro.core.config import PrivHPConfig
from repro.core.partition import grow_partition
from repro.core.sampler import SyntheticDataGenerator
from repro.core.tree import PartitionTree
from repro.domain.base import Domain
from repro.privacy.accountant import BudgetAccountant
from repro.sketch.private import PrivateCountMinSketch

__all__ = ["PrivHP"]


class PrivHP:
    """The PrivHP streaming synthetic data generator (Algorithm 1)."""

    def __init__(
        self,
        domain: Domain,
        config: PrivHPConfig,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        self.domain = domain
        self.config = config
        seed = config.seed if rng is None else None
        self._rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(
            rng if rng is not None else seed
        )
        self._finalized = False
        self._items_processed = 0

        # Per-level privacy budgets (Theorem 2 / Lemma 5).
        self.level_budgets = allocate_budgets(
            domain=domain,
            epsilon=config.epsilon,
            depth=config.depth,
            level_cutoff=config.level_cutoff,
            pruning_k=config.pruning_k,
            sketch_depth=config.sketch_depth,
            method=config.budget_allocation,
        )
        self.accountant = BudgetAccountant(total_budget=config.epsilon)

        self._tree = self._initialize_tree()
        self._sketches = self._initialize_sketches()
        self.accountant.assert_within_budget()

    # ------------------------------------------------------------------ #
    # initialisation (Algorithm 1, lines 2-8)
    # ------------------------------------------------------------------ #
    def _initialize_tree(self) -> PartitionTree:
        """Complete tree of depth ``L*`` with Laplace noise in every counter."""
        tree = PartitionTree.complete(self.config.level_cutoff, initial_count=0.0)
        for level in range(self.config.level_cutoff + 1):
            sigma = self.level_budgets[level]
            scale = 1.0 / sigma
            for theta in tree.nodes_at_level(level):
                tree.set_count(theta, float(self._rng.laplace(0.0, scale)))
            self.accountant.spend(sigma, label=f"tree level {level}")
        return tree

    def _initialize_sketches(self) -> dict[int, PrivateCountMinSketch]:
        """One private Count-Min sketch per level ``L*+1 .. L``."""
        sketches: dict[int, PrivateCountMinSketch] = {}
        base_seed = self.config.seed if self.config.seed is not None else 0
        for level in range(self.config.level_cutoff + 1, self.config.depth + 1):
            sigma = self.level_budgets[level]
            sketches[level] = PrivateCountMinSketch(
                width=self.config.sketch_width,
                depth=self.config.sketch_depth,
                epsilon=sigma,
                seed=base_seed + level,
                rng=self._rng,
            )
            self.accountant.spend(sigma, label=f"sketch level {level}")
        return sketches

    # ------------------------------------------------------------------ #
    # parsing the stream (Algorithm 1, lines 9-15)
    # ------------------------------------------------------------------ #
    def update(self, point) -> None:
        """Process one stream item in ``O(L * j)`` time and O(1) extra space."""
        if self._finalized:
            raise RuntimeError("PrivHP has been finalized; no further updates are allowed")
        path = self.domain.locate(point, self.config.depth)
        for level in range(self.config.depth + 1):
            theta = path[:level]
            if level <= self.config.level_cutoff:
                self._tree.increment(theta, 1.0)
            else:
                self._sketches[level].update(theta, 1.0)
        self._items_processed += 1

    def process(self, stream: Iterable) -> "PrivHP":
        """Process an entire stream (single pass); returns ``self`` for chaining."""
        for point in stream:
            self.update(point)
        return self

    # ------------------------------------------------------------------ #
    # growing and releasing (Algorithm 1, line 16)
    # ------------------------------------------------------------------ #
    def finalize(self) -> SyntheticDataGenerator:
        """Grow the pruned partition and return the synthetic data generator.

        May be called exactly once; the internal sketches are retained (they
        are part of the released private state) but no further stream updates
        are accepted afterwards.
        """
        if self._finalized:
            raise RuntimeError("PrivHP has already been finalized")
        self._finalized = True
        grow_partition(
            tree=self._tree,
            sketches=self._sketches,
            pruning_k=self.config.pruning_k,
            level_cutoff=self.config.level_cutoff,
            depth=self.config.depth,
            apply_consistency=self.config.apply_consistency,
        )
        return SyntheticDataGenerator(self._tree, self.domain, rng=self._rng)

    def generate(self, stream: Iterable, size: int) -> np.ndarray:
        """Convenience wrapper: process the stream, finalize, and sample ``size`` points."""
        self.process(stream)
        generator = self.finalize()
        return generator.sample(size)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def epsilon(self) -> float:
        """Total privacy budget of the release."""
        return self.config.epsilon

    @property
    def items_processed(self) -> int:
        """Number of stream items consumed so far."""
        return self._items_processed

    @property
    def finalized(self) -> bool:
        """Whether :meth:`finalize` has been called."""
        return self._finalized

    @property
    def tree(self) -> PartitionTree:
        """The internal partition tree (noisy counts; private state)."""
        return self._tree

    @property
    def sketches(self) -> dict[int, PrivateCountMinSketch]:
        """The per-level private sketches (noisy tables; private state)."""
        return dict(self._sketches)

    def memory_words(self) -> int:
        """Words of memory held by the tree and all sketches right now."""
        sketch_words = sum(sketch.memory_words() for sketch in self._sketches.values())
        return self._tree.memory_words() + sketch_words

    def privacy_summary(self) -> str:
        """Human-readable ledger of the per-level budget spends."""
        return self.accountant.summary()

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"PrivHP(epsilon={self.config.epsilon}, k={self.config.pruning_k}, "
            f"L={self.config.depth}, L*={self.config.level_cutoff}, "
            f"items={self._items_processed}, finalized={self._finalized})"
        )
