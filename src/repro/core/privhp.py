"""PrivHP: the one-pass bounded-memory private synthetic data generator.

This module implements Algorithm 1 of the paper end to end:

1. **Initialisation** -- build a complete binary partition tree of depth
   ``L*`` whose counters are pre-loaded with ``Laplace(1/sigma_l)`` noise, and
   one private Count-Min sketch per level ``L*+1 .. L`` pre-loaded with
   ``Laplace(j/sigma_l)`` noise per cell.
2. **Parsing** -- stream items increment the exact counter at levels
   ``<= L*`` and update the level sketch below.  :meth:`PrivHP.update_batch`
   is the batch-native hot path: one vectorised location pass per batch, a
   prefix ``bincount`` per exact level and an aggregated sketch update per
   deep level, producing the same state as item-by-item :meth:`PrivHP.update`.
3. **Growing** -- :meth:`PrivHP.release` runs
   :func:`repro.core.partition.grow_partition` (Algorithm 2) and wraps the
   result in a :class:`repro.api.release.Release`.

The privacy argument (Theorem 2) is baked into the structure: all noise is
injected with per-level budgets summing to ``epsilon`` -- at initialisation in
the default mode, or once at release time in *shard mode*
(``add_noise=False``), where several raw summaries built from disjoint
sub-streams are combined with :meth:`PrivHP.merge` before the single noise
injection.  Everything after noise injection is deterministic post-processing
of the noisy statistics.

Randomness contract: the noise generator is ``rng`` when given (a Generator is
used as-is; an int must agree with ``config.seed`` when both are set, so the
two can never silently disagree) and ``config.seed`` otherwise.  Sketch hash
seeds are always derived from ``config.seed`` (falling back to an explicit int
``rng``, then 0) through one :class:`numpy.random.SeedSequence` per level, so
shards built from the same config always agree on their hash families.
"""

from __future__ import annotations

import itertools
from collections import Counter
from collections.abc import Iterable
from dataclasses import asdict

import numpy as np

from repro.core.budget import allocate_budgets
from repro.core.config import PrivHPConfig
from repro.core.partition import grow_partition
from repro.core.sampler import SyntheticDataGenerator
from repro.core.tree import PartitionTree, cell_at as _cell_of
from repro.domain.base import Domain
from repro.privacy.accountant import BudgetAccountant
from repro.sketch.private import PrivateCountMinSketch

__all__ = ["PrivHP"]

#: Version tag of the checkpoint payload produced by :meth:`PrivHP.checkpoint`.
CHECKPOINT_STATE_VERSION = 1


def _jsonify_rng_state(value):
    """Make a bit-generator state dict JSON-safe (MT19937/Philox/SFC64 carry
    ndarrays); numpy's state setters accept the listified form unchanged."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {key: _jsonify_rng_state(entry) for key, entry in value.items()}
    if isinstance(value, np.integer):
        return int(value)
    return value


class PrivHP:
    """The PrivHP streaming synthetic data generator (Algorithm 1)."""

    def __init__(
        self,
        domain: Domain,
        config: PrivHPConfig,
        rng: np.random.Generator | int | None = None,
        add_noise: bool = True,
    ) -> None:
        self.domain = domain
        self.config = config
        if rng is None:
            self._rng = np.random.default_rng(config.seed)
            hash_base = config.seed
        elif isinstance(rng, np.random.Generator):
            self._rng = rng
            hash_base = config.seed
        else:
            rng = int(rng)
            if config.seed is not None and rng != config.seed:
                raise ValueError(
                    f"explicit rng seed {rng} disagrees with config.seed {config.seed}; "
                    "pass one of them (or a Generator) -- see the module docstring "
                    "for the randomness contract"
                )
            self._rng = np.random.default_rng(rng)
            hash_base = config.seed if config.seed is not None else rng
        self._hash_base = int(hash_base) if hash_base is not None else 0
        self._finalized = False
        self._items_processed = 0
        self._noise_applied = False

        # Per-level privacy budgets (Theorem 2 / Lemma 5).
        self.level_budgets = allocate_budgets(
            domain=domain,
            epsilon=config.epsilon,
            depth=config.depth,
            level_cutoff=config.level_cutoff,
            pruning_k=config.pruning_k,
            sketch_depth=config.sketch_depth,
            method=config.budget_allocation,
        )
        self.accountant = BudgetAccountant(total_budget=config.epsilon)

        self._tree = self._initialize_tree(add_noise)
        self._sketches = self._initialize_sketches(add_noise)
        self._noise_applied = bool(add_noise)
        self.accountant.assert_within_budget()

    # ------------------------------------------------------------------ #
    # initialisation (Algorithm 1, lines 2-8)
    # ------------------------------------------------------------------ #
    def _sketch_hash_seed(self, level: int) -> int:
        """Per-level hash seed, derived from one root seed via SeedSequence."""
        sequence = np.random.SeedSequence(entropy=self._hash_base, spawn_key=(level,))
        return int(sequence.generate_state(1)[0])

    def _initialize_tree(self, add_noise: bool) -> PartitionTree:
        """Complete tree of depth ``L*``, noisy unless in shard mode."""
        tree = PartitionTree.complete(self.config.level_cutoff, initial_count=0.0)
        if add_noise:
            for level in range(self.config.level_cutoff + 1):
                sigma = self.level_budgets[level]
                scale = 1.0 / sigma
                # One vectorised draw per level consumes the generator in
                # exactly the per-cell sorted order of the historical scalar
                # loop (itertools.product yields cells in sorted order), so
                # the preload stays byte-identical while skipping the
                # per-node Generator call overhead.
                noise = self._rng.laplace(0.0, scale, size=1 << level)
                # Write straight into the count dict: complete() just created
                # every key, so set_count's per-node existence check (and its
                # per-call overhead) buys nothing here.
                counts = tree._counts
                for theta, value in zip(
                    itertools.product((0, 1), repeat=level), noise.tolist()
                ):
                    counts[theta] = value
                self.accountant.spend(sigma, label=f"tree level {level}")
        return tree

    def _initialize_sketches(self, add_noise: bool) -> dict[int, PrivateCountMinSketch]:
        """One private Count-Min sketch per level ``L*+1 .. L``."""
        sketches: dict[int, PrivateCountMinSketch] = {}
        for level in range(self.config.level_cutoff + 1, self.config.depth + 1):
            sigma = self.level_budgets[level]
            sketches[level] = PrivateCountMinSketch(
                width=self.config.sketch_width,
                depth=self.config.sketch_depth,
                epsilon=sigma,
                seed=self._sketch_hash_seed(level),
                rng=self._rng,
                apply_noise=add_noise,
            )
            if add_noise:
                self.accountant.spend(sigma, label=f"sketch level {level}")
        return sketches

    def _apply_deferred_noise(self) -> None:
        """Shard mode: inject the one noise copy, consuming the generator in
        exactly the same order as a noisy initialisation would have."""
        for level in range(self.config.level_cutoff + 1):
            sigma = self.level_budgets[level]
            scale = 1.0 / sigma
            for theta in self._tree.nodes_at_level(level):
                self._tree.increment(theta, float(self._rng.laplace(0.0, scale)))
            self.accountant.spend(sigma, label=f"tree level {level}")
        for level in range(self.config.level_cutoff + 1, self.config.depth + 1):
            self._sketches[level].apply_noise_now(self._rng)
            self.accountant.spend(self.level_budgets[level], label=f"sketch level {level}")
        self._noise_applied = True

    # ------------------------------------------------------------------ #
    # parsing the stream (Algorithm 1, lines 9-15)
    # ------------------------------------------------------------------ #
    def update(self, point) -> None:
        """Process one stream item in ``O(L * j)`` time and O(1) extra space."""
        if self._finalized:
            raise RuntimeError("PrivHP has been finalized; no further updates are allowed")
        path = self.domain.locate(point, self.config.depth)
        for level in range(self.config.depth + 1):
            theta = path[:level]
            if level <= self.config.level_cutoff:
                self._tree.increment(theta, 1.0)
            else:
                self._sketches[level].update(theta, 1.0)
        self._items_processed += 1

    def update_batch(self, points) -> "PrivHP":
        """Vectorised ingestion of a whole batch; returns ``self`` for chaining.

        One :meth:`~repro.domain.base.Domain.locate_batch` pass locates every
        point, the exact levels are aggregated with a prefix ``bincount`` and
        applied through :meth:`~repro.core.tree.PartitionTree.increment_many`,
        and each sketch level receives one aggregated
        :meth:`~repro.sketch.countmin.CountMinSketch.update_batch` over the
        batch's distinct cells.  The resulting tree and sketch state is
        identical to calling :meth:`update` once per item (up to float
        summation order).
        """
        if self._finalized:
            raise RuntimeError("PrivHP has been finalized; no further updates are allowed")
        depth = self.config.depth
        if depth > 62:  # cell codes no longer fit an int64; take the scalar path
            for point in points:
                self.update(point)
            return self
        bits = self.domain.locate_batch(points, depth)
        batch_size = int(bits.shape[0])
        if batch_size == 0:
            return self
        full_codes = Domain.pack_paths(bits)

        cutoff = self.config.level_cutoff
        for level in range(cutoff + 1):
            codes = full_codes >> (depth - level)
            if (1 << level) <= max(4 * batch_size, 1024):
                counts = np.bincount(codes, minlength=1 << level)
                occupied = np.flatnonzero(counts)
                weights = counts[occupied]
            else:
                occupied, weights = np.unique(codes, return_counts=True)
            self._tree.increment_many(
                [_cell_of(level, int(code)) for code in occupied],
                weights.astype(float),
            )

        for level in range(cutoff + 1, depth + 1):
            codes = full_codes >> (depth - level)
            occupied, weights = np.unique(codes, return_counts=True)
            sketch = self._sketches[level]
            if level <= 59:
                # (1 << level) | code is exactly canonical_key of the bit
                # tuple, so the aggregated batch hits the same buckets as
                # per-item tuple updates.
                keys = occupied.astype(np.uint64) | (np.uint64(1) << np.uint64(level))
                sketch.update_batch(keys, weights.astype(float))
            else:
                sketch.update_many(
                    [_cell_of(level, int(code)) for code in occupied],
                    weights.astype(float),
                )

        self._items_processed += batch_size
        return self

    def update_segments(self, points, lengths) -> "PrivHP":
        """Apply several consecutive batches in one pass over their concatenation.

        ``points`` is the concatenation of the segments (already coerced like
        any :meth:`update_batch` input) and ``lengths`` gives each segment's
        item count in order.  The state after this call is byte-identical to
        calling :meth:`update_batch` once per segment in order: the segment
        boundaries are preserved, so every counter receives the same floats in
        the same summation order, while the location and path-packing passes
        -- the per-batch fixed costs -- are paid once for the whole
        concatenation.  This is the fan-in primitive of the batched ingestion
        service: a worker drains many queued appends for one tenant and lands
        them with a single call.

        Empty segments are permitted and contribute nothing (matching the
        empty-batch early return of :meth:`update_batch`).
        """
        if self._finalized:
            raise RuntimeError("PrivHP has been finalized; no further updates are allowed")
        lengths = [int(length) for length in lengths]
        if any(length < 0 for length in lengths):
            raise ValueError("segment lengths must be non-negative")
        total = sum(lengths)
        if total != len(points):
            raise ValueError(
                f"segment lengths sum to {total} but the concatenated batch has "
                f"{len(points)} items"
            )
        depth = self.config.depth
        if depth > 62:  # mirror update_batch's scalar fallback per segment
            offset = 0
            for length in lengths:
                self.update_batch(points[offset : offset + length])
                offset += length
            return self
        if total == 0:
            return self
        bits = self.domain.locate_batch(points, depth)
        full_codes = Domain.pack_paths(bits)

        # Segment-major application.  Either ingest helper lands exactly one
        # aggregated add per (level, cell) per segment with an identical
        # float weight, so the counters see the same additions in the same
        # segment order as sequential update_batch calls -- the two helpers
        # (and the bincount-vs-unique pivot inside the numpy one) are pure
        # speed dispatch with no observable effect on the state bytes.
        start = 0
        for length in lengths:
            if length:
                segment_codes = full_codes[start : start + length]
                if length <= 512:
                    self._ingest_codes_small(segment_codes)
                else:
                    self._ingest_codes_numpy(segment_codes, length)
            start += length

        self._items_processed += total
        return self

    def _ingest_codes_small(self, segment_codes) -> None:
        """Aggregate one small segment in pure Python (no per-level numpy).

        Counts the distinct full-depth codes once, rolls the *integer*
        counts up level by level (integer sums are exact, so nothing here
        touches float ordering), then applies one fused tree update and one
        aggregated sketch update per deep level.  Cells are visited in
        ascending code order per level -- the same order the numpy path's
        ``bincount``/``unique`` produce -- so even hash-colliding sketch
        buckets accumulate in an identical sequence.
        """
        depth = self.config.depth
        cutoff = self.config.level_cutoff
        per_level: list[dict[int, int]] = [Counter(segment_codes.tolist())] * (depth + 1)
        for level in range(depth - 1, -1, -1):
            parents: dict[int, int] = {}
            get = parents.get
            for code, count in per_level[level + 1].items():
                parent = code >> 1
                parents[parent] = get(parent, 0) + count
            per_level[level] = parents
        # Every exact-level cell exists in the complete tree (initialisation
        # builds all of them and nothing ever removes one pre-release), so
        # the adds can skip increment_many's per-cell existence check.  Cell
        # visit order within a level is irrelevant to the bytes: each
        # distinct cell receives exactly one add per segment.
        tree_counts = self._tree._counts
        for level in range(cutoff + 1):
            for code, count in per_level[level].items():
                tree_counts[_cell_of(level, code)] += float(count)
        for level in range(cutoff + 1, depth + 1):
            level_counts = per_level[level]
            occupied = sorted(level_counts)
            level_weights = np.array([float(level_counts[code]) for code in occupied])
            sketch = self._sketches[level]
            if level <= 59:
                keys = np.array(occupied, dtype=np.uint64) | (np.uint64(1) << np.uint64(level))
                sketch.update_batch(keys, level_weights)
            else:
                sketch.update_many(
                    [_cell_of(level, code) for code in occupied], level_weights
                )

    def _ingest_codes_numpy(self, segment_codes, batch_size: int) -> None:
        """One segment through exactly the per-level path of update_batch."""
        depth = self.config.depth
        cutoff = self.config.level_cutoff
        for level in range(cutoff + 1):
            codes = segment_codes >> (depth - level)
            if (1 << level) <= max(4 * batch_size, 1024):
                counts = np.bincount(codes, minlength=1 << level)
                occupied = np.flatnonzero(counts)
                weights = counts[occupied]
            else:
                occupied, weights = np.unique(codes, return_counts=True)
            self._tree.increment_many(
                [_cell_of(level, int(code)) for code in occupied],
                weights.astype(float),
            )
        for level in range(cutoff + 1, depth + 1):
            codes = segment_codes >> (depth - level)
            occupied, weights = np.unique(codes, return_counts=True)
            sketch = self._sketches[level]
            if level <= 59:
                keys = occupied.astype(np.uint64) | (np.uint64(1) << np.uint64(level))
                sketch.update_batch(keys, weights.astype(float))
            else:
                sketch.update_many(
                    [_cell_of(level, int(code)) for code in occupied],
                    weights.astype(float),
                )

    def process(self, stream: Iterable) -> "PrivHP":
        """Process an entire stream item by item (single pass).

        .. deprecated::
            Kept as a thin shim over :meth:`update`; new code should feed
            batches through :meth:`update_batch` (see :mod:`repro.api`).
        """
        for point in stream:
            self.update(point)
        return self

    # ------------------------------------------------------------------ #
    # sharding: linear merge of raw summaries
    # ------------------------------------------------------------------ #
    def merge(self, other: "PrivHP") -> "PrivHP":
        """Combine two shard-mode summaries into one (linear merge).

        Both operands must be raw (built with ``add_noise=False``, e.g. via
        :meth:`repro.api.builder.PrivHPBuilder.build_shards`) and share the
        same configuration and domain.  The merged summarizer carries the sum
        of the shards' counters and a fresh noise generator seeded from
        ``config.seed``, so releasing it spends the budget exactly once and
        -- when a seed is set -- draws the same noise a single-stream run
        would have drawn.
        """
        from repro.io.serialization import domain_to_dict

        if not isinstance(other, PrivHP):
            raise TypeError("can only merge with another PrivHP")
        if self._finalized or other._finalized:
            raise RuntimeError("cannot merge a summarizer that has already been released")
        if self._noise_applied or other._noise_applied:
            raise ValueError(
                "merge requires shard-mode (raw) summarizers; build them with "
                "add_noise=False or PrivHPBuilder.build_shards() so noise is "
                "injected exactly once at release time"
            )
        if self.config != other.config:
            raise ValueError("cannot merge summarizers with different configurations")
        if domain_to_dict(self.domain) != domain_to_dict(other.domain):
            raise ValueError("cannot merge summarizers over different domains")
        if self._hash_base != other._hash_base:
            raise ValueError("cannot merge summarizers with different hash seed bases")

        # Built via __new__ rather than __init__ so the throwaway tree and
        # sketch tables of a fresh raw summarizer are never allocated; the
        # fresh default_rng(config.seed) matches what a noisy single-stream
        # initialisation would have drawn from.
        cls = type(self)
        merged = cls.__new__(cls)
        merged.domain = self.domain
        merged.config = self.config
        merged._rng = np.random.default_rng(self.config.seed)
        merged._hash_base = self._hash_base
        merged._finalized = False
        merged._noise_applied = False
        merged.level_budgets = self.level_budgets
        merged.accountant = BudgetAccountant(total_budget=self.config.epsilon)
        merged._tree = self._tree.merge(other._tree)
        merged._sketches = {
            level: self._sketches[level].merge(other._sketches[level])
            for level in self._sketches
        }
        merged._items_processed = self._items_processed + other._items_processed
        return merged

    @classmethod
    def merge_all(cls, shards: Iterable["PrivHP"]) -> "PrivHP":
        """Left fold of :meth:`merge` over an iterable of shard summaries."""
        shards = list(shards)
        if not shards:
            raise ValueError("merge_all requires at least one shard")
        merged = shards[0]
        for shard in shards[1:]:
            merged = merged.merge(shard)
        return merged

    # ------------------------------------------------------------------ #
    # checkpoint / restore (durable mid-stream state)
    # ------------------------------------------------------------------ #
    def checkpoint(self, *, arrays: bool = False) -> dict:
        """A JSON-serialisable snapshot of the full mid-stream state.

        Captures tree, sketch tables, the privacy ledger, and the exact
        generator state, so ``restore(checkpoint())`` continues the stream --
        and eventually releases -- byte-for-byte identically to the original
        instance.  Use :func:`repro.io.serialization.save_checkpoint` for the
        versioned on-disk envelope.

        ``arrays=True`` keeps the sketch tables as float64 ndarray copies
        instead of nested lists -- not JSON-serialisable, but exactly what
        the binary envelope writer stores without a list round trip.
        ``restore`` accepts either form.
        """
        from repro.io.serialization import domain_to_dict, tree_to_dict

        if self._finalized:
            raise RuntimeError(
                "cannot checkpoint a released summarizer; persist the Release instead"
            )
        return {
            "state_version": CHECKPOINT_STATE_VERSION,
            "config": asdict(self.config),
            "domain": domain_to_dict(self.domain),
            "tree": tree_to_dict(self._tree),
            "sketches": [
                {
                    "level": level,
                    "seed": sketch.seed,
                    "epsilon": sketch.epsilon,
                    "table": sketch.table.copy() if arrays else sketch.table.tolist(),
                    "total": sketch.total,
                    "updates": sketch.updates,
                    "noise_applied": sketch.noise_applied,
                }
                for level, sketch in sorted(self._sketches.items())
            ],
            "accountant": {
                "total_budget": self.accountant.total_budget,
                "spends": [[entry.epsilon, entry.label] for entry in self.accountant.ledger],
            },
            "rng": {
                "bit_generator": type(self._rng.bit_generator).__name__,
                "state": _jsonify_rng_state(self._rng.bit_generator.state),
            },
            "noise_applied": self._noise_applied,
            "items_processed": self._items_processed,
            "hash_base": self._hash_base,
        }

    @classmethod
    def restore(cls, state: dict) -> "PrivHP":
        """Reconstruct a summarizer from a :meth:`checkpoint` snapshot."""
        from repro.io.serialization import domain_from_dict, tree_from_dict

        version = int(state.get("state_version", 0))
        if version > CHECKPOINT_STATE_VERSION:
            raise ValueError(
                f"checkpoint state version {version} is newer than supported "
                f"version {CHECKPOINT_STATE_VERSION}"
            )
        config = PrivHPConfig(**state["config"])
        domain = domain_from_dict(state["domain"])

        algorithm = cls.__new__(cls)
        algorithm.domain = domain
        algorithm.config = config
        algorithm._hash_base = int(state["hash_base"])
        algorithm._finalized = False
        algorithm._items_processed = int(state["items_processed"])
        algorithm._noise_applied = bool(state["noise_applied"])
        algorithm.level_budgets = allocate_budgets(
            domain=domain,
            epsilon=config.epsilon,
            depth=config.depth,
            level_cutoff=config.level_cutoff,
            pruning_k=config.pruning_k,
            sketch_depth=config.sketch_depth,
            method=config.budget_allocation,
        )
        accountant_state = state["accountant"]
        algorithm.accountant = BudgetAccountant(total_budget=accountant_state["total_budget"])
        for epsilon, label in accountant_state["spends"]:
            algorithm.accountant.spend(epsilon, label=label)

        rng_state = state["rng"]
        bit_generator = getattr(np.random, rng_state["bit_generator"])()
        bit_generator.state = rng_state["state"]
        algorithm._rng = np.random.Generator(bit_generator)

        algorithm._tree = tree_from_dict(state["tree"])
        algorithm._sketches = {}
        for entry in state["sketches"]:
            sketch = PrivateCountMinSketch(
                width=config.sketch_width,
                depth=config.sketch_depth,
                epsilon=float(entry["epsilon"]),
                seed=entry["seed"],
                rng=algorithm._rng,
                apply_noise=False,
            )
            sketch.load_state(
                np.asarray(entry["table"], dtype=float),
                total=entry["total"],
                updates=entry["updates"],
                noise_applied=entry["noise_applied"],
            )
            algorithm._sketches[int(entry["level"])] = sketch
        return algorithm

    # ------------------------------------------------------------------ #
    # growing and releasing (Algorithm 1, line 16)
    # ------------------------------------------------------------------ #
    def release(self):
        """Grow the pruned partition and return a :class:`repro.api.release.Release`.

        In shard mode this first injects the single oblivious noise copy
        (spending the privacy budget); the growing step itself is
        deterministic post-processing.  May be called exactly once.
        """
        from repro.api.release import Release

        if self._finalized:
            raise RuntimeError("PrivHP has already been finalized")
        if not self._noise_applied:
            self._apply_deferred_noise()
        self.accountant.assert_within_budget()
        self._finalized = True
        grow_partition(
            tree=self._tree,
            sketches=self._sketches,
            pruning_k=self.config.pruning_k,
            level_cutoff=self.config.level_cutoff,
            depth=self.config.depth,
            apply_consistency=self.config.apply_consistency,
        )
        generator = SyntheticDataGenerator(self._tree, self.domain, rng=self._rng)
        return Release(
            generator=generator,
            epsilon=self.config.epsilon,
            items_processed=self._items_processed,
            memory_words=self.memory_words(),
            metadata={
                "config": asdict(self.config),
                "privacy_ledger": [
                    [entry.epsilon, entry.label] for entry in self.accountant.ledger
                ],
            },
        )

    def finalize(self) -> SyntheticDataGenerator:
        """Grow the pruned partition and return the synthetic data generator.

        .. deprecated::
            Thin shim over :meth:`release` for the original single-shot API;
            new code should call ``release()`` and keep the returned
            :class:`~repro.api.release.Release` (it carries the privacy and
            memory metadata and serialises through :mod:`repro.io`).
        """
        return self.release().generator

    def generate(self, stream: Iterable, size: int) -> np.ndarray:
        """Convenience wrapper: process the stream, release, and sample ``size`` points."""
        self.process(stream)
        return self.release().sample(size)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def epsilon(self) -> float:
        """Total privacy budget of the release."""
        return self.config.epsilon

    @property
    def items_processed(self) -> int:
        """Number of stream items consumed so far."""
        return self._items_processed

    @property
    def finalized(self) -> bool:
        """Whether :meth:`release` (or the :meth:`finalize` shim) has been called."""
        return self._finalized

    @property
    def noise_applied(self) -> bool:
        """Whether the oblivious noise has been injected (False for raw shards)."""
        return self._noise_applied

    @property
    def tree(self) -> PartitionTree:
        """The internal partition tree (noisy counts; private state)."""
        return self._tree

    @property
    def sketches(self) -> dict[int, PrivateCountMinSketch]:
        """The per-level private sketches (noisy tables; private state)."""
        return dict(self._sketches)

    def memory_words(self) -> int:
        """Words of memory held by the tree and all sketches right now."""
        sketch_words = sum(sketch.memory_words() for sketch in self._sketches.values())
        return self._tree.memory_words() + sketch_words

    def privacy_summary(self) -> str:
        """Human-readable ledger of the per-level budget spends."""
        return self.accountant.summary()

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"PrivHP(epsilon={self.config.epsilon}, k={self.config.pruning_k}, "
            f"L={self.config.depth}, L*={self.config.level_cutoff}, "
            f"items={self._items_processed}, finalized={self._finalized})"
        )
