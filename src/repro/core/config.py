"""Parameter container for PrivHP with the paper's default settings.

Corollary 1 fixes the free parameters as functions of the stream length ``n``,
the privacy budget ``epsilon`` and the pruning parameter ``k``:

* hierarchy depth ``L = ceil(log2(epsilon * n))``,
* sketch depth ``j = ceil(log2(n))``,
* sketch width ``w = 2k`` buckets,
* exact-counter cut-off ``L* = O(log M)`` with ``M = k * log2(n)^2``.

:class:`PrivHPConfig` stores a fully resolved parameter set and
:meth:`PrivHPConfig.from_stream_size` derives one from ``(n, epsilon, k)``
using exactly those formulas, clamping so that ``log k <= L* <= L`` (the
requirement of Lemma 10) always holds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

__all__ = ["PrivHPConfig"]


@dataclass(frozen=True)
class PrivHPConfig:
    """A fully resolved PrivHP parameter set.

    Attributes
    ----------
    epsilon:
        Total differential-privacy budget ``sum_l sigma_l``.
    pruning_k:
        Number of hot branches kept per level below ``level_cutoff``.
    depth:
        Total hierarchy depth ``L``.
    level_cutoff:
        ``L*``, the deepest level stored with exact (noisy) counters.
    sketch_width:
        Buckets per sketch row (the paper uses ``2k``).
    sketch_depth:
        Sketch rows ``j``.
    budget_allocation:
        ``"optimal"`` (Lemma 5) or ``"uniform"`` split of epsilon across levels.
    apply_consistency:
        Whether Algorithm 3 is applied while growing the partition.  Disabled
        only by the consistency ablation benchmark.
    seed:
        Seed for all randomness (noise and hash functions).
    """

    epsilon: float
    pruning_k: int
    depth: int
    level_cutoff: int
    sketch_width: int
    sketch_depth: int
    budget_allocation: str = "optimal"
    apply_consistency: bool = True
    seed: int | None = None
    metadata: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {self.epsilon}")
        if self.pruning_k < 1:
            raise ValueError(f"pruning parameter k must be at least 1, got {self.pruning_k}")
        if self.depth < 1:
            raise ValueError(f"hierarchy depth must be at least 1, got {self.depth}")
        if not 0 <= self.level_cutoff <= self.depth:
            raise ValueError(
                f"level cutoff L* must lie in [0, depth]; got {self.level_cutoff} with depth {self.depth}"
            )
        if self.sketch_width < 1:
            raise ValueError(f"sketch width must be at least 1, got {self.sketch_width}")
        if self.sketch_depth < 1:
            raise ValueError(f"sketch depth must be at least 1, got {self.sketch_depth}")
        if self.budget_allocation not in ("optimal", "uniform"):
            raise ValueError(
                f"budget_allocation must be 'optimal' or 'uniform', got {self.budget_allocation!r}"
            )

    # ------------------------------------------------------------------ #
    # derived quantities
    # ------------------------------------------------------------------ #
    @property
    def num_sketch_levels(self) -> int:
        """Number of private sketches (levels ``L*+1 .. L``)."""
        return self.depth - self.level_cutoff

    @property
    def exact_tree_nodes(self) -> int:
        """Nodes in the complete exact-counter tree of depth ``L*``."""
        return 2 ** (self.level_cutoff + 1) - 1

    def memory_budget_words(self) -> int:
        """A-priori word budget: exact tree plus all sketch tables."""
        tree_words = 2 * self.exact_tree_nodes
        sketch_words = self.num_sketch_levels * self.sketch_width * self.sketch_depth
        return tree_words + sketch_words

    def with_overrides(self, **changes) -> "PrivHPConfig":
        """A copy of the config with selected fields replaced."""
        return replace(self, **changes)

    # ------------------------------------------------------------------ #
    # the paper's defaults
    # ------------------------------------------------------------------ #
    @classmethod
    def from_stream_size(
        cls,
        stream_size: int,
        epsilon: float,
        pruning_k: int,
        budget_allocation: str = "optimal",
        apply_consistency: bool = True,
        seed: int | None = None,
        depth: int | None = None,
        level_cutoff: int | None = None,
        sketch_depth: int | None = None,
        sketch_width: int | None = None,
    ) -> "PrivHPConfig":
        """Resolve the Corollary-1 defaults for a stream of ``stream_size`` items.

        Every derived parameter can be overridden explicitly, which is what
        the ablation benchmarks use to sweep one knob while keeping the rest
        at the paper's values.
        """
        if stream_size < 1:
            raise ValueError(f"stream_size must be positive, got {stream_size}")
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        if pruning_k < 1:
            raise ValueError(f"pruning parameter k must be at least 1, got {pruning_k}")

        log_n = max(1, math.ceil(math.log2(max(stream_size, 2))))
        if depth is None:
            depth = max(1, math.ceil(math.log2(max(epsilon * stream_size, 2.0))))
        if sketch_depth is None:
            sketch_depth = log_n
        if sketch_width is None:
            sketch_width = 2 * pruning_k

        if level_cutoff is None:
            memory_target = max(2, pruning_k * log_n**2)
            # floor keeps the exact tree within the M = k log^2 n word budget
            # (ceil could overshoot it by up to a factor of two).
            level_cutoff = math.floor(math.log2(memory_target))
            # Lemma 10 needs L* >= log2 k; the cutoff can never exceed the depth.
            level_cutoff = max(level_cutoff, math.ceil(math.log2(max(pruning_k, 1))))
            level_cutoff = min(level_cutoff, depth)

        return cls(
            epsilon=float(epsilon),
            pruning_k=int(pruning_k),
            depth=int(depth),
            level_cutoff=int(level_cutoff),
            sketch_width=int(sketch_width),
            sketch_depth=int(sketch_depth),
            budget_allocation=budget_allocation,
            apply_consistency=apply_consistency,
            seed=seed,
            metadata={"stream_size_hint": int(stream_size)},
        )
