"""Per-level privacy budget allocation.

Theorem 2 proves epsilon-DP for *any* split ``epsilon = sum_{l=0}^{L} sigma_l``.
Lemma 5 derives the split that minimises the noise term of the utility bound
via Lagrange multipliers:

* ``sigma_l proportional to sqrt(Gamma_{l-1})`` for the exact levels
  ``l <= L*`` (``Gamma_{-1}`` is read as ``Gamma_0 = diam(Omega)``), and
* ``sigma_l proportional to sqrt(j * k * gamma_{l-1})`` for the sketch levels.

A uniform split is provided as the ablation baseline.
"""

from __future__ import annotations

import math

from repro.domain.base import Domain

__all__ = ["allocate_budgets", "optimal_budgets", "uniform_budgets"]


def _gamma(domain: Domain, level: int) -> float:
    """``gamma_{level}`` with the convention ``gamma_{-1} = diam(Omega)``."""
    if level < 0:
        return domain.diameter()
    return domain.level_max_diameter(level)


def _big_gamma(domain: Domain, level: int) -> float:
    """``Gamma_{level}`` with the convention ``Gamma_{-1} = Gamma_0``."""
    if level < 0:
        return domain.level_total_diameter(0)
    return domain.level_total_diameter(level)


def uniform_budgets(epsilon: float, depth: int) -> list[float]:
    """Split epsilon evenly across levels ``0 .. depth``."""
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    if depth < 0:
        raise ValueError(f"depth must be non-negative, got {depth}")
    per_level = epsilon / (depth + 1)
    return [per_level] * (depth + 1)


def optimal_budgets(
    domain: Domain,
    epsilon: float,
    depth: int,
    level_cutoff: int,
    pruning_k: int,
    sketch_depth: int,
) -> list[float]:
    """The Lemma-5 allocation ``{sigma_l}`` for levels ``0 .. depth``.

    Parameters mirror :class:`~repro.core.config.PrivHPConfig`: ``depth`` is
    ``L``, ``level_cutoff`` is ``L*``, ``pruning_k`` is ``k`` and
    ``sketch_depth`` is ``j``.
    """
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    if depth < 0:
        raise ValueError(f"depth must be non-negative, got {depth}")
    if not 0 <= level_cutoff <= depth:
        raise ValueError(
            f"level_cutoff must lie in [0, depth]; got {level_cutoff} with depth {depth}"
        )
    if pruning_k < 1:
        raise ValueError(f"pruning_k must be at least 1, got {pruning_k}")
    if sketch_depth < 1:
        raise ValueError(f"sketch_depth must be at least 1, got {sketch_depth}")

    weights: list[float] = []
    for level in range(depth + 1):
        if level <= level_cutoff:
            weight = math.sqrt(_big_gamma(domain, level - 1))
        else:
            weight = math.sqrt(sketch_depth * pruning_k * _gamma(domain, level - 1))
        weights.append(weight)

    normaliser = sum(weights)
    if normaliser <= 0:
        # Degenerate geometry (all diameters zero); fall back to uniform.
        return uniform_budgets(epsilon, depth)
    return [epsilon * weight / normaliser for weight in weights]


def allocate_budgets(
    domain: Domain,
    epsilon: float,
    depth: int,
    level_cutoff: int,
    pruning_k: int,
    sketch_depth: int,
    method: str = "optimal",
) -> list[float]:
    """Dispatch to the requested allocation strategy.

    Returns a list ``[sigma_0, ..., sigma_L]`` whose entries are strictly
    positive and sum to ``epsilon`` (up to floating point), so the result can
    be fed directly to the Laplace mechanisms of Algorithm 1.
    """
    if method == "optimal":
        budgets = optimal_budgets(domain, epsilon, depth, level_cutoff, pruning_k, sketch_depth)
    elif method == "uniform":
        budgets = uniform_budgets(epsilon, depth)
    else:
        raise ValueError(f"unknown budget allocation method: {method!r}")

    if any(sigma <= 0 for sigma in budgets):
        raise RuntimeError("budget allocation produced a non-positive level budget")
    return budgets
