"""Synthetic data generation from a partition tree (Section 5 of the paper).

Any binary decomposition of the domain, together with non-negative node
counts, encodes a sampling distribution: pick a leaf with probability
proportional to its count, then draw a point uniformly at random inside the
leaf's cell.  The root-to-leaf traversal below implements that selection in
``O(depth)`` time per sample, exactly as described in the paper: draw
``u ~ Uniform[0, root.count]``, branch left while the left child's count is at
least ``u``, otherwise subtract it and branch right.

The generator is pure post-processing of the (already private) tree, so the
synthetic data inherits the epsilon-DP guarantee with no extra privacy cost.
"""

from __future__ import annotations

import numpy as np

from repro.core.tree import PartitionTree
from repro.domain.base import Cell, Domain

__all__ = ["SyntheticDataGenerator"]


class SyntheticDataGenerator:
    """Samples synthetic points from a partition tree over a domain."""

    def __init__(
        self,
        tree: PartitionTree,
        domain: Domain,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        self.tree = tree
        self.domain = domain
        self._rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)

    def reseed(self, rng: np.random.Generator | int | None) -> "SyntheticDataGenerator":
        """Replace the sampling generator; the tree counts are never touched."""
        self._rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        return self

    # ------------------------------------------------------------------ #
    # sampling
    # ------------------------------------------------------------------ #
    def sample_one(self):
        """Draw a single synthetic point.

        Falls back to a uniform draw over the whole domain when the tree
        carries no probability mass (all counts zero), which can happen for
        tiny streams with large noise; the fallback keeps the generator total
        and well-defined without touching the data again.
        """
        total = self.tree.root_count
        if total <= 0:
            return self.domain.sample_cell((), self._rng)

        threshold = self._rng.uniform(0.0, total)
        theta: Cell = ()
        while self.tree.has_children(theta):
            left, right = theta + (0,), theta + (1,)
            left_count = max(self.tree.get(left, 0.0), 0.0)
            if left_count >= threshold:
                theta = left
            else:
                threshold -= left_count
                theta = right
        return self.domain.sample_cell(theta, self._rng)

    def sample(self, size: int) -> np.ndarray:
        """Draw ``size`` synthetic points as a numpy array.

        The output shape follows the domain: scalar domains give a 1-d array
        of length ``size``, vector domains an array of shape
        ``(size, dimension)``.
        """
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        points = [self.sample_one() for _ in range(size)]
        return np.asarray(points)

    # ------------------------------------------------------------------ #
    # distribution introspection (used by the evaluation harness and tests)
    # ------------------------------------------------------------------ #
    def leaf_probabilities(self) -> dict[Cell, float]:
        """Probability assigned to each leaf cell of the tree.

        When the tree is consistent this equals ``count / root_count``; with
        consistency disabled, negative counts are clamped to zero and the
        distribution re-normalised, matching the sampler's behaviour.
        """
        leaves = self.tree.leaves()
        weights = np.array([max(self.tree.count(theta), 0.0) for theta in leaves])
        total = float(weights.sum())
        if total <= 0:
            # Degenerate tree: the sampler falls back to the root cell.
            return {(): 1.0}
        return {theta: float(weight / total) for theta, weight in zip(leaves, weights)}

    def leaf_probability_of_point(self, point) -> float:
        """Probability mass of the leaf cell containing ``point``."""
        probabilities = self.leaf_probabilities()
        if probabilities.keys() == {()}:
            return 1.0
        depth = max(len(theta) for theta in probabilities)
        path = self.domain.locate(point, depth)
        for level in range(len(path), -1, -1):
            prefix = path[:level]
            if prefix in probabilities:
                return probabilities[prefix]
        return 0.0

    def expected_value(self, function, num_samples: int = 1000) -> float:
        """Monte-Carlo estimate of ``E_{Y ~ generator}[function(Y)]``."""
        if num_samples <= 0:
            raise ValueError(f"num_samples must be positive, got {num_samples}")
        samples = self.sample(num_samples)
        return float(np.mean([function(sample) for sample in samples]))

    # ------------------------------------------------------------------ #
    # bookkeeping
    # ------------------------------------------------------------------ #
    @property
    def total_mass(self) -> float:
        """Total (possibly noisy) probability mass at the root."""
        return self.tree.root_count

    def memory_words(self) -> int:
        """Words occupied by the underlying tree."""
        return self.tree.memory_words()

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"SyntheticDataGenerator(leaves={len(self.tree.leaves())}, "
            f"total_mass={self.total_mass:.2f})"
        )
