"""The partition tree: a sparse binary tree of cell counts.

Nodes are keyed by their cell index ``theta`` (a bit tuple); the root is the
empty tuple.  The tree is sparse: only the cells PrivHP actually keeps (the
complete top ``L*`` levels plus the pruned hot branches below) are stored,
which is exactly what bounds the memory at ``O(k log^2 n)`` words.

The class is deliberately a plain container -- the streaming logic lives in
:mod:`repro.core.privhp` and the growing/consistency logic in
:mod:`repro.core.partition` / :mod:`repro.core.consistency` -- so that the
baselines (PMM, PrivTree) can reuse it unchanged.
"""

from __future__ import annotations

import functools
import itertools
from collections.abc import Iterator

from repro.domain.base import Cell, validate_cell

__all__ = ["PartitionTree", "cell_at"]


@functools.lru_cache(maxsize=131072)
def cell_at(level: int, code: int) -> Cell:
    """The bit tuple of the ``code``-th cell at ``level`` (big-endian order).

    Inverse of :meth:`repro.domain.base.Domain.pack_paths` for a single code;
    the batched ingestion paths use it to translate ``bincount`` indices back
    into tree cells.  Cells are immutable and the same few cells recur on
    every batch of every stream, so the translation is memoised (bounded)
    rather than rebuilt tuple-by-tuple on each call.
    """
    return tuple((code >> (level - 1 - position)) & 1 for position in range(level))


class PartitionTree:
    """A sparse binary tree mapping cell indices to (possibly noisy) counts."""

    def __init__(self) -> None:
        self._counts: dict[Cell, float] = {}

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def complete(cls, depth: int, initial_count: float = 0.0) -> "PartitionTree":
        """A complete binary tree of the given depth with a constant count."""
        if depth < 0:
            raise ValueError(f"depth must be non-negative, got {depth}")
        tree = cls()
        counts = tree._counts
        value = float(initial_count)
        for level in range(depth + 1):
            for theta in itertools.product((0, 1), repeat=level):
                counts[theta] = value
        return tree

    def add_node(self, theta: Cell, count: float = 0.0) -> None:
        """Insert a node (overwriting any existing count)."""
        self._counts[validate_cell(theta)] = float(count)

    def remove_node(self, theta: Cell) -> None:
        """Remove a node; descendants are left untouched."""
        del self._counts[validate_cell(theta)]

    # ------------------------------------------------------------------ #
    # counts
    # ------------------------------------------------------------------ #
    def __contains__(self, theta: Cell) -> bool:
        return tuple(theta) in self._counts

    def count(self, theta: Cell) -> float:
        """The stored count of a node."""
        return self._counts[tuple(theta)]

    def get(self, theta: Cell, default: float = 0.0) -> float:
        """The stored count, or ``default`` when the node is absent."""
        return self._counts.get(tuple(theta), default)

    def set_count(self, theta: Cell, count: float) -> None:
        """Overwrite the count of an existing node."""
        key = tuple(theta)
        if key not in self._counts:
            raise KeyError(f"node {key} is not in the tree")
        self._counts[key] = float(count)

    def increment(self, theta: Cell, amount: float = 1.0) -> None:
        """Add ``amount`` to an existing node's count."""
        key = tuple(theta)
        if key not in self._counts:
            raise KeyError(f"node {key} is not in the tree")
        self._counts[key] += amount

    def increment_many(self, thetas, amounts=None) -> None:
        """Add ``amounts`` (1.0 each when omitted) to existing nodes.

        This is the application half of the batched ingestion path: the
        caller aggregates a batch into per-cell totals (e.g. with a prefix
        ``bincount``) and applies them here in one pass over the distinct
        cells rather than one dict operation per stream item.
        """
        counts = self._counts
        if amounts is None:
            for theta in thetas:
                key = tuple(theta)
                if key not in counts:
                    raise KeyError(f"node {key} is not in the tree")
                counts[key] += 1.0
        else:
            for theta, amount in zip(thetas, amounts):
                key = tuple(theta)
                if key not in counts:
                    raise KeyError(f"node {key} is not in the tree")
                counts[key] += float(amount)

    def merge(self, other: "PartitionTree") -> "PartitionTree":
        """Node-wise sum of two trees (union of nodes, counts added).

        Counts are linear statistics of the stream, so the merge of two
        shards' trees is exactly the tree of the concatenated stream.
        """
        if not isinstance(other, PartitionTree):
            raise TypeError("can only merge with another PartitionTree")
        merged = self.copy()
        counts = merged._counts
        for theta, count in other._counts.items():
            counts[theta] = counts.get(theta, 0.0) + count
        return merged

    @property
    def root_count(self) -> float:
        """Count stored at the root (total probability mass of the sampler)."""
        return self._counts.get((), 0.0)

    # ------------------------------------------------------------------ #
    # structure queries
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._counts)

    def __iter__(self) -> Iterator[Cell]:
        return iter(self._counts)

    def nodes(self) -> Iterator[tuple[Cell, float]]:
        """Iterate over ``(theta, count)`` pairs."""
        return iter(self._counts.items())

    def children_present(self, theta: Cell) -> tuple[bool, bool]:
        """Whether the left and right children are stored."""
        theta = tuple(theta)
        return (theta + (0,)) in self._counts, (theta + (1,)) in self._counts

    def has_children(self, theta: Cell) -> bool:
        """Whether at least one child of ``theta`` is stored."""
        left, right = self.children_present(theta)
        return left or right

    def is_leaf(self, theta: Cell) -> bool:
        """A stored node with no stored children."""
        return tuple(theta) in self._counts and not self.has_children(theta)

    def leaves(self) -> list[Cell]:
        """All leaf cells, sorted by (level, index) for determinism."""
        result = [theta for theta in self._counts if self.is_leaf(theta)]
        return sorted(result, key=lambda cell: (len(cell), cell))

    def internal_nodes(self) -> list[Cell]:
        """All nodes with at least one stored child, sorted by (level, index)."""
        result = [theta for theta in self._counts if self.has_children(theta)]
        return sorted(result, key=lambda cell: (len(cell), cell))

    def nodes_at_level(self, level: int) -> list[Cell]:
        """All stored cells at a given level, sorted for determinism."""
        if level < 0:
            raise ValueError(f"level must be non-negative, got {level}")
        return sorted(theta for theta in self._counts if len(theta) == level)

    def depth(self) -> int:
        """Depth of the deepest stored node (0 for a root-only tree)."""
        if not self._counts:
            return 0
        return max(len(theta) for theta in self._counts)

    def level_counts(self, level: int) -> dict[Cell, float]:
        """Mapping of cell -> count restricted to one level."""
        return {theta: count for theta, count in self._counts.items() if len(theta) == level}

    # ------------------------------------------------------------------ #
    # invariants, memory, export
    # ------------------------------------------------------------------ #
    def is_consistent(self, tolerance: float = 1e-6) -> bool:
        """Check the two consistency invariants of Section 4.4.

        (1) every stored count is non-negative, and (2) whenever both children
        of a node are stored, their counts sum to the parent's count.
        """
        for theta, count in self._counts.items():
            if count < -tolerance:
                return False
            left, right = theta + (0,), theta + (1,)
            if left in self._counts and right in self._counts:
                total = self._counts[left] + self._counts[right]
                if abs(total - count) > tolerance * max(1.0, abs(count)) + tolerance:
                    return False
        return True

    def memory_words(self) -> int:
        """Words of memory used: one count plus one key reference per node."""
        return 2 * len(self._counts)

    def copy(self) -> "PartitionTree":
        """A deep copy of the tree."""
        clone = PartitionTree()
        clone._counts = dict(self._counts)
        return clone

    def as_dict(self) -> dict[Cell, float]:
        """A plain-dict snapshot of the tree (for tests and serialisation)."""
        return dict(self._counts)

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"PartitionTree(nodes={len(self._counts)}, depth={self.depth()}, "
            f"root_count={self.root_count:.2f})"
        )
