"""Declarative experiment-matrix runner with a resumable result store.

The paper's tables are grids: methods x domains x workload generators x
epsilon x stream length x trials.  Each experiment module used to hand-roll
its own sweep loop; this module turns the grid into data:

* :class:`MatrixSpec` -- a JSON-loadable description of the grid.  The
  ``methods`` and ``generators`` axes accept plain registry names or
  ``{"name", "label", "params"}`` variants, so parameter sweeps (pruning
  ``k``, Zipf exponent, budget allocation) are just labelled axis entries.
* :func:`execute_cell` -- evaluates one cell.  Every cell derives its RNG
  from :class:`numpy.random.SeedSequence` spawn keys built from the cell's
  *coordinates* (never from scheduling order), and datasets are keyed by
  ``(domain, generator, n, trial)`` only -- all methods at a grid point see
  the same data, and results are byte-identical for any worker count.
* :class:`ResultStore` -- an on-disk ``results.jsonl`` of canonical-JSON
  lines, one flushed+fsynced append per completed cell, holding only
  deterministic fields; wall-clock timings go to a separate
  ``timings.jsonl`` sidecar.  An interrupt can at worst truncate the final
  line (detected and discarded on reload); completed cell keys are skipped
  on restart, and ``finalize`` rewrites the file key-sorted through a
  temp + rename, which is what makes ``--resume`` safe and completed runs
  byte-identical.
* :func:`run_matrix` -- fans cells out over a
  :class:`concurrent.futures.ProcessPoolExecutor` (or runs inline for
  ``workers=1``), records results as they complete, and rolls them up with
  :func:`aggregate_records` into the mean/stderr-over-trials rows the paper
  tables use (written as ``aggregate.json`` + ``aggregate.csv``).

The experiment modules (``table1``, ``tradeoffs``, ``ablations``, ``skew``)
declare their grids as :class:`MatrixSpec` values and execute through
:func:`run_matrix`; the CLI exposes the same path as ``repro matrix``.

Example:
    >>> spec = MatrixSpec(
    ...     name="demo",
    ...     methods=("nonprivate",),
    ...     domains=("interval",),
    ...     generators=("uniform",),
    ...     epsilons=(1.0,),
    ...     stream_sizes=(64,),
    ... )
    >>> [cell.key for cell in spec.cells()]
    ['method=nonprivate;domain=interval;generator=uniform;epsilon=1.0;n=64;trial=0']
    >>> MatrixSpec.from_dict(spec.to_dict()) == spec
    True
"""

from __future__ import annotations

import csv
import inspect
import io
import json
import os
import pathlib
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field

import numpy as np

from repro.api.registry import available_methods, make_domain, method_factory
from repro.domain.discrete import DiscreteDomain
from repro.domain.geo import GeoDomain
from repro.domain.hypercube import Hypercube
from repro.domain.interval import UnitInterval
from repro.domain.ipv4 import IPv4Domain
from repro.io.serialization import write_text_atomic
from repro.metrics.evaluation import evaluate_method, evaluate_method_trajectory
from repro.stream.generators import (
    SCENARIO_GENERATOR_NAMES,
    available_generators,
    make_stream,
)

__all__ = [
    "AxisEntry",
    "MatrixSpec",
    "MatrixCell",
    "MatrixSpecError",
    "MatrixCellError",
    "ResultStore",
    "execute_cell",
    "run_matrix",
    "aggregate_records",
    "dataset_for",
    "load_spec",
    "smoke_spec",
    "check_smoke_ordering",
    "check_epoch_ordering",
]


class MatrixSpecError(ValueError):
    """A matrix spec document is malformed (bad axis, unknown name, ...)."""


class MatrixCellError(RuntimeError):
    """One grid cell failed to execute; the message names the cell key."""


# --------------------------------------------------------------------------- #
# spec
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class AxisEntry:
    """One labelled entry of the ``methods`` or ``generators`` axis.

    ``name`` is the registry name; ``label`` distinguishes variants of the
    same name within one axis (e.g. ``privhp-k2`` vs ``privhp-k32``);
    ``params`` are extra keyword arguments for the factory.

    Example:
        >>> AxisEntry.parse("privhp").label
        'privhp'
        >>> AxisEntry.parse({"name": "zipf", "label": "zipf-2", "params": {"exponent": 2.0}}).params
        {'exponent': 2.0}
    """

    name: str
    label: str
    params: dict = field(default_factory=dict)

    @staticmethod
    def parse(value, axis: str = "axis") -> "AxisEntry":
        """Normalise a spec axis entry (bare name string or variant dict)."""
        if isinstance(value, AxisEntry):
            return value
        if isinstance(value, str):
            name = value.strip().lower()
            if not name:
                raise MatrixSpecError(f"{axis} entries must be non-empty names")
            return AxisEntry(name=name, label=name, params={})
        if isinstance(value, dict):
            unknown = sorted(set(value) - {"name", "label", "params"})
            if unknown:
                raise MatrixSpecError(
                    f"{axis} entry has unknown field(s) {', '.join(unknown)}; "
                    "expected name, label, params"
                )
            if "name" not in value or not str(value["name"]).strip():
                raise MatrixSpecError(f"{axis} entry is missing its 'name'")
            name = str(value["name"]).strip().lower()
            label = str(value.get("label", name)).strip() or name
            params = value.get("params", {})
            if not isinstance(params, dict):
                raise MatrixSpecError(
                    f"{axis} entry {label!r}: 'params' must be an object, "
                    f"got {type(params).__name__}"
                )
            return AxisEntry(name=name, label=label, params=dict(params))
        raise MatrixSpecError(
            f"{axis} entries must be names or {{name, label, params}} objects, "
            f"got {type(value).__name__}"
        )

    def to_dict(self) -> dict | str:
        if not self.params and self.label == self.name:
            return self.name
        return {"name": self.name, "label": self.label, "params": dict(self.params)}


#: SeedSequence spawn-key stream tags: datasets are keyed by grid coordinates
#: shared across methods; evaluation RNG is keyed by the individual cell.
_DATA_STREAM = 0
_EVAL_STREAM = 1

_SPEC_FIELDS = {
    "name",
    "methods",
    "domains",
    "generators",
    "epsilons",
    "stream_sizes",
    "trials",
    "base_seed",
    "pruning_k",
    "repetitions",
    "synthetic_size",
}


@dataclass(frozen=True)
class MatrixCell:
    """One point of the grid: a method on a dataset at one trial seed."""

    index: int
    method: AxisEntry
    domain: str
    generator: AxisEntry
    epsilon: float
    size: int
    trial: int
    dataset_coords: tuple[int, int, int, int]
    base_seed: int
    pruning_k: int
    repetitions: int
    synthetic_size: int | None

    @property
    def key(self) -> str:
        """Canonical identifier used for dedup, resume and sorting."""
        return (
            f"method={self.method.label};domain={self.domain};"
            f"generator={self.generator.label};epsilon={self.epsilon!r};"
            f"n={self.size};trial={self.trial}"
        )

    def payload(self) -> dict:
        """A plain picklable dict for the worker processes."""
        return {
            "key": self.key,
            "index": self.index,
            "method": {
                "name": self.method.name,
                "label": self.method.label,
                "params": dict(self.method.params),
            },
            "domain": self.domain,
            "generator": {
                "name": self.generator.name,
                "label": self.generator.label,
                "params": dict(self.generator.params),
            },
            "epsilon": self.epsilon,
            "size": self.size,
            "trial": self.trial,
            "dataset_coords": list(self.dataset_coords),
            "base_seed": self.base_seed,
            "pruning_k": self.pruning_k,
            "repetitions": self.repetitions,
            "synthetic_size": self.synthetic_size,
        }


@dataclass(frozen=True)
class MatrixSpec:
    """A declarative experiment grid, JSON-loadable and validated on build.

    Axes: ``methods`` x ``domains`` x ``generators`` x ``epsilons`` x
    ``stream_sizes`` x ``trials``.  ``trials`` is the seed axis: trial ``t``
    of a grid point reuses the same dataset across every method and epsilon,
    so rows are comparable, and aggregation reports mean/stderr over trials.

    Example:
        >>> spec = MatrixSpec.from_dict({
        ...     "name": "sweep",
        ...     "methods": ["nonprivate", {"name": "privhp", "label": "privhp-k4",
        ...                                "params": {"pruning_k": 4}}],
        ...     "domains": ["interval"],
        ...     "generators": [{"name": "zipf", "params": {"exponent": 1.5}}],
        ...     "epsilons": [1.0],
        ...     "stream_sizes": [256],
        ...     "trials": 2,
        ... })
        >>> len(spec.cells())
        4
    """

    name: str
    methods: tuple
    domains: tuple
    generators: tuple
    epsilons: tuple
    stream_sizes: tuple
    trials: int = 1
    base_seed: int = 0
    pruning_k: int = 8
    repetitions: int = 1
    synthetic_size: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "methods", tuple(
            AxisEntry.parse(entry, "methods") for entry in _non_empty(self.methods, "methods")
        ))
        object.__setattr__(self, "generators", tuple(
            AxisEntry.parse(entry, "generators")
            for entry in _non_empty(self.generators, "generators")
        ))
        object.__setattr__(self, "domains", tuple(
            str(entry).strip() for entry in _non_empty(self.domains, "domains")
        ))
        object.__setattr__(self, "epsilons", tuple(
            _positive_float(value, "epsilons") for value in _non_empty(self.epsilons, "epsilons")
        ))
        object.__setattr__(self, "stream_sizes", tuple(
            _positive_int(value, "stream_sizes")
            for value in _non_empty(self.stream_sizes, "stream_sizes")
        ))
        if not str(self.name).strip():
            raise MatrixSpecError("spec 'name' must be a non-empty string")
        object.__setattr__(self, "name", str(self.name).strip())
        object.__setattr__(self, "trials", _positive_int(self.trials, "trials"))
        object.__setattr__(self, "base_seed", int(self.base_seed))
        object.__setattr__(self, "pruning_k", _positive_int(self.pruning_k, "pruning_k"))
        object.__setattr__(self, "repetitions", _positive_int(self.repetitions, "repetitions"))
        if self.synthetic_size is not None:
            object.__setattr__(
                self, "synthetic_size", _positive_int(self.synthetic_size, "synthetic_size")
            )
        self._validate()

    # -------------------------------------------------------------- #
    def _validate(self) -> None:
        known_methods = set(available_methods())
        known_generators = set(available_generators())
        for entry in self.methods:
            if entry.name not in known_methods:
                raise MatrixSpecError(
                    f"unknown method {entry.name!r}; known methods: "
                    f"{', '.join(sorted(known_methods))}"
                )
        for entry in self.generators:
            if entry.name not in known_generators:
                raise MatrixSpecError(
                    f"unknown generator {entry.name!r}; known generators: "
                    f"{', '.join(sorted(known_generators))}"
                )
        for domain_spec in self.domains:
            if domain_spec.lower().partition(":")[0] == "auto":
                raise MatrixSpecError(
                    "domain 'auto' cannot appear in a matrix spec; name the "
                    "domain explicitly (e.g. 'interval', 'hypercube:2')"
                )
            try:
                make_domain(domain_spec)
            except ValueError as error:
                raise MatrixSpecError(f"bad domain spec {domain_spec!r}: {error}") from error
        for axis_name, labels in (
            ("methods", [entry.label for entry in self.methods]),
            ("generators", [entry.label for entry in self.generators]),
            ("domains", list(self.domains)),
            ("epsilons", list(self.epsilons)),
            ("stream_sizes", list(self.stream_sizes)),
        ):
            duplicates = sorted({str(v) for v in labels if labels.count(v) > 1})
            if duplicates:
                raise MatrixSpecError(
                    f"duplicate {axis_name} entries would collide in the result "
                    f"store: {', '.join(duplicates)} (give variants distinct labels)"
                )

    # -------------------------------------------------------------- #
    @staticmethod
    def from_dict(document: dict) -> "MatrixSpec":
        """Build and validate a spec from a plain JSON document."""
        if not isinstance(document, dict):
            raise MatrixSpecError(
                f"a matrix spec must be a JSON object, got {type(document).__name__}"
            )
        unknown = sorted(set(document) - _SPEC_FIELDS)
        if unknown:
            raise MatrixSpecError(
                f"unknown spec field(s): {', '.join(unknown)}; known fields: "
                f"{', '.join(sorted(_SPEC_FIELDS))}"
            )
        missing = sorted(
            {"name", "methods", "domains", "generators", "epsilons", "stream_sizes"}
            - set(document)
        )
        if missing:
            raise MatrixSpecError(f"spec is missing required field(s): {', '.join(missing)}")
        return MatrixSpec(**document)

    def to_dict(self) -> dict:
        """The JSON form (round-trips through :meth:`from_dict`)."""
        document = {
            "name": self.name,
            "methods": [entry.to_dict() for entry in self.methods],
            "domains": list(self.domains),
            "generators": [entry.to_dict() for entry in self.generators],
            "epsilons": list(self.epsilons),
            "stream_sizes": list(self.stream_sizes),
            "trials": self.trials,
            "base_seed": self.base_seed,
            "pruning_k": self.pruning_k,
            "repetitions": self.repetitions,
        }
        if self.synthetic_size is not None:
            document["synthetic_size"] = self.synthetic_size
        return document

    def cells(self) -> list[MatrixCell]:
        """Enumerate the grid in canonical order (trial varies fastest)."""
        cells: list[MatrixCell] = []
        index = 0
        for di, domain in enumerate(self.domains):
            for gi, generator in enumerate(self.generators):
                for si, size in enumerate(self.stream_sizes):
                    for epsilon in self.epsilons:
                        for method in self.methods:
                            for trial in range(self.trials):
                                cells.append(MatrixCell(
                                    index=index,
                                    method=method,
                                    domain=domain,
                                    generator=generator,
                                    epsilon=epsilon,
                                    size=size,
                                    trial=trial,
                                    dataset_coords=(di, gi, si, trial),
                                    base_seed=self.base_seed,
                                    pruning_k=self.pruning_k,
                                    repetitions=self.repetitions,
                                    synthetic_size=self.synthetic_size,
                                ))
                                index += 1
        return cells


def _non_empty(values, axis: str):
    if isinstance(values, (str, bytes)) or not hasattr(values, "__iter__"):
        raise MatrixSpecError(f"spec field {axis!r} must be a non-empty list")
    values = list(values)
    if not values:
        raise MatrixSpecError(f"spec field {axis!r} must be a non-empty list")
    return values


def _positive_float(value, axis: str) -> float:
    try:
        value = float(value)
    except (TypeError, ValueError):
        raise MatrixSpecError(f"{axis} entries must be numbers, got {value!r}") from None
    if not value > 0 or not np.isfinite(value):
        raise MatrixSpecError(f"{axis} entries must be positive and finite, got {value!r}")
    return value


def _positive_int(value, axis: str) -> int:
    try:
        as_int = int(value)
    except (TypeError, ValueError):
        raise MatrixSpecError(f"{axis} must be an integer, got {value!r}") from None
    if as_int != value or as_int < 1:
        raise MatrixSpecError(f"{axis} must be a positive integer, got {value!r}")
    return as_int


def load_spec(path: str | pathlib.Path) -> MatrixSpec:
    """Load and validate a :class:`MatrixSpec` from a JSON file."""
    path = pathlib.Path(path)
    try:
        text = path.read_text()
    except OSError as error:
        raise MatrixSpecError(f"cannot read spec file {path}: {error}") from error
    try:
        document = json.loads(text)
    except json.JSONDecodeError as error:
        raise MatrixSpecError(f"spec file {path} is not valid JSON: {error}") from error
    return MatrixSpec.from_dict(document)


# --------------------------------------------------------------------------- #
# cell execution
# --------------------------------------------------------------------------- #
def _domain_dimension(domain) -> int:
    if isinstance(domain, GeoDomain):
        return 2
    return int(getattr(domain, "dimension", 1))


def _materialize(domain, unit: np.ndarray) -> np.ndarray:
    """Map unit-cube generator output into the domain's native points."""
    if isinstance(domain, (UnitInterval, Hypercube)):
        return unit
    if isinstance(domain, GeoDomain):
        points = np.empty_like(unit)
        points[:, 0] = domain.lat_min + unit[:, 0] * (domain.lat_max - domain.lat_min)
        points[:, 1] = domain.lon_min + unit[:, 1] * (domain.lon_max - domain.lon_min)
        return points
    if isinstance(domain, DiscreteDomain):
        return np.clip((unit * domain.size).astype(np.int64), 0, domain.size - 1)
    if isinstance(domain, IPv4Domain):
        universe = 2 ** 32
        return np.clip((unit * universe).astype(np.int64), 0, universe - 1)
    raise ValueError(
        f"matrix runner cannot generate workloads for domain {type(domain).__name__}; "
        "supported: interval, hypercube, geo, discrete, ipv4"
    )


def _cell_dataset(domain, payload: dict) -> np.ndarray:
    coords = tuple(int(value) for value in payload["dataset_coords"])
    sequence = np.random.SeedSequence(
        payload["base_seed"], spawn_key=(_DATA_STREAM, *coords)
    )
    unit = make_stream(
        payload["generator"]["name"],
        payload["size"],
        dimension=_domain_dimension(domain),
        rng=np.random.default_rng(sequence),
        **payload["generator"]["params"],
    )
    return _materialize(domain, unit)


def _cell_epochs(domain, payload: dict) -> list[np.ndarray]:
    """The scenario cell's dataset split at epoch boundaries.

    Byte-identical to :func:`_cell_dataset` concatenated: both routes derive
    the same SeedSequence from the cell's grid coordinates and the scenario
    engine's per-epoch RNGs are keyed by epoch index, never by batch layout.
    """
    from repro.stream.scenarios import generate_epochs

    coords = tuple(int(value) for value in payload["dataset_coords"])
    sequence = np.random.SeedSequence(
        payload["base_seed"], spawn_key=(_DATA_STREAM, *coords)
    )
    units = generate_epochs(
        payload["generator"]["name"],
        payload["size"],
        dimension=_domain_dimension(domain),
        rng=np.random.default_rng(sequence),
        **payload["generator"]["params"],
    )
    return [_materialize(domain, unit) for unit in units]


def dataset_for(
    spec: MatrixSpec,
    domain_index: int = 0,
    generator_index: int = 0,
    size_index: int = 0,
    trial: int = 0,
) -> np.ndarray:
    """Reproduce the exact dataset one grid point saw (method-independent).

    Adapters use this to compute data-dependent theory quantities (tail
    norms, predicted bounds) on precisely the data the cells were fitted on.
    """
    domain = make_domain(spec.domains[domain_index])
    payload = {
        "base_seed": spec.base_seed,
        "dataset_coords": (domain_index, generator_index, size_index, trial),
        "generator": {
            "name": spec.generators[generator_index].name,
            "params": dict(spec.generators[generator_index].params),
        },
        "size": spec.stream_sizes[size_index],
    }
    return _cell_dataset(domain, payload)


def _build_method(domain, payload: dict):
    entry = payload["method"]
    factory = method_factory(entry["name"])
    signature = inspect.signature(factory)
    named = {
        parameter.name
        for parameter in signature.parameters.values()
        if parameter.kind in (
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
            inspect.Parameter.KEYWORD_ONLY,
        )
    }
    kwargs = dict(entry["params"])
    if "epsilon" in named and "epsilon" not in kwargs:
        kwargs["epsilon"] = payload["epsilon"]
    if "pruning_k" in named and "pruning_k" not in kwargs:
        kwargs["pruning_k"] = payload["pruning_k"]
    try:
        return factory(domain, **kwargs)
    except TypeError as error:
        raise ValueError(
            f"bad parameters for method {entry['label']!r}: {error}"
        ) from error


def execute_cell(payload: dict) -> dict:
    """Run one grid cell; returns ``{"key", "row", "timing"}``.

    ``row`` contains only deterministic fields (safe to persist for
    byte-identical reruns); ``timing`` carries the wall-clock measurements.
    Runs in worker processes, so it takes and returns plain dicts.
    """
    key = payload["key"]
    try:
        domain = make_domain(payload["domain"])
        method = _build_method(domain, payload)
        evaluation_rng = np.random.default_rng(np.random.SeedSequence(
            payload["base_seed"], spawn_key=(_EVAL_STREAM, payload["index"])
        ))
        parameters = {
            "method_label": payload["method"]["label"],
            "domain": payload["domain"],
            "generator": payload["generator"]["label"],
            "epsilon": payload["epsilon"],
            "n": payload["size"],
            "trial": payload["trial"],
        }
        if payload["generator"]["name"] in SCENARIO_GENERATOR_NAMES:
            # Time-varying workload: evaluate in trajectory mode -- continual
            # methods are snapshotted at every epoch boundary, one-shot
            # methods at the horizon only.
            result = evaluate_method_trajectory(
                method,
                _cell_epochs(domain, payload),
                domain,
                synthetic_size=payload["synthetic_size"],
                repetitions=payload["repetitions"],
                rng=evaluation_rng,
                parameters=parameters,
            )
        else:
            result = evaluate_method(
                method,
                _cell_dataset(domain, payload),
                domain,
                synthetic_size=payload["synthetic_size"],
                repetitions=payload["repetitions"],
                rng=evaluation_rng,
                parameters=parameters,
            )
    except Exception as error:
        raise MatrixCellError(f"cell {key} failed: {error}") from error
    return {
        "key": key,
        "row": result.as_row(include_timings=False),
        "timing": {
            "key": key,
            "fit_seconds": result.fit_seconds,
            "sample_seconds": result.sample_seconds,
        },
    }


# --------------------------------------------------------------------------- #
# result store
# --------------------------------------------------------------------------- #
def _canonical_json(document: dict) -> str:
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


class ResultStore:
    """Append-only, crash-safe, resumable store of cell results.

    ``results.jsonl`` holds one canonical-JSON line per completed cell.
    Each record is a single flushed+fsynced append of one complete line, so
    per-cell cost stays O(1) however large the grid grows; the only damage
    an interrupt can do is truncate the *final* line, which the loader
    detects (no trailing newline), discards, and repairs -- that cell simply
    re-runs on resume.  ``finalize`` sorts the lines by cell key and
    rewrites the file atomically (temp + ``os.replace``, like ``spec.json``
    and the aggregate artifacts), making a completed run's file
    byte-identical regardless of worker count or completion order.  Timings
    (nondeterministic) live in a separate ``timings.jsonl``.

    Example:
        >>> import tempfile
        >>> store = ResultStore(tempfile.mkdtemp())
        >>> store.record("cell-b", {"wasserstein": 0.5})
        >>> store.record("cell-a", {"wasserstein": 0.25})
        >>> store.finalize()
        >>> [record["key"] for record in store.records()]
        ['cell-a', 'cell-b']
    """

    RESULTS_NAME = "results.jsonl"
    TIMINGS_NAME = "timings.jsonl"
    SPEC_NAME = "spec.json"

    def __init__(self, directory: str | pathlib.Path) -> None:
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.results_path = self.directory / self.RESULTS_NAME
        self.timings_path = self.directory / self.TIMINGS_NAME
        self.spec_path = self.directory / self.SPEC_NAME
        self._lines: list[str] = []
        self._keys: set[str] = set()
        if self.results_path.exists():
            text = self.results_path.read_text()
            if text and not text.endswith("\n"):
                # An interrupt mid-append truncated the final line; drop it
                # (the cell re-runs on resume) and repair the file.
                text = text[: text.rfind("\n") + 1]
                write_text_atomic(self.results_path, text)
            for number, line in enumerate(text.splitlines(), 1):
                if not line.strip():
                    continue
                try:
                    record = json.loads(line)
                    key = record["key"]
                except (json.JSONDecodeError, TypeError, KeyError) as error:
                    raise ValueError(
                        f"{self.results_path} line {number} is not a valid result "
                        f"record: {error}"
                    ) from error
                self._lines.append(line)
                self._keys.add(key)

    def ensure_spec(self, spec: MatrixSpec) -> None:
        """Pin the spec to the directory; refuses to mix different grids."""
        text = json.dumps(spec.to_dict(), indent=2, sort_keys=True) + "\n"
        if self.spec_path.exists():
            try:
                existing = json.loads(self.spec_path.read_text())
            except json.JSONDecodeError as error:
                raise ValueError(f"{self.spec_path} is corrupt: {error}") from error
            if existing != spec.to_dict():
                raise ValueError(
                    f"{self.directory} already holds results for a different "
                    f"spec ({existing.get('name', '?')!r}); use a fresh --out "
                    "directory for a different grid"
                )
            return
        write_text_atomic(self.spec_path, text)

    def completed_keys(self) -> set[str]:
        """Keys of cells already recorded (skipped on resume)."""
        return set(self._keys)

    def record(self, key: str, row: dict, timing: dict | None = None) -> None:
        """Persist one completed cell (one flushed+fsynced appended line)."""
        if key in self._keys:
            raise ValueError(f"cell {key} is already recorded")
        line = _canonical_json({"key": key, **row})
        self._lines.append(line)
        self._keys.add(key)
        with self.results_path.open("a") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        if timing is not None:
            with self.timings_path.open("a") as handle:
                handle.write(_canonical_json(timing) + "\n")

    def finalize(self) -> None:
        """Sort ``results.jsonl`` by cell key (canonical completed form)."""
        self._lines.sort(key=lambda line: json.loads(line)["key"])
        write_text_atomic(self.results_path, "\n".join(self._lines) + "\n")

    def records(self) -> list[dict]:
        """All recorded rows (dicts including their ``key``)."""
        return [json.loads(line) for line in self._lines]


# --------------------------------------------------------------------------- #
# aggregation
# --------------------------------------------------------------------------- #
def _aggregate_trajectories(members: list[dict], row: dict) -> None:
    """Fold per-trial error trajectories into per-epoch mean/stderr columns.

    Epochs a method never measured (one-shot interior epochs) stay ``None``
    in the output lists; the area-under-error-curve summary is averaged over
    the trials that produced one.
    """
    trajectories = [
        member["error_trajectory"]
        for member in members
        if member.get("error_trajectory") is not None
    ]
    if not trajectories:
        return
    num_epochs = max(len(trajectory) for trajectory in trajectories)
    epoch_means: list[float | None] = []
    epoch_stderrs: list[float | None] = []
    for index in range(num_epochs):
        values = [
            trajectory[index]
            for trajectory in trajectories
            if index < len(trajectory) and trajectory[index] is not None
        ]
        if values:
            array = np.array(values, dtype=float)
            epoch_means.append(float(array.mean()))
            epoch_stderrs.append(float(array.std() / np.sqrt(len(values))))
        else:
            epoch_means.append(None)
            epoch_stderrs.append(None)
    row["num_epochs"] = num_epochs
    row["epoch_wasserstein_mean"] = epoch_means
    row["epoch_wasserstein_stderr"] = epoch_stderrs
    items = next(
        (
            member["epoch_items"]
            for member in members
            if member.get("epoch_items") is not None
        ),
        None,
    )
    if items is not None:
        row["epoch_items"] = [int(value) for value in items]
    aucs = [
        member["auc_error"]
        for member in members
        if member.get("auc_error") is not None
    ]
    if aucs:
        auc_array = np.array(aucs, dtype=float)
        row["auc_error"] = float(auc_array.mean())
        row["auc_error_stderr"] = float(auc_array.std() / np.sqrt(len(aucs)))


def aggregate_records(records: list[dict]) -> list[dict]:
    """Roll cell records up to mean/stderr-over-trials rows per grid point.

    Rows are grouped by (domain, generator, n, epsilon, method label) and
    sorted by that tuple, so the output is deterministic regardless of the
    records' completion order.  Timing fields are averaged when present
    (in-memory runs) and simply absent otherwise (store reruns).  Records
    carrying error trajectories (scenario cells) additionally aggregate to
    per-epoch mean/stderr vectors plus an ``auc_error`` summary column.
    """
    groups: dict[tuple, list[dict]] = {}
    for record in records:
        group = (
            record["domain"],
            record["generator"],
            record["n"],
            record["epsilon"],
            record["method_label"],
        )
        groups.setdefault(group, []).append(record)

    rows = []
    for group in sorted(groups, key=lambda g: (g[0], g[1], g[2], g[3], str(g[4]))):
        members = sorted(groups[group], key=lambda record: record["trial"])
        domain, generator, size, epsilon, label = group
        means = np.array([member["wasserstein"] for member in members], dtype=float)
        row = {
            "method": label,
            "method_name": members[0]["method"],
            "domain": domain,
            "generator": generator,
            "epsilon": float(epsilon),
            "n": int(size),
            "trials": len(members),
            "wasserstein": float(means.mean()),
            "wasserstein_std": float(means.std()),
            "wasserstein_stderr": float(means.std() / np.sqrt(len(members))),
            "memory_words": int(max(member["memory_words"] for member in members)),
        }
        _aggregate_trajectories(members, row)
        for timing_field in ("fit_seconds", "sample_seconds"):
            values = [member[timing_field] for member in members if timing_field in member]
            if values:
                row[timing_field] = float(np.mean(values))
        rows.append(row)
    return rows


#: Column order for the aggregate CSV artifact.  Trajectory columns only
#: appear in grids that contain scenario cells; in the CSV form their list
#: values are "|"-joined with empty slots for unmeasured epochs.
_BASE_COLUMNS = (
    "method",
    "method_name",
    "domain",
    "generator",
    "epsilon",
    "n",
    "trials",
    "wasserstein",
    "wasserstein_std",
    "wasserstein_stderr",
    "memory_words",
)

_TRAJECTORY_COLUMNS = (
    "num_epochs",
    "epoch_items",
    "epoch_wasserstein_mean",
    "epoch_wasserstein_stderr",
    "auc_error",
    "auc_error_stderr",
)

_AGGREGATE_COLUMNS = _BASE_COLUMNS + _TRAJECTORY_COLUMNS

#: Aggregate columns holding per-epoch lists (flattened for the CSV form).
_TRAJECTORY_LIST_COLUMNS = (
    "epoch_items",
    "epoch_wasserstein_mean",
    "epoch_wasserstein_stderr",
)


def _csv_value(column: str, value):
    """Flatten per-epoch list columns into "|"-joined CSV-safe strings."""
    if column in _TRAJECTORY_LIST_COLUMNS:
        return "|".join("" if item is None else repr(item) for item in value)
    return value


def _write_aggregate(directory: pathlib.Path, rows: list[dict]) -> None:
    """Write ``aggregate.json`` and ``aggregate.csv`` artifacts atomically."""
    deterministic = [
        {column: row[column] for column in _AGGREGATE_COLUMNS if column in row}
        for row in rows
    ]
    write_text_atomic(
        directory / "aggregate.json",
        json.dumps(deterministic, indent=2, sort_keys=True) + "\n",
    )
    columns = list(_BASE_COLUMNS) + [
        column
        for column in _TRAJECTORY_COLUMNS
        if any(column in row for row in deterministic)
    ]
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=columns, restval="")
    writer.writeheader()
    for row in deterministic:
        writer.writerow({
            column: _csv_value(column, row[column])
            for column in columns
            if column in row
        })
    write_text_atomic(directory / "aggregate.csv", buffer.getvalue())


# --------------------------------------------------------------------------- #
# execution
# --------------------------------------------------------------------------- #
def run_matrix(
    spec: MatrixSpec,
    out_dir: str | pathlib.Path | None = None,
    workers: int = 1,
    resume: bool = False,
    progress=None,
) -> dict:
    """Execute a grid, optionally resumable on disk, optionally in parallel.

    Returns ``{"records", "aggregate", "executed", "skipped"}``.  With
    ``out_dir`` the store is consulted first: completed cells are skipped
    when ``resume=True`` (an existing non-empty store without ``resume`` is
    an error so stale results are never silently mixed), and
    ``aggregate.json``/``aggregate.csv`` artifacts are written next to
    ``results.jsonl``.  ``workers > 1`` fans cells out over a process pool;
    results are identical to a single-worker run because all randomness is
    keyed by cell coordinates.
    """
    if workers < 1:
        raise ValueError(f"workers must be at least 1, got {workers}")
    cells = spec.cells()
    store: ResultStore | None = None
    done: set[str] = set()
    if out_dir is not None:
        store = ResultStore(out_dir)
        store.ensure_spec(spec)
        done = store.completed_keys()
        if done and not resume:
            raise ValueError(
                f"{store.results_path} already holds {len(done)} completed "
                "cell(s); pass --resume to continue it or use a fresh --out "
                "directory"
            )
    pending = [cell for cell in cells if cell.key not in done]

    fresh: dict[str, dict] = {}

    def absorb(outcome: dict) -> None:
        row = outcome["row"]
        if store is not None:
            store.record(outcome["key"], row, outcome["timing"])
        # In-memory consumers (the experiment adapters) also want timings.
        fresh[outcome["key"]] = {**row, **{
            k: v for k, v in outcome["timing"].items() if k != "key"
        }, "key": outcome["key"]}
        if progress is not None:
            progress(len(done) + len(fresh), len(cells), outcome["key"])

    if pending:
        if workers == 1:
            for cell in pending:
                absorb(execute_cell(cell.payload()))
        else:
            with ProcessPoolExecutor(max_workers=min(workers, len(pending))) as pool:
                futures = [pool.submit(execute_cell, cell.payload()) for cell in pending]
                for future in as_completed(futures):
                    absorb(future.result())

    if store is not None:
        store.finalize()
        records = store.records()
        aggregate = aggregate_records(records)
        _write_aggregate(store.directory, aggregate)
    else:
        records = [fresh[cell.key] for cell in cells]
        aggregate = aggregate_records(records)
    return {
        "spec": spec,
        "records": records,
        "aggregate": aggregate,
        "executed": len(pending),
        "skipped": len(cells) - len(pending),
    }


# --------------------------------------------------------------------------- #
# smoke preset + CI accuracy gate
# --------------------------------------------------------------------------- #
def smoke_spec() -> MatrixSpec:
    """The small built-in grid behind ``repro matrix --smoke`` (CI's gate)."""
    return MatrixSpec(
        name="smoke",
        methods=("nonprivate", "privhp", "smooth"),
        domains=("interval",),
        generators=("gaussian_mixture",),
        epsilons=(1.0,),
        stream_sizes=(1024,),
        trials=3,
        base_seed=0,
        pruning_k=8,
    )


def check_smoke_ordering(rows: list[dict]) -> list[str]:
    """Accuracy sanity gate over aggregate rows; returns violation messages.

    At every grid point that contains them: the non-private floor must not
    measure worse than any private method, and PrivHP must not measure worse
    than the Smooth baseline (the paper's headline ordering).

    Example:
        >>> rows = [
        ...     {"method": "nonprivate", "domain": "interval", "generator": "g",
        ...      "epsilon": 1.0, "n": 64, "wasserstein": 0.01},
        ...     {"method": "privhp", "domain": "interval", "generator": "g",
        ...      "epsilon": 1.0, "n": 64, "wasserstein": 0.05},
        ...     {"method": "smooth", "domain": "interval", "generator": "g",
        ...      "epsilon": 1.0, "n": 64, "wasserstein": 0.04},
        ... ]
        >>> check_smoke_ordering(rows)
        ['interval/g/eps=1.0/n=64: PrivHP error 0.05 exceeds Smooth error 0.04']
    """
    violations = []
    groups: dict[tuple, dict[str, dict]] = {}
    for row in rows:
        point = (row["domain"], row["generator"], row["epsilon"], row["n"])
        groups.setdefault(point, {})[row["method"]] = row
    for point in sorted(groups, key=str):
        by_label = groups[point]
        where = f"{point[0]}/{point[1]}/eps={point[2]}/n={point[3]}"
        if "privhp" in by_label and "smooth" in by_label:
            privhp = by_label["privhp"]["wasserstein"]
            smooth = by_label["smooth"]["wasserstein"]
            if privhp > smooth:
                violations.append(
                    f"{where}: PrivHP error {privhp:g} exceeds Smooth error {smooth:g}"
                )
        if "nonprivate" in by_label:
            floor = by_label["nonprivate"]["wasserstein"]
            for label, row in sorted(by_label.items()):
                if label == "nonprivate":
                    continue
                if floor > row["wasserstein"]:
                    violations.append(
                        f"{where}: non-private floor {floor:g} exceeds "
                        f"{label} error {row['wasserstein']:g}"
                    )
    return violations


def check_epoch_ordering(rows: list[dict]) -> list[str]:
    """Per-epoch accuracy gate over trajectory-bearing aggregate rows.

    Applies the :func:`check_smoke_ordering` comparisons at every epoch where
    *both* methods in a pair have a measured value (one-shot methods only
    measure the final epoch, so pairs involving them are gated at the horizon
    only).  Rows without ``epoch_wasserstein_mean`` are ignored, so the gate
    composes with mixed static/scenario grids.

    Example:
        >>> rows = [
        ...     {"method": "nonprivate", "domain": "interval", "generator": "drift",
        ...      "epsilon": 1.0, "n": 64,
        ...      "epoch_wasserstein_mean": [None, 0.2]},
        ...     {"method": "privhp-continual", "domain": "interval",
        ...      "generator": "drift", "epsilon": 1.0, "n": 64,
        ...      "epoch_wasserstein_mean": [0.3, 0.1]},
        ... ]
        >>> check_epoch_ordering(rows)
        ['interval/drift/eps=1.0/n=64 epoch 1: non-private floor 0.2 exceeds privhp-continual error 0.1']
    """
    violations = []
    groups: dict[tuple, dict[str, list]] = {}
    for row in rows:
        trajectory = row.get("epoch_wasserstein_mean")
        if trajectory is None:
            continue
        point = (row["domain"], row["generator"], row["epsilon"], row["n"])
        groups.setdefault(point, {})[row["method"]] = list(trajectory)

    def compare(point, first_label, first, second_label, second) -> None:
        where = f"{point[0]}/{point[1]}/eps={point[2]}/n={point[3]}"
        for epoch, (low, high) in enumerate(zip(first, second)):
            if low is None or high is None:
                continue
            if low > high:
                violations.append(
                    f"{where} epoch {epoch}: {first_label} {low:g} exceeds "
                    f"{second_label} {high:g}"
                )

    for point in sorted(groups, key=str):
        by_label = groups[point]
        if "privhp" in by_label and "smooth" in by_label:
            compare(
                point,
                "PrivHP error", by_label["privhp"],
                "Smooth error", by_label["smooth"],
            )
        if "nonprivate" in by_label:
            floor = by_label["nonprivate"]
            for label in sorted(by_label):
                if label == "nonprivate":
                    continue
                compare(
                    point,
                    "non-private floor", floor,
                    f"{label} error", by_label[label],
                )
    return violations
