"""Shared plumbing for the experiment modules.

Provides deterministic RNG plumbing, batched ingestion through the unified
``repro.api`` surface, a generic "evaluate this list of methods on this
dataset" loop, and plain-text table formatting so every experiment prints
results in the same shape the paper's tables use.
"""

from __future__ import annotations

import numpy as np

from repro.api.builder import PrivHPBuilder
from repro.api.release import Release
from repro.api.summarizer import DEFAULT_BATCH_SIZE, ingest_batches
from repro.domain.base import Domain
from repro.metrics.evaluation import EvaluationResult, evaluate_method

__all__ = [
    "seeded_rng",
    "ingest_batches",
    "fit_release",
    "run_methods",
    "format_table",
    "rows_from_results",
    "domain_spec_for_dimension",
    "measured_row",
]


def seeded_rng(seed: int | None) -> np.random.Generator:
    """A fresh generator from a seed (or OS entropy when ``seed`` is None)."""
    return np.random.default_rng(seed)


def domain_spec_for_dimension(dimension: int) -> str:
    """The registry spec string for the unit domain of a given dimension."""
    return "interval" if dimension == 1 else f"hypercube:{int(dimension)}"


def measured_row(aggregate_row: dict) -> dict:
    """Map a matrix-runner aggregate row to the legacy measured-row columns.

    The experiment modules (table1, tradeoffs, ablations, skew) all report
    this same 6-column core, extended with their sweep parameter; sharing
    the mapping keeps their row schemas in lockstep.
    """
    return {
        "method": aggregate_row["method_name"],
        "wasserstein": aggregate_row["wasserstein"],
        "wasserstein_std": aggregate_row["wasserstein_std"],
        "memory_words": aggregate_row["memory_words"],
        "fit_seconds": aggregate_row.get("fit_seconds", 0.0),
        "sample_seconds": aggregate_row.get("sample_seconds", 0.0),
    }


def fit_release(
    domain: Domain | str,
    data,
    epsilon: float,
    pruning_k: int,
    seed: int | None = 0,
    batch_size: int = DEFAULT_BATCH_SIZE,
    **overrides,
) -> Release:
    """One-stop config -> fit -> release through the builder (batched path).

    This is the plumbing every experiment used to re-implement by hand;
    ``overrides`` are forwarded to the Corollary-1 defaults (``depth``,
    ``sketch_width``, ...).
    """
    builder = (
        PrivHPBuilder(domain)
        .epsilon(epsilon)
        .pruning_k(pruning_k)
        .stream_size(len(data))
        .seed(seed)
        .override(**overrides)
    )
    return ingest_batches(builder.build(), data, batch_size).release()


def run_methods(
    methods,
    data,
    domain: Domain,
    synthetic_size: int | None = None,
    repetitions: int = 3,
    seed: int | None = 0,
    parameters: dict | None = None,
) -> list[EvaluationResult]:
    """Evaluate every method on the same dataset with a shared seed stream."""
    rng = seeded_rng(seed)
    results = []
    for method in methods:
        results.append(
            evaluate_method(
                method,
                data,
                domain,
                synthetic_size=synthetic_size,
                repetitions=repetitions,
                rng=np.random.default_rng(rng.integers(0, 2**32 - 1)),
                parameters=parameters,
            )
        )
    return results


def rows_from_results(results: list[EvaluationResult]) -> list[dict]:
    """Convert evaluation results into flat row dictionaries."""
    return [result.as_row() for result in results]


def format_table(rows: list[dict], float_format: str = "{:.5g}") -> str:
    """Render a list of row dictionaries as an aligned plain-text table."""
    if not rows:
        return "(no rows)"
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)

    def render(value) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[render(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(column), *(len(line[index]) for line in rendered))
        for index, column in enumerate(columns)
    ]
    header = "  ".join(column.ljust(widths[index]) for index, column in enumerate(columns))
    separator = "  ".join("-" * width for width in widths)
    body = [
        "  ".join(line[index].ljust(widths[index]) for index in range(len(columns)))
        for line in rendered
    ]
    return "\n".join([header, separator, *body])
