"""Experiment T1: the empirical counterpart of the paper's Table 1.

For a chosen dimension, stream length and privacy budget, every method
(Smooth, SRRW, PMM, PrivHP, plus the non-private floor) is fitted on the same
workload and its measured 1-Wasserstein error and memory footprint are
reported next to the theoretical Table-1 bounds.  The claim being reproduced
is the *shape*: the hierarchical methods (PMM / SRRW) are the most accurate
but use memory proportional to ``eps * n`` (or ``d * n``); Smooth trails in
accuracy; PrivHP lands close to PMM in accuracy while holding one to two
orders of magnitude less state.

The grid is declared as a :class:`repro.experiments.runner.MatrixSpec`
(see :func:`table1_spec`) and executed through the shared matrix runner, so
the same comparison scales out over processes and resumes from a result
store when driven via ``repro matrix``.
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import make_domain
from repro.experiments.harness import (
    domain_spec_for_dimension,
    format_table,
    measured_row,
)
from repro.experiments.runner import MatrixSpec, dataset_for, run_matrix
from repro.metrics.tail import tail_norm
from repro.theory.comparison import table1_rows

__all__ = ["run_table1", "table1_spec"]


def table1_spec(
    dimension: int = 1,
    stream_size: int = 4096,
    epsilon: float = 1.0,
    pruning_k: int = 8,
    repetitions: int = 3,
    seed: int = 0,
    include_nonprivate: bool = True,
) -> MatrixSpec:
    """The Table-1 comparison grid as a declarative matrix spec."""
    methods = [
        {"name": "smooth", "params": {"order": 4 if dimension > 1 else 8}},
        {"name": "srrw", "params": {"max_depth": 14}},
        {"name": "pmm", "params": {"max_depth": 14}},
        "privhp",
    ]
    if include_nonprivate:
        methods.append("nonprivate")
    return MatrixSpec(
        name=f"table1-d{dimension}",
        methods=tuple(methods),
        domains=(domain_spec_for_dimension(dimension),),
        generators=("gaussian_mixture",),
        epsilons=(float(epsilon),),
        stream_sizes=(int(stream_size),),
        trials=int(repetitions),
        base_seed=int(seed),
        pruning_k=int(pruning_k),
    )


def run_table1(
    dimension: int = 1,
    stream_size: int = 4096,
    epsilon: float = 1.0,
    pruning_k: int = 8,
    repetitions: int = 3,
    seed: int = 0,
    include_nonprivate: bool = True,
    workers: int = 1,
) -> dict:
    """Run the Table-1 comparison and return predicted and measured rows."""
    spec = table1_spec(
        dimension=dimension,
        stream_size=stream_size,
        epsilon=epsilon,
        pruning_k=pruning_k,
        repetitions=repetitions,
        seed=seed,
        include_nonprivate=include_nonprivate,
    )
    outcome = run_matrix(spec, workers=workers)
    by_label = {row["method"]: row for row in outcome["aggregate"]}

    measured = []
    for entry in spec.methods:
        row = measured_row(by_label[entry.label])
        row.update({"dimension": dimension, "n": stream_size, "epsilon": epsilon})
        measured.append(row)

    domain = make_domain(spec.domains[0])
    tail = float(np.mean([
        tail_norm(
            dataset_for(spec, trial=trial),
            domain,
            level=min(12, 2 + int(np.log2(stream_size))),
            k=pruning_k,
        )
        for trial in range(spec.trials)
    ]))
    predicted = [
        row.as_dict()
        for row in table1_rows(dimension, stream_size, epsilon, pruning_k, tail)
    ]
    return {
        "dimension": dimension,
        "stream_size": stream_size,
        "epsilon": epsilon,
        "pruning_k": pruning_k,
        "tail_norm": tail,
        "predicted": predicted,
        "measured": measured,
    }


def main() -> None:  # pragma: no cover - manual entry point
    """Print the Table-1 reproduction for d = 1 and d = 2."""
    for dimension in (1, 2):
        report = run_table1(dimension=dimension)
        print(f"\n=== Table 1, d={dimension}, n={report['stream_size']}, "
              f"epsilon={report['epsilon']} ===")
        print("predicted (no leading constants):")
        print(format_table(report["predicted"]))
        print("measured:")
        print(format_table(report["measured"]))


if __name__ == "__main__":  # pragma: no cover
    main()
