"""Experiment T1: the empirical counterpart of the paper's Table 1.

For a chosen dimension, stream length and privacy budget, every method
(Smooth, SRRW, PMM, PrivHP, plus the non-private floor) is fitted on the same
workload and its measured 1-Wasserstein error and memory footprint are
reported next to the theoretical Table-1 bounds.  The claim being reproduced
is the *shape*: the hierarchical methods (PMM / SRRW) are the most accurate
but use memory proportional to ``eps * n`` (or ``d * n``); Smooth trails in
accuracy; PrivHP lands close to PMM in accuracy while holding one to two
orders of magnitude less state.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import (
    NonPrivateHistogramMethod,
    PMMMethod,
    PrivHPMethod,
    SRRWMethod,
    SmoothMethod,
)
from repro.domain.hypercube import Hypercube
from repro.domain.interval import UnitInterval
from repro.experiments.harness import format_table, run_methods
from repro.metrics.tail import tail_norm
from repro.stream.generators import gaussian_mixture_stream
from repro.theory.comparison import table1_rows

__all__ = ["run_table1"]


def _make_domain(dimension: int):
    if dimension == 1:
        return UnitInterval()
    return Hypercube(dimension)


def run_table1(
    dimension: int = 1,
    stream_size: int = 4096,
    epsilon: float = 1.0,
    pruning_k: int = 8,
    repetitions: int = 3,
    seed: int = 0,
    include_nonprivate: bool = True,
) -> dict:
    """Run the Table-1 comparison and return predicted and measured rows."""
    domain = _make_domain(dimension)
    rng = np.random.default_rng(seed)
    data = gaussian_mixture_stream(stream_size, dimension=dimension, rng=rng)

    methods = [
        SmoothMethod(domain, epsilon=epsilon, order=4 if dimension > 1 else 8),
        SRRWMethod(domain, epsilon=epsilon, max_depth=14),
        PMMMethod(domain, epsilon=epsilon, max_depth=14),
        PrivHPMethod(domain, epsilon=epsilon, pruning_k=pruning_k, seed=seed),
    ]
    if include_nonprivate:
        methods.append(NonPrivateHistogramMethod(domain))

    results = run_methods(
        methods,
        data,
        domain,
        repetitions=repetitions,
        seed=seed,
        parameters={"dimension": dimension, "n": stream_size, "epsilon": epsilon},
    )

    tail = tail_norm(data, domain, level=min(12, 2 + int(np.log2(stream_size))), k=pruning_k)
    predicted = [
        row.as_dict()
        for row in table1_rows(dimension, stream_size, epsilon, pruning_k, tail)
    ]
    measured = [result.as_row() for result in results]
    return {
        "dimension": dimension,
        "stream_size": stream_size,
        "epsilon": epsilon,
        "pruning_k": pruning_k,
        "tail_norm": tail,
        "predicted": predicted,
        "measured": measured,
    }


def main() -> None:  # pragma: no cover - manual entry point
    """Print the Table-1 reproduction for d = 1 and d = 2."""
    for dimension in (1, 2):
        report = run_table1(dimension=dimension)
        print(f"\n=== Table 1, d={dimension}, n={report['stream_size']}, "
              f"epsilon={report['epsilon']} ===")
        print("predicted (no leading constants):")
        print(format_table(report["predicted"]))
        print("measured:")
        print(format_table(report["measured"]))


if __name__ == "__main__":  # pragma: no cover
    main()
