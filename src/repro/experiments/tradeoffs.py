"""Experiments F-mem, F-eps, F-n: the trade-off curves behind Theorem 1.

* :func:`memory_tradeoff` sweeps the pruning parameter ``k`` (and therefore
  the memory budget ``M ~ k log^2 n``) at fixed ``n, epsilon`` and records the
  measured Wasserstein error -- the paper's "almost smooth interpolation
  between space usage and utility".
* :func:`epsilon_tradeoff` sweeps the privacy budget and checks the
  ``1/(eps n)`` behaviour of the noise term.
* :func:`stream_length_tradeoff` sweeps the stream length and records both the
  error and the memory held, verifying the ``O(k log^2 n)`` memory growth.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import PrivHPMethod
from repro.domain.hypercube import Hypercube
from repro.domain.interval import UnitInterval
from repro.metrics.evaluation import evaluate_method
from repro.metrics.tail import tail_norm
from repro.stream.generators import gaussian_mixture_stream, zipf_cell_stream
from repro.theory.bounds import corollary1_bound

__all__ = ["memory_tradeoff", "epsilon_tradeoff", "stream_length_tradeoff"]


def _make_domain(dimension: int):
    if dimension == 1:
        return UnitInterval()
    return Hypercube(dimension)


def memory_tradeoff(
    pruning_values=(2, 4, 8, 16, 32),
    dimension: int = 1,
    stream_size: int = 4096,
    epsilon: float = 1.0,
    repetitions: int = 3,
    seed: int = 0,
    workload: str = "zipf",
) -> list[dict]:
    """Utility as a function of the pruning parameter ``k`` (memory knob)."""
    domain = _make_domain(dimension)
    rng = np.random.default_rng(seed)
    if workload == "zipf":
        data = zipf_cell_stream(stream_size, dimension=dimension, exponent=1.2, rng=rng)
    else:
        data = gaussian_mixture_stream(stream_size, dimension=dimension, rng=rng)

    rows = []
    for pruning_k in pruning_values:
        method = PrivHPMethod(domain, epsilon=epsilon, pruning_k=int(pruning_k), seed=seed)
        result = evaluate_method(
            method,
            data,
            domain,
            repetitions=repetitions,
            rng=np.random.default_rng(seed + int(pruning_k)),
            parameters={"k": int(pruning_k)},
        )
        tail = tail_norm(data, domain, level=min(12, 2 + int(np.log2(stream_size))), k=int(pruning_k))
        row = result.as_row()
        row["predicted_bound"] = corollary1_bound(
            dimension, stream_size, epsilon, int(pruning_k), tail
        )
        row["tail_norm"] = tail
        rows.append(row)
    return rows


def epsilon_tradeoff(
    epsilons=(0.25, 0.5, 1.0, 2.0, 4.0),
    dimension: int = 1,
    stream_size: int = 4096,
    pruning_k: int = 8,
    repetitions: int = 3,
    seed: int = 0,
) -> list[dict]:
    """Utility as a function of the privacy budget epsilon."""
    domain = _make_domain(dimension)
    rng = np.random.default_rng(seed)
    data = gaussian_mixture_stream(stream_size, dimension=dimension, rng=rng)

    rows = []
    for epsilon in epsilons:
        method = PrivHPMethod(domain, epsilon=float(epsilon), pruning_k=pruning_k, seed=seed)
        result = evaluate_method(
            method,
            data,
            domain,
            repetitions=repetitions,
            rng=np.random.default_rng(seed + int(epsilon * 100)),
            parameters={"epsilon": float(epsilon)},
        )
        tail = tail_norm(data, domain, level=min(12, 2 + int(np.log2(stream_size))), k=pruning_k)
        row = result.as_row()
        row["predicted_bound"] = corollary1_bound(
            dimension, stream_size, float(epsilon), pruning_k, tail
        )
        rows.append(row)
    return rows


def stream_length_tradeoff(
    stream_sizes=(512, 1024, 2048, 4096, 8192),
    dimension: int = 1,
    epsilon: float = 1.0,
    pruning_k: int = 8,
    repetitions: int = 3,
    seed: int = 0,
) -> list[dict]:
    """Utility and memory as functions of the stream length ``n``."""
    domain = _make_domain(dimension)

    rows = []
    for stream_size in stream_sizes:
        rng = np.random.default_rng(seed)
        data = gaussian_mixture_stream(int(stream_size), dimension=dimension, rng=rng)
        method = PrivHPMethod(domain, epsilon=epsilon, pruning_k=pruning_k, seed=seed)
        result = evaluate_method(
            method,
            data,
            domain,
            repetitions=repetitions,
            rng=np.random.default_rng(seed + int(stream_size)),
            parameters={"n": int(stream_size)},
        )
        tail = tail_norm(
            data, domain, level=min(12, 2 + int(np.log2(stream_size))), k=pruning_k
        )
        row = result.as_row()
        row["predicted_bound"] = corollary1_bound(
            dimension, int(stream_size), epsilon, pruning_k, tail
        )
        rows.append(row)
    return rows
