"""Experiments F-mem, F-eps, F-n: the trade-off curves behind Theorem 1.

* :func:`memory_tradeoff` sweeps the pruning parameter ``k`` (and therefore
  the memory budget ``M ~ k log^2 n``) at fixed ``n, epsilon`` and records the
  measured Wasserstein error -- the paper's "almost smooth interpolation
  between space usage and utility".
* :func:`epsilon_tradeoff` sweeps the privacy budget and checks the
  ``1/(eps n)`` behaviour of the noise term.
* :func:`stream_length_tradeoff` sweeps the stream length and records both the
  error and the memory held, verifying the ``O(k log^2 n)`` memory growth.

Each sweep is one axis of a :class:`repro.experiments.runner.MatrixSpec`
(``k`` as labelled method variants, ``epsilon`` and ``n`` as native axes)
executed through the shared matrix runner.
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import make_domain
from repro.experiments.harness import domain_spec_for_dimension, measured_row
from repro.experiments.runner import MatrixSpec, dataset_for, run_matrix
from repro.metrics.tail import tail_norm
from repro.theory.bounds import corollary1_bound

__all__ = ["memory_tradeoff", "epsilon_tradeoff", "stream_length_tradeoff"]


def _workload_entry(workload: str) -> dict | str:
    if workload == "zipf":
        return {"name": "zipf", "params": {"exponent": 1.2}}
    return "gaussian_mixture"


def _trial_datasets(spec: MatrixSpec, size_index: int = 0) -> list:
    """The per-trial datasets of one grid point (shared across methods)."""
    return [
        dataset_for(spec, size_index=size_index, trial=trial)
        for trial in range(spec.trials)
    ]


def _mean_tail(
    spec: MatrixSpec,
    pruning_k: int,
    size_index: int = 0,
    datasets: list | None = None,
) -> float:
    """Mean tail norm over the trial datasets of one grid point.

    ``datasets`` lets a caller sweeping ``k`` over the *same* grid point
    generate the trial data once instead of once per ``k``.
    """
    domain = make_domain(spec.domains[0])
    level = min(12, 2 + int(np.log2(spec.stream_sizes[size_index])))
    if datasets is None:
        datasets = _trial_datasets(spec, size_index)
    return float(np.mean([
        tail_norm(data, domain, level=level, k=int(pruning_k))
        for data in datasets
    ]))


def memory_tradeoff(
    pruning_values=(2, 4, 8, 16, 32),
    dimension: int = 1,
    stream_size: int = 4096,
    epsilon: float = 1.0,
    repetitions: int = 3,
    seed: int = 0,
    workload: str = "zipf",
    workers: int = 1,
) -> list[dict]:
    """Utility as a function of the pruning parameter ``k`` (memory knob)."""
    spec = MatrixSpec(
        name="memory-tradeoff",
        methods=tuple(
            {"name": "privhp", "label": f"privhp-k{int(k)}",
             "params": {"pruning_k": int(k)}}
            for k in pruning_values
        ),
        domains=(domain_spec_for_dimension(dimension),),
        generators=(_workload_entry(workload),),
        epsilons=(float(epsilon),),
        stream_sizes=(int(stream_size),),
        trials=int(repetitions),
        base_seed=int(seed),
    )
    outcome = run_matrix(spec, workers=workers)
    by_label = {row["method"]: row for row in outcome["aggregate"]}
    datasets = _trial_datasets(spec)

    rows = []
    for pruning_k in pruning_values:
        row = measured_row(by_label[f"privhp-k{int(pruning_k)}"])
        row["k"] = int(pruning_k)
        tail = _mean_tail(spec, int(pruning_k), datasets=datasets)
        row["predicted_bound"] = corollary1_bound(
            dimension, stream_size, epsilon, int(pruning_k), tail
        )
        row["tail_norm"] = tail
        rows.append(row)
    return rows


def epsilon_tradeoff(
    epsilons=(0.25, 0.5, 1.0, 2.0, 4.0),
    dimension: int = 1,
    stream_size: int = 4096,
    pruning_k: int = 8,
    repetitions: int = 3,
    seed: int = 0,
    workers: int = 1,
) -> list[dict]:
    """Utility as a function of the privacy budget epsilon."""
    spec = MatrixSpec(
        name="epsilon-tradeoff",
        methods=("privhp",),
        domains=(domain_spec_for_dimension(dimension),),
        generators=("gaussian_mixture",),
        epsilons=tuple(float(value) for value in epsilons),
        stream_sizes=(int(stream_size),),
        trials=int(repetitions),
        base_seed=int(seed),
        pruning_k=int(pruning_k),
    )
    outcome = run_matrix(spec, workers=workers)
    by_epsilon = {row["epsilon"]: row for row in outcome["aggregate"]}
    tail = _mean_tail(spec, pruning_k)

    rows = []
    for epsilon in epsilons:
        row = measured_row(by_epsilon[float(epsilon)])
        row["epsilon"] = float(epsilon)
        row["predicted_bound"] = corollary1_bound(
            dimension, stream_size, float(epsilon), pruning_k, tail
        )
        rows.append(row)
    return rows


def stream_length_tradeoff(
    stream_sizes=(512, 1024, 2048, 4096, 8192),
    dimension: int = 1,
    epsilon: float = 1.0,
    pruning_k: int = 8,
    repetitions: int = 3,
    seed: int = 0,
    workers: int = 1,
) -> list[dict]:
    """Utility and memory as functions of the stream length ``n``."""
    spec = MatrixSpec(
        name="stream-length-tradeoff",
        methods=("privhp",),
        domains=(domain_spec_for_dimension(dimension),),
        generators=("gaussian_mixture",),
        epsilons=(float(epsilon),),
        stream_sizes=tuple(int(size) for size in stream_sizes),
        trials=int(repetitions),
        base_seed=int(seed),
        pruning_k=int(pruning_k),
    )
    outcome = run_matrix(spec, workers=workers)
    by_size = {row["n"]: row for row in outcome["aggregate"]}

    rows = []
    for size_index, stream_size in enumerate(int(size) for size in stream_sizes):
        row = measured_row(by_size[stream_size])
        row["n"] = stream_size
        tail = _mean_tail(spec, pruning_k, size_index=size_index)
        row["predicted_bound"] = corollary1_bound(
            dimension, stream_size, epsilon, pruning_k, tail
        )
        rows.append(row)
    return rows
