"""Experiment harness: the code that regenerates the paper's tables and figures.

Each module corresponds to one experiment family from DESIGN.md's index and is
driven by the benchmarks under ``benchmarks/`` (and runnable directly, e.g.
``python -m repro.experiments.table1``).  Functions return plain lists of row
dictionaries so benchmarks, tests and examples can all consume them.
"""

from repro.experiments.harness import format_table, run_methods, seeded_rng
from repro.experiments.runner import (
    MatrixSpec,
    ResultStore,
    aggregate_records,
    check_smoke_ordering,
    load_spec,
    run_matrix,
    smoke_spec,
)
from repro.experiments.table1 import run_table1, table1_spec
from repro.experiments.tradeoffs import (
    epsilon_tradeoff,
    memory_tradeoff,
    stream_length_tradeoff,
)
from repro.experiments.skew import skew_experiment
from repro.experiments.performance import throughput_experiment
from repro.experiments.ablations import (
    budget_ablation,
    consistency_ablation,
    sketch_ablation,
)

__all__ = [
    "MatrixSpec",
    "ResultStore",
    "aggregate_records",
    "budget_ablation",
    "check_smoke_ordering",
    "consistency_ablation",
    "epsilon_tradeoff",
    "format_table",
    "load_spec",
    "memory_tradeoff",
    "run_matrix",
    "run_methods",
    "run_table1",
    "seeded_rng",
    "sketch_ablation",
    "skew_experiment",
    "smoke_spec",
    "stream_length_tradeoff",
    "table1_spec",
    "throughput_experiment",
]
