"""Experiment harness: the code that regenerates the paper's tables and figures.

Each module corresponds to one experiment family from DESIGN.md's index and is
driven by the benchmarks under ``benchmarks/`` (and runnable directly, e.g.
``python -m repro.experiments.table1``).  Functions return plain lists of row
dictionaries so benchmarks, tests and examples can all consume them.
"""

from repro.experiments.harness import format_table, run_methods, seeded_rng
from repro.experiments.table1 import run_table1
from repro.experiments.tradeoffs import (
    epsilon_tradeoff,
    memory_tradeoff,
    stream_length_tradeoff,
)
from repro.experiments.skew import skew_experiment
from repro.experiments.performance import throughput_experiment
from repro.experiments.ablations import (
    budget_ablation,
    consistency_ablation,
    sketch_ablation,
)

__all__ = [
    "budget_ablation",
    "consistency_ablation",
    "epsilon_tradeoff",
    "format_table",
    "memory_tradeoff",
    "run_methods",
    "run_table1",
    "seeded_rng",
    "sketch_ablation",
    "skew_experiment",
    "stream_length_tradeoff",
    "throughput_experiment",
]
