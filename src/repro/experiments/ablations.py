"""Ablation experiments A-budget, A-consistency and A-sketch.

These probe the design choices DESIGN.md calls out:

* **Budget allocation** (Lemma 5): the optimal Lagrange split of epsilon
  across levels versus a uniform split.
* **Consistency** (Section 4.4): Algorithm 3 enabled versus disabled.
* **Sketch parameters** (Lemma 4): error as a function of sketch width and
  depth, and Count-Min versus the counter-based Misra-Gries summary the
  related work uses.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import PrivHPMethod
from repro.domain.hypercube import Hypercube
from repro.domain.interval import UnitInterval
from repro.metrics.evaluation import evaluate_method
from repro.sketch.countmin import CountMinSketch
from repro.sketch.misra_gries import MisraGries
from repro.stream.generators import gaussian_mixture_stream, zipf_cell_stream

__all__ = ["budget_ablation", "consistency_ablation", "sketch_ablation"]


def _make_domain(dimension: int):
    if dimension == 1:
        return UnitInterval()
    return Hypercube(dimension)


def budget_ablation(
    dimension: int = 1,
    stream_size: int = 4096,
    epsilon: float = 1.0,
    pruning_k: int = 8,
    repetitions: int = 3,
    seed: int = 0,
) -> list[dict]:
    """Optimal (Lemma 5) versus uniform per-level budget allocation."""
    domain = _make_domain(dimension)
    rng = np.random.default_rng(seed)
    data = gaussian_mixture_stream(stream_size, dimension=dimension, rng=rng)

    rows = []
    for allocation in ("optimal", "uniform"):
        method = PrivHPMethod(
            domain,
            epsilon=epsilon,
            pruning_k=pruning_k,
            seed=seed,
            budget_allocation=allocation,
        )
        result = evaluate_method(
            method,
            data,
            domain,
            repetitions=repetitions,
            rng=np.random.default_rng(seed),
            parameters={"allocation": allocation},
        )
        rows.append(result.as_row())
    return rows


def consistency_ablation(
    dimension: int = 1,
    stream_size: int = 4096,
    epsilon: float = 1.0,
    pruning_k: int = 8,
    repetitions: int = 3,
    seed: int = 0,
) -> list[dict]:
    """Algorithm 3 enabled versus disabled while growing the partition."""
    domain = _make_domain(dimension)
    rng = np.random.default_rng(seed)
    data = gaussian_mixture_stream(stream_size, dimension=dimension, rng=rng)

    rows = []
    for enabled in (True, False):
        method = PrivHPMethod(
            domain,
            epsilon=epsilon,
            pruning_k=pruning_k,
            seed=seed,
            apply_consistency=enabled,
        )
        result = evaluate_method(
            method,
            data,
            domain,
            repetitions=repetitions,
            rng=np.random.default_rng(seed),
            parameters={"consistency": enabled},
        )
        rows.append(result.as_row())
    return rows


def sketch_ablation(
    widths=(4, 8, 16, 32, 64),
    depths=(2, 4, 8, 12),
    stream_size: int = 8192,
    level: int = 10,
    zipf_exponent: float = 1.2,
    seed: int = 0,
) -> dict:
    """Frequency-estimation error of Count-Min (per width and depth) vs Misra-Gries.

    The workload is the level-``level`` cell-index stream of a Zipf-skewed
    dataset -- exactly the vectors PrivHP sketches -- and the reported error is
    the mean absolute estimation error over the distinct cells, which is the
    quantity bounded by Lemma 4.
    """
    domain = UnitInterval()
    rng = np.random.default_rng(seed)
    data = zipf_cell_stream(stream_size, dimension=1, level=level, exponent=zipf_exponent, rng=rng)
    keys = [domain.locate(point, level) for point in data]
    true_counts: dict = {}
    for key in keys:
        true_counts[key] = true_counts.get(key, 0) + 1

    def mean_absolute_error(estimator) -> float:
        errors = [abs(estimator.query(key) - count) for key, count in true_counts.items()]
        return float(np.mean(errors))

    width_rows = []
    for width in widths:
        sketch = CountMinSketch(width=int(width), depth=6, seed=seed)
        sketch.update_many(keys)
        width_rows.append(
            {"width": int(width), "depth": 6, "mean_abs_error": mean_absolute_error(sketch)}
        )

    depth_rows = []
    for depth in depths:
        sketch = CountMinSketch(width=16, depth=int(depth), seed=seed)
        sketch.update_many(keys)
        depth_rows.append(
            {"width": 16, "depth": int(depth), "mean_abs_error": mean_absolute_error(sketch)}
        )

    reference = CountMinSketch(width=16, depth=6, seed=seed)
    reference.update_many(keys)
    misra = MisraGries(capacity=16)
    misra.update_many(keys)
    comparison_rows = [
        {"sketch": "CountMin(w=16,j=6)", "mean_abs_error": mean_absolute_error(reference)},
        {"sketch": "MisraGries(c=16)", "mean_abs_error": mean_absolute_error(misra)},
    ]
    return {
        "width_sweep": width_rows,
        "depth_sweep": depth_rows,
        "sketch_comparison": comparison_rows,
        "distinct_cells": len(true_counts),
    }
