"""Ablation experiments A-budget, A-consistency and A-sketch.

These probe the design choices DESIGN.md calls out:

* **Budget allocation** (Lemma 5): the optimal Lagrange split of epsilon
  across levels versus a uniform split.
* **Consistency** (Section 4.4): Algorithm 3 enabled versus disabled.
* **Sketch parameters** (Lemma 4): error as a function of sketch width and
  depth, and Count-Min versus the counter-based Misra-Gries summary the
  related work uses.

The method-level ablations are PrivHP configuration variants on the
``methods`` axis of a :class:`repro.experiments.runner.MatrixSpec`; the
sketch ablation probes the sketch structures directly and stays a plain
loop.
"""

from __future__ import annotations

import numpy as np

from repro.domain.interval import UnitInterval
from repro.experiments.harness import domain_spec_for_dimension, measured_row
from repro.experiments.runner import MatrixSpec, run_matrix
from repro.sketch.countmin import CountMinSketch
from repro.sketch.misra_gries import MisraGries
from repro.stream.generators import zipf_cell_stream

__all__ = ["budget_ablation", "consistency_ablation", "sketch_ablation"]


def _privhp_variant_rows(
    variants: dict[str, dict],
    parameter_name: str,
    parameter_values: dict[str, object],
    dimension: int,
    stream_size: int,
    epsilon: float,
    pruning_k: int,
    repetitions: int,
    seed: int,
    workers: int,
) -> list[dict]:
    """Evaluate labelled PrivHP config variants on one shared grid point."""
    spec = MatrixSpec(
        name=f"ablation-{parameter_name}",
        methods=tuple(
            {"name": "privhp", "label": label, "params": params}
            for label, params in variants.items()
        ),
        domains=(domain_spec_for_dimension(dimension),),
        generators=("gaussian_mixture",),
        epsilons=(float(epsilon),),
        stream_sizes=(int(stream_size),),
        trials=int(repetitions),
        base_seed=int(seed),
        pruning_k=int(pruning_k),
    )
    outcome = run_matrix(spec, workers=workers)
    by_label = {row["method"]: row for row in outcome["aggregate"]}

    rows = []
    for label in variants:
        row = measured_row(by_label[label])
        row[parameter_name] = parameter_values[label]
        rows.append(row)
    return rows


def budget_ablation(
    dimension: int = 1,
    stream_size: int = 4096,
    epsilon: float = 1.0,
    pruning_k: int = 8,
    repetitions: int = 3,
    seed: int = 0,
    workers: int = 1,
) -> list[dict]:
    """Optimal (Lemma 5) versus uniform per-level budget allocation."""
    return _privhp_variant_rows(
        variants={
            "budget-optimal": {"budget_allocation": "optimal"},
            "budget-uniform": {"budget_allocation": "uniform"},
        },
        parameter_name="allocation",
        parameter_values={"budget-optimal": "optimal", "budget-uniform": "uniform"},
        dimension=dimension,
        stream_size=stream_size,
        epsilon=epsilon,
        pruning_k=pruning_k,
        repetitions=repetitions,
        seed=seed,
        workers=workers,
    )


def consistency_ablation(
    dimension: int = 1,
    stream_size: int = 4096,
    epsilon: float = 1.0,
    pruning_k: int = 8,
    repetitions: int = 3,
    seed: int = 0,
    workers: int = 1,
) -> list[dict]:
    """Algorithm 3 enabled versus disabled while growing the partition."""
    return _privhp_variant_rows(
        variants={
            "consistency-on": {"apply_consistency": True},
            "consistency-off": {"apply_consistency": False},
        },
        parameter_name="consistency",
        parameter_values={"consistency-on": True, "consistency-off": False},
        dimension=dimension,
        stream_size=stream_size,
        epsilon=epsilon,
        pruning_k=pruning_k,
        repetitions=repetitions,
        seed=seed,
        workers=workers,
    )


def sketch_ablation(
    widths=(4, 8, 16, 32, 64),
    depths=(2, 4, 8, 12),
    stream_size: int = 8192,
    level: int = 10,
    zipf_exponent: float = 1.2,
    seed: int = 0,
) -> dict:
    """Frequency-estimation error of Count-Min (per width and depth) vs Misra-Gries.

    The workload is the level-``level`` cell-index stream of a Zipf-skewed
    dataset -- exactly the vectors PrivHP sketches -- and the reported error is
    the mean absolute estimation error over the distinct cells, which is the
    quantity bounded by Lemma 4.
    """
    domain = UnitInterval()
    rng = np.random.default_rng(seed)
    data = zipf_cell_stream(stream_size, dimension=1, level=level, exponent=zipf_exponent, rng=rng)
    keys = [domain.locate(point, level) for point in data]
    true_counts: dict = {}
    for key in keys:
        true_counts[key] = true_counts.get(key, 0) + 1

    def mean_absolute_error(estimator) -> float:
        errors = [abs(estimator.query(key) - count) for key, count in true_counts.items()]
        return float(np.mean(errors))

    width_rows = []
    for width in widths:
        sketch = CountMinSketch(width=int(width), depth=6, seed=seed)
        sketch.update_many(keys)
        width_rows.append(
            {"width": int(width), "depth": 6, "mean_abs_error": mean_absolute_error(sketch)}
        )

    depth_rows = []
    for depth in depths:
        sketch = CountMinSketch(width=16, depth=int(depth), seed=seed)
        sketch.update_many(keys)
        depth_rows.append(
            {"width": 16, "depth": int(depth), "mean_abs_error": mean_absolute_error(sketch)}
        )

    reference = CountMinSketch(width=16, depth=6, seed=seed)
    reference.update_many(keys)
    misra = MisraGries(capacity=16)
    misra.update_many(keys)
    comparison_rows = [
        {"sketch": "CountMin(w=16,j=6)", "mean_abs_error": mean_absolute_error(reference)},
        {"sketch": "MisraGries(c=16)", "mean_abs_error": mean_absolute_error(misra)},
    ]
    return {
        "width_sweep": width_rows,
        "depth_sweep": depth_rows,
        "sketch_comparison": comparison_rows,
        "distinct_cells": len(true_counts),
    }
