"""Experiment F-perf: update throughput and memory growth (Corollary 1).

Corollary 1 claims ``O(log(eps n))`` update time and ``M = O(k log^2 n)``
memory.  The experiment streams workloads of increasing length through PrivHP,
measuring (a) per-item update latency of the scalar loop, (b) the throughput
of the vectorised ``update_batch`` path on the same data, (c) the words of
state held, and (d) the time to grow the partition and draw synthetic data,
and reports the ``k log^2 n`` prediction next to the measured words so the
growth rates can be compared.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.config import PrivHPConfig
from repro.core.privhp import PrivHP
from repro.domain.hypercube import Hypercube
from repro.domain.interval import UnitInterval
from repro.experiments.harness import ingest_batches
from repro.memory.accounting import measure_privhp
from repro.stream.generators import gaussian_mixture_stream
from repro.stream.stream import DataStream
from repro.theory.bounds import memory_words_bound

__all__ = ["throughput_experiment", "batch_speedup_experiment"]


def throughput_experiment(
    stream_sizes=(1024, 2048, 4096, 8192),
    dimension: int = 1,
    epsilon: float = 1.0,
    pruning_k: int = 8,
    synthetic_size: int = 1024,
    seed: int = 0,
    batch_size: int = 8192,
) -> list[dict]:
    """Measure update latency, batch throughput, finalize latency and memory."""
    domain = UnitInterval() if dimension == 1 else Hypercube(dimension)

    rows = []
    for stream_size in stream_sizes:
        rng = np.random.default_rng(seed)
        data = gaussian_mixture_stream(int(stream_size), dimension=dimension, rng=rng)
        config = PrivHPConfig.from_stream_size(
            stream_size=int(stream_size), epsilon=epsilon, pruning_k=pruning_k, seed=seed
        )
        algorithm = PrivHP(domain, config, rng=np.random.default_rng(seed))

        stream = DataStream(data, name=f"n={stream_size}")
        stats = stream.feed(algorithm)

        batched = PrivHP(domain, config, rng=np.random.default_rng(seed))
        start = time.perf_counter()
        ingest_batches(batched, data, batch_size)
        batch_seconds = time.perf_counter() - start

        start = time.perf_counter()
        release = algorithm.release()
        finalize_seconds = time.perf_counter() - start

        start = time.perf_counter()
        release.sample(synthetic_size)
        sample_seconds = time.perf_counter() - start

        report = measure_privhp(algorithm)
        rows.append(
            {
                "n": int(stream_size),
                "updates_per_second": stats.items_per_second,
                "seconds_per_update": stats.seconds_per_item,
                "batch_items_per_second": (
                    int(stream_size) / batch_seconds if batch_seconds > 0 else 0.0
                ),
                "batch_speedup": (
                    stats.seconds_per_item * int(stream_size) / batch_seconds
                    if batch_seconds > 0
                    else 0.0
                ),
                "finalize_seconds": finalize_seconds,
                "sample_seconds": sample_seconds,
                "memory_words": report.total_words,
                "memory_bound_k_log2n": memory_words_bound(int(stream_size), pruning_k),
                "depth_L": config.depth,
                "cutoff_L_star": config.level_cutoff,
            }
        )
    return rows


def batch_speedup_experiment(
    stream_size: int = 100_000,
    dimension: int = 1,
    epsilon: float = 1.0,
    pruning_k: int = 8,
    seed: int = 0,
    batch_size: int = 16384,
) -> dict:
    """Head-to-head: per-item ``update`` loop vs vectorised ``update_batch``.

    Returns one row with both throughputs and their ratio, on the same data
    and configuration; this backs the ingestion-throughput acceptance gate in
    ``benchmarks/bench_performance.py``.
    """
    domain = UnitInterval() if dimension == 1 else Hypercube(dimension)
    rng = np.random.default_rng(seed)
    data = gaussian_mixture_stream(int(stream_size), dimension=dimension, rng=rng)
    config = PrivHPConfig.from_stream_size(
        stream_size=int(stream_size), epsilon=epsilon, pruning_k=pruning_k, seed=seed
    )

    loop_algorithm = PrivHP(domain, config, rng=np.random.default_rng(seed))
    start = time.perf_counter()
    for point in data:
        loop_algorithm.update(point)
    loop_seconds = time.perf_counter() - start

    batch_algorithm = PrivHP(domain, config, rng=np.random.default_rng(seed))
    start = time.perf_counter()
    ingest_batches(batch_algorithm, data, batch_size)
    batch_seconds = time.perf_counter() - start

    return {
        "n": int(stream_size),
        "loop_items_per_second": int(stream_size) / loop_seconds,
        "batch_items_per_second": int(stream_size) / batch_seconds,
        "speedup": loop_seconds / batch_seconds,
        "batch_size": int(batch_size),
        "depth_L": config.depth,
        "cutoff_L_star": config.level_cutoff,
    }
