"""Experiment F-perf: update throughput and memory growth (Corollary 1).

Corollary 1 claims ``O(log(eps n))`` update time and ``M = O(k log^2 n)``
memory.  The experiment streams workloads of increasing length through PrivHP,
measuring (a) per-item update latency, (b) the words of state held, and
(c) the time to grow the partition and draw synthetic data, and reports the
``k log^2 n`` prediction next to the measured words so the growth rates can be
compared.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.config import PrivHPConfig
from repro.core.privhp import PrivHP
from repro.domain.hypercube import Hypercube
from repro.domain.interval import UnitInterval
from repro.memory.accounting import measure_privhp
from repro.stream.generators import gaussian_mixture_stream
from repro.stream.stream import DataStream
from repro.theory.bounds import memory_words_bound

__all__ = ["throughput_experiment"]


def throughput_experiment(
    stream_sizes=(1024, 2048, 4096, 8192),
    dimension: int = 1,
    epsilon: float = 1.0,
    pruning_k: int = 8,
    synthetic_size: int = 1024,
    seed: int = 0,
) -> list[dict]:
    """Measure update latency, finalize latency and memory across stream lengths."""
    domain = UnitInterval() if dimension == 1 else Hypercube(dimension)

    rows = []
    for stream_size in stream_sizes:
        rng = np.random.default_rng(seed)
        data = gaussian_mixture_stream(int(stream_size), dimension=dimension, rng=rng)
        config = PrivHPConfig.from_stream_size(
            stream_size=int(stream_size), epsilon=epsilon, pruning_k=pruning_k, seed=seed
        )
        algorithm = PrivHP(domain, config, rng=np.random.default_rng(seed))

        stream = DataStream(data, name=f"n={stream_size}")
        stats = stream.feed(algorithm)

        start = time.perf_counter()
        generator = algorithm.finalize()
        finalize_seconds = time.perf_counter() - start

        start = time.perf_counter()
        generator.sample(synthetic_size)
        sample_seconds = time.perf_counter() - start

        report = measure_privhp(algorithm)
        rows.append(
            {
                "n": int(stream_size),
                "updates_per_second": stats.items_per_second,
                "seconds_per_update": stats.seconds_per_item,
                "finalize_seconds": finalize_seconds,
                "sample_seconds": sample_seconds,
                "memory_words": report.total_words,
                "memory_bound_k_log2n": memory_words_bound(int(stream_size), pruning_k),
                "depth_L": config.depth,
                "cutoff_L_star": config.level_cutoff,
            }
        )
    return rows
