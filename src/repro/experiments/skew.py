"""Experiment F-skew: the approximation term's dependence on data skew.

Theorem 3's ``Delta_approx`` term scales with ``||tail_k||_1``: for highly
skewed streams (mass concentrated in few cells) pruning is nearly free, while
for uniform streams it dominates.  The experiment sweeps the Zipf exponent of
the workload, records the measured tail norm and the measured utility of
PrivHP, and reports the theoretical bound so the monotone relationship between
skew and utility can be verified.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import PrivHPMethod
from repro.domain.hypercube import Hypercube
from repro.domain.interval import UnitInterval
from repro.metrics.evaluation import evaluate_method
from repro.metrics.tail import tail_norm
from repro.stream.generators import zipf_cell_stream
from repro.theory.bounds import corollary1_bound

__all__ = ["skew_experiment"]


def skew_experiment(
    exponents=(0.0, 0.5, 1.0, 1.5, 2.0),
    dimension: int = 1,
    stream_size: int = 4096,
    epsilon: float = 1.0,
    pruning_k: int = 8,
    repetitions: int = 3,
    seed: int = 0,
    cell_level: int = 8,
) -> list[dict]:
    """Utility of PrivHP as a function of the workload's Zipf skew exponent."""
    domain = UnitInterval() if dimension == 1 else Hypercube(dimension)

    rows = []
    for exponent in exponents:
        rng = np.random.default_rng(seed)
        data = zipf_cell_stream(
            stream_size,
            dimension=dimension,
            level=cell_level,
            exponent=float(exponent),
            rng=rng,
        )
        method = PrivHPMethod(domain, epsilon=epsilon, pruning_k=pruning_k, seed=seed)
        result = evaluate_method(
            method,
            data,
            domain,
            repetitions=repetitions,
            rng=np.random.default_rng(seed + int(exponent * 100)),
            parameters={"zipf_exponent": float(exponent)},
        )
        tail = tail_norm(data, domain, level=cell_level, k=pruning_k)
        row = result.as_row()
        row["tail_norm"] = tail
        row["tail_fraction"] = tail / stream_size
        row["predicted_bound"] = corollary1_bound(
            dimension, stream_size, epsilon, pruning_k, tail
        )
        rows.append(row)
    return rows
