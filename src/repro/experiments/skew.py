"""Experiment F-skew: the approximation term's dependence on data skew.

Theorem 3's ``Delta_approx`` term scales with ``||tail_k||_1``: for highly
skewed streams (mass concentrated in few cells) pruning is nearly free, while
for uniform streams it dominates.  The experiment sweeps the Zipf exponent of
the workload -- declared as labelled ``zipf`` generator variants on the
``generators`` axis of a :class:`repro.experiments.runner.MatrixSpec` --
records the measured tail norm and the measured utility of PrivHP, and
reports the theoretical bound so the monotone relationship between skew and
utility can be verified.
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import make_domain
from repro.experiments.harness import domain_spec_for_dimension, measured_row
from repro.experiments.runner import MatrixSpec, dataset_for, run_matrix
from repro.metrics.tail import tail_norm
from repro.theory.bounds import corollary1_bound

__all__ = ["skew_experiment"]


def skew_experiment(
    exponents=(0.0, 0.5, 1.0, 1.5, 2.0),
    dimension: int = 1,
    stream_size: int = 4096,
    epsilon: float = 1.0,
    pruning_k: int = 8,
    repetitions: int = 3,
    seed: int = 0,
    cell_level: int = 8,
    workers: int = 1,
) -> list[dict]:
    """Utility of PrivHP as a function of the workload's Zipf skew exponent."""
    spec = MatrixSpec(
        name="skew",
        methods=("privhp",),
        domains=(domain_spec_for_dimension(dimension),),
        generators=tuple(
            {"name": "zipf", "label": f"zipf-{float(exponent):g}",
             "params": {"level": int(cell_level), "exponent": float(exponent)}}
            for exponent in exponents
        ),
        epsilons=(float(epsilon),),
        stream_sizes=(int(stream_size),),
        trials=int(repetitions),
        base_seed=int(seed),
        pruning_k=int(pruning_k),
    )
    outcome = run_matrix(spec, workers=workers)
    by_generator = {row["generator"]: row for row in outcome["aggregate"]}
    domain = make_domain(spec.domains[0])

    rows = []
    for generator_index, exponent in enumerate(exponents):
        aggregate_row = by_generator[f"zipf-{float(exponent):g}"]
        tail = float(np.mean([
            tail_norm(
                dataset_for(spec, generator_index=generator_index, trial=trial),
                domain,
                level=cell_level,
                k=pruning_k,
            )
            for trial in range(spec.trials)
        ]))
        row = measured_row(aggregate_row)
        row.update({
            "zipf_exponent": float(exponent),
            "tail_norm": tail,
            "tail_fraction": tail / stream_size,
            "predicted_bound": corollary1_bound(
                dimension, stream_size, epsilon, pruning_k, tail
            ),
        })
        rows.append(row)
    return rows
