"""The unit interval ``[0, 1]`` with dyadic splits (the paper's d=1 case).

Implemented directly (rather than as ``Hypercube(1)``) so points can be plain
floats, which keeps the d=1 experiments and the quantile/SRRW baselines free
of array boilerplate; the decomposition is identical to ``Hypercube(1)`` and a
test asserts that the two agree cell-by-cell.
"""

from __future__ import annotations

import numpy as np

from repro.domain.base import Cell, Domain, validate_cell

__all__ = ["UnitInterval"]


class UnitInterval(Domain):
    """``[0,1]`` with absolute-difference metric and dyadic binary splits."""

    dimension = 1

    def diameter(self) -> float:
        """Length of the interval."""
        return 1.0

    def distance(self, point_a, point_b) -> float:
        """Absolute difference."""
        return float(abs(float(point_a) - float(point_b)))

    def cell_bounds(self, theta: Cell) -> tuple[float, float]:
        """Endpoints of the dyadic interval indexed by ``theta``."""
        theta = validate_cell(theta)
        lower, upper = 0.0, 1.0
        for bit in theta:
            mid = 0.5 * (lower + upper)
            if bit == 0:
                upper = mid
            else:
                lower = mid
        return lower, upper

    def cell_diameter(self, theta: Cell) -> float:
        """Length ``2^{-level}`` of the dyadic cell."""
        return 2.0 ** (-len(validate_cell(theta)))

    def level_max_diameter(self, level: int) -> float:
        """``gamma_l = 2^{-l}``."""
        if level < 0:
            raise ValueError(f"level must be non-negative, got {level}")
        return 2.0 ** (-level)

    def contains(self, point) -> bool:
        """Whether the scalar lies in ``[0, 1]``."""
        try:
            value = float(point)
        except (TypeError, ValueError):
            return False
        return 0.0 <= value <= 1.0

    def locate(self, point, level: int) -> Cell:
        """Bit index of the level-``level`` dyadic interval containing ``point``."""
        if level < 0:
            raise ValueError(f"level must be non-negative, got {level}")
        value = float(point)
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"point {value} lies outside [0, 1]")
        lower, upper = 0.0, 1.0
        bits: list[int] = []
        for _ in range(level):
            mid = 0.5 * (lower + upper)
            if value >= mid:
                bits.append(1)
                lower = mid
            else:
                bits.append(0)
                upper = mid
        return tuple(bits)

    def locate_batch(self, points, level: int) -> np.ndarray:
        """Vectorised :meth:`locate`: the bits are the binary expansion of the value.

        ``floor(v * 2^level)`` (clamped to the last cell for ``v = 1.0``) is
        exactly the cell index the halving loop produces, because scaling by a
        power of two is exact in floating point.
        """
        if level < 0:
            raise ValueError(f"level must be non-negative, got {level}")
        values = np.asarray(points, dtype=float)
        if values.ndim != 1:
            raise ValueError(f"expected a 1-d array of scalars, got shape {values.shape}")
        # The negated all() form also rejects NaN (whose comparisons are all
        # False), matching the scalar path's fail-loud range check.
        if values.size and not ((values >= 0.0) & (values <= 1.0)).all():
            raise ValueError("points must lie in [0, 1]")
        if level > 62:
            return super().locate_batch(values, level)
        codes = np.clip((values * (1 << level)).astype(np.int64), 0, (1 << level) - 1)
        shifts = np.arange(level - 1, -1, -1, dtype=np.int64)
        return ((codes[:, None] >> shifts) & 1).astype(np.uint8)

    def sample_cell(self, theta: Cell, rng: np.random.Generator) -> float:
        """Uniform random point inside the dyadic cell."""
        lower, upper = self.cell_bounds(theta)
        return float(lower + (upper - lower) * rng.random())

    def sample_uniform(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Uniform random points over ``[0,1]`` (helper for workloads)."""
        return rng.random(size)

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return "UnitInterval()"
