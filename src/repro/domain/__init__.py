"""Metric-space input domains with binary hierarchical decompositions.

PrivHP works over any metric space equipped with an a-priori fixed binary
hierarchical decomposition (Section 4).  A :class:`~repro.domain.base.Domain`
owns the geometry: how cells split, each cell's diameter, how to locate a
point's cell at a given level, and how to sample uniformly inside a cell.

Concrete domains provided:

* :class:`UnitInterval` -- ``[0, 1]`` with dyadic splits (the d=1 case).
* :class:`Hypercube` -- ``[0, 1]^d`` with the l-infinity metric and
  coordinate-cycling splits (Corollary 1's setting).
* :class:`IPv4Domain` -- the 32-bit address space split on address bits, used
  by the network-traffic example.
* :class:`GeoDomain` -- a latitude/longitude rectangle, used by the check-in
  example.
* :class:`DiscreteDomain` -- a finite ordered universe ``{0..N-1}``.
"""

from repro.domain.base import Cell, Domain
from repro.domain.interval import UnitInterval
from repro.domain.hypercube import Hypercube
from repro.domain.ipv4 import IPv4Domain
from repro.domain.geo import GeoDomain
from repro.domain.discrete import DiscreteDomain

__all__ = [
    "Cell",
    "DiscreteDomain",
    "Domain",
    "GeoDomain",
    "Hypercube",
    "IPv4Domain",
    "UnitInterval",
]
