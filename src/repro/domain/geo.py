"""A geographic (latitude/longitude rectangle) domain.

Points are ``(latitude, longitude)`` pairs inside a configurable bounding box.
The decomposition alternates splits between latitude and longitude, exactly as
the hypercube cycles its coordinates, and the metric is the l-infinity
distance in degrees scaled so the bounding box is comparable across axes.
This is the "geographic coordinates" domain the paper names as a motivating
metric space, and it backs the check-in example and benchmark workloads.
"""

from __future__ import annotations

import numpy as np

from repro.domain.base import Cell, Domain, validate_cell

__all__ = ["GeoDomain"]


class GeoDomain(Domain):
    """A latitude/longitude rectangle with alternating binary splits."""

    def __init__(
        self,
        lat_min: float = -90.0,
        lat_max: float = 90.0,
        lon_min: float = -180.0,
        lon_max: float = 180.0,
    ) -> None:
        if lat_min >= lat_max:
            raise ValueError("lat_min must be strictly below lat_max")
        if lon_min >= lon_max:
            raise ValueError("lon_min must be strictly below lon_max")
        self.lat_min = float(lat_min)
        self.lat_max = float(lat_max)
        self.lon_min = float(lon_min)
        self.lon_max = float(lon_max)

    # ------------------------------------------------------------------ #
    # normalisation helpers
    # ------------------------------------------------------------------ #
    @property
    def _spans(self) -> np.ndarray:
        return np.array([self.lat_max - self.lat_min, self.lon_max - self.lon_min])

    def _normalise(self, point) -> np.ndarray:
        """Map a (lat, lon) pair to the unit square."""
        lat, lon = float(point[0]), float(point[1])
        return np.array(
            [
                (lat - self.lat_min) / (self.lat_max - self.lat_min),
                (lon - self.lon_min) / (self.lon_max - self.lon_min),
            ]
        )

    def _denormalise(self, unit: np.ndarray) -> np.ndarray:
        """Map a unit-square point back to (lat, lon)."""
        return np.array(
            [
                self.lat_min + unit[0] * (self.lat_max - self.lat_min),
                self.lon_min + unit[1] * (self.lon_max - self.lon_min),
            ]
        )

    # ------------------------------------------------------------------ #
    # Domain interface
    # ------------------------------------------------------------------ #
    def diameter(self) -> float:
        """l-infinity diameter of the normalised box (always 1)."""
        return 1.0

    def distance(self, point_a, point_b) -> float:
        """l-infinity distance between two points after normalisation."""
        a = self._normalise(point_a)
        b = self._normalise(point_b)
        return float(np.max(np.abs(a - b)))

    def cell_bounds(self, theta: Cell) -> tuple[np.ndarray, np.ndarray]:
        """Lower/upper corners (in normalised coordinates) of the cell."""
        theta = validate_cell(theta)
        lower = np.zeros(2)
        upper = np.ones(2)
        for position, bit in enumerate(theta):
            axis = position % 2
            mid = 0.5 * (lower[axis] + upper[axis])
            if bit == 0:
                upper[axis] = mid
            else:
                lower[axis] = mid
        return lower, upper

    def cell_diameter(self, theta: Cell) -> float:
        """Largest normalised side of the cell."""
        lower, upper = self.cell_bounds(theta)
        return float(np.max(upper - lower))

    def level_max_diameter(self, level: int) -> float:
        """``gamma_l = 2^{-floor(l/2)}`` in normalised coordinates."""
        if level < 0:
            raise ValueError(f"level must be non-negative, got {level}")
        return 2.0 ** (-(level // 2))

    def contains(self, point) -> bool:
        """Whether the (lat, lon) pair lies in the bounding box."""
        try:
            lat, lon = float(point[0]), float(point[1])
        except (TypeError, ValueError, IndexError):
            return False
        return self.lat_min <= lat <= self.lat_max and self.lon_min <= lon <= self.lon_max

    def locate(self, point, level: int) -> Cell:
        """Bit index of the level-``level`` cell containing the point."""
        if level < 0:
            raise ValueError(f"level must be non-negative, got {level}")
        unit = self._normalise(point)
        if not (0.0 <= unit[0] <= 1.0 and 0.0 <= unit[1] <= 1.0):
            raise ValueError(f"point {point!r} lies outside the bounding box")
        lower = np.zeros(2)
        upper = np.ones(2)
        bits: list[int] = []
        for position in range(level):
            axis = position % 2
            mid = 0.5 * (lower[axis] + upper[axis])
            if unit[axis] >= mid:
                bits.append(1)
                lower[axis] = mid
            else:
                bits.append(0)
                upper[axis] = mid
        return tuple(bits)

    def locate_batch(self, points, level: int) -> np.ndarray:
        """Vectorised :meth:`locate`: normalise, then interleave the two axes.

        Uses the same normalisation arithmetic as :meth:`_normalise` applied
        elementwise, so the bits agree with the scalar path exactly.
        """
        if level < 0:
            raise ValueError(f"level must be non-negative, got {level}")
        coords = np.asarray(points, dtype=float)
        if coords.ndim != 2 or coords.shape[1] != 2:
            raise ValueError(f"expected (lat, lon) pairs of shape (n, 2), got {coords.shape}")
        unit = np.empty_like(coords)
        unit[:, 0] = (coords[:, 0] - self.lat_min) / (self.lat_max - self.lat_min)
        unit[:, 1] = (coords[:, 1] - self.lon_min) / (self.lon_max - self.lon_min)
        # The negated all() form also rejects NaN (whose comparisons are all
        # False), matching the scalar path's fail-loud range check.
        if unit.size and not ((unit >= 0.0) & (unit <= 1.0)).all():
            raise ValueError("some points lie outside the bounding box")
        bits = self._interleave_unit_bits(unit, level)
        if bits is None:
            return super().locate_batch(coords, level)
        return bits

    def sample_cell(self, theta: Cell, rng: np.random.Generator) -> np.ndarray:
        """Uniform random (lat, lon) within the cell."""
        lower, upper = self.cell_bounds(theta)
        unit = lower + (upper - lower) * rng.random(2)
        return self._denormalise(unit)

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"GeoDomain(lat=[{self.lat_min}, {self.lat_max}], "
            f"lon=[{self.lon_min}, {self.lon_max}])"
        )
