"""A finite ordered domain ``{0, 1, ..., size-1}``.

This is the setting of the bounded-space DP quantile baseline (Alabi et al.),
which "only works for finite and ordered input domains" (Section 2.2).  The
decomposition splits the index range in half at each level; the metric is the
normalised index difference, giving the whole domain diameter 1 so that
Wasserstein distances are comparable with the continuous domains.
"""

from __future__ import annotations

import numpy as np

from repro.domain.base import Cell, Domain, coerce_integer_stream, validate_cell

__all__ = ["DiscreteDomain"]


class DiscreteDomain(Domain):
    """Finite ordered universe with dyadic range splits."""

    def __init__(self, size: int) -> None:
        if size < 2:
            raise ValueError(f"domain size must be at least 2, got {size}")
        self.size = int(size)
        # Number of binary splits needed until every cell is a single item.
        self.max_depth = int(np.ceil(np.log2(self.size)))

    # ------------------------------------------------------------------ #
    # Domain interface
    # ------------------------------------------------------------------ #
    def diameter(self) -> float:
        """Normalised diameter of the universe."""
        return 1.0

    def distance(self, point_a, point_b) -> float:
        """Normalised absolute index difference."""
        return abs(int(point_a) - int(point_b)) / max(self.size - 1, 1)

    def cell_range(self, theta: Cell) -> tuple[int, int]:
        """Inclusive item range ``[low, high]`` covered by a cell.

        Ranges are split as evenly as possible; empty halves can occur for
        non-power-of-two sizes at deep levels, in which case the empty child
        covers an empty range and reports diameter 0.
        """
        theta = validate_cell(theta)
        low, high = 0, self.size - 1
        for bit in theta:
            if low > high:
                break
            mid = (low + high) // 2
            if bit == 0:
                high = mid
            else:
                low = mid + 1
        return low, high

    def cell_diameter(self, theta: Cell) -> float:
        """Normalised width of the cell's item range."""
        low, high = self.cell_range(theta)
        if low > high:
            return 0.0
        return (high - low) / max(self.size - 1, 1)

    def level_max_diameter(self, level: int) -> float:
        """Maximum cell diameter at ``level`` (left-most cells are largest)."""
        if level < 0:
            raise ValueError(f"level must be non-negative, got {level}")
        return self.cell_diameter((0,) * min(level, self.max_depth))

    def contains(self, point) -> bool:
        """Whether the point is an index inside the universe."""
        try:
            value = int(point)
        except (TypeError, ValueError):
            return False
        return 0 <= value < self.size

    def locate(self, point, level: int) -> Cell:
        """Bit index of the level-``level`` range containing ``point``."""
        if level < 0:
            raise ValueError(f"level must be non-negative, got {level}")
        value = int(point)
        if not 0 <= value < self.size:
            raise ValueError(f"item {value} outside the universe of size {self.size}")
        low, high = 0, self.size - 1
        bits: list[int] = []
        for _ in range(level):
            if low >= high:
                # The cell is a single item; descend into the left child by
                # convention so the path stays well-defined at any depth.
                bits.append(0)
                continue
            mid = (low + high) // 2
            if value <= mid:
                bits.append(0)
                high = mid
            else:
                bits.append(1)
                low = mid + 1
        return tuple(bits)

    def coerce_stream(self, data):
        """Cast float arrays (e.g. items read from a CSV) back to int64."""
        return coerce_integer_stream(data)

    def locate_batch(self, points, level: int) -> np.ndarray:
        """Vectorised :meth:`locate`: the uneven range splits are simulated
        level by level on whole arrays (one numpy pass per level instead of
        one Python loop per item)."""
        if level < 0:
            raise ValueError(f"level must be non-negative, got {level}")
        values = np.asarray(points).astype(np.int64)
        if values.ndim != 1:
            raise ValueError(f"expected a 1-d array of items, got shape {values.shape}")
        if values.size and (np.min(values) < 0 or np.max(values) >= self.size):
            raise ValueError(f"some items lie outside the universe of size {self.size}")
        low = np.zeros(values.shape[0], dtype=np.int64)
        high = np.full(values.shape[0], self.size - 1, dtype=np.int64)
        bits = np.empty((values.shape[0], level), dtype=np.uint8)
        for step in range(level):
            # Single-item cells descend left by convention, bounds unchanged.
            live = low < high
            mid = (low + high) // 2
            go_right = live & (values > mid)
            bits[:, step] = go_right
            high = np.where(live & ~go_right, mid, high)
            low = np.where(go_right, mid + 1, low)
        return bits

    def sample_cell(self, theta: Cell, rng: np.random.Generator) -> int:
        """Uniform random item within the cell's range."""
        low, high = self.cell_range(theta)
        if low > high:
            raise ValueError(f"cell {theta} covers an empty range")
        return int(rng.integers(low, high + 1))

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"DiscreteDomain(size={self.size})"
