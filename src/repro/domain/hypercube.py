"""The hypercube domain ``[0,1]^d`` with the l-infinity metric.

This is the setting of Theorem 1 and Corollary 1.  The natural binary
decomposition cycles through the coordinates: the split at level ``l`` halves
coordinate ``l mod d``, so after ``l`` levels coordinate ``i`` has been halved
``ceil((l - i) / d)`` times and the cell diameter under l-infinity is
``2^{-floor(l/d)}`` (the largest remaining side).
"""

from __future__ import annotations

import numpy as np

from repro.domain.base import Cell, Domain, validate_cell

__all__ = ["Hypercube"]


class Hypercube(Domain):
    """``[0,1]^d`` with l-infinity distance and coordinate-cycling dyadic splits."""

    def __init__(self, dimension: int) -> None:
        if dimension < 1:
            raise ValueError(f"dimension must be at least 1, got {dimension}")
        self.dimension = int(dimension)

    # ------------------------------------------------------------------ #
    # geometry
    # ------------------------------------------------------------------ #
    def diameter(self) -> float:
        """Side length 1 under l-infinity."""
        return 1.0

    def distance(self, point_a, point_b) -> float:
        """l-infinity distance between two points."""
        a = np.asarray(point_a, dtype=float)
        b = np.asarray(point_b, dtype=float)
        return float(np.max(np.abs(a - b)))

    def cell_bounds(self, theta: Cell) -> tuple[np.ndarray, np.ndarray]:
        """Lower and upper corners of the cell ``Omega_theta``.

        Bit ``p`` of ``theta`` refines coordinate ``p mod d``: 0 keeps the
        lower half of the current interval, 1 the upper half.
        """
        theta = validate_cell(theta)
        lower = np.zeros(self.dimension)
        upper = np.ones(self.dimension)
        for position, bit in enumerate(theta):
            axis = position % self.dimension
            mid = 0.5 * (lower[axis] + upper[axis])
            if bit == 0:
                upper[axis] = mid
            else:
                lower[axis] = mid
        return lower, upper

    def cell_diameter(self, theta: Cell) -> float:
        """Largest side length of the cell (l-infinity diameter)."""
        lower, upper = self.cell_bounds(theta)
        return float(np.max(upper - lower))

    def level_max_diameter(self, level: int) -> float:
        """``gamma_l = 2^{-floor(l/d)}`` without materialising bounds."""
        if level < 0:
            raise ValueError(f"level must be non-negative, got {level}")
        return 2.0 ** (-(level // self.dimension))

    # ------------------------------------------------------------------ #
    # locating points and sampling cells
    # ------------------------------------------------------------------ #
    def contains(self, point) -> bool:
        """Whether the point lies in ``[0,1]^d``."""
        array = np.asarray(point, dtype=float)
        if array.shape != (self.dimension,) and not (
            self.dimension == 1 and array.shape == ()
        ):
            return False
        return bool(np.all(array >= 0.0) and np.all(array <= 1.0))

    def _as_point(self, point) -> np.ndarray:
        array = np.asarray(point, dtype=float)
        if array.shape == () and self.dimension == 1:
            array = array.reshape(1)
        if array.shape != (self.dimension,):
            raise ValueError(
                f"expected a point of dimension {self.dimension}, got shape {array.shape}"
            )
        if not np.isfinite(array).all():
            raise ValueError("point coordinates must be finite")
        return array

    def locate(self, point, level: int) -> Cell:
        """Bit index of the level-``level`` cell containing ``point``."""
        if level < 0:
            raise ValueError(f"level must be non-negative, got {level}")
        coords = self._as_point(point)
        lower = np.zeros(self.dimension)
        upper = np.ones(self.dimension)
        bits: list[int] = []
        for position in range(level):
            axis = position % self.dimension
            mid = 0.5 * (lower[axis] + upper[axis])
            if coords[axis] >= mid:
                bits.append(1)
                lower[axis] = mid
            else:
                bits.append(0)
                upper[axis] = mid
        return tuple(bits)

    def locate_batch(self, points, level: int) -> np.ndarray:
        """Vectorised :meth:`locate`: per-axis binary expansions, interleaved.

        Coordinate ``i`` is split ``s_i`` times within the first ``level``
        positions; its dyadic index is ``floor(x_i * 2^{s_i})`` (clamped to
        the valid range, matching the comparison loop for out-of-range
        values), and bit ``t`` of that index lands at position ``i + t*d``.
        """
        if level < 0:
            raise ValueError(f"level must be non-negative, got {level}")
        coords = np.asarray(points, dtype=float)
        if coords.ndim == 1 and self.dimension == 1:
            coords = coords[:, None]
        if coords.ndim != 2 or coords.shape[1] != self.dimension:
            raise ValueError(
                f"expected points of shape (n, {self.dimension}), got {coords.shape}"
            )
        if coords.size and not np.isfinite(coords).all():
            raise ValueError("point coordinates must be finite")
        bits = self._interleave_unit_bits(coords, level)
        if bits is None:
            return super().locate_batch(coords, level)
        return bits

    def sample_cell(self, theta: Cell, rng: np.random.Generator) -> np.ndarray:
        """Uniform random point within the cell ``Omega_theta``."""
        lower, upper = self.cell_bounds(theta)
        return lower + (upper - lower) * rng.random(self.dimension)

    def sample_uniform(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Uniform random points over the whole cube (helper for workloads)."""
        return rng.random((size, self.dimension))

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"Hypercube(dimension={self.dimension})"
