"""The IPv4 address space as a metric domain.

The paper motivates general metric-space support with "geographic coordinates
or the IPv4 address space" (Section 1.2).  Addresses are 32-bit integers; the
natural hierarchical decomposition splits on the address bits from the most
significant downwards, so a level-``l`` cell is exactly a ``/l`` CIDR prefix.
The metric is the absolute difference between addresses normalised by 2^32,
which makes the whole space have diameter 1 and a ``/l`` prefix have diameter
``2^{-l}`` -- the same geometry as the unit interval, so the d=1 theory
applies verbatim.
"""

from __future__ import annotations

import numpy as np

from repro.domain.base import Cell, Domain, coerce_integer_stream, validate_cell

__all__ = ["IPv4Domain"]

ADDRESS_BITS = 32
ADDRESS_SPACE = 1 << ADDRESS_BITS


class IPv4Domain(Domain):
    """The 32-bit IPv4 address space with prefix-based decomposition."""

    max_depth = ADDRESS_BITS

    # ------------------------------------------------------------------ #
    # address helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def parse(address: str) -> int:
        """Convert dotted-quad notation to a 32-bit integer."""
        parts = address.split(".")
        if len(parts) != 4:
            raise ValueError(f"not a dotted-quad IPv4 address: {address!r}")
        value = 0
        for part in parts:
            octet = int(part)
            if not 0 <= octet <= 255:
                raise ValueError(f"octet {octet} out of range in {address!r}")
            value = (value << 8) | octet
        return value

    @staticmethod
    def format(address: int) -> str:
        """Convert a 32-bit integer to dotted-quad notation."""
        if not 0 <= address < ADDRESS_SPACE:
            raise ValueError(f"address {address} outside the IPv4 space")
        return ".".join(str((address >> shift) & 0xFF) for shift in (24, 16, 8, 0))

    @staticmethod
    def _as_int(point) -> int:
        if isinstance(point, str):
            return IPv4Domain.parse(point)
        value = int(point)
        if not 0 <= value < ADDRESS_SPACE:
            raise ValueError(f"address {value} outside the IPv4 space")
        return value

    # ------------------------------------------------------------------ #
    # Domain interface
    # ------------------------------------------------------------------ #
    def diameter(self) -> float:
        """Normalised diameter of the whole address space."""
        return 1.0

    def distance(self, point_a, point_b) -> float:
        """Absolute address difference normalised by 2^32."""
        a = self._as_int(point_a)
        b = self._as_int(point_b)
        return abs(a - b) / ADDRESS_SPACE

    def cell_diameter(self, theta: Cell) -> float:
        """Diameter of a ``/l`` prefix: ``2^{-l}`` of the space."""
        return 2.0 ** (-len(validate_cell(theta)))

    def level_max_diameter(self, level: int) -> float:
        """``gamma_l = 2^{-l}`` for prefixes of length ``l``."""
        if level < 0:
            raise ValueError(f"level must be non-negative, got {level}")
        return 2.0 ** (-level)

    def contains(self, point) -> bool:
        """Whether the point is a valid IPv4 address (int or dotted quad)."""
        try:
            self._as_int(point)
        except (TypeError, ValueError):
            return False
        return True

    def locate(self, point, level: int) -> Cell:
        """The ``/level`` prefix bits of the address."""
        if level < 0:
            raise ValueError(f"level must be non-negative, got {level}")
        if level > ADDRESS_BITS:
            raise ValueError(f"level {level} exceeds the {ADDRESS_BITS}-bit address length")
        address = self._as_int(point)
        return tuple((address >> (ADDRESS_BITS - 1 - bit)) & 1 for bit in range(level))

    def coerce_stream(self, data):
        """Cast float arrays (e.g. addresses read from a CSV) back to int64."""
        return coerce_integer_stream(data)

    def locate_batch(self, points, level: int) -> np.ndarray:
        """Vectorised :meth:`locate` for integer address arrays.

        Dotted-quad strings (or mixed object arrays) fall back to the
        per-item path, which parses each address individually.
        """
        if level < 0:
            raise ValueError(f"level must be non-negative, got {level}")
        if level > ADDRESS_BITS:
            raise ValueError(f"level {level} exceeds the {ADDRESS_BITS}-bit address length")
        addresses = np.asarray(points)
        if addresses.dtype.kind not in "iu":
            return super().locate_batch(points, level)
        addresses = addresses.astype(np.int64)
        if addresses.size and (np.min(addresses) < 0 or np.max(addresses) >= ADDRESS_SPACE):
            raise ValueError("some addresses lie outside the IPv4 space")
        shifts = (ADDRESS_BITS - 1 - np.arange(level, dtype=np.int64))
        return ((addresses[:, None] >> shifts) & 1).astype(np.uint8)

    def cell_range(self, theta: Cell) -> tuple[int, int]:
        """Inclusive integer range ``[low, high]`` covered by a prefix cell."""
        theta = validate_cell(theta)
        prefix = 0
        for bit in theta:
            prefix = (prefix << 1) | bit
        remaining = ADDRESS_BITS - len(theta)
        low = prefix << remaining
        high = low + (1 << remaining) - 1
        return low, high

    def sample_cell(self, theta: Cell, rng: np.random.Generator) -> int:
        """Uniform random address within a prefix cell."""
        low, high = self.cell_range(theta)
        return int(rng.integers(low, high + 1))

    def cidr(self, theta: Cell) -> str:
        """Human-readable CIDR string for a prefix cell (e.g. ``10.0.0.0/8``)."""
        low, _ = self.cell_range(theta)
        return f"{self.format(low)}/{len(theta)}"

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return "IPv4Domain()"
