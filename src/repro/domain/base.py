"""Abstract metric-space domain with a fixed binary hierarchical decomposition.

Cells are indexed by bit tuples ``theta in {0,1}^l``; the empty tuple is the
whole space.  The decomposition is fixed a priori (Section 4.1 of the paper):
the same split rule is applied regardless of the data, which is what makes the
partition-tree counters well-defined linear statistics of the stream.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable

import numpy as np

__all__ = ["Cell", "Domain", "coerce_integer_stream"]


def coerce_integer_stream(data):
    """Cast float arrays (e.g. values read from a CSV) back to int64.

    The shared :meth:`Domain.coerce_stream` implementation for
    integer-valued domains.
    """
    data = np.asarray(data)
    if np.issubdtype(data.dtype, np.floating):
        return data.astype(np.int64)
    return data

Cell = tuple[int, ...]


def validate_cell(theta: Cell) -> Cell:
    """Check that ``theta`` is a tuple of bits, returning it unchanged."""
    theta = tuple(int(bit) for bit in theta)
    for bit in theta:
        if bit not in (0, 1):
            raise ValueError(f"cell index must consist of bits, got {theta}")
    return theta


class Domain(ABC):
    """A metric space plus an a-priori binary hierarchical decomposition.

    Subclasses define the geometry; all tree-growing and sampling code in
    :mod:`repro.core` is written against this interface only, which is what
    lets PrivHP run unchanged on intervals, hypercubes, IP address spaces and
    geographic rectangles.
    """

    # ------------------------------------------------------------------ #
    # geometry
    # ------------------------------------------------------------------ #
    @abstractmethod
    def diameter(self) -> float:
        """Diameter of the whole space under the domain's metric."""

    @abstractmethod
    def cell_diameter(self, theta: Cell) -> float:
        """Diameter of the cell ``Omega_theta``."""

    @abstractmethod
    def distance(self, point_a, point_b) -> float:
        """Metric distance between two points of the domain."""

    @abstractmethod
    def locate(self, point, level: int) -> Cell:
        """The unique ``theta in {0,1}^level`` whose cell contains ``point``."""

    @abstractmethod
    def sample_cell(self, theta: Cell, rng: np.random.Generator):
        """A uniform random point from the cell ``Omega_theta``."""

    @abstractmethod
    def contains(self, point) -> bool:
        """Whether ``point`` lies in the domain."""

    # ------------------------------------------------------------------ #
    # derived quantities used by the analysis and the budget allocator
    # ------------------------------------------------------------------ #
    def level_max_diameter(self, level: int) -> float:
        """``gamma_l``: the maximum cell diameter at ``level``.

        The default implementation assumes all cells at a level share the same
        diameter (true for every concrete domain here) and inspects the
        all-zeros cell.
        """
        if level < 0:
            raise ValueError(f"level must be non-negative, got {level}")
        return self.cell_diameter((0,) * level)

    def level_total_diameter(self, level: int) -> float:
        """``Gamma_l``: the sum of cell diameters across level ``level``."""
        if level < 0:
            raise ValueError(f"level must be non-negative, got {level}")
        return (2.0**level) * self.level_max_diameter(level)

    # ------------------------------------------------------------------ #
    # cell algebra
    # ------------------------------------------------------------------ #
    @staticmethod
    def root_cell() -> Cell:
        """The index of the whole space."""
        return ()

    @staticmethod
    def children(theta: Cell) -> tuple[Cell, Cell]:
        """The two child cells of ``theta``."""
        theta = validate_cell(theta)
        return theta + (0,), theta + (1,)

    @staticmethod
    def parent(theta: Cell) -> Cell:
        """The parent cell of ``theta`` (the root has no parent)."""
        theta = validate_cell(theta)
        if not theta:
            raise ValueError("the root cell has no parent")
        return theta[:-1]

    @staticmethod
    def level_of(theta: Cell) -> int:
        """The level (depth) of a cell, i.e. the length of its index."""
        return len(theta)

    def cells_at_level(self, level: int) -> Iterable[Cell]:
        """Iterate over every cell index at ``level`` (2^level of them)."""
        if level < 0:
            raise ValueError(f"level must be non-negative, got {level}")
        for code in range(2**level):
            yield tuple((code >> (level - 1 - position)) & 1 for position in range(level))

    # ------------------------------------------------------------------ #
    # bulk helpers shared by the algorithms
    # ------------------------------------------------------------------ #
    def coerce_stream(self, data):
        """Adapt a raw array (e.g. float columns from a CSV) to the domain's
        native item representation.

        The default is the identity; integer-valued domains override it
        (typically with :func:`coerce_integer_stream`), so stream loaders
        (the CLI, harnesses) can stay domain-agnostic.
        """
        return data

    def locate_batch(self, points, level: int) -> np.ndarray:
        """Locate many points at once, returning a ``(n, level)`` bit matrix.

        Row ``i`` holds the bits of ``self.locate(points[i], level)``; taking
        the first ``l`` columns of a row therefore gives the level-``l``
        ancestor cell, which is what lets the batched ingestion path derive
        every prefix from one location pass.  The default implementation
        simply loops over :meth:`locate`; concrete domains override it with a
        fully vectorised computation that produces identical bits.
        """
        if level < 0:
            raise ValueError(f"level must be non-negative, got {level}")
        points = points if hasattr(points, "__len__") else list(points)
        bits = np.empty((len(points), level), dtype=np.uint8)
        for index in range(len(points)):
            bits[index, :] = self.locate(points[index], level)
        return bits

    @staticmethod
    def _interleave_unit_bits(unit: np.ndarray, level: int) -> np.ndarray | None:
        """Bit-interleave per-axis dyadic expansions of unit-cube coordinates.

        Coordinate ``i`` of an ``(n, d)`` array is split ``s_i`` times within
        the first ``level`` positions; its dyadic index is
        ``floor(x_i * 2^{s_i})`` (clamped to the valid range, matching the
        halving comparison loop for out-of-range values), and bit ``t`` of
        that index lands at position ``i + t*d``.  Returns ``None`` when any
        axis needs more than 62 splits (the caller falls back to the scalar
        path, whose Python ints do not overflow).
        """
        count, dimension = unit.shape
        bits = np.empty((count, level), dtype=np.uint8)
        for axis in range(dimension):
            positions = range(axis, level, dimension)
            splits = len(positions)
            if splits == 0:
                continue
            if splits > 62:
                return None
            codes = np.clip(
                (unit[:, axis] * (1 << splits)).astype(np.int64), 0, (1 << splits) - 1
            )
            for order, position in enumerate(positions):
                bits[:, position] = (codes >> (splits - 1 - order)) & 1
        return bits

    @staticmethod
    def pack_paths(bits: np.ndarray) -> np.ndarray:
        """Pack a ``(n, level)`` bit matrix into integer cell codes.

        The code of row ``b_0 .. b_{l-1}`` is ``sum b_i 2^{l-1-i}``, i.e. the
        index of the cell among the ``2^l`` cells of its level, which is the
        form ``np.bincount`` consumes.  Requires ``level <= 62`` so codes fit
        in int64 (hierarchies here are never remotely that deep).
        """
        level = bits.shape[1]
        if level > 62:
            raise ValueError(f"cannot pack paths deeper than 62 levels, got {level}")
        if level == 0:
            return np.zeros(bits.shape[0], dtype=np.int64)
        weights = (np.int64(1) << np.arange(level - 1, -1, -1, dtype=np.int64))
        return bits.astype(np.int64) @ weights

    def locate_path(self, point, depth: int) -> list[Cell]:
        """The root-to-depth path of cells containing ``point``.

        Returns cells for levels ``0..depth`` inclusive.  The default
        implementation locates the deepest cell once and takes prefixes, which
        is valid because the decomposition is nested.
        """
        deepest = self.locate(point, depth)
        return [deepest[:level] for level in range(depth + 1)]

    def level_frequencies(self, data, level: int) -> dict[Cell, int]:
        """Exact subdomain frequencies ``C_l`` for a dataset at ``level``.

        Used by the evaluation harness and the exact-pruning analysis; PrivHP
        itself never calls this on the stream (it would require a second
        pass).
        """
        counts: dict[Cell, int] = {}
        for point in data:
            theta = self.locate(point, level)
            counts[theta] = counts.get(theta, 0) + 1
        return counts

    def validate_points(self, data) -> None:
        """Raise ``ValueError`` if any point lies outside the domain."""
        for index, point in enumerate(data):
            if not self.contains(point):
                raise ValueError(f"point at position {index} is outside the domain: {point!r}")
