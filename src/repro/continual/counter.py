"""The binary-tree mechanism for continual counting.

Releases a running count after every update while guaranteeing epsilon-DP for
the entire update sequence.  The stream of increments is tiled with dyadic
blocks; each block's partial sum receives independent ``Laplace(L/epsilon)``
noise (``L`` = number of dyadic levels), and any prefix sum is assembled from
at most ``L`` blocks, giving error ``O(L^{3/2}/epsilon)`` per release.

The counter is *event-driven*: its time axis is its own update sequence (one
step per call to :meth:`BinaryMechanismCounter.step`, or one per element of a
:meth:`BinaryMechanismCounter.step_many` block).  A single stream element
touches the counter at most once, so the per-element sensitivity argument of
the classic construction applies unchanged.

Two shapes of the mechanism live here:

* :class:`BinaryMechanismCounter` -- one counter, one time axis.  Its
  :meth:`~BinaryMechanismCounter.step_many` consumes a whole block of steps in
  ``O(block + L)`` work: only the dyadic blocks that *survive* to the end of
  the block ever influence a later release, so the noise for at most ``L``
  surviving blocks is drawn instead of one draw per step.  (Intermediate
  releases inside the block are never produced, hence never observed.)
* :class:`BinaryMechanismCounterBank` -- a fixed-size vector of counters
  advancing one *shared* time axis.  This is the batch-native layout used by
  the continual sketches and the continual PrivHP tree levels: every
  ingestion event steps every cell (untouched cells step with weight 0), so
  the time axis is data-independent and one numpy pass updates all cells.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["BinaryMechanismCounter", "BinaryMechanismCounterBank"]


def _dyadic_levels(horizon: int) -> int:
    """Number of dyadic levels needed for ``horizon`` steps."""
    return max(1, math.ceil(math.log2(horizon + 1)) + 1)


def _trailing_zeros(time: int) -> int:
    """Index of the lowest set bit of ``time`` (``time`` must be positive)."""
    lowest_zero = 0
    while (time >> lowest_zero) & 1 == 0:
        lowest_zero += 1
    return lowest_zero


class BinaryMechanismCounter:
    """Continual-release counter with dyadic-block Laplace noise.

    Example:
        >>> counter = BinaryMechanismCounter(epsilon=1000.0, horizon=16, rng=0)
        >>> round(counter.step_many([1.0, 1.0, 1.0]))
        3
        >>> round(counter.step(2.0))
        5
        >>> counter.steps
        4
    """

    def __init__(
        self,
        epsilon: float,
        horizon: int,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        if horizon < 1:
            raise ValueError(f"horizon must be at least 1, got {horizon}")
        self.epsilon = float(epsilon)
        self.horizon = int(horizon)
        self.levels = _dyadic_levels(self.horizon)
        self._rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self._noise_scale = self.levels / self.epsilon
        # alpha[i] holds the exact partial sum of the current dyadic block at
        # level i; noisy_alpha[i] the corresponding noisy release.
        self._alpha = np.zeros(self.levels)
        self._noisy_alpha = np.zeros(self.levels)
        self._steps = 0

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #
    def step(self, value: float = 1.0) -> float:
        """Consume one increment and return the current noisy running count."""
        if self._steps >= self.horizon:
            raise RuntimeError(
                f"counter horizon of {self.horizon} steps exhausted; "
                "construct the counter with a larger horizon"
            )
        self._steps += 1
        time = self._steps
        # Lowest level whose dyadic block starts at this step.
        lowest_zero = _trailing_zeros(time)
        # The new block at `lowest_zero` absorbs all completed lower blocks.
        self._alpha[lowest_zero] = self._alpha[:lowest_zero].sum() + value
        self._alpha[:lowest_zero] = 0.0
        self._noisy_alpha[:lowest_zero] = 0.0
        self._noisy_alpha[lowest_zero] = self._alpha[lowest_zero] + self._rng.laplace(
            0.0, self._noise_scale
        )
        return self.query()

    def step_many(self, values) -> float:
        """Consume a whole block of per-step increments and return the final
        noisy running count.

        Equivalent to calling :meth:`step` once per element -- the exact block
        partial sums after the batch are bit-identical to the loop's (up to
        float summation order) -- but the dyadic bookkeeping is closed-form:
        one prefix-sum pass over the block locates every surviving dyadic
        block, and fresh ``Laplace(L/epsilon)`` noise is drawn only for the
        (at most ``L``) blocks formed inside the batch.  Blocks completed and
        absorbed strictly inside the batch would only have influenced the
        intermediate releases that batch ingestion never emits, so skipping
        their noise draws leaves every *observable* release with exactly the
        distribution of the item-at-a-time mechanism.
        """
        values = np.asarray(values, dtype=float).ravel()
        count = int(values.size)
        if count == 0:
            return self.query()
        if self._steps + count > self.horizon:
            raise RuntimeError(
                f"counter horizon of {self.horizon} steps exhausted; "
                "construct the counter with a larger horizon"
            )
        start = self._steps
        end = start + count
        prefix = np.concatenate(([0.0], np.cumsum(values)))
        running_before = self.true_count  # exact count S(start)

        new_alpha = np.zeros(self.levels)
        new_noisy = np.zeros(self.levels)
        fresh_levels = []
        for level in range(self.levels):
            if not (end >> level) & 1:
                continue
            block_end = (end >> level) << level
            block_start = block_end - (1 << level)
            if block_end <= start:
                # The block was completed before this batch; its partial sum
                # and noise draw are already in the state (the bits of `start`
                # above `level` agree with `end`'s, so slot `level` holds it).
                new_alpha[level] = self._alpha[level]
                new_noisy[level] = self._noisy_alpha[level]
                continue
            upper = running_before + prefix[block_end - start]
            if block_start >= start:
                lower = running_before + prefix[block_start - start]
            else:
                # block_start < start is a dyadic boundary of the old state:
                # the old blocks at levels above `level` tile [1, block_start]
                # exactly, so their partial sums reconstruct S(block_start).
                lower = float(
                    sum(
                        self._alpha[other]
                        for other in range(level + 1, self.levels)
                        if (start >> other) & 1
                    )
                )
            new_alpha[level] = upper - lower
            fresh_levels.append(level)

        if fresh_levels:
            noise = self._rng.laplace(0.0, self._noise_scale, size=len(fresh_levels))
            for position, level in enumerate(fresh_levels):
                new_noisy[level] = new_alpha[level] + noise[position]

        self._alpha = new_alpha
        self._noisy_alpha = new_noisy
        self._steps = end
        return self.query()

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def query(self) -> float:
        """The current noisy running count (private under continual observation)."""
        if self._steps == 0:
            return 0.0
        time = self._steps
        total = 0.0
        for level in range(self.levels):
            if (time >> level) & 1:
                total += self._noisy_alpha[level]
        return float(total)

    @property
    def steps(self) -> int:
        """Number of increments consumed so far."""
        return self._steps

    @property
    def true_count(self) -> float:
        """The exact running count (private state; used only by tests)."""
        time = self._steps
        return float(
            sum(self._alpha[level] for level in range(self.levels) if (time >> level) & 1)
        )

    def expected_error(self) -> float:
        """Rough expected absolute error of one release: ``levels * scale``."""
        return self.levels * self._noise_scale

    def memory_words(self) -> int:
        """Words of state: two arrays of dyadic partial sums."""
        return 2 * self.levels


class BinaryMechanismCounterBank:
    """A fixed-size vector of binary-mechanism counters on one shared time axis.

    All ``size`` counters advance together: each call to :meth:`step` is one
    event that adds a per-cell weight vector (zeros for untouched cells) and
    draws one Laplace vector for the newly formed dyadic block of every cell.
    Sharing the time axis has two payoffs over per-cell
    :class:`BinaryMechanismCounter` instances:

    * **speed** -- the dyadic bookkeeping is identical for every cell, so one
      step is a handful of numpy operations over a ``(size, levels)`` array
      instead of ``size`` Python-level updates; and
    * **privacy hygiene** -- the time axis is the (public) sequence of
      ingestion events, never the data-dependent count of hits per cell, so a
      released vector leaks nothing through which cells happen to carry noise.

    One stream element still changes exactly one step's weight vector by one
    unit in one cell, so the classic per-element sensitivity argument gives
    epsilon-DP under continual observation with ``Laplace(levels/epsilon)``
    noise per block, exactly as for the scalar counter.

    ``horizon`` bounds the number of *events* (batches or single items); the
    continual summarizer passes its item horizon, which is always an upper
    bound.

    Example:
        >>> bank = BinaryMechanismCounterBank(epsilon=1000.0, horizon=8, size=3, rng=0)
        >>> bank.step([1.0, 0.0, 4.0])
        >>> bank.step([1.0, 2.0, 0.0])
        >>> [round(value) for value in bank.query_all()]
        [2, 2, 4]
    """

    def __init__(
        self,
        epsilon: float,
        horizon: int,
        size: int,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        if horizon < 1:
            raise ValueError(f"horizon must be at least 1, got {horizon}")
        if size < 1:
            raise ValueError(f"bank size must be at least 1, got {size}")
        self.epsilon = float(epsilon)
        self.horizon = int(horizon)
        self.size = int(size)
        self.levels = _dyadic_levels(self.horizon)
        self._rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self._noise_scale = self.levels / self.epsilon
        self._alpha = np.zeros((self.size, self.levels))
        self._noisy_alpha = np.zeros((self.size, self.levels))
        self._steps = 0

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #
    def step(self, weights) -> None:
        """Advance every counter by one event carrying per-cell ``weights``."""
        weights = np.asarray(weights, dtype=float).ravel()
        if weights.shape != (self.size,):
            raise ValueError(
                f"weights must have shape ({self.size},), got {weights.shape}"
            )
        if self._steps >= self.horizon:
            raise RuntimeError(
                f"bank horizon of {self.horizon} events exhausted; "
                "construct the bank with a larger horizon"
            )
        self._steps += 1
        lowest_zero = _trailing_zeros(self._steps)
        self._alpha[:, lowest_zero] = self._alpha[:, :lowest_zero].sum(axis=1) + weights
        self._alpha[:, :lowest_zero] = 0.0
        self._noisy_alpha[:, :lowest_zero] = 0.0
        self._noisy_alpha[:, lowest_zero] = self._alpha[:, lowest_zero] + self._rng.laplace(
            0.0, self._noise_scale, size=self.size
        )

    def pad_to(self, steps: int) -> None:
        """Advance to ``steps`` events with zero-weight (data-independent) steps.

        Used to align two shard banks before :meth:`merged_with`; padding
        events carry no data, so they are harmless post-processing.
        """
        if steps > self.horizon:
            raise ValueError(f"cannot pad to {steps} events beyond horizon {self.horizon}")
        zeros = np.zeros(self.size)
        while self._steps < steps:
            self.step(zeros)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def query_all(self) -> np.ndarray:
        """The noisy running counts of every cell, as a ``(size,)`` array."""
        if self._steps == 0:
            return np.zeros(self.size)
        set_levels = [
            level for level in range(self.levels) if (self._steps >> level) & 1
        ]
        return self._noisy_alpha[:, set_levels].sum(axis=1)

    def true_counts(self) -> np.ndarray:
        """The exact running counts (private state; used only by tests)."""
        if self._steps == 0:
            return np.zeros(self.size)
        set_levels = [
            level for level in range(self.levels) if (self._steps >> level) & 1
        ]
        return self._alpha[:, set_levels].sum(axis=1)

    @property
    def steps(self) -> int:
        """Number of events consumed so far."""
        return self._steps

    def memory_words(self) -> int:
        """Words of state across all cells (two dyadic arrays per cell)."""
        return 2 * self.size * self.levels

    # ------------------------------------------------------------------ #
    # merging and persistence
    # ------------------------------------------------------------------ #
    def merged_with(self, other: "BinaryMechanismCounterBank") -> "BinaryMechanismCounterBank":
        """A new bank carrying the cell-wise sum of two shard banks.

        Both operands must share epsilon, horizon, size and step count (align
        with :meth:`pad_to` first).  Exact partial sums add linearly; the
        noise adds too, so a merged release carries the sum of the shards'
        noise -- the standard variance cost of merging continually-private
        state, since continual noise can never be deferred.
        """
        if not isinstance(other, BinaryMechanismCounterBank):
            raise TypeError("can only merge with another BinaryMechanismCounterBank")
        if (self.epsilon, self.horizon, self.size) != (
            other.epsilon,
            other.horizon,
            other.size,
        ):
            raise ValueError("banks must share epsilon, horizon and size to merge")
        if self._steps != other._steps:
            raise ValueError(
                f"banks must be aligned to the same event count to merge "
                f"({self._steps} vs {other._steps}); call pad_to first"
            )
        merged = BinaryMechanismCounterBank(
            self.epsilon, self.horizon, self.size, rng=self._rng
        )
        merged._alpha = self._alpha + other._alpha
        merged._noisy_alpha = self._noisy_alpha + other._noisy_alpha
        merged._steps = self._steps
        return merged

    def state_dict(self, *, arrays: bool = False) -> dict:
        """JSON-serialisable state (the RNG is owned by the caller).

        With ``arrays=True`` the counter tables stay float64 ndarray copies
        instead of nested lists -- the form the binary envelope writer stores
        zero-copy, skipping the list round trip entirely.
        """
        return {
            "epsilon": self.epsilon,
            "horizon": self.horizon,
            "size": self.size,
            "steps": self._steps,
            "alpha": self._alpha.copy() if arrays else self._alpha.tolist(),
            "noisy_alpha": self._noisy_alpha.copy() if arrays else self._noisy_alpha.tolist(),
        }

    @classmethod
    def from_state(
        cls, state: dict, rng: np.random.Generator | int | None = None
    ) -> "BinaryMechanismCounterBank":
        """Rebuild a bank from :meth:`state_dict` (pair with the restored RNG)."""
        bank = cls(
            epsilon=float(state["epsilon"]),
            horizon=int(state["horizon"]),
            size=int(state["size"]),
            rng=rng,
        )
        bank._alpha = np.asarray(state["alpha"], dtype=float).reshape(bank.size, bank.levels)
        bank._noisy_alpha = np.asarray(state["noisy_alpha"], dtype=float).reshape(
            bank.size, bank.levels
        )
        bank._steps = int(state["steps"])
        return bank

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"BinaryMechanismCounterBank(epsilon={self.epsilon}, size={self.size}, "
            f"steps={self._steps}/{self.horizon})"
        )
