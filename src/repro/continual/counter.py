"""The binary-tree mechanism for continual counting.

Releases a running count after every update while guaranteeing epsilon-DP for
the entire update sequence.  The stream of increments is tiled with dyadic
blocks; each block's partial sum receives independent ``Laplace(L/epsilon)``
noise (``L`` = number of dyadic levels), and any prefix sum is assembled from
at most ``L`` blocks, giving error ``O(L^{3/2}/epsilon)`` per release.

The counter is *event-driven*: its time axis is its own update sequence (one
step per call to :meth:`step`).  A single stream element touches the counter
at most once, so the per-element sensitivity argument of the classic
construction applies unchanged.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["BinaryMechanismCounter"]


class BinaryMechanismCounter:
    """Continual-release counter with dyadic-block Laplace noise."""

    def __init__(
        self,
        epsilon: float,
        horizon: int,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        if horizon < 1:
            raise ValueError(f"horizon must be at least 1, got {horizon}")
        self.epsilon = float(epsilon)
        self.horizon = int(horizon)
        self.levels = max(1, math.ceil(math.log2(self.horizon + 1)) + 1)
        self._rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self._noise_scale = self.levels / self.epsilon
        # alpha[i] holds the exact partial sum of the current dyadic block at
        # level i; noisy_alpha[i] the corresponding noisy release.
        self._alpha = np.zeros(self.levels)
        self._noisy_alpha = np.zeros(self.levels)
        self._steps = 0

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #
    def step(self, value: float = 1.0) -> float:
        """Consume one increment and return the current noisy running count."""
        if self._steps >= self.horizon:
            raise RuntimeError(
                f"counter horizon of {self.horizon} steps exhausted; "
                "construct the counter with a larger horizon"
            )
        self._steps += 1
        time = self._steps
        # Lowest level whose dyadic block starts at this step.
        lowest_zero = 0
        while (time >> lowest_zero) & 1 == 0:
            lowest_zero += 1
        # The new block at `lowest_zero` absorbs all completed lower blocks.
        self._alpha[lowest_zero] = self._alpha[:lowest_zero].sum() + value
        self._alpha[:lowest_zero] = 0.0
        self._noisy_alpha[:lowest_zero] = 0.0
        self._noisy_alpha[lowest_zero] = self._alpha[lowest_zero] + self._rng.laplace(
            0.0, self._noise_scale
        )
        return self.query()

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def query(self) -> float:
        """The current noisy running count (private under continual observation)."""
        if self._steps == 0:
            return 0.0
        time = self._steps
        total = 0.0
        for level in range(self.levels):
            if (time >> level) & 1:
                total += self._noisy_alpha[level]
        return float(total)

    @property
    def steps(self) -> int:
        """Number of increments consumed so far."""
        return self._steps

    @property
    def true_count(self) -> float:
        """The exact running count (private state; used only by tests)."""
        time = self._steps
        return float(
            sum(self._alpha[level] for level in range(self.levels) if (time >> level) & 1)
        )

    def expected_error(self) -> float:
        """Rough expected absolute error of one release: ``levels * scale``."""
        return self.levels * self._noise_scale

    def memory_words(self) -> int:
        """Words of state: two arrays of dyadic partial sums."""
        return 2 * self.levels
