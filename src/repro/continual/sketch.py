"""A Count-Min sketch that can be read privately at any point of the stream.

Each cell of the sketch is a :class:`~repro.continual.counter.BinaryMechanismCounter`;
because the sketch is linear, a single stream element increments exactly one
cell per row, so per-row sensitivity is 1 and the whole table is
epsilon-differentially private under continual observation when each cell's
counter is run with budget ``epsilon / depth``.

Memory is a factor ``O(log horizon)`` above the one-shot private sketch,
matching the usual cost of continual observation.
"""

from __future__ import annotations

import numpy as np

from repro.continual.counter import BinaryMechanismCounter
from repro.sketch.hashing import HashFamily

__all__ = ["ContinualPrivateCountMinSketch"]


class ContinualPrivateCountMinSketch:
    """Count-Min sketch whose counters release privately at every step."""

    def __init__(
        self,
        width: int,
        depth: int,
        epsilon: float,
        horizon: int,
        seed: int | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if width <= 0 or depth <= 0:
            raise ValueError("width and depth must be positive")
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        self.width = int(width)
        self.depth = int(depth)
        self.epsilon = float(epsilon)
        self.horizon = int(horizon)
        self._hashes = HashFamily(depth=self.depth, width=self.width, seed=seed)
        self._rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        cell_epsilon = self.epsilon / self.depth
        self._cells = [
            [
                BinaryMechanismCounter(cell_epsilon, horizon, rng=self._rng)
                for _ in range(self.width)
            ]
            for _ in range(self.depth)
        ]
        self._updates = 0

    def update(self, key, count: float = 1.0) -> None:
        """Add ``count`` to the key's cell in every row."""
        for row in range(self.depth):
            bucket = self._hashes.bucket(row, key)
            self._cells[row][bucket].step(count)
        self._updates += 1

    def query(self, key) -> float:
        """Noisy point estimate: minimum of the rows' current releases."""
        return float(
            min(
                self._cells[row][self._hashes.bucket(row, key)].query()
                for row in range(self.depth)
            )
        )

    @property
    def updates(self) -> int:
        """Number of update operations performed."""
        return self._updates

    def memory_words(self) -> int:
        """Total words across all per-cell continual counters."""
        return sum(cell.memory_words() for row in self._cells for cell in row)
