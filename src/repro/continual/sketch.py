"""A Count-Min sketch that can be read privately at any point of the stream.

Every cell of the sketch is a binary-mechanism counter; because the sketch is
linear, a single stream element increments exactly one cell per row, so
per-row sensitivity is 1 and the whole table is epsilon-differentially
private under continual observation when each cell's counter is run with
budget ``epsilon / depth``.

The cells live in one :class:`~repro.continual.counter.BinaryMechanismCounterBank`
sharing a single event-driven time axis: each :meth:`update` /
:meth:`ContinualPrivateCountMinSketch.update_batch` call is one synchronized
step of the whole ``depth x width`` table (cells the event does not touch
step with weight 0).  That makes the time axis data-independent and lets one
``bincount`` per row replace per-cell Python updates -- the batch-native hot
path of the continual summarizer.

Memory is a factor ``O(log horizon)`` above the one-shot private sketch,
matching the usual cost of continual observation.
"""

from __future__ import annotations

import numpy as np

from repro.continual.counter import BinaryMechanismCounterBank
from repro.sketch.hashing import HashFamily, canonical_key

__all__ = ["ContinualPrivateCountMinSketch"]


class ContinualPrivateCountMinSketch:
    """Count-Min sketch whose cells release privately at every event.

    Example:
        >>> sketch = ContinualPrivateCountMinSketch(
        ...     width=16, depth=2, epsilon=1000.0, horizon=8, seed=0, rng=0
        ... )
        >>> sketch.update("hot", 5.0)
        >>> sketch.update("hot", 2.0)
        >>> round(sketch.query("hot"))
        7
    """

    def __init__(
        self,
        width: int,
        depth: int,
        epsilon: float,
        horizon: int,
        seed: int | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if width <= 0 or depth <= 0:
            raise ValueError("width and depth must be positive")
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        self.width = int(width)
        self.depth = int(depth)
        self.epsilon = float(epsilon)
        self.horizon = int(horizon)
        self.seed = seed
        self._hashes = HashFamily(depth=self.depth, width=self.width, seed=seed)
        self._rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        # Per-cell budget: one element touches one cell per row, so the rows
        # compose and each cell's counter runs with epsilon / depth.
        self._bank = BinaryMechanismCounterBank(
            epsilon=self.epsilon / self.depth,
            horizon=self.horizon,
            size=self.depth * self.width,
            rng=self._rng,
        )
        self._updates = 0
        self._released: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #
    def update(self, key, count: float = 1.0) -> None:
        """Add ``count`` to the key's cell in every row (one event)."""
        weights = np.zeros((self.depth, self.width))
        for row in range(self.depth):
            weights[row, self._hashes.bucket(row, key)] = count
        self._step(weights, updates=1)

    def update_many(self, keys, counts=None) -> None:
        """Add several (key, count) pairs in one synchronized event."""
        keys = list(keys)
        if counts is None:
            counts = [1.0] * len(keys)
        weights = np.zeros((self.depth, self.width))
        for key, count in zip(keys, counts):
            for row in range(self.depth):
                weights[row, self._hashes.bucket(row, key)] += float(count)
        self._step(weights, updates=len(keys))

    def update_batch(self, keys, counts) -> None:
        """Aggregated vectorised update: one event for a whole batch.

        ``keys`` must be pre-canonicalised integer keys (what
        :func:`repro.sketch.hashing.canonical_key` would produce; the batched
        ingestion path packs hierarchy cells this way) and ``counts`` their
        aggregated weights.  One ``bincount`` per row builds the weight table
        and the bank advances a single step, so the cost is
        ``O(batch * depth + depth * width * levels)`` independent of how many
        items the aggregated weights represent.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        counts = np.asarray(counts, dtype=float)
        if keys.shape != counts.shape:
            raise ValueError("keys and counts must have matching shapes")
        weights = np.empty((self.depth, self.width))
        for row in range(self.depth):
            buckets = self._hashes.buckets_batch(row, keys)
            weights[row] = np.bincount(buckets, weights=counts, minlength=self.width)
        self._step(weights, updates=int(keys.size))

    def _step(self, weights: np.ndarray, updates: int) -> None:
        self._bank.step(weights.ravel())
        self._updates += updates
        self._released = None

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def released_table(self) -> np.ndarray:
        """The current noisy ``depth x width`` table (cached per event)."""
        if self._released is None:
            self._released = self._bank.query_all().reshape(self.depth, self.width)
        return self._released

    def query(self, key) -> float:
        """Noisy point estimate: minimum of the rows' current releases."""
        table = self.released_table()
        return float(
            min(table[row, self._hashes.bucket(row, key)] for row in range(self.depth))
        )

    def query_many(self, keys) -> np.ndarray:
        """Vector of noisy point estimates for pre-canonicalisable keys."""
        keys = np.asarray([canonical_key(key) for key in keys], dtype=np.uint64)
        table = self.released_table()
        estimates = np.full(keys.shape, np.inf)
        for row in range(self.depth):
            buckets = self._hashes.buckets_batch(row, keys)
            estimates = np.minimum(estimates, table[row, buckets])
        return estimates

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def updates(self) -> int:
        """Number of (key, count) pairs recorded so far."""
        return self._updates

    @property
    def events(self) -> int:
        """Number of synchronized steps the table has taken."""
        return self._bank.steps

    def memory_words(self) -> int:
        """Total words across the shared continual counter bank."""
        return self._bank.memory_words()

    # ------------------------------------------------------------------ #
    # merging and persistence
    # ------------------------------------------------------------------ #
    def merge(self, other: "ContinualPrivateCountMinSketch") -> "ContinualPrivateCountMinSketch":
        """Linear merge of two shard sketches built with identical parameters.

        Both sketches must share width, depth, epsilon, horizon, hash seed
        and event count (the continual summarizer aligns event counts with
        zero-weight padding before merging).  Noise adds with the tables --
        the unavoidable cost of merging continually-private state.
        """
        if not isinstance(other, ContinualPrivateCountMinSketch):
            raise TypeError("can only merge with another ContinualPrivateCountMinSketch")
        if (self.width, self.depth, self.epsilon, self.horizon, self.seed) != (
            other.width,
            other.depth,
            other.epsilon,
            other.horizon,
            other.seed,
        ):
            raise ValueError(
                "sketches must share width, depth, epsilon, horizon and seed to merge"
            )
        merged = ContinualPrivateCountMinSketch(
            width=self.width,
            depth=self.depth,
            epsilon=self.epsilon,
            horizon=self.horizon,
            seed=self.seed,
            rng=self._rng,
        )
        merged._bank = self._bank.merged_with(other._bank)
        merged._updates = self._updates + other._updates
        return merged

    def pad_events_to(self, events: int) -> None:
        """Advance to ``events`` steps with zero-weight (data-free) events."""
        self._bank.pad_to(events)
        self._released = None

    def state_dict(self, *, arrays: bool = False) -> dict:
        """JSON-serialisable state (the RNG is owned by the summarizer).

        ``arrays=True`` keeps the underlying bank's counter tables as ndarray
        copies for the binary envelope writer.
        """
        return {
            "width": self.width,
            "depth": self.depth,
            "epsilon": self.epsilon,
            "horizon": self.horizon,
            "seed": self.seed,
            "updates": self._updates,
            "bank": self._bank.state_dict(arrays=arrays),
        }

    @classmethod
    def from_state(
        cls, state: dict, rng: np.random.Generator | int | None = None
    ) -> "ContinualPrivateCountMinSketch":
        """Rebuild a sketch from :meth:`state_dict` (pair with the restored RNG)."""
        sketch = cls(
            width=int(state["width"]),
            depth=int(state["depth"]),
            epsilon=float(state["epsilon"]),
            horizon=int(state["horizon"]),
            seed=state["seed"],
            rng=rng,
        )
        sketch._bank = BinaryMechanismCounterBank.from_state(state["bank"], rng=sketch._rng)
        sketch._updates = int(state["updates"])
        return sketch

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"ContinualPrivateCountMinSketch(width={self.width}, depth={self.depth}, "
            f"epsilon={self.epsilon}, events={self.events}/{self.horizon})"
        )
