"""PrivHP under continual observation: a batch-native ``StreamSummarizer``.

The 1-pass algorithm releases its partition once, after the stream.  Replacing
the per-node Laplace counters with binary-mechanism counters and the private
sketches with their continual counterparts (as Section 3.1 of the paper
suggests) yields a variant whose internal state is private *at every point of
the stream*, so a synthetic generator for the prefix seen so far can be
snapshot at any time -- and arbitrarily often -- without additional privacy
cost (each snapshot is post-processing of the continually-private state).

Unlike the original item-at-a-time sketch of this idea, the summarizer is
**batch-native**: every exact tree level is one
:class:`~repro.continual.counter.BinaryMechanismCounterBank` and every deep
level one :class:`~repro.continual.sketch.ContinualPrivateCountMinSketch`,
all advancing a shared event-driven time axis (one event per
:meth:`PrivHPContinual.update_batch` call, or per single
:meth:`PrivHPContinual.update`).  A batch costs one vectorised
``locate_batch`` pass, one ``bincount`` per exact level and one aggregated
sketch step per deep level -- the same shape as :class:`repro.core.privhp.PrivHP`'s
hot path -- so the continual variant ingests at batch speed instead of the
historical per-item crawl.

It satisfies the full :class:`repro.api.summarizer.StreamSummarizer`
protocol: batched ingestion, shard :meth:`PrivHPContinual.merge`, versioned
:meth:`PrivHPContinual.checkpoint` / :meth:`PrivHPContinual.restore` (the
``repro.io`` checkpoint envelope resumes byte-for-byte), and
:meth:`PrivHPContinual.release`.  On top of the protocol,
:meth:`PrivHPContinual.snapshot` produces a full
:class:`repro.api.release.Release` at any point of the stream -- the hook the
live-serving path (:meth:`repro.serve.store.ReleaseStore.register_live`)
builds on.

The trade-offs are the standard ones for continual observation: an extra
``O(log n)`` factor in both the per-release noise and the memory, and noise
that is baked into the state (so merging shards sums their noise instead of
deferring one injection to release time).
"""

from __future__ import annotations

import threading
from collections.abc import Iterable
from dataclasses import asdict

import numpy as np

from repro.continual.counter import BinaryMechanismCounterBank
from repro.continual.sketch import ContinualPrivateCountMinSketch
from repro.core.budget import allocate_budgets
from repro.core.config import PrivHPConfig
from repro.core.partition import grow_partition
from repro.core.privhp import _jsonify_rng_state
from repro.core.sampler import SyntheticDataGenerator
from repro.core.tree import PartitionTree, cell_at
from repro.domain.base import Domain
from repro.privacy.accountant import BudgetAccountant

__all__ = ["PrivHPContinual"]

#: Version tag of the checkpoint payload produced by :meth:`PrivHPContinual.checkpoint`.
CONTINUAL_STATE_VERSION = 1

#: Identifies continual checkpoints inside the shared ``repro.io`` envelope.
CONTINUAL_STATE_KIND = "privhp-continual"


class PrivHPContinual:
    """PrivHP whose state is differentially private under continual observation.

    Example:
        >>> import numpy as np
        >>> from repro.api.builder import PrivHPBuilder
        >>> summarizer = (
        ...     PrivHPBuilder("interval").stream_size(128).seed(0).continual().build()
        ... )
        >>> mid = summarizer.update_batch(np.linspace(0.0, 1.0, 64)).snapshot()
        >>> mid.items_processed
        64
        >>> summarizer.update_batch(np.linspace(0.0, 1.0, 64)).release().items_processed
        128
    """

    def __init__(
        self,
        domain: Domain,
        config: PrivHPConfig,
        horizon: int,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if horizon < 1:
            raise ValueError(f"horizon must be at least 1, got {horizon}")
        if config.depth > 62:
            raise ValueError(
                f"continual PrivHP supports depth <= 62 (cell codes must fit "
                f"an int64), got {config.depth}"
            )
        self.domain = domain
        self.config = config
        self.horizon = int(horizon)
        # Same randomness contract as PrivHP: a Generator is used as-is, an
        # int must agree with config.seed, and hash seeds always derive from
        # config.seed so shards share their hash families.
        if rng is None:
            self._rng = np.random.default_rng(config.seed)
            hash_base = config.seed
        elif isinstance(rng, np.random.Generator):
            self._rng = rng
            hash_base = config.seed
        else:
            rng = int(rng)
            if config.seed is not None and rng != config.seed:
                raise ValueError(
                    f"explicit rng seed {rng} disagrees with config.seed {config.seed}; "
                    "pass one of them (or a Generator)"
                )
            self._rng = np.random.default_rng(rng)
            hash_base = config.seed if config.seed is not None else rng
        self._hash_base = int(hash_base) if hash_base is not None else 0
        self._items_processed = 0
        self._events = 0
        self._finalized = False
        self._lock = threading.RLock()

        self.level_budgets = allocate_budgets(
            domain=domain,
            epsilon=config.epsilon,
            depth=config.depth,
            level_cutoff=config.level_cutoff,
            pruning_k=config.pruning_k,
            sketch_depth=config.sketch_depth,
            method=config.budget_allocation,
        )
        self.accountant = BudgetAccountant(total_budget=config.epsilon)

        # One continual counter bank per exact level (all 2^level cells share
        # the event time axis), one continual sketch per deep level.
        self._banks: dict[int, BinaryMechanismCounterBank] = {}
        for level in range(config.level_cutoff + 1):
            sigma = self.level_budgets[level]
            self._banks[level] = BinaryMechanismCounterBank(
                epsilon=sigma, horizon=self.horizon, size=1 << level, rng=self._rng
            )
            self.accountant.spend(sigma, label=f"continual tree level {level}")
        self._sketches: dict[int, ContinualPrivateCountMinSketch] = {}
        for level in range(config.level_cutoff + 1, config.depth + 1):
            sigma = self.level_budgets[level]
            self._sketches[level] = ContinualPrivateCountMinSketch(
                width=config.sketch_width,
                depth=config.sketch_depth,
                epsilon=sigma,
                horizon=self.horizon,
                seed=self._sketch_hash_seed(level),
                rng=self._rng,
            )
            self.accountant.spend(sigma, label=f"continual sketch level {level}")
        self.accountant.assert_within_budget()

    def _sketch_hash_seed(self, level: int) -> int:
        """Per-level hash seed, derived from one root seed via SeedSequence
        (the same derivation as PrivHP, so configs agree across variants)."""
        sequence = np.random.SeedSequence(entropy=self._hash_base, spawn_key=(level,))
        return int(sequence.generate_state(1)[0])

    # ------------------------------------------------------------------ #
    # streaming
    # ------------------------------------------------------------------ #
    def update(self, point) -> None:
        """Process one stream item (one event); state stays private throughout."""
        self.update_batch([point])

    def update_batch(self, points) -> "PrivHPContinual":
        """Vectorised ingestion of a whole batch as one continual event.

        One :meth:`~repro.domain.base.Domain.locate_batch` pass locates every
        point, each exact level aggregates its batch with a prefix
        ``bincount`` and advances its counter bank one step, and each deep
        level takes one aggregated sketch step over the batch's distinct
        cells.  The exact counts after the batch are identical to item-wise
        processing (up to float summation order); the noise layout follows
        the event time axis, so private snapshots remain available after
        every batch.  Returns ``self`` for chaining.
        """
        if self._finalized:
            raise RuntimeError(
                "PrivHPContinual has been finalized; no further updates are allowed"
            )
        bits = self.domain.locate_batch(points, self.config.depth)
        return self._apply_event(bits)

    def _apply_event(self, bits) -> "PrivHPContinual":
        """Advance all banks and sketches one event from pre-located bits."""
        with self._lock:
            if self._finalized:
                raise RuntimeError(
                    "PrivHPContinual has been finalized; no further updates are allowed"
                )
            depth = self.config.depth
            batch_size = int(bits.shape[0])
            if batch_size == 0:
                return self
            if self._items_processed + batch_size > self.horizon:
                raise RuntimeError(
                    f"stream horizon of {self.horizon} items exhausted; "
                    "construct PrivHPContinual with a larger horizon"
                )
            full_codes = Domain.pack_paths(bits)

            cutoff = self.config.level_cutoff
            for level in range(cutoff + 1):
                codes = full_codes >> (depth - level)
                weights = np.bincount(codes, minlength=1 << level)
                self._banks[level].step(weights.astype(float))

            for level in range(cutoff + 1, depth + 1):
                codes = full_codes >> (depth - level)
                occupied, weights = np.unique(codes, return_counts=True)
                # (1 << level) | code is exactly canonical_key of the bit
                # tuple, so the aggregated batch hits the same buckets as
                # per-item tuple updates.
                keys = occupied.astype(np.uint64) | (np.uint64(1) << np.uint64(level))
                self._sketches[level].update_batch(keys, weights.astype(float))

            self._items_processed += batch_size
            self._events += 1
            return self

    def update_segments(self, points, lengths) -> "PrivHPContinual":
        """Apply several consecutive batches, one continual event per segment.

        Byte-identical to calling :meth:`update_batch` once per segment in
        order -- each segment is its own event on the binary-mechanism time
        axis, so unlike the one-shot variant the counter steps cannot be
        fused across segments without changing the noise layout.  What *is*
        shared is the elementwise location pass: the concatenation is located
        once and each event consumes its slice of the bit matrix (locating a
        slice equals slicing the located whole).  This method exists so the
        batched ingestion service can hand any summarizer a coerced
        concatenation plus segment lengths through one uniform call.
        """
        lengths = [int(length) for length in lengths]
        if any(length < 0 for length in lengths):
            raise ValueError("segment lengths must be non-negative")
        if sum(lengths) != len(points):
            raise ValueError(
                f"segment lengths sum to {sum(lengths)} but the concatenated "
                f"batch has {len(points)} items"
            )
        if self._finalized:
            raise RuntimeError(
                "PrivHPContinual has been finalized; no further updates are allowed"
            )
        bits = self.domain.locate_batch(points, self.config.depth)
        offset = 0
        for length in lengths:
            self._apply_event(bits[offset : offset + length])
            offset += length
        return self

    def process(self, stream: Iterable) -> "PrivHPContinual":
        """Process an iterable item by item (one event each); returns ``self``.

        Kept as the continual analogue of :meth:`repro.core.privhp.PrivHP.process`
        and as the slow baseline the continual benchmark compares against; new
        code should feed batches through :meth:`update_batch` (see
        :func:`repro.api.summarizer.ingest_batches`).
        """
        for point in stream:
            self.update(point)
        return self

    # ------------------------------------------------------------------ #
    # sharding: linear merge of continually-private summaries
    # ------------------------------------------------------------------ #
    def _pad_events_to(self, events: int) -> None:
        """Advance to ``events`` with zero-weight (data-independent) events."""
        with self._lock:
            while self._events < events:
                for bank in self._banks.values():
                    bank.pad_to(self._events + 1)
                for sketch in self._sketches.values():
                    sketch.pad_events_to(self._events + 1)
                self._events += 1

    def merge(self, other: "PrivHPContinual") -> "PrivHPContinual":
        """Combine two continual shard summaries into one (linear merge).

        Both operands must share configuration, domain, horizon and hash
        seeds, and must have been built with *independent* noise generators
        (:meth:`repro.api.builder.PrivHPBuilder.build_shards` arranges this) --
        continual noise is baked into the state the moment it is drawn, so
        unlike one-shot PrivHP shards there is no raw mode and the merged
        state carries the sum of the shards' noise.  Event counts are aligned
        first with zero-weight padding events, which are data-independent and
        therefore privacy-free.
        """
        from repro.io.serialization import domain_to_dict

        if not isinstance(other, PrivHPContinual):
            raise TypeError("can only merge with another PrivHPContinual")
        if self._finalized or other._finalized:
            raise RuntimeError("cannot merge a summarizer that has already been released")
        if self.config != other.config:
            raise ValueError("cannot merge summarizers with different configurations")
        if self.horizon != other.horizon:
            raise ValueError("cannot merge summarizers with different horizons")
        if domain_to_dict(self.domain) != domain_to_dict(other.domain):
            raise ValueError("cannot merge summarizers over different domains")
        if self._hash_base != other._hash_base:
            raise ValueError("cannot merge summarizers with different hash seed bases")

        target_events = max(self._events, other._events)
        self._pad_events_to(target_events)
        other._pad_events_to(target_events)

        cls = type(self)
        merged = cls.__new__(cls)
        merged.domain = self.domain
        merged.config = self.config
        merged.horizon = self.horizon
        merged._rng = self._rng
        merged._hash_base = self._hash_base
        merged._items_processed = self._items_processed + other._items_processed
        merged._events = target_events
        merged._finalized = False
        merged._lock = threading.RLock()
        merged.level_budgets = self.level_budgets
        merged.accountant = BudgetAccountant(total_budget=self.config.epsilon)
        for entry in self.accountant.ledger:
            merged.accountant.spend(entry.epsilon, label=entry.label)
        merged._banks = {
            level: bank.merged_with(other._banks[level])
            for level, bank in self._banks.items()
        }
        merged._sketches = {
            level: sketch.merge(other._sketches[level])
            for level, sketch in self._sketches.items()
        }
        return merged

    @classmethod
    def merge_all(cls, shards: Iterable["PrivHPContinual"]) -> "PrivHPContinual":
        """Left fold of :meth:`merge` over an iterable of shard summaries."""
        shards = list(shards)
        if not shards:
            raise ValueError("merge_all requires at least one shard")
        merged = shards[0]
        for shard in shards[1:]:
            merged = merged.merge(shard)
        return merged

    # ------------------------------------------------------------------ #
    # checkpoint / restore (durable mid-stream state)
    # ------------------------------------------------------------------ #
    def checkpoint(self, *, arrays: bool = False) -> dict:
        """A JSON-serialisable snapshot of the full mid-stream state.

        Captures every counter bank, sketch, the privacy ledger and the exact
        generator state, so ``restore(checkpoint())`` continues the stream --
        and snapshots -- byte-for-byte identically to the original instance.
        Use :func:`repro.io.serialization.save_checkpoint` for the versioned
        on-disk envelope (it round-trips continual and one-shot summarizers
        through the same format).  Unlike a raw one-shot shard, a continual
        checkpoint is always as private as the summary itself: the noise is
        already in the state.

        ``arrays=True`` keeps the counter banks' tables as float64 ndarray
        copies instead of nested lists -- not JSON-serialisable, but exactly
        what the binary envelope writer stores without a list round trip.
        ``restore`` accepts either form.
        """
        from repro.io.serialization import domain_to_dict

        with self._lock:
            if self._finalized:
                raise RuntimeError(
                    "cannot checkpoint a released summarizer; persist the Release instead"
                )
            return {
                "state_version": CONTINUAL_STATE_VERSION,
                "summarizer": CONTINUAL_STATE_KIND,
                "config": asdict(self.config),
                "domain": domain_to_dict(self.domain),
                "horizon": self.horizon,
                "items_processed": self._items_processed,
                "events": self._events,
                "hash_base": self._hash_base,
                "banks": [
                    {"level": level, "state": bank.state_dict(arrays=arrays)}
                    for level, bank in sorted(self._banks.items())
                ],
                "sketches": [
                    {"level": level, "state": sketch.state_dict(arrays=arrays)}
                    for level, sketch in sorted(self._sketches.items())
                ],
                "accountant": {
                    "total_budget": self.accountant.total_budget,
                    "spends": [[entry.epsilon, entry.label] for entry in self.accountant.ledger],
                },
                "rng": {
                    "bit_generator": type(self._rng.bit_generator).__name__,
                    "state": _jsonify_rng_state(self._rng.bit_generator.state),
                },
            }

    @classmethod
    def restore(cls, state: dict) -> "PrivHPContinual":
        """Reconstruct a summarizer from a :meth:`checkpoint` snapshot."""
        from repro.io.serialization import domain_from_dict

        version = int(state.get("state_version", 0))
        if version > CONTINUAL_STATE_VERSION:
            raise ValueError(
                f"continual checkpoint state version {version} is newer than "
                f"supported version {CONTINUAL_STATE_VERSION}"
            )
        config = PrivHPConfig(**state["config"])
        domain = domain_from_dict(state["domain"])

        algorithm = cls.__new__(cls)
        algorithm.domain = domain
        algorithm.config = config
        algorithm.horizon = int(state["horizon"])
        algorithm._hash_base = int(state["hash_base"])
        algorithm._items_processed = int(state["items_processed"])
        algorithm._events = int(state["events"])
        algorithm._finalized = False
        algorithm._lock = threading.RLock()
        algorithm.level_budgets = allocate_budgets(
            domain=domain,
            epsilon=config.epsilon,
            depth=config.depth,
            level_cutoff=config.level_cutoff,
            pruning_k=config.pruning_k,
            sketch_depth=config.sketch_depth,
            method=config.budget_allocation,
        )
        accountant_state = state["accountant"]
        algorithm.accountant = BudgetAccountant(total_budget=accountant_state["total_budget"])
        for epsilon, label in accountant_state["spends"]:
            algorithm.accountant.spend(epsilon, label=label)

        rng_state = state["rng"]
        bit_generator = getattr(np.random, rng_state["bit_generator"])()
        bit_generator.state = rng_state["state"]
        algorithm._rng = np.random.Generator(bit_generator)

        algorithm._banks = {
            int(entry["level"]): BinaryMechanismCounterBank.from_state(
                entry["state"], rng=algorithm._rng
            )
            for entry in state["banks"]
        }
        algorithm._sketches = {
            int(entry["level"]): ContinualPrivateCountMinSketch.from_state(
                entry["state"], rng=algorithm._rng
            )
            for entry in state["sketches"]
        }
        return algorithm

    # ------------------------------------------------------------------ #
    # snapshots and release
    # ------------------------------------------------------------------ #
    def snapshot(self, sampling_seed: int | None = None):
        """A full :class:`repro.api.release.Release` for the prefix seen so far.

        May be called any number of times (including mid-stream and from
        serving threads while ingestion continues); each call is
        post-processing of the continually-private counters and sketches, so
        no extra privacy budget is consumed.  The release is tagged with the
        ``items_processed`` at snapshot time -- the version key live serving
        uses for cache invalidation.

        Snapshots never consume the ingestion noise generator: the sampler is
        seeded deterministically from ``(seed, items_processed)`` (or from
        ``sampling_seed``), so taking a snapshot leaves subsequent ingestion
        -- and checkpoint resume -- byte-for-byte unchanged.
        """
        from repro.api.release import Release

        with self._lock:
            tree = PartitionTree()
            for level, bank in sorted(self._banks.items()):
                values = bank.query_all()
                for code in range(bank.size):
                    tree.add_node(cell_at(level, code), float(values[code]))
            grow_partition(
                tree=tree,
                sketches=self._sketches,
                pruning_k=self.config.pruning_k,
                level_cutoff=self.config.level_cutoff,
                depth=self.config.depth,
                apply_consistency=self.config.apply_consistency,
            )
            items = self._items_processed
            events = self._events
            memory = self.memory_words()
            ledger = [[entry.epsilon, entry.label] for entry in self.accountant.ledger]
        if sampling_seed is not None:
            sampler_rng = np.random.default_rng(sampling_seed)
        else:
            sampler_rng = np.random.default_rng(
                np.random.SeedSequence(entropy=(self._hash_base, items))
            )
        generator = SyntheticDataGenerator(tree, self.domain, rng=sampler_rng)
        return Release(
            generator=generator,
            epsilon=self.config.epsilon,
            items_processed=items,
            memory_words=memory,
            metadata={
                "config": asdict(self.config),
                "continual": {"horizon": self.horizon, "events": events},
                "privacy_ledger": ledger,
            },
        )

    def release(self):
        """Finish the stream and return the final :class:`~repro.api.release.Release`.

        Equivalent to a last :meth:`snapshot` followed by sealing the
        summarizer against further updates (the ``StreamSummarizer``
        contract).  Unlike the one-shot PrivHP no budget is spent here --
        everything was paid at initialisation -- and mid-stream snapshots
        taken earlier remain valid.
        """
        with self._lock:
            if self._finalized:
                raise RuntimeError("PrivHPContinual has already been finalized")
            release = self.snapshot()
            self._finalized = True
        return release

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def epsilon(self) -> float:
        """Total privacy budget guarding the whole stream of releases."""
        return self.config.epsilon

    @property
    def items_processed(self) -> int:
        """Number of stream items consumed so far."""
        return self._items_processed

    @property
    def events(self) -> int:
        """Number of ingestion events (batches or single items) so far."""
        return self._events

    @property
    def finalized(self) -> bool:
        """Whether :meth:`release` has sealed the summarizer."""
        return self._finalized

    @property
    def banks(self) -> dict[int, BinaryMechanismCounterBank]:
        """The per-exact-level counter banks (noisy state; private)."""
        return dict(self._banks)

    @property
    def sketches(self) -> dict[int, ContinualPrivateCountMinSketch]:
        """The per-deep-level continual sketches (noisy state; private)."""
        return dict(self._sketches)

    def memory_words(self) -> int:
        """Words held by all continual counter banks and sketches."""
        bank_words = sum(bank.memory_words() for bank in self._banks.values())
        sketch_words = sum(sketch.memory_words() for sketch in self._sketches.values())
        return bank_words + sketch_words

    def privacy_summary(self) -> str:
        """Human-readable ledger of the per-level budget spends."""
        return self.accountant.summary()

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"PrivHPContinual(epsilon={self.config.epsilon}, k={self.config.pruning_k}, "
            f"items={self._items_processed}/{self.horizon}, events={self._events})"
        )
