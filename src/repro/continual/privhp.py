"""PrivHP under continual observation.

The 1-pass algorithm releases its partition once, after the stream.  Replacing
the per-node Laplace counters with binary-mechanism counters and the private
sketches with their continual counterparts (as Section 3.1 of the paper
suggests) yields a variant whose internal state is private *at every point of
the stream*, so a synthetic generator for the prefix seen so far can be
snapshot at any time -- and arbitrarily often -- without additional privacy
cost (each snapshot is post-processing of the continually-private state).

The trade-offs are the standard ones for continual observation: an extra
``O(log n)`` factor in both the per-release noise and the memory.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.core.budget import allocate_budgets
from repro.core.config import PrivHPConfig
from repro.core.partition import grow_partition
from repro.core.sampler import SyntheticDataGenerator
from repro.core.tree import PartitionTree
from repro.continual.counter import BinaryMechanismCounter
from repro.continual.sketch import ContinualPrivateCountMinSketch
from repro.domain.base import Cell, Domain
from repro.privacy.accountant import BudgetAccountant

__all__ = ["PrivHPContinual"]


class PrivHPContinual:
    """PrivHP whose state is differentially private under continual observation."""

    def __init__(
        self,
        domain: Domain,
        config: PrivHPConfig,
        horizon: int,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if horizon < 1:
            raise ValueError(f"horizon must be at least 1, got {horizon}")
        self.domain = domain
        self.config = config
        self.horizon = int(horizon)
        self._rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(
            rng if rng is not None else config.seed
        )
        self._items_processed = 0

        self.level_budgets = allocate_budgets(
            domain=domain,
            epsilon=config.epsilon,
            depth=config.depth,
            level_cutoff=config.level_cutoff,
            pruning_k=config.pruning_k,
            sketch_depth=config.sketch_depth,
            method=config.budget_allocation,
        )
        self.accountant = BudgetAccountant(total_budget=config.epsilon)

        # One continual counter per exact-tree node.
        self._counters: dict[Cell, BinaryMechanismCounter] = {}
        skeleton = PartitionTree.complete(config.level_cutoff)
        for theta in skeleton:
            sigma = self.level_budgets[len(theta)]
            self._counters[theta] = BinaryMechanismCounter(sigma, self.horizon, rng=self._rng)
        for level in range(config.level_cutoff + 1):
            self.accountant.spend(self.level_budgets[level], label=f"continual tree level {level}")

        # One continual sketch per deep level.
        self._sketches: dict[int, ContinualPrivateCountMinSketch] = {}
        base_seed = config.seed if config.seed is not None else 0
        for level in range(config.level_cutoff + 1, config.depth + 1):
            sigma = self.level_budgets[level]
            self._sketches[level] = ContinualPrivateCountMinSketch(
                width=config.sketch_width,
                depth=config.sketch_depth,
                epsilon=sigma,
                horizon=self.horizon,
                seed=base_seed + level,
                rng=self._rng,
            )
            self.accountant.spend(sigma, label=f"continual sketch level {level}")
        self.accountant.assert_within_budget()

    # ------------------------------------------------------------------ #
    # streaming
    # ------------------------------------------------------------------ #
    def update(self, point) -> None:
        """Process one stream item; state remains private after every update."""
        if self._items_processed >= self.horizon:
            raise RuntimeError(
                f"stream horizon of {self.horizon} items exhausted; "
                "construct PrivHPContinual with a larger horizon"
            )
        path = self.domain.locate(point, self.config.depth)
        for level in range(self.config.depth + 1):
            theta = path[:level]
            if level <= self.config.level_cutoff:
                self._counters[theta].step(1.0)
            else:
                self._sketches[level].update(theta, 1.0)
        self._items_processed += 1

    def process(self, stream: Iterable) -> "PrivHPContinual":
        """Process an iterable of items; returns ``self`` for chaining."""
        for point in stream:
            self.update(point)
        return self

    # ------------------------------------------------------------------ #
    # snapshots
    # ------------------------------------------------------------------ #
    def snapshot(self) -> SyntheticDataGenerator:
        """A synthetic generator for the stream prefix seen so far.

        May be called any number of times (including mid-stream); each call is
        post-processing of the continually-private counters and sketches, so
        no extra privacy budget is consumed.
        """
        tree = PartitionTree()
        for theta, counter in self._counters.items():
            tree.add_node(theta, counter.query())
        grow_partition(
            tree=tree,
            sketches=self._sketches,
            pruning_k=self.config.pruning_k,
            level_cutoff=self.config.level_cutoff,
            depth=self.config.depth,
            apply_consistency=self.config.apply_consistency,
        )
        return SyntheticDataGenerator(tree, self.domain, rng=self._rng)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def items_processed(self) -> int:
        """Number of stream items consumed so far."""
        return self._items_processed

    def memory_words(self) -> int:
        """Words held by all continual counters and sketches."""
        counter_words = sum(counter.memory_words() for counter in self._counters.values())
        sketch_words = sum(sketch.memory_words() for sketch in self._sketches.values())
        return counter_words + sketch_words

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"PrivHPContinual(epsilon={self.config.epsilon}, k={self.config.pruning_k}, "
            f"items={self._items_processed}/{self.horizon})"
        )
