"""Continual-observation extension of PrivHP.

The paper focuses on the 1-pass model (the release happens once, after the
stream) but notes that "our method can be adapted to continual observation by
replacing the counters and sketches with their continual observation
counterparts" (Section 3.1).  This package implements that adaptation as a
first-class, batch-native production path:

* :class:`BinaryMechanismCounter` -- the classic binary-tree (Chan-Shi-Song /
  Dwork et al.) counter releasing a running count at every step under
  epsilon-DP for the whole stream; its
  :meth:`~repro.continual.counter.BinaryMechanismCounter.step_many` consumes a
  whole block of steps with closed-form dyadic bookkeeping.
* :class:`BinaryMechanismCounterBank` -- a vector of those counters sharing
  one event-driven time axis, the vectorised layout behind the continual tree
  levels and sketches.
* :class:`ContinualPrivateCountMinSketch` -- a Count-Min sketch whose cells
  are continual counters, so frequency estimates can be read at any time
  during the stream; batched updates advance the whole table in one step.
* :class:`PrivHPContinual` -- PrivHP with those primitives substituted in.
  It satisfies the :class:`repro.api.summarizer.StreamSummarizer` protocol
  (batched ingestion, shard merge, checkpoint/restore, release), and
  :meth:`~repro.continual.privhp.PrivHPContinual.snapshot` can be called at
  any point (and repeatedly) to obtain a full
  :class:`repro.api.release.Release` for the prefix of the stream seen so
  far, without spending additional budget -- the primitive behind live
  snapshot serving in :mod:`repro.serve`.
"""

from repro.continual.counter import BinaryMechanismCounter, BinaryMechanismCounterBank
from repro.continual.sketch import ContinualPrivateCountMinSketch
from repro.continual.privhp import PrivHPContinual

__all__ = [
    "BinaryMechanismCounter",
    "BinaryMechanismCounterBank",
    "ContinualPrivateCountMinSketch",
    "PrivHPContinual",
]
