"""Continual-observation extension of PrivHP.

The paper focuses on the 1-pass model (the release happens once, after the
stream) but notes that "our method can be adapted to continual observation by
replacing the counters and sketches with their continual observation
counterparts" (Section 3.1).  This package implements that adaptation:

* :class:`BinaryMechanismCounter` -- the classic binary-tree (Chan-Shi-Song /
  Dwork et al.) counter releasing a running count at every step under
  epsilon-DP for the whole stream.
* :class:`ContinualPrivateCountMinSketch` -- a Count-Min sketch whose cells
  are binary-mechanism counters, so frequency estimates can be read at any
  time during the stream.
* :class:`PrivHPContinual` -- PrivHP with those primitives substituted in;
  :meth:`~repro.continual.privhp.PrivHPContinual.snapshot` can be called at
  any point (and repeatedly) to obtain a synthetic generator for the prefix of
  the stream seen so far, without spending additional budget.
"""

from repro.continual.counter import BinaryMechanismCounter
from repro.continual.sketch import ContinualPrivateCountMinSketch
from repro.continual.privhp import PrivHPContinual

__all__ = [
    "BinaryMechanismCounter",
    "ContinualPrivateCountMinSketch",
    "PrivHPContinual",
]
