"""A memoizing query cache with hit/miss statistics.

Real query workloads repeat: dashboards re-issue the same range counts,
monitors poll the same quantiles.  Because every answer is deterministic
post-processing of an immutable release, repeated queries can be served from
memory with zero privacy cost and zero staleness.  The cache is a bounded LRU
keyed by the canonical query form, safe to share across the threads of the
HTTP server.

Example:
    >>> from repro.serve.cache import QueryCache
    >>> cache = QueryCache(maxsize=2)
    >>> cache.lookup("a", lambda: 1.0)
    1.0
    >>> cache.lookup("a", lambda: 2.0)   # served from cache, not recomputed
    1.0
    >>> cache.stats()["hits"], cache.stats()["misses"]
    (1, 1)
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable

__all__ = ["QueryCache"]

_MISSING = object()


class QueryCache:
    """Bounded, thread-safe LRU cache of query answers with hit/miss stats."""

    def __init__(self, maxsize: int = 4096) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be at least 1, got {maxsize}")
        self.maxsize = int(maxsize)
        self._entries: OrderedDict[str, Any] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        #: Single-flight state: one event per key currently being computed,
        #: and how many lookups waited on another thread's computation.
        self._inflight: dict[str, threading.Event] = {}
        self._inflight_waits = 0

    def get(self, key: str, default: Any = None) -> Any:
        """The cached answer for ``key`` (counts a hit or a miss)."""
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self._misses += 1
                return default
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key``, evicting the least recently used
        entry when full."""
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def lookup(self, key: str, compute: Callable[[], Any]) -> Any:
        """The cached answer for ``key``, computing and storing it on a miss.

        Cold keys are single-flight: the first thread to miss computes (with
        the lock released -- query evaluation can be slow) while every other
        thread parks on a per-key event and reuses the stored answer, so N
        concurrent requests for one cold key cost one evaluation instead of
        a thundering herd of N.  If the computing thread raises, its waiters
        wake and elect a new computer rather than failing.
        """
        while True:
            with self._lock:
                value = self._entries.get(key, _MISSING)
                if value is not _MISSING:
                    self._entries.move_to_end(key)
                    self._hits += 1
                    return value
                event = self._inflight.get(key)
                if event is None:
                    # This thread is the computer for the cold key.
                    event = self._inflight[key] = threading.Event()
                    self._misses += 1
                    computer = True
                else:
                    self._inflight_waits += 1
                    computer = False
            if not computer:
                event.wait()
                continue
            try:
                value = compute()
                self.put(key, value)
                return value
            finally:
                with self._lock:
                    self._inflight.pop(key, None)
                event.set()

    def clear(self) -> None:
        """Drop every entry and reset the statistics."""
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0
            self._inflight_waits = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        """Hit/miss counters plus occupancy, as a JSON-serialisable dict."""
        with self._lock:
            total = self._hits + self._misses
            return {
                "hits": self._hits,
                "misses": self._misses,
                "hit_rate": (self._hits / total) if total else 0.0,
                "inflight_waits": self._inflight_waits,
                "size": len(self._entries),
                "maxsize": self.maxsize,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        summary = self.stats()
        return (
            f"QueryCache(size={summary['size']}/{summary['maxsize']}, "
            f"hits={summary['hits']}, misses={summary['misses']})"
        )
