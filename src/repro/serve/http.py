"""A stdlib JSON-over-HTTP endpoint for querying released summaries.

No web framework, no dependencies: a ``ThreadingHTTPServer`` whose handler
translates HTTP requests into :class:`~repro.serve.service.QueryService`
calls.  Because the service funnels every transport through the same
engines, an HTTP answer is byte-identical (as a JSON number) to the
in-process answer on the same release.  Stores with live entries
(:meth:`~repro.serve.store.ReleaseStore.register_live`) serve snapshots of a
stream *while it is still being ingested*: continual snapshots are taken
under the summarizer's lock, so serving threads and the ingesting thread
never observe torn state, and each HTTP answer matches an in-process
``snapshot()`` of the same state byte for byte.

Routes:

* ``GET /healthz`` -- liveness plus the number of addressable releases.
* ``GET /releases`` -- metadata for every release (domain, epsilon, items,
  supported query types).
* ``GET /stats`` -- query-cache hit/miss statistics and write-failure count.
* ``POST /query`` -- body ``{"release": name, "query": {...}}`` (or
  ``"domain"`` instead of ``"release"``, or ``"queries": [...]`` for a
  batch); the answer payload echoes the canonical query.  The batch form
  rides :meth:`~repro.serve.service.QueryService.answer_many`: one release
  resolution and one vectorised evaluation pass for the whole list.

Clients that disconnect mid-response are routine at high concurrency
(timeouts, impatient load balancers): response writes that hit a dead
socket are swallowed and counted (``write_failures`` in ``/stats``) instead
of unwinding the handler thread with ``BrokenPipeError``.

For multi-core serving, :func:`start_worker_pool` runs N processes that all
bind the same fixed port behind ``SO_REUSEPORT`` (the kernel load-balances
connections across them) -- ``repro serve --store DIR --workers N``.

Example (in-process; see ``examples/serve_demo.py`` for the HTTP loop):
    >>> from repro.serve.http import create_server
    >>> from repro.serve.store import ReleaseStore
    >>> from repro.api.release import Release
    >>> from repro.baselines.pmm import build_exact_tree
    >>> from repro.core.sampler import SyntheticDataGenerator
    >>> from repro.domain.interval import UnitInterval
    >>> store = ReleaseStore()
    >>> tree = build_exact_tree([0.2, 0.8], UnitInterval(), depth=1)
    >>> store.add("demo", Release(SyntheticDataGenerator(tree, UnitInterval())))
    >>> server = create_server(store, port=0)   # port 0: pick a free port
    >>> isinstance(server.server_port, int)
    True
    >>> server.server_close()
"""

from __future__ import annotations

import json
import multiprocessing
import pathlib
import socket
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.serve.service import QueryService
from repro.serve.store import ReleaseStore

__all__ = ["QueryHTTPServer", "create_server", "start_worker_pool"]

#: Largest accepted request body; queries are tiny, so anything bigger is a
#: client error rather than a reason to buffer unbounded input.
MAX_BODY_BYTES = 1 << 20


class _QueryRequestHandler(BaseHTTPRequestHandler):
    """Translates HTTP requests into ``QueryService`` calls."""

    server: "QueryHTTPServer"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #
    def _send_json(self, payload, status: int = 200) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        except ConnectionError:
            # The client hung up mid-response (BrokenPipeError /
            # ConnectionResetError).  The answer is already computed and the
            # socket is dead; drop the connection quietly and count it
            # instead of unwinding the handler thread with a traceback.
            self.server.count_write_failure()
            self.close_connection = True

    def _send_error_json(self, message: str, status: int) -> None:
        self._send_json({"error": message}, status=status)

    def log_message(self, format: str, *args) -> None:
        if self.server.verbose:
            super().log_message(format, *args)

    # ------------------------------------------------------------------ #
    # routes
    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 - http.server naming convention
        service = self.server.service
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path in ("/", "/healthz"):
            self._send_json({"status": "ok", "releases": len(service.store)})
        elif path == "/releases":
            self._send_json({"releases": service.store.describe()})
        elif path == "/stats":
            stats = service.stats()
            stats["write_failures"] = self.server.write_failures
            self._send_json(stats)
        else:
            self._send_error_json(f"unknown path {self.path!r}", status=404)

    def do_POST(self) -> None:  # noqa: N802 - http.server naming convention
        if self.path.split("?", 1)[0].rstrip("/") != "/query":
            self._send_error_json(f"unknown path {self.path!r}", status=404)
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            self._send_error_json("invalid Content-Length", status=400)
            return
        if length <= 0 or length > MAX_BODY_BYTES:
            self._send_error_json(
                f"request body must be 1..{MAX_BODY_BYTES} bytes, got {length}", status=400
            )
            return
        try:
            request = json.loads(self.rfile.read(length))
        except json.JSONDecodeError as error:
            self._send_error_json(f"request body is not valid JSON: {error}", status=400)
            return
        if not isinstance(request, dict):
            self._send_error_json("request body must be a JSON object", status=400)
            return

        service = self.server.service
        release = request.get("release")
        domain = request.get("domain")
        try:
            if "queries" in request:
                queries = request["queries"]
                if not isinstance(queries, list):
                    raise ValueError("'queries' must be a list of query objects")
                self._send_json(
                    {"results": service.answer_many(queries, release=release, domain=domain)}
                )
            elif "query" in request:
                self._send_json(service.answer(request["query"], release=release, domain=domain))
            else:
                raise ValueError("request must carry a 'query' object or a 'queries' list")
        except KeyError as error:
            self._send_error_json(str(error.args[0] if error.args else error), status=404)
        except (TypeError, ValueError) as error:
            self._send_error_json(str(error), status=400)


class QueryHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`QueryService`.

    ``reuse_port=True`` binds with ``SO_REUSEPORT`` so several worker
    processes can share one fixed port (see :func:`start_worker_pool`).
    """

    daemon_threads = True
    #: Accept-queue depth: hundreds of clients connecting at once must not
    #: overflow the default backlog of 5 (overflowed handshakes surface as
    #: connection resets after the client has already sent its request).
    request_queue_size = 128

    def __init__(
        self,
        service: QueryService,
        host: str = "127.0.0.1",
        port: int = 8080,
        verbose: bool = False,
        reuse_port: bool = False,
    ) -> None:
        self.service = service
        self.verbose = verbose
        self.write_failures = 0
        self._write_failures_lock = threading.Lock()
        if reuse_port and not hasattr(socket, "SO_REUSEPORT"):
            raise ValueError("this platform does not support SO_REUSEPORT")
        self.allow_reuse_port = bool(reuse_port)
        super().__init__((host, port), _QueryRequestHandler)

    def count_write_failure(self) -> None:
        """Record one response write that failed on a dead client socket."""
        with self._write_failures_lock:
            self.write_failures += 1


def create_server(
    store: ReleaseStore | str,
    host: str = "127.0.0.1",
    port: int = 8080,
    cache_size: int = 4096,
    verbose: bool = False,
    reuse_port: bool = False,
) -> QueryHTTPServer:
    """Build a ready-to-run server over a store (or a store directory path).

    Pass ``port=0`` to bind an ephemeral free port (read it back from
    ``server.server_port``); call ``server.serve_forever()`` to serve and
    ``server.shutdown()`` / ``server.server_close()`` to stop.
    """
    if not isinstance(store, ReleaseStore):
        store = ReleaseStore(store)
    service = QueryService(store, cache_size=cache_size)
    return QueryHTTPServer(service, host=host, port=port, verbose=verbose, reuse_port=reuse_port)


def _worker_main(
    directory: str, host: str, port: int, cache_size: int, verbose: bool
) -> None:
    """One pool worker: its own store, service, cache and threaded server,
    bound to the shared port with ``SO_REUSEPORT``."""
    server = create_server(
        directory, host=host, port=port, cache_size=cache_size, verbose=verbose, reuse_port=True
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    finally:
        server.server_close()


def start_worker_pool(
    directory: str | pathlib.Path,
    host: str = "127.0.0.1",
    port: int = 8080,
    workers: int = 2,
    cache_size: int = 4096,
    verbose: bool = False,
) -> list[multiprocessing.Process]:
    """Serve one store directory from ``workers`` processes on one port.

    Every worker binds the same fixed ``port`` with ``SO_REUSEPORT`` and the
    kernel load-balances incoming connections across them, so throughput
    scales past one GIL.  Each worker loads the store from ``directory``
    independently and keeps its own query cache (stdlib only: no shared
    state, no coordination).  Returns the started processes; terminate and
    join them to stop.  Requires an explicit port: with ``port=0`` each
    worker would bind a *different* ephemeral port.
    """
    if workers < 1:
        raise ValueError(f"workers must be at least 1, got {workers}")
    if port == 0:
        raise ValueError("a worker pool needs an explicit --port (port 0 would "
                         "bind a different ephemeral port per worker)")
    directory = str(directory)
    processes = [
        multiprocessing.Process(
            target=_worker_main,
            args=(directory, host, port, cache_size, verbose),
            daemon=True,
        )
        for _ in range(workers)
    ]
    for process in processes:
        process.start()
    return processes
