"""Query dicts in, answers out: the transport-independent serving core.

Queries are plain JSON-serialisable dictionaries -- ``{"type": "range_count",
"lower": 0.1, "upper": 0.4}`` -- so the HTTP endpoint, the batch CLI and
in-process callers all speak the same language and, crucially, produce
*byte-identical* answers: every transport funnels through
:func:`answer_query`, which delegates to the same
:mod:`repro.queries` engines a Python caller would use directly.

The supported query types (see :mod:`repro.queries.support`):

========== =============================== ==============================
type       parameters                      domains
========== =============================== ==============================
mass       lower, upper                    all
range_count lower, upper                   all
cdf        point                           interval, ipv4, discrete
quantile   q (scalar or list)              interval, ipv4, discrete
marginal   axis, bins (default 32)         hypercube, geo
========== =============================== ==============================

Example:
    >>> from repro.serve.service import answer_query
    >>> from repro.api.release import Release
    >>> from repro.baselines.pmm import build_exact_tree
    >>> from repro.core.sampler import SyntheticDataGenerator
    >>> from repro.domain.interval import UnitInterval
    >>> tree = build_exact_tree([0.1, 0.3, 0.6, 0.9], UnitInterval(), depth=2)
    >>> release = Release(SyntheticDataGenerator(tree, UnitInterval()))
    >>> answer_query(release, {"type": "mass", "lower": 0.0, "upper": 0.5})
    0.5
    >>> answer_query(release, {"type": "quantile", "q": 0.5})
    0.5
"""

from __future__ import annotations

import json

from repro.api.release import Release
from repro.queries.support import QUERY_TYPES, supported_queries
from repro.serve.cache import QueryCache
from repro.serve.store import ReleaseStore

__all__ = ["QueryService", "answer_query", "evaluate_many", "normalize_query", "query_key"]

_UNSET = object()


def _normalise_bound(value):
    """Canonicalise one query bound: tuples/lists become lists of floats and
    numeric scalars become floats, so int/float spellings of one query share
    one cache entry.  Strings pass through (the engines parse IPv4 dotted
    quads themselves)."""
    if isinstance(value, (list, tuple)):
        return [float(component) for component in value]
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return float(value)
    return value


def normalize_query(release: Release, query: dict) -> dict:
    """Validate a raw query dict against a release and canonicalise it.

    The canonical form is what the engines are called with and what the
    memoizing cache keys on, so two spellings of the same query (``0.5`` vs
    ``0.50``, list vs tuple bounds) share one cache entry.  Raises
    ``ValueError`` on unknown/unsupported types and missing parameters.
    """
    if not isinstance(query, dict):
        raise ValueError(f"a query must be a JSON object, got {type(query).__name__}")
    query_type = query.get("type")
    if query_type not in QUERY_TYPES:
        raise ValueError(
            f"unknown query type {query_type!r}; supported types: {', '.join(QUERY_TYPES)}"
        )
    allowed = supported_queries(release.domain)
    if query_type not in allowed:
        raise ValueError(
            f"query type {query_type!r} is not supported on "
            f"{type(release.domain).__name__}; supported: {', '.join(allowed)}"
        )

    if query_type in ("mass", "range_count"):
        missing = [key for key in ("lower", "upper") if key not in query]
        if missing:
            raise ValueError(f"{query_type} query requires {', '.join(missing)}")
        return {
            "type": query_type,
            "lower": _normalise_bound(query["lower"]),
            "upper": _normalise_bound(query["upper"]),
        }
    if query_type == "cdf":
        if "point" not in query:
            raise ValueError("cdf query requires point")
        return {"type": "cdf", "point": _normalise_bound(query["point"])}
    if query_type == "quantile":
        if "q" not in query:
            raise ValueError("quantile query requires q")
        q = query["q"]
        if isinstance(q, (list, tuple)):
            probabilities = [float(value) for value in q]
        else:
            probabilities = float(q)
        return {"type": "quantile", "q": probabilities}
    # marginal
    if "axis" not in query:
        raise ValueError("marginal query requires axis")
    return {
        "type": "marginal",
        "axis": int(query["axis"]),
        "bins": int(query.get("bins", 32)),
    }


def answer_query(release: Release, query: dict):
    """Answer one query dict on a release.

    Returns a JSON-serialisable value: a float for ``mass`` / ``range_count``
    / ``cdf`` / scalar ``quantile``, a list for vector ``quantile`` and
    ``marginal``.  This function is the single evaluation path behind the
    in-process, batch and HTTP transports.
    """
    return _evaluate_canonical(release, normalize_query(release, query))


def _evaluate_canonical(release: Release, canonical: dict):
    """Dispatch an already-canonical query to the release's engines (callers
    that normalised once -- the service's cache path, the batch runner --
    skip a second validation pass)."""
    query_type = canonical["type"]
    if query_type == "mass":
        return release.mass(canonical["lower"], canonical["upper"])
    if query_type == "range_count":
        return release.range_count(canonical["lower"], canonical["upper"])
    if query_type == "cdf":
        return release.cdf(canonical["point"])
    if query_type == "quantile":
        q = canonical["q"]
        if isinstance(q, list):
            return [_json_scalar(value) for value in release.quantiles(q)]
        return _json_scalar(release.quantile(q))
    return [float(value) for value in release.marginal(canonical["axis"], bins=canonical["bins"])]


def _json_scalar(value):
    """Collapse numpy scalars to native Python numbers for JSON transport."""
    if hasattr(value, "item"):
        return value.item()
    return value


def evaluate_many(release: Release, canonicals: list[dict]) -> list:
    """Evaluate already-canonical queries with one vectorised pass per type.

    Queries are grouped by type and handed to the release's batch engines
    (``mass_many`` / ``range_count_many`` / ``cdf_many`` / ``quantiles`` with
    every requested probability flattened into one descent), so a workload
    of N queries costs a handful of numpy passes instead of N engine calls.
    Answers are returned in input order and are byte-identical to
    :func:`_evaluate_canonical` on each query; an invalid query fails the
    whole batch, like the sequential loop it replaces.
    """
    answers: list = [None] * len(canonicals)
    groups: dict[str, list[int]] = {"mass": [], "range_count": [], "cdf": []}
    quantile_spans: list[tuple[int, int, int, bool]] = []
    probabilities: list[float] = []
    for index, canonical in enumerate(canonicals):
        query_type = canonical["type"]
        if query_type in groups:
            groups[query_type].append(index)
        elif query_type == "quantile":
            q = canonical["q"]
            start = len(probabilities)
            if isinstance(q, list):
                probabilities.extend(q)
                quantile_spans.append((index, start, len(probabilities), True))
            else:
                probabilities.append(q)
                quantile_spans.append((index, start, start + 1, False))
        else:  # marginal: rare, no batch kernel needed
            answers[index] = [
                float(value)
                for value in release.marginal(canonical["axis"], bins=canonical["bins"])
            ]
    for query_type, evaluate in (
        ("mass", release.mass_many),
        ("range_count", release.range_count_many),
    ):
        indices = groups[query_type]
        if indices:
            values = evaluate(
                [canonicals[i]["lower"] for i in indices],
                [canonicals[i]["upper"] for i in indices],
            )
            for index, value in zip(indices, values):
                answers[index] = float(value)
    if groups["cdf"]:
        values = release.cdf_many([canonicals[i]["point"] for i in groups["cdf"]])
        for index, value in zip(groups["cdf"], values):
            answers[index] = float(value)
    if quantile_spans:
        values = release.quantiles(probabilities)
        for index, start, stop, is_list in quantile_spans:
            if is_list:
                answers[index] = [_json_scalar(value) for value in values[start:stop]]
            else:
                answers[index] = _json_scalar(values[start])
    return answers


def query_key(release_name: str, canonical_query: dict, version: int | None = None) -> str:
    """The cache key of a canonical query against a named release.

    ``version`` is the snapshot version (``items_processed``) for live
    releases -- including it invalidates every memoized answer the moment the
    underlying stream advances, while static releases (version ``None``) keep
    one permanent entry per query.
    """
    return json.dumps(
        [release_name, version, canonical_query], sort_keys=True, separators=(",", ":")
    )


class QueryService:
    """A :class:`ReleaseStore` fronted by a memoizing :class:`QueryCache`.

    The service resolves each request to a release (by name or by domain),
    canonicalises the query, and serves repeats from the cache; answers are
    identical to calling the engines directly because cold paths *do* call
    the engines directly.  Live releases (continual summarizers registered
    through :meth:`~repro.serve.store.ReleaseStore.register_live`) answer
    from their current snapshot and carry its ``items_processed`` in the
    cache key and the result, so memoized answers can never outlive the
    snapshot that produced them.

    Example:
        >>> from repro.serve.service import QueryService
        >>> from repro.serve.store import ReleaseStore
        >>> from repro.api.release import Release
        >>> from repro.baselines.pmm import build_exact_tree
        >>> from repro.core.sampler import SyntheticDataGenerator
        >>> from repro.domain.interval import UnitInterval
        >>> store = ReleaseStore()
        >>> tree = build_exact_tree([0.2, 0.8], UnitInterval(), depth=1)
        >>> store.add("demo", Release(SyntheticDataGenerator(tree, UnitInterval())))
        >>> service = QueryService(store)
        >>> result = service.answer({"type": "mass", "lower": 0.0, "upper": 0.5})
        >>> result["answer"], result["release"], result["cached"]
        (0.5, 'demo', False)
        >>> service.answer({"type": "mass", "lower": 0.0, "upper": 0.5})["cached"]
        True
    """

    def __init__(self, store: ReleaseStore, cache_size: int = 4096) -> None:
        self.store = store
        self.cache = QueryCache(maxsize=cache_size)

    def answer(self, query: dict, release: str | None = None, domain: str | None = None) -> dict:
        """Answer one query, routing to a release by name or domain.

        When neither ``release`` nor ``domain`` is given and the store holds
        exactly one release, that release answers.  The result dict carries
        the resolved release name, the canonical query, the answer and
        whether it was served from the cache.
        """
        if release is None and domain is None and len(self.store) == 1:
            release = self.store.names()[0]
        name, resolved = self.store.resolve(name=release, domain=domain)
        canonical = normalize_query(resolved, query)
        # Live releases are versioned by the snapshot actually answering (its
        # items_processed), so a stream advancing between queries can never
        # serve a stale memoized answer; superseded entries age out of the LRU.
        version = resolved.items_processed if self.store.is_live(name) else None
        key = query_key(name, canonical, version=version)
        cached = True

        def compute():
            nonlocal cached
            cached = False
            return _evaluate_canonical(resolved, canonical)

        answer = self.cache.lookup(key, compute)
        result = {"release": name, "query": canonical, "answer": answer, "cached": cached}
        if version is not None:
            result["items_processed"] = version
        return result

    def answer_many(self, queries, release: str | None = None, domain: str | None = None) -> list[dict]:
        """:meth:`answer` over a batch, resolved and versioned exactly once.

        The release is resolved a single time for the whole batch -- for a
        live release that means one snapshot and one ``items_processed``
        version across every result, where the per-query loop this replaces
        could silently mix snapshot versions mid-batch while ingestion
        advanced.  Queries already memoized come from the cache; the misses
        are evaluated together through :func:`evaluate_many` (one vectorised
        pass per query type) and stored.  Within-batch duplicates of a cold
        query are evaluated in the same pass and both report
        ``cached: False``.
        """
        queries = list(queries)
        if not queries:
            return []
        if release is None and domain is None and len(self.store) == 1:
            release = self.store.names()[0]
        name, resolved = self.store.resolve(name=release, domain=domain)
        version = resolved.items_processed if self.store.is_live(name) else None
        canonicals = [normalize_query(resolved, query) for query in queries]
        keys = [query_key(name, canonical, version=version) for canonical in canonicals]

        answers: list = [None] * len(queries)
        cached_flags = [False] * len(queries)
        misses: list[int] = []
        for index, key in enumerate(keys):
            value = self.cache.get(key, _UNSET)
            if value is _UNSET:
                misses.append(index)
            else:
                answers[index] = value
                cached_flags[index] = True
        if misses:
            computed = evaluate_many(resolved, [canonicals[i] for i in misses])
            for index, value in zip(misses, computed):
                answers[index] = value
                self.cache.put(keys[index], value)

        results = []
        for index in range(len(queries)):
            result = {
                "release": name,
                "query": canonicals[index],
                "answer": answers[index],
                "cached": cached_flags[index],
            }
            if version is not None:
                result["items_processed"] = version
            results.append(result)
        return results

    def stats(self) -> dict:
        """Cache statistics plus the number of releases served."""
        return {"releases": len(self.store), "cache": self.cache.stats()}

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"QueryService(store={self.store!r}, cache={self.cache!r})"
