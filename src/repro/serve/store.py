"""A directory of released summaries, loaded lazily and routed by name/domain.

A :class:`ReleaseStore` is the serving layer's view of "many releases": every
``*.json`` file in a directory that carries the ``privhp-generator`` format is
addressable by its file stem.  Releases load lazily (first query wins the
disk read, later queries reuse the live object and its cached engines) and
can also be registered in-memory, which is how tests and notebooks serve
freshly fitted releases without touching disk.

Only released (post-noise) artefacts ever enter a store, so serving is pure
post-processing of epsilon-DP state -- the store never sees raw stream data.

Example:
    >>> from repro.serve.store import ReleaseStore
    >>> from repro.api.release import Release
    >>> from repro.baselines.pmm import build_exact_tree
    >>> from repro.core.sampler import SyntheticDataGenerator
    >>> from repro.domain.interval import UnitInterval
    >>> tree = build_exact_tree([0.2, 0.8], UnitInterval(), depth=1)
    >>> store = ReleaseStore()
    >>> store.add("demo", Release(SyntheticDataGenerator(tree, UnitInterval())))
    >>> store.names()
    ['demo']
    >>> store.get("demo").mass(0.0, 1.0)
    1.0
"""

from __future__ import annotations

import pathlib

from repro.api.release import Release

__all__ = ["ReleaseStore"]


class ReleaseStore:
    """Lazily loaded releases addressable by name, with domain-based routing."""

    def __init__(self, directory: str | pathlib.Path | None = None) -> None:
        self.directory = pathlib.Path(directory) if directory is not None else None
        self._paths: dict[str, pathlib.Path] = {}
        #: Releases registered through :meth:`add` (no backing file; never
        #: dropped by a rescan) vs. the lazy cache of disk loads.
        self._local: dict[str, Release] = {}
        self._loaded: dict[str, Release] = {}
        if self.directory is not None:
            self.refresh()

    # ------------------------------------------------------------------ #
    # membership
    # ------------------------------------------------------------------ #
    def refresh(self) -> list[str]:
        """Re-scan the directory for ``*.json`` release files.

        Returns the sorted names now addressable.  Files are not parsed here
        (loading stays lazy); a non-release JSON surfaces a ``ValueError``
        when it is first requested.  Already-loaded releases are kept unless
        their file disappeared; in-memory releases from :meth:`add` are
        always kept.
        """
        if self.directory is None:
            return self.names()
        if not self.directory.is_dir():
            raise ValueError(f"release store directory {self.directory} does not exist")
        self._paths = {path.stem: path for path in sorted(self.directory.glob("*.json"))}
        for name in list(self._loaded):
            if name not in self._paths:
                del self._loaded[name]
        return self.names()

    def add(self, name: str, release: Release) -> None:
        """Register an in-memory release under ``name`` (no file needed).

        In-memory releases shadow same-named files and survive
        :meth:`refresh`.
        """
        if not name:
            raise ValueError("release name must be non-empty")
        self._local[str(name)] = release

    def names(self) -> list[str]:
        """Sorted names of every addressable release (on disk or in memory)."""
        return sorted(set(self._paths) | set(self._local))

    def __contains__(self, name: str) -> bool:
        return name in self._local or name in self._paths

    def __len__(self) -> int:
        return len(self.names())

    # ------------------------------------------------------------------ #
    # access and routing
    # ------------------------------------------------------------------ #
    def get(self, name: str) -> Release:
        """The release registered under ``name``, loading it on first use.

        Raises ``KeyError`` for unknown names and ``ValueError`` for files
        that are not valid release documents.
        """
        release = self._local.get(name) or self._loaded.get(name)
        if release is not None:
            return release
        path = self._paths.get(name)
        if path is None:
            raise KeyError(
                f"unknown release {name!r}; known releases: {', '.join(self.names()) or '(none)'}"
            )
        release = self._loaded[name] = Release.load(path)
        return release

    def domain_of(self, name: str) -> str:
        """The domain type name (e.g. ``"UnitInterval"``) of a release."""
        return type(self.get(name).domain).__name__

    def names_for_domain(self, domain_type: str) -> list[str]:
        """Names of every release whose domain type matches ``domain_type``
        (case-insensitive; loads releases as needed).

        Files that turn out not to be valid releases are skipped, so one
        stray JSON in the store directory cannot break domain routing.
        """
        wanted = str(domain_type).lower()
        matches = []
        for name in self.names():
            try:
                if self.domain_of(name).lower() == wanted:
                    matches.append(name)
            except ValueError:
                continue
        return matches

    def resolve(self, name: str | None = None, domain: str | None = None) -> tuple[str, Release]:
        """Route to a single release by ``name`` or, failing that, ``domain``.

        Raises ``KeyError`` when the addressed release does not exist
        (unknown name, domain with no match) and ``ValueError`` when the
        request itself is bad (no addressing given, ambiguous domain) --
        serving cannot guess between two interval releases.
        """
        if name is not None:
            return name, self.get(name)
        if domain is not None:
            matches = self.names_for_domain(domain)
            if len(matches) == 1:
                return matches[0], self.get(matches[0])
            if not matches:
                raise KeyError(f"domain {domain!r} matches no release")
            raise ValueError(
                f"domain {domain!r} is ambiguous: it matches "
                f"{', '.join(matches)}; address one by name"
            )
        raise ValueError("a query must address a release by 'release' name or 'domain'")

    # ------------------------------------------------------------------ #
    # listing
    # ------------------------------------------------------------------ #
    def info(self, name: str) -> dict:
        """JSON-serialisable metadata for one release (the ``/releases`` row)."""
        release = self.get(name)
        return {
            "name": name,
            "domain": type(release.domain).__name__,
            "epsilon": release.epsilon,
            "items_processed": release.items_processed,
            "memory_words": release.memory_words,
            "leaves": len(release.tree.leaves()),
            "queries": list(release.supported_queries()),
        }

    def describe(self) -> list[dict]:
        """:meth:`info` for every addressable release, skipping invalid files.

        A directory can legitimately hold non-release JSON (checkpoints,
        workloads); those are reported with an ``"error"`` field instead of
        failing the whole listing.
        """
        rows = []
        for name in self.names():
            try:
                rows.append(self.info(name))
            except ValueError as error:
                rows.append({"name": name, "error": str(error)})
        return rows

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"ReleaseStore(directory={self.directory}, releases={self.names()})"
