"""A directory of released summaries, loaded lazily and routed by name/domain.

A :class:`ReleaseStore` is the serving layer's view of "many releases": every
``*.json`` or ``*.bin`` file in a directory that carries the
``privhp-generator`` format is addressable by its file stem.  Releases load
lazily (first query wins the disk read, later queries reuse the live object
and its cached engines); binary envelopes take the mmap fast path of
:mod:`repro.io.binary`, so a store over thousands of releases opens in O(1)
and pages each release's arrays in on first query.  Releases can also be
registered in-memory, which is how tests and notebooks serve freshly fitted
releases without touching disk.

Beyond finished releases, a store can front *live* continual summarizers
(:meth:`ReleaseStore.register_live`): queries against a live name are
answered from a snapshot of the summarizer's current state, re-taken
whenever ingestion has advanced, so a stream is queryable mid-ingestion.

Only released (post-noise) artefacts ever leave a store: static entries are
post-release by construction, and live entries answer through
continually-private snapshots, so serving is pure post-processing of
epsilon-DP state -- the store never exposes raw stream data.

Example:
    >>> from repro.serve.store import ReleaseStore
    >>> from repro.api.release import Release
    >>> from repro.baselines.pmm import build_exact_tree
    >>> from repro.core.sampler import SyntheticDataGenerator
    >>> from repro.domain.interval import UnitInterval
    >>> tree = build_exact_tree([0.2, 0.8], UnitInterval(), depth=1)
    >>> store = ReleaseStore()
    >>> store.add("demo", Release(SyntheticDataGenerator(tree, UnitInterval())))
    >>> store.names()
    ['demo']
    >>> store.get("demo").mass(0.0, 1.0)
    1.0
"""

from __future__ import annotations

import pathlib
import threading

from repro.api.release import Release

__all__ = ["ReleaseStore"]


class ReleaseStore:
    """Lazily loaded releases addressable by name, with domain-based routing.

    Thread safety: every registry mutation happens under one store-wide lock,
    and refreshing a live snapshot is single-flight per name (a per-name
    snapshot lock), so concurrent readers racing an ingesting stream observe
    exactly one ``snapshot()`` per advanced version.  The store lock is
    *never* held across ``summarizer.snapshot()`` / ``items_processed`` --
    those can block on an ingest worker that itself needs
    :meth:`register_live`/:meth:`unregister_live` to make progress.
    """

    def __init__(self, directory: str | pathlib.Path | None = None) -> None:
        self.directory = pathlib.Path(directory) if directory is not None else None
        self._lock = threading.RLock()
        self._paths: dict[str, pathlib.Path] = {}
        #: Releases registered through :meth:`add` (no backing file; never
        #: dropped by a rescan) vs. the lazy cache of disk loads.
        self._local: dict[str, Release] = {}
        self._loaded: dict[str, Release] = {}
        #: Live continual summarizers from :meth:`register_live`, plus the
        #: most recent snapshot of each, keyed by its ``items_processed``,
        #: and the per-name lock that makes snapshot refreshes single-flight.
        self._live: dict[str, object] = {}
        self._live_snapshots: dict[str, Release] = {}
        self._snapshot_locks: dict[str, threading.Lock] = {}
        if self.directory is not None:
            self.refresh()

    # ------------------------------------------------------------------ #
    # membership
    # ------------------------------------------------------------------ #
    def refresh(self) -> list[str]:
        """Re-scan the directory for ``*.json`` and ``*.bin`` release files.

        Returns the sorted names now addressable.  Files are not parsed here
        (loading stays lazy, and binary envelopes additionally mmap-load in
        O(1) of their size when first queried, so opening a directory of
        thousands of releases costs one ``listdir`` regardless of content);
        a non-release file surfaces a ``ValueError`` when it is first
        requested.  When a stem exists in both formats the binary file wins
        (it is the faster-loading artefact of the same release).
        Already-loaded releases are kept unless their file disappeared;
        in-memory releases from :meth:`add` and live summarizers from
        :meth:`register_live` are always kept.
        """
        if self.directory is None:
            return self.names()
        if not self.directory.is_dir():
            raise ValueError(f"release store directory {self.directory} does not exist")
        paths = {path.stem: path for path in sorted(self.directory.glob("*.json"))}
        paths.update((path.stem, path) for path in sorted(self.directory.glob("*.bin")))
        with self._lock:
            self._paths = paths
            for name in list(self._loaded):
                if name not in self._paths:
                    del self._loaded[name]
        return self.names()

    def add(self, name: str, release: Release) -> None:
        """Register an in-memory release under ``name`` (no file needed).

        In-memory releases shadow same-named files and survive
        :meth:`refresh`.
        """
        if not name:
            raise ValueError("release name must be non-empty")
        with self._lock:
            self._local[str(name)] = release

    def register_live(self, name: str, summarizer) -> None:
        """Serve live snapshots of a continual summarizer under ``name``.

        ``summarizer`` must expose ``snapshot() -> Release`` and
        ``items_processed`` (i.e. a
        :class:`repro.continual.privhp.PrivHPContinual`).  Queries against the
        name are answered from a snapshot of the summarizer's *current* state:
        the snapshot is re-taken whenever ``items_processed`` has advanced and
        reused otherwise, so a stream can be queried mid-ingestion at the cost
        of one snapshot per observed version.  Snapshots are pure
        post-processing of continually-private state -- serving them consumes
        no extra privacy budget, no matter how often the stream is queried.

        Live names shadow same-named files, survive :meth:`refresh`, and are
        versioned by ``items_processed`` (see :meth:`version_of`), which is
        what :class:`repro.serve.service.QueryService` keys its cache on.
        """
        if not name:
            raise ValueError("release name must be non-empty")
        if not hasattr(summarizer, "snapshot") or not hasattr(summarizer, "items_processed"):
            raise TypeError(
                "register_live needs a continual summarizer exposing snapshot() "
                "and items_processed; finished releases go through add()"
            )
        with self._lock:
            self._live[str(name)] = summarizer
            self._live_snapshots.pop(str(name), None)
            self._snapshot_locks[str(name)] = threading.Lock()

    def unregister_live(self, name: str) -> bool:
        """Stop serving live snapshots under ``name``; returns whether it was live.

        The ingestion service calls this when a tenant is evicted to disk,
        released, or the service shuts down -- a summarizer that is no
        longer ingesting (or no longer in memory) must not be snapshotted
        through the HTTP path.  Subsequent queries for the name fall back to
        a static/disk release of the same name if one exists, and otherwise
        raise ``KeyError`` (HTTP 404 with the known-release listing).
        Idempotent: unregistering a name that is not live returns ``False``.
        """
        name = str(name)
        with self._lock:
            self._live_snapshots.pop(name, None)
            self._snapshot_locks.pop(name, None)
            return self._live.pop(name, None) is not None

    def is_live(self, name: str) -> bool:
        """Whether ``name`` serves live snapshots of an ingesting summarizer."""
        with self._lock:
            return name in self._live

    def version_of(self, name: str) -> int | None:
        """The current snapshot version of a live release (``items_processed``
        of the summarizer right now), or ``None`` for static releases."""
        with self._lock:
            summarizer = self._live.get(name)
        if summarizer is None:
            return None
        # items_processed may block on an ingest worker: read it unlocked.
        return int(summarizer.items_processed)

    def names(self) -> list[str]:
        """Sorted names of every addressable release (disk, memory or live)."""
        with self._lock:
            return sorted(set(self._paths) | set(self._local) | set(self._live))

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._live or name in self._local or name in self._paths

    def __len__(self) -> int:
        return len(self.names())

    # ------------------------------------------------------------------ #
    # access and routing
    # ------------------------------------------------------------------ #
    def get(self, name: str) -> Release:
        """The release registered under ``name``, loading it on first use.

        Live names return a snapshot of the summarizer's current state,
        refreshed whenever its ``items_processed`` has advanced since the
        last snapshot; the refresh is single-flight, so concurrent readers
        racing an ingesting thread share one ``snapshot()`` call per
        version instead of interleaving duplicate snapshots.  Raises
        ``KeyError`` for unknown names and ``ValueError`` for files that are
        not valid release documents.
        """
        with self._lock:
            summarizer = self._live.get(name)
            snapshot_lock = self._snapshot_locks.get(name)
        if summarizer is not None and snapshot_lock is not None:
            return self._live_snapshot(name, summarizer, snapshot_lock)
        with self._lock:
            release = self._local.get(name) or self._loaded.get(name)
            path = self._paths.get(name)
        if release is not None:
            return release
        if path is None:
            raise KeyError(
                f"unknown release {name!r}; known releases: {', '.join(self.names()) or '(none)'}"
            )
        release = Release.load(path)
        with self._lock:
            # A concurrent loader may have won; keep one canonical object so
            # its compiled engines are shared.
            return self._loaded.setdefault(name, release)

    def _live_snapshot(self, name: str, summarizer, snapshot_lock: threading.Lock) -> Release:
        """Current snapshot for a live name, re-taken when ingestion advanced.

        The fast path returns the cached snapshot without any blocking call;
        the slow path serialises on the per-name lock so exactly one reader
        snapshots a given version while the rest wait and reuse it.  The
        summarizer is only consulted outside the store lock (it can block on
        an ingest worker), and the cache write is skipped if the name was
        unregistered (or re-registered) meanwhile.
        """
        version = int(summarizer.items_processed)
        with self._lock:
            snapshot = self._live_snapshots.get(name)
        if snapshot is not None and snapshot.items_processed == version:
            return snapshot
        with snapshot_lock:
            # Re-check: the reader that held the lock before us may have
            # snapshotted this (or a newer) version already.
            version = int(summarizer.items_processed)
            with self._lock:
                snapshot = self._live_snapshots.get(name)
            if snapshot is not None and snapshot.items_processed == version:
                return snapshot
            snapshot = summarizer.snapshot()
            with self._lock:
                if self._live.get(name) is summarizer:
                    self._live_snapshots[name] = snapshot
            return snapshot

    def domain_of(self, name: str) -> str:
        """The domain type name (e.g. ``"UnitInterval"``) of a release."""
        return type(self.get(name).domain).__name__

    def names_for_domain(self, domain_type: str) -> list[str]:
        """Names of every release whose domain type matches ``domain_type``
        (case-insensitive; loads releases as needed).

        Files that turn out not to be valid releases are skipped, so one
        stray JSON in the store directory cannot break domain routing.
        """
        wanted = str(domain_type).lower()
        matches = []
        for name in self.names():
            try:
                if self.domain_of(name).lower() == wanted:
                    matches.append(name)
            except ValueError:
                continue
        return matches

    def resolve(self, name: str | None = None, domain: str | None = None) -> tuple[str, Release]:
        """Route to a single release by ``name`` or, failing that, ``domain``.

        Raises ``KeyError`` when the addressed release does not exist
        (unknown name, domain with no match) and ``ValueError`` when the
        request itself is bad (no addressing given, ambiguous domain) --
        serving cannot guess between two interval releases.
        """
        if name is not None:
            return name, self.get(name)
        if domain is not None:
            matches = self.names_for_domain(domain)
            if len(matches) == 1:
                return matches[0], self.get(matches[0])
            if not matches:
                raise KeyError(f"domain {domain!r} matches no release")
            raise ValueError(
                f"domain {domain!r} is ambiguous: it matches "
                f"{', '.join(matches)}; address one by name"
            )
        raise ValueError("a query must address a release by 'release' name or 'domain'")

    # ------------------------------------------------------------------ #
    # listing
    # ------------------------------------------------------------------ #
    def info(self, name: str) -> dict:
        """JSON-serialisable metadata for one release (the ``/releases`` row)."""
        release = self.get(name)
        return {
            "name": name,
            "domain": type(release.domain).__name__,
            "epsilon": release.epsilon,
            "items_processed": release.items_processed,
            "memory_words": release.memory_words,
            "leaves": len(release.tree.leaves()),
            "queries": list(release.supported_queries()),
            "live": self.is_live(name),
        }

    def describe(self) -> list[dict]:
        """:meth:`info` for every addressable release, skipping invalid files.

        A directory can legitimately hold non-release JSON (checkpoints,
        workloads); those are reported with an ``"error"`` field instead of
        failing the whole listing.
        """
        rows = []
        for name in self.names():
            try:
                rows.append(self.info(name))
            except ValueError as error:
                rows.append({"name": name, "error": str(error)})
        return rows

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"ReleaseStore(directory={self.directory}, releases={self.names()})"
