"""Batch query answering: a release file plus a workload file, no server.

The batch path exists so a release can be interrogated from a shell script or
a cron job without standing up HTTP -- ``repro query release.json --workload
queries.json`` -- and it evaluates through exactly the same
:func:`~repro.serve.service.evaluate_many` path as the server's batch route
(one vectorised pass per query type), so the answers are byte-identical.

A workload file is JSON: either a bare list of query objects or
``{"queries": [...]}``::

    [
      {"type": "range_count", "lower": 0.1, "upper": 0.4},
      {"type": "quantile", "q": [0.25, 0.5, 0.75]}
    ]

Example:
    >>> from repro.serve.batch import run_workload
    >>> from repro.api.release import Release
    >>> from repro.baselines.pmm import build_exact_tree
    >>> from repro.core.sampler import SyntheticDataGenerator
    >>> from repro.domain.interval import UnitInterval
    >>> tree = build_exact_tree([0.1, 0.3, 0.6, 0.9], UnitInterval(), depth=2)
    >>> release = Release(SyntheticDataGenerator(tree, UnitInterval()))
    >>> results = run_workload(release, [{"type": "cdf", "point": 0.25}])
    >>> results[0]["answer"]
    0.25
"""

from __future__ import annotations

import json
import pathlib

from repro.api.release import Release
from repro.serve.service import evaluate_many, normalize_query

__all__ = ["load_workload", "run_workload", "run_workload_file"]


def load_workload(path: str | pathlib.Path) -> list[dict]:
    """Read a workload file (a JSON list or ``{"queries": [...]}``)."""
    path = pathlib.Path(path)
    try:
        document = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        raise ValueError(f"{path} is not valid JSON: {error}") from error
    if isinstance(document, dict):
        document = document.get("queries")
    if not isinstance(document, list):
        raise ValueError(
            f"{path}: a workload must be a JSON list of query objects "
            "(or an object with a 'queries' list)"
        )
    return document


def run_workload(release: Release, queries: list[dict]) -> list[dict]:
    """Answer every query in order, echoing each canonical query.

    Each result row is ``{"query": canonical, "answer": value}`` -- the same
    shape the HTTP batch route returns per query (minus the transport
    metadata).  The whole workload evaluates through
    :func:`~repro.serve.service.evaluate_many`: one vectorised pass per
    query type, byte-identical to answering each query alone.
    """
    canonicals = [normalize_query(release, query) for query in queries]
    answers = evaluate_many(release, canonicals)
    return [
        {"query": canonical, "answer": answer}
        for canonical, answer in zip(canonicals, answers)
    ]


def run_workload_file(
    release_path: str | pathlib.Path, workload_path: str | pathlib.Path
) -> dict:
    """The batch CLI core: load a release and a workload, answer everything.

    Returns a JSON-serialisable document recording the release path, the
    number of queries and the per-query results.
    """
    release = Release.load(release_path)
    queries = load_workload(workload_path)
    return {
        "release": str(release_path),
        "domain": type(release.domain).__name__,
        "num_queries": len(queries),
        "results": run_workload(release, queries),
    }
