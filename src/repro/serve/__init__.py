"""repro.serve: the query-serving subsystem over released summaries.

The paper's case for private *synthetic data* is that one released artefact
answers arbitrary downstream queries with no further privacy cost; this
package is that claim operationalised.  It is the third stage of the
pipeline -- fit (``repro.api``), release (``Release``), **serve** -- and sits
strictly on the public side of the privacy boundary: everything here is
deterministic post-processing of epsilon-DP releases.

* :class:`~repro.serve.store.ReleaseStore` -- many releases, loaded lazily
  from a directory, routed by name or domain.
* :class:`~repro.serve.cache.QueryCache` -- bounded LRU memoization with
  hit/miss statistics for repeated workloads.
* :class:`~repro.serve.service.QueryService` /
  :func:`~repro.serve.service.answer_query` -- JSON query dicts evaluated on
  the :mod:`repro.queries` engines; the single evaluation path every
  transport shares.
* :mod:`~repro.serve.http` -- a stdlib ``http.server`` JSON endpoint
  (``repro serve --store DIR --port N``).
* :mod:`~repro.serve.batch` -- workload-file evaluation
  (``repro query release.json --workload queries.json``).
"""

from repro.serve.batch import load_workload, run_workload, run_workload_file
from repro.serve.cache import QueryCache
from repro.serve.http import QueryHTTPServer, create_server
from repro.serve.service import QueryService, answer_query, normalize_query, query_key
from repro.serve.store import ReleaseStore

__all__ = [
    "QueryCache",
    "QueryHTTPServer",
    "QueryService",
    "ReleaseStore",
    "answer_query",
    "create_server",
    "load_workload",
    "normalize_query",
    "query_key",
    "run_workload",
    "run_workload_file",
]
