"""Zero-copy binary envelope for releases and checkpoints.

JSON stays the interchange format; this module adds a versioned binary
container (``privhp-binary``) for the same documents, built for two things
the JSON path cannot do:

* **mmap cold starts** -- a release envelope carries the compiled
  leaf/descent tables as aligned raw array sections, so
  :func:`load_release_binary` maps them straight into ready query engines
  without parsing or recompiling anything (the node dict itself materialises
  lazily, only if sampling or introspection needs it);
* **cheap frequent checkpoints** -- counter banks, sketch tables and tree
  counts round-trip as raw ``float64``/``int64`` bytes instead of JSON text,
  which is what makes high-frequency eviction/restore in
  :mod:`repro.ingest` affordable.

Envelope layout (version 1)::

    offset 0   magic bytes  b"\\x93PRIVHPB"            (8 bytes)
    offset 8   format version, uint32 little-endian   (4 bytes)
    offset 12  header length H, uint64 little-endian  (8 bytes)
    offset 20  JSON header, utf-8                     (H bytes)
    aligned    section 0 bytes  (64-byte aligned, zero padded)
    aligned    section 1 bytes
    ...

The JSON header carries ``{"format", "version", "document", "sections",
"compiled"?}``.  ``document`` is the original JSON document with every heavy
payload replaced by a marker: ``{"__section__": "s3"}`` for a numeric array,
``{"__tree__": {"depths": ..., "paths": ..., "counts": ...}}`` for a
partition tree (cells packed as big-endian bit rows).  ``sections`` is the
manifest -- name, dtype, shape, byte offset *relative to the aligned data
start*, and byte length for every raw section.  Conversion is lossless in
both directions: reinflating the markers reproduces the original document
exactly, so ``save -> load -> save`` is a byte-level fixed point and
``repro convert`` can hop between the formats freely.

Loading validates everything before touching section bytes -- magic, version,
manifest offsets/lengths against the real file size, and a dtype whitelist --
so truncated or doctored files fail with a clean ``ValueError`` naming the
path instead of reading garbage.
"""

from __future__ import annotations

import json
import math
import mmap
import pathlib
import struct

import numpy as np

from repro.core.tree import PartitionTree
from repro.domain.discrete import DiscreteDomain
from repro.domain.interval import UnitInterval
from repro.domain.ipv4 import IPv4Domain
from repro.queries.compiled import CompiledDescentTable, CompiledLeafTable

__all__ = [
    "MAGIC",
    "BINARY_FORMAT_NAME",
    "BINARY_FORMAT_VERSION",
    "detect_format",
    "save_binary",
    "load_binary",
    "convert_file",
    "open_envelope",
    "BinaryEnvelope",
    "load_release_binary",
]

MAGIC = b"\x93PRIVHPB"
BINARY_FORMAT_NAME = "privhp-binary"
BINARY_FORMAT_VERSION = 1

#: Raw sections start on these byte boundaries (cache-line / SIMD friendly).
_ALIGNMENT = 64
_PREFIX = struct.Struct("<8sIQ")

#: Every dtype a well-formed envelope may carry.  Anything else in the
#: manifest -- object dtypes, strings, doctored widths -- is rejected before
#: a single section byte is interpreted.
_ALLOWED_DTYPES = frozenset({"<f8", "<i8", "<u8", "<i4", "<u4", "|u1", "|b1"})

_SECTION_KEY = "__section__"
_TREE_KEY = "__tree__"
_BITS = frozenset("01")

#: Document paths holding a partition-tree dict (``{"0110...": count}``).
_TREE_PATHS = frozenset({("tree",), ("state", "tree")})

#: Document paths holding homogeneous numeric lists worth storing as raw
#: sections.  ``None`` matches any list index.  ``"float"`` lists are stored
#: as float64; ``"int"`` lists keep whatever integer dtype numpy infers
#: (rejected, i.e. left as JSON, when they do not fit a whitelisted dtype).
_ARRAY_RULES: tuple[tuple[tuple, str], ...] = (
    (("state", "sketches", None, "table"), "float"),
    (("state", "banks", None, "state", "alpha"), "float"),
    (("state", "banks", None, "state", "noisy_alpha"), "float"),
    (("state", "sketches", None, "state", "bank", "alpha"), "float"),
    (("state", "sketches", None, "state", "bank", "noisy_alpha"), "float"),
    (("state", "rng", "state", "state", "key"), "int"),
    (("state", "rng", "state", "state", "counter"), "int"),
)


def detect_format(path: str | pathlib.Path) -> str:
    """``"binary"`` when the file starts with the envelope magic, else ``"json"``.

    This is the autodetection every loader routes through, so callers never
    have to know how a state file was written.
    """
    with open(path, "rb") as handle:
        return "binary" if handle.read(len(MAGIC)) == MAGIC else "json"


# --------------------------------------------------------------------------- #
# document -> sections (extraction)
# --------------------------------------------------------------------------- #
def _rule_kind(path: tuple) -> str | None:
    for pattern, kind in _ARRAY_RULES:
        if len(pattern) != len(path):
            continue
        if all(
            (element is None and isinstance(part, int)) or element == part
            for element, part in zip(pattern, path)
        ):
            return kind
    return None


def _add_section(sections: list, array: np.ndarray) -> str:
    name = f"s{len(sections)}"
    sections.append((name, np.ascontiguousarray(array)))
    return name


def _as_rule_array(value: list, kind: str) -> np.ndarray | None:
    """The list as a whitelisted numpy array, or ``None`` to keep it as JSON."""
    try:
        array = np.asarray(value)
    except (ValueError, TypeError, OverflowError):
        return None
    wanted = "f" if kind == "float" else "iu"
    if array.dtype.kind not in wanted or array.dtype.hasobject:
        return None
    if kind == "float":
        array = array.astype(np.float64, copy=False)
    return array if array.dtype.str in _ALLOWED_DTYPES else None


def _is_tree_dict(value: dict) -> bool:
    if not value:
        return False
    for key, count in value.items():
        if not isinstance(key, str) or not set(key) <= _BITS:
            return False
        if type(count) is not float:
            return False
    return True


def _tree_sections(tree: dict, sections: list) -> dict:
    """Pack a tree dict into depth / big-endian-bit-row / count sections.

    Cells are written in sorted-key order so the sections are canonical: the
    same tree produces the same bytes whether the document came from a live
    ``to_dict()`` (tree order) or from parsed JSON (file order).
    """
    keys = sorted(tree)
    depths = np.array([len(key) for key in keys], dtype=np.int64)
    stride = max(1, (int(depths.max()) + 7) // 8) if keys else 1
    paths = np.zeros((len(keys), stride), dtype=np.uint8)
    for row, key in enumerate(keys):
        if key:
            value = int(key, 2) << (stride * 8 - len(key))
            paths[row] = np.frombuffer(value.to_bytes(stride, "big"), dtype=np.uint8)
    counts = np.array([tree[key] for key in keys], dtype=np.float64)
    return {
        "depths": _add_section(sections, depths),
        "paths": _add_section(sections, paths),
        "counts": _add_section(sections, counts),
    }


def _extract_value(value, path: tuple, sections: list):
    if isinstance(value, dict):
        if _SECTION_KEY in value or _TREE_KEY in value:
            raise ValueError(
                f"document key {_SECTION_KEY!r}/{_TREE_KEY!r} collides with the "
                "binary envelope's marker keys"
            )
        if any(not isinstance(key, str) for key in value):
            raise ValueError("binary envelopes require string object keys")
        if path in _TREE_PATHS and _is_tree_dict(value):
            return {_TREE_KEY: _tree_sections(value, sections)}
        # Walk in sorted-key order so section numbering is canonical: the
        # header is dumped with sort_keys anyway, and a deterministic walk
        # makes save -> load -> save a byte-level fixed point.
        return {key: _extract_value(value[key], path + (key,), sections) for key in sorted(value)}
    if isinstance(value, list):
        kind = _rule_kind(path)
        if kind is not None and value:
            array = _as_rule_array(value, kind)
            if array is not None:
                return {_SECTION_KEY: _add_section(sections, array)}
        return [
            _extract_value(item, path + (index,), sections)
            for index, item in enumerate(value)
        ]
    if isinstance(value, np.ndarray):
        if value.dtype.str not in _ALLOWED_DTYPES:
            raise ValueError(f"cannot store an array of dtype {value.dtype} in a binary envelope")
        return {_SECTION_KEY: _add_section(sections, value)}
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise ValueError(f"cannot serialise a {type(value).__name__} into a binary envelope")


# --------------------------------------------------------------------------- #
# sections -> document (reinflation)
# --------------------------------------------------------------------------- #
def _tree_from_sections(spec, get_array) -> dict:
    if not isinstance(spec, dict):
        raise ValueError("malformed tree marker in binary envelope")
    try:
        depths = get_array(spec["depths"])
        paths = get_array(spec["paths"])
        counts = get_array(spec["counts"])
    except (KeyError, TypeError) as error:
        raise ValueError("malformed tree marker in binary envelope") from error
    if depths.ndim != 1 or depths.dtype.kind not in "iu":
        raise ValueError("tree depth section must be a one-dimensional integer array")
    if paths.ndim != 2 or paths.dtype != np.uint8:
        raise ValueError("tree path section must be a two-dimensional uint8 array")
    if counts.ndim != 1 or counts.dtype != np.float64:
        raise ValueError("tree count section must be a one-dimensional float64 array")
    if not len(depths) == len(paths) == len(counts):
        raise ValueError("tree sections disagree on the node count")
    stride = paths.shape[1]
    tree: dict[str, float] = {}
    for depth, row, count in zip(depths.tolist(), np.asarray(paths), counts.tolist()):
        if not 0 <= depth <= stride * 8:
            raise ValueError(f"tree cell depth {depth} does not fit its packed path row")
        if depth == 0:
            key = ""
        else:
            value = int.from_bytes(row.tobytes(), "big") >> (stride * 8 - depth)
            key = format(value, "b").zfill(depth)
        if key in tree:
            raise ValueError(f"duplicate tree cell {key!r} in binary envelope")
        tree[key] = count
    return tree


def _reinflate_value(value, get_array, mode: str):
    if isinstance(value, dict):
        keys = set(value)
        if keys == {_SECTION_KEY}:
            array = get_array(value[_SECTION_KEY])
            # "json" reproduces the interchange document exactly; "arrays"
            # hands back writable numpy copies, which is what summarizer
            # restore wants (mmap sections are read-only).
            return array.tolist() if mode == "json" else np.array(array)
        if keys == {_TREE_KEY}:
            return _tree_from_sections(value[_TREE_KEY], get_array)
        return {key: _reinflate_value(item, get_array, mode) for key, item in value.items()}
    if isinstance(value, list):
        return [_reinflate_value(item, get_array, mode) for item in value]
    return value


# --------------------------------------------------------------------------- #
# compiled query tables (release envelopes only)
# --------------------------------------------------------------------------- #
def _compile_release_sections(document: dict) -> tuple[dict, list]:
    """Compile the release's query tables once, at save time.

    The resulting sections are *derived* state: loading reconstructs the
    engines from them directly (no tree walk), and because compilation is
    deterministic, re-saving a loaded release reproduces them byte for byte.
    """
    from repro.io.serialization import (
        domain_from_dict,
        tree_from_dict,
        validate_release_document,
    )

    validate_release_document(document)
    domain = domain_from_dict(document["domain"])
    tree = tree_from_dict(document["tree"])
    leaf = CompiledLeafTable(tree, domain)
    sections = [
        (f"compiled.leaf.{name}", array) for name, array in leaf.export_arrays().items()
    ]
    info: dict = {
        "leaf": {"kind": leaf.kind, "root_count": leaf.root_count},
        "descent": None,
    }
    if isinstance(domain, (UnitInterval, IPv4Domain, DiscreteDomain)):
        descent = CompiledDescentTable(tree, domain)
        sections.extend(
            (f"compiled.descent.{name}", array)
            for name, array in descent.export_arrays().items()
        )
        info["descent"] = {"root_count": descent.root_count}
    return info, sections


# --------------------------------------------------------------------------- #
# envelope writer
# --------------------------------------------------------------------------- #
def _pack_envelope(header: dict, sections: list) -> bytes:
    manifest = []
    offset = 0
    blobs = []
    for name, array in sections:
        array = np.ascontiguousarray(array)
        dtype = array.dtype.str
        if dtype not in _ALLOWED_DTYPES:
            raise ValueError(f"section {name!r} has disallowed dtype {dtype!r}")
        padding = (-offset) % _ALIGNMENT
        offset += padding
        manifest.append(
            {
                "name": name,
                "dtype": dtype,
                "shape": list(array.shape),
                "offset": offset,
                "nbytes": array.nbytes,
            }
        )
        blobs.append((padding, array))
        offset += array.nbytes
    header = dict(header)
    header["sections"] = manifest
    header_bytes = json.dumps(header, sort_keys=True, separators=(",", ":")).encode("utf-8")
    prefix = _PREFIX.pack(MAGIC, BINARY_FORMAT_VERSION, len(header_bytes))
    parts = [prefix, header_bytes, b"\x00" * ((-(len(prefix) + len(header_bytes))) % _ALIGNMENT)]
    for padding, array in blobs:
        parts.append(b"\x00" * padding)
        parts.append(array.tobytes())
    return b"".join(parts)


def document_to_envelope_bytes(document: dict, *, verify: bool = False) -> bytes:
    """Encode a release/checkpoint JSON document as envelope bytes.

    ``verify=True`` reinflates the extracted form and insists the round trip
    is exact (``repro convert`` uses it for documents this process did not
    write itself -- e.g. a hand-edited JSON whose integer-valued counts would
    silently become floats).
    """
    if not isinstance(document, dict):
        raise ValueError(
            f"a binary envelope stores a JSON object document, got {type(document).__name__}"
        )
    sections: list = []
    markers = _extract_value(document, (), sections)
    header = {
        "format": BINARY_FORMAT_NAME,
        "version": BINARY_FORMAT_VERSION,
        "document": markers,
    }
    from repro.io.serialization import FORMAT_NAME

    if document.get("format") == FORMAT_NAME:
        info, compiled = _compile_release_sections(document)
        header["compiled"] = info
        sections.extend(compiled)
    if verify:
        lookup = dict(sections)
        reinflated = _reinflate_value(markers, lookup.__getitem__, "json")
        if json.dumps(document, sort_keys=True) != json.dumps(reinflated, sort_keys=True):
            raise ValueError(
                "document does not convert losslessly to the binary format; "
                "keep it as JSON"
            )
    return _pack_envelope(header, sections)


def save_binary(document: dict, path: str | pathlib.Path, *, verify: bool = False) -> pathlib.Path:
    """Write a release/checkpoint document as a binary envelope (atomic + fsync)."""
    from repro.io.serialization import write_bytes_atomic

    path = pathlib.Path(path)
    write_bytes_atomic(path, document_to_envelope_bytes(document, verify=verify))
    return path


# --------------------------------------------------------------------------- #
# envelope reader
# --------------------------------------------------------------------------- #
class BinaryEnvelope:
    """An opened, validated envelope: parsed header + zero-copy array access.

    ``array(name)`` returns a read-only numpy view into the file's memory
    map; nothing is copied until someone actually needs mutable state.
    """

    def __init__(self, path: pathlib.Path, buffer, header: dict, data_start: int) -> None:
        self.path = path
        self._buffer = buffer
        self.header = header
        self.data_start = data_start
        self._manifest = {entry["name"]: entry for entry in header["sections"]}

    @property
    def document(self) -> dict:
        """The marker-bearing document stored in the header."""
        return self.header["document"]

    def section_names(self) -> list[str]:
        return list(self._manifest)

    def array(self, name) -> np.ndarray:
        entry = self._manifest.get(name) if isinstance(name, str) else None
        if entry is None:
            raise ValueError(f"envelope references unknown section {name!r}")
        dtype = np.dtype(entry["dtype"])
        count = math.prod(entry["shape"])
        array = np.frombuffer(
            self._buffer, dtype=dtype, count=count, offset=self.data_start + entry["offset"]
        )
        return array.reshape(entry["shape"])


def _check_manifest(path: pathlib.Path, sections, data_start: int, file_size: int) -> None:
    if not isinstance(sections, list):
        raise ValueError(f"{path}: envelope header carries no section manifest")
    seen = set()
    for entry in sections:
        if not isinstance(entry, dict):
            raise ValueError(f"{path}: malformed section manifest entry")
        name = entry.get("name")
        if not isinstance(name, str) or name in seen:
            raise ValueError(f"{path}: duplicate or invalid section name {name!r}")
        seen.add(name)
        dtype = entry.get("dtype")
        if dtype not in _ALLOWED_DTYPES:
            raise ValueError(f"{path}: section {name!r} has disallowed dtype {dtype!r}")
        shape = entry.get("shape")
        if not isinstance(shape, list) or any(
            not isinstance(side, int) or isinstance(side, bool) or side < 0 for side in shape
        ):
            raise ValueError(f"{path}: section {name!r} has an invalid shape {shape!r}")
        offset, nbytes = entry.get("offset"), entry.get("nbytes")
        if not all(isinstance(v, int) and not isinstance(v, bool) and v >= 0 for v in (offset, nbytes)):
            raise ValueError(f"{path}: section {name!r} has invalid offset/length")
        if math.prod(shape) * np.dtype(dtype).itemsize != nbytes:
            raise ValueError(
                f"{path}: section {name!r} length {nbytes} disagrees with its "
                f"dtype/shape ({dtype}, {shape})"
            )
        if data_start + offset + nbytes > file_size:
            raise ValueError(
                f"{path}: section {name!r} extends past the end of the file "
                "(truncated or doctored manifest)"
            )


def open_envelope(path: str | pathlib.Path) -> BinaryEnvelope:
    """Open and validate a binary envelope, memory-mapping its sections.

    Every malformed input -- short file, wrong magic, future version, header
    that is not JSON, manifest/section mismatches -- raises ``ValueError``
    naming the path.  Section bytes are only ever addressed inside validated
    bounds, so a truncated file can never fault.
    """
    path = pathlib.Path(path)
    with open(path, "rb") as handle:
        try:
            buffer = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except ValueError:  # zero-byte files cannot be mapped
            buffer = b""
    size = len(buffer)
    if size < _PREFIX.size:
        raise ValueError(
            f"{path}: truncated envelope ({size} bytes is smaller than the "
            f"{_PREFIX.size}-byte prefix)"
        )
    magic, version, header_length = _PREFIX.unpack_from(buffer, 0)
    if magic != MAGIC:
        raise ValueError(f"{path}: not a {BINARY_FORMAT_NAME} file (bad magic bytes)")
    if version > BINARY_FORMAT_VERSION:
        raise ValueError(
            f"{path}: envelope version {version} is newer than supported "
            f"version {BINARY_FORMAT_VERSION}"
        )
    header_end = _PREFIX.size + header_length
    if header_end > size:
        raise ValueError(f"{path}: truncated envelope (header extends past the end of the file)")
    try:
        header = json.loads(bytes(buffer[_PREFIX.size:header_end]).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ValueError(f"{path}: envelope header is not valid JSON: {error}") from error
    if not isinstance(header, dict) or header.get("format") != BINARY_FORMAT_NAME:
        raise ValueError(f"{path}: envelope header is not a {BINARY_FORMAT_NAME} document")
    try:
        header_version = int(header.get("version", 0))
    except (TypeError, ValueError) as error:
        raise ValueError(f"{path}: envelope header version is not an integer") from error
    if header_version > BINARY_FORMAT_VERSION:
        raise ValueError(
            f"{path}: envelope version {header_version} is newer than supported "
            f"version {BINARY_FORMAT_VERSION}"
        )
    if not isinstance(header.get("document"), dict):
        raise ValueError(f"{path}: envelope header carries no document object")
    data_start = (header_end + _ALIGNMENT - 1) // _ALIGNMENT * _ALIGNMENT
    _check_manifest(path, header.get("sections"), data_start, size)
    return BinaryEnvelope(path, buffer, header, data_start)


def load_binary(path: str | pathlib.Path, *, mode: str = "json") -> dict:
    """Read a binary envelope back into its document.

    ``mode="json"`` reproduces the interchange JSON document exactly (array
    sections become lists) -- the lossless inverse of :func:`save_binary`.
    ``mode="arrays"`` returns writable numpy arrays in their place, which is
    what checkpoint restore feeds straight into ``np.asarray`` with no copy.
    """
    if mode not in ("json", "arrays"):
        raise ValueError(f"mode must be 'json' or 'arrays', got {mode!r}")
    path = pathlib.Path(path)
    envelope = open_envelope(path)
    try:
        return _reinflate_value(envelope.document, envelope.array, mode)
    except ValueError as error:
        raise ValueError(f"{path}: {error}") from error


def convert_file(
    source: str | pathlib.Path, output: str | pathlib.Path, target: str
) -> pathlib.Path:
    """Convert a release or checkpoint file between JSON and binary.

    JSON -> binary verifies losslessness (re-inflating the envelope must
    reproduce the source document exactly); binary -> JSON writes the native
    style of the document kind (indented releases, compact checkpoints), so
    converting a file our writers produced round-trips byte-identically.
    """
    from repro.io import serialization

    source = pathlib.Path(source)
    output = pathlib.Path(output)
    if target not in ("binary", "json"):
        raise ValueError(f"conversion target must be 'binary' or 'json', got {target!r}")
    source_format = detect_format(source)
    if source_format == "binary":
        document = load_binary(source)
    else:
        try:
            document = json.loads(source.read_text())
        except json.JSONDecodeError as error:
            raise ValueError(f"{source} is not valid JSON: {error}") from error
        if not isinstance(document, dict):
            raise ValueError(f"{source}: a state document must be a JSON object")
    kind = document.get("format")
    if kind not in (serialization.FORMAT_NAME, serialization.CHECKPOINT_FORMAT_NAME):
        raise ValueError(
            f"{source}: unknown document format {kind!r}; expected a "
            f"{serialization.FORMAT_NAME} release or "
            f"{serialization.CHECKPOINT_FORMAT_NAME} checkpoint"
        )
    if target == "binary":
        save_binary(document, output, verify=source_format == "json")
    elif kind == serialization.FORMAT_NAME:
        serialization.write_text_atomic(output, json.dumps(document, indent=2, sort_keys=True))
    else:
        serialization.write_text_atomic(output, json.dumps(document, sort_keys=True))
    return output


# --------------------------------------------------------------------------- #
# release fast path: envelope -> ready-to-serve Release
# --------------------------------------------------------------------------- #
def _plain_tree(counts: dict) -> PartitionTree:
    tree = PartitionTree()
    tree._counts = counts
    return tree


class _LazyBinaryTree(PartitionTree):
    """A partition tree whose node dict materialises from envelope sections.

    Queries through a binary-loaded release never touch the tree (the
    engines are rebuilt from the compiled sections), so the O(nodes) dict
    build is deferred until something actually walks it -- sampling,
    ``/releases`` introspection, or re-saving.
    """

    def __init__(self, loader) -> None:
        self._loader = loader
        self._materialised: dict | None = None

    @property  # type: ignore[override]
    def _counts(self) -> dict:
        counts = self._materialised
        if counts is None:
            encoded = self._loader()
            counts = {
                tuple(int(bit) for bit in key): count for key, count in encoded.items()
            }
            if () not in counts:
                raise ValueError("the encoded tree has no root cell")
            self._materialised = counts
        return counts

    def __reduce__(self):
        # Pickling (e.g. hand-off to a worker process) must not drag the
        # memory map along: ship the materialised plain tree instead.
        return (_plain_tree, (dict(self._counts),))


def _compiled_arrays(envelope: BinaryEnvelope, prefix: str) -> dict[str, np.ndarray]:
    return {
        name[len(prefix):]: envelope.array(name)
        for name in envelope.section_names()
        if name.startswith(prefix)
    }


def _table_root_count(info: dict, what: str) -> float:
    root_count = info.get("root_count")
    if not isinstance(root_count, (int, float)) or isinstance(root_count, bool):
        raise ValueError(f"compiled {what} metadata is missing a numeric root_count")
    return float(root_count)


def _attach_engines(release, tree, domain, compiled: dict, envelope: BinaryEnvelope) -> None:
    from repro.queries.quantiles import QuantileEngine
    from repro.queries.range_queries import RangeQueryEngine

    leaf_info = compiled.get("leaf")
    if isinstance(leaf_info, dict):
        table = CompiledLeafTable.from_arrays(
            domain,
            kind=leaf_info.get("kind"),
            root_count=_table_root_count(leaf_info, "leaf table"),
            arrays=_compiled_arrays(envelope, "compiled.leaf."),
        )
        release._engines["range"] = RangeQueryEngine.from_compiled(tree, domain, table)
    descent_info = compiled.get("descent")
    if isinstance(descent_info, dict):
        table = CompiledDescentTable.from_arrays(
            domain,
            root_count=_table_root_count(descent_info, "descent table"),
            arrays=_compiled_arrays(envelope, "compiled.descent."),
        )
        release._engines["quantile"] = QuantileEngine.from_compiled(tree, domain, table)


def load_release_binary(path: str | pathlib.Path, sampling_seed: int | None = None):
    """Load a release envelope with mmap-backed query engines.

    The compiled leaf/descent sections become ready engines without any
    parse-then-recompile step, and the node dict is materialised lazily, so
    opening a release is O(1) in its size until a query pages the mapped
    arrays in.  Answers are byte-identical to the JSON path (pinned in
    ``tests/test_binary_io.py``).
    """
    from repro.api.release import Release
    from repro.core.sampler import SyntheticDataGenerator
    from repro.io.serialization import FORMAT_NAME, FORMAT_VERSION, domain_from_dict, tree_from_dict

    path = pathlib.Path(path)
    envelope = open_envelope(path)
    try:
        document = envelope.document
        if document.get("format") != FORMAT_NAME:
            raise ValueError(
                f"not a {FORMAT_NAME} envelope (found {document.get('format')!r}); "
                "checkpoints load through repro.io.serialization.load_checkpoint"
            )
        try:
            version = int(document.get("version", 0))
        except (TypeError, ValueError) as error:
            raise ValueError("document version is not an integer") from error
        if version > FORMAT_VERSION:
            raise ValueError(
                f"document version {version} is newer than supported version {FORMAT_VERSION}"
            )
        if not isinstance(document.get("domain"), dict):
            raise ValueError(f"a {FORMAT_NAME} document requires a 'domain' object")
        domain = domain_from_dict(document["domain"])
        tree_value = document.get("tree")
        if isinstance(tree_value, dict) and set(tree_value) == {_TREE_KEY}:
            spec = tree_value[_TREE_KEY]
            tree = _LazyBinaryTree(lambda: _tree_from_sections(spec, envelope.array))
        elif isinstance(tree_value, dict):
            tree = tree_from_dict(_reinflate_value(tree_value, envelope.array, "json"))
        else:
            raise ValueError(f"a {FORMAT_NAME} document requires a 'tree' object")
        generator = SyntheticDataGenerator(tree, domain, rng=sampling_seed)
        metadata = _reinflate_value(document.get("metadata", {}), envelope.array, "json")
        release = Release._from_parts(generator, metadata if isinstance(metadata, dict) else {})
        compiled = envelope.header.get("compiled")
        if isinstance(compiled, dict):
            _attach_engines(release, tree, domain, compiled, envelope)
        return release
    except ValueError as error:
        raise ValueError(f"{path}: {error}") from error
