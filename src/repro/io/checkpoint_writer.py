"""Asynchronous checkpoint writer: eviction persistence off the hot path.

The ingestion workers evict tenants by handing the live summarizer object to
a :class:`CheckpointWriter` and returning immediately; the writer serialises
and fsyncs in the background.  Three properties make this safe to put under a
byte-identity contract:

* **Single ownership.** A submitted summarizer belongs to the writer until
  the write completes (or until :meth:`take_back` reclaims it); the worker
  that evicted it holds no reference, so nothing mutates state mid-write.

* **Sequence-numbered coalescing.** Every submission for a stem gets a
  monotonically increasing sequence number, and only the newest pending
  submission per stem is ever written -- older queued writes are skipped.
  A stem evicted twice between writer wakeups costs one serialisation.

* **Restore-after-evict ordering.** :meth:`take_back` returns the pending
  (newest) summarizer for a stem, cancelling its queued write, so an
  evict -> restore round trip yields exactly the object that was evicted --
  trivially byte-identical, and never a stale file.  If the write is already
  in progress, ``take_back`` waits for it to land and returns ``None``; the
  caller then loads the just-written file, which is the newest state.

Write failures never raise on the worker path; they are recorded and
surfaced through :meth:`pop_errors` (the ingest service folds them into
``flush()`` failures).
"""

from __future__ import annotations

import pathlib
import queue
import threading

from repro.io.serialization import save_checkpoint

__all__ = ["CheckpointWriter"]


class _Pending:
    """One queued (or in-flight) checkpoint write for a stem."""

    __slots__ = ("sequence", "summarizer", "path", "format", "writing")

    def __init__(self, sequence: int, summarizer, path: pathlib.Path, format: str) -> None:
        self.sequence = sequence
        self.summarizer = summarizer
        self.path = path
        self.format = format
        self.writing = False


class CheckpointWriter:
    """Background thread that persists evicted summarizers with coalescing.

    >>> import tempfile, pathlib
    >>> from repro.ingest.spec import TenantSpec
    >>> from repro.io.serialization import load_checkpoint
    >>> spec = TenantSpec(tenant_id="t", domain="interval", epsilon=1.0,
    ...                   pruning_k=4, stream_size=64, seed=7)
    >>> summarizer = spec.build_summarizer()
    >>> writer = CheckpointWriter()
    >>> with tempfile.TemporaryDirectory() as root:
    ...     path = pathlib.Path(root) / "t.state.bin"
    ...     sequence = writer.submit("t", summarizer, path, format="binary")
    ...     landed = writer.wait_for("t")
    ...     restored = load_checkpoint(path)
    ...     writer.close()
    >>> (sequence, landed)
    (1, True)
    >>> restored.items_processed
    0
    """

    def __init__(self, *, queue_size: int = 1024) -> None:
        self._queue: queue.Queue = queue.Queue(maxsize=max(1, int(queue_size)))
        self._lock = threading.Lock()
        self._settled = threading.Condition(self._lock)
        self._pending: dict[str, _Pending] = {}
        self._sequences: dict[str, int] = {}
        self._errors: list[tuple[str, str]] = []
        self._closed = False
        self.writes = 0
        self.skipped_writes = 0
        self.take_backs = 0
        self._thread = threading.Thread(
            target=self._run, name="repro-checkpoint-writer", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------ #
    # producer side (worker threads)
    # ------------------------------------------------------------------ #
    def submit(self, stem: str, summarizer, path: str | pathlib.Path, *, format: str) -> int:
        """Hand a summarizer over for background persistence.

        The caller must drop its own reference: the object is owned by the
        writer until the write lands or :meth:`take_back` reclaims it.
        Returns the submission's sequence number.
        """
        path = pathlib.Path(path)
        with self._lock:
            if self._closed:
                raise RuntimeError("CheckpointWriter is closed")
            sequence = self._sequences.get(stem, 0) + 1
            self._sequences[stem] = sequence
            previous = self._pending.get(stem)
            if previous is not None and not previous.writing:
                # Supersede in place: the queued ticket for the old sequence
                # no longer matches and will be skipped when the writer
                # thread reaches it; this submission's own ticket (enqueued
                # below) carries the write.
                previous.sequence = sequence
                previous.summarizer = summarizer
                previous.path = path
                previous.format = format
            else:
                self._pending[stem] = _Pending(sequence, summarizer, path, format)
        # put() outside the lock: a full queue must not block take_back/drain.
        self._queue.put((stem, sequence))
        return sequence

    def take_back(self, stem: str, timeout: float | None = None):
        """Reclaim the pending summarizer for ``stem``, cancelling its write.

        Returns the summarizer when one is still queued (the caller resumes
        with exactly the evicted object), or ``None`` when nothing is pending
        -- including after waiting out an in-progress write, in which case
        the freshly written file holds the newest state.
        """
        with self._settled:
            entry = self._pending.get(stem)
            while entry is not None and entry.writing:
                # An in-flight write owns the object; wait for it to land so
                # the fallback file read can never observe an older state.
                if not self._settled.wait_for(
                    lambda: self._pending.get(stem) is not entry, timeout=timeout
                ):
                    return None
                entry = self._pending.get(stem)
            if entry is None:
                return None
            del self._pending[stem]
            self.take_backs += 1
            self._settled.notify_all()
            return entry.summarizer

    def wait_for(self, stem: str, timeout: float | None = None) -> bool:
        """Block until no write is pending for ``stem`` (durability barrier)."""
        with self._settled:
            return self._settled.wait_for(lambda: stem not in self._pending, timeout=timeout)

    def drain(self, timeout: float | None = None) -> bool:
        """Block until every pending write has landed (or been reclaimed)."""
        with self._settled:
            return self._settled.wait_for(lambda: not self._pending, timeout=timeout)

    def pop_errors(self) -> list[tuple[str, str]]:
        """Drain and return ``(stem, message)`` pairs for failed writes."""
        with self._lock:
            errors, self._errors = self._errors, []
            return errors

    @property
    def pending_count(self) -> int:
        with self._lock:
            return len(self._pending)

    def close(self, timeout: float | None = None) -> None:
        """Drain outstanding writes and stop the thread (idempotent)."""
        with self._lock:
            if self._closed:
                closed = True
            else:
                self._closed = True
                closed = False
        if not closed:
            self.drain(timeout=timeout)
            self._queue.put(None)
        self._thread.join(timeout=timeout)

    # ------------------------------------------------------------------ #
    # writer thread
    # ------------------------------------------------------------------ #
    def _run(self) -> None:
        while True:
            ticket = self._queue.get()
            if ticket is None:
                break
            stem, sequence = ticket
            with self._lock:
                entry = self._pending.get(stem)
                if entry is None or entry.sequence != sequence:
                    # Reclaimed by take_back, or superseded by a newer
                    # submission whose own ticket is still in the queue.
                    self.skipped_writes += 1
                    continue
                entry.writing = True
                summarizer, path, format = entry.summarizer, entry.path, entry.format
            try:
                save_checkpoint(summarizer, path, format=format)
                error = None
            except BaseException as exc:  # noqa: BLE001 - surfaced via pop_errors
                error = f"{type(exc).__name__}: {exc}"
            with self._settled:
                if self._pending.get(stem) is entry:
                    del self._pending[stem]
                if error is not None:
                    self._errors.append((stem, error))
                else:
                    self.writes += 1
                self._settled.notify_all()
