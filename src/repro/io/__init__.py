"""Persistence for released PrivHP artefacts.

Because the released partition tree is already epsilon-differentially private,
it can be written to disk, shared and reloaded freely (post-processing).  This
package provides a stable JSON format for trees, configurations and complete
generators, which the CLI uses to separate the "summarise the sensitive
stream" step from the "generate / query synthetic data" step.
"""

from repro.io.binary import (
    convert_file,
    detect_format,
    load_binary,
    load_release_binary,
    open_envelope,
    save_binary,
)
from repro.io.checkpoint_writer import CheckpointWriter
from repro.io.serialization import (
    generator_from_dict,
    generator_to_dict,
    load_generator,
    load_release_document,
    save_generator,
    tree_from_dict,
    tree_to_dict,
    validate_release_document,
)

__all__ = [
    "CheckpointWriter",
    "convert_file",
    "detect_format",
    "generator_from_dict",
    "generator_to_dict",
    "load_binary",
    "load_generator",
    "load_release_binary",
    "load_release_document",
    "open_envelope",
    "save_binary",
    "save_generator",
    "tree_from_dict",
    "tree_to_dict",
    "validate_release_document",
]
