"""JSON serialisation of trees, domains, generators and checkpoints.

The release format is deliberately simple and versioned:

```json
{
  "format": "privhp-generator",
  "version": 1,
  "domain": {"type": "Hypercube", "dimension": 2},
  "tree": {"01": 12.5, "": 40.0, ...}
}
```

Tree keys are the cell bit-strings (the root is the empty string); counts are
floats.  Only the *released* state is ever serialised in this format --
configurations and trees -- never raw stream data, so release files inherit
the original differential-privacy guarantee.

Checkpoints (``privhp-checkpoint``, written by :func:`save_checkpoint`) are
different: they persist the full mid-stream summarizer state -- tree,
sketch tables, privacy ledger and the exact random-generator state -- so a
paused ingestion can resume and release byte-for-byte identically.  A
checkpoint of a *noisy* summarizer is as private as the summary itself; a
checkpoint of a raw shard (``add_noise=False``) is NOT yet differentially
private and must be treated like the sensitive stream until its merged
release.  Continual checkpoints (:class:`repro.continual.privhp.PrivHPContinual`,
tagged ``"summarizer": "privhp-continual"`` in the state payload) are always
as private as the summary: the binary-mechanism noise is baked into the
state from the first event.
"""

from __future__ import annotations

import json
import os
import pathlib

from repro.core.sampler import SyntheticDataGenerator
from repro.core.tree import PartitionTree
from repro.domain.base import Domain
from repro.domain.discrete import DiscreteDomain
from repro.domain.geo import GeoDomain
from repro.domain.hypercube import Hypercube
from repro.domain.interval import UnitInterval
from repro.domain.ipv4 import IPv4Domain

__all__ = [
    "tree_to_dict",
    "tree_from_dict",
    "domain_to_dict",
    "domain_from_dict",
    "generator_to_dict",
    "generator_from_dict",
    "save_generator",
    "load_generator",
    "load_release_document",
    "validate_release_document",
    "summarizer_to_dict",
    "summarizer_from_dict",
    "save_checkpoint",
    "load_checkpoint",
    "write_text_atomic",
]

FORMAT_NAME = "privhp-generator"
FORMAT_VERSION = 1

CHECKPOINT_FORMAT_NAME = "privhp-checkpoint"
CHECKPOINT_FORMAT_VERSION = 1


# --------------------------------------------------------------------------- #
# trees
# --------------------------------------------------------------------------- #
def tree_to_dict(tree: PartitionTree) -> dict[str, float]:
    """Encode a tree as a mapping from bit-strings to counts."""
    return {"".join(map(str, theta)): count for theta, count in tree.nodes()}


def tree_from_dict(encoded: dict[str, float]) -> PartitionTree:
    """Decode a tree produced by :func:`tree_to_dict`."""
    tree = PartitionTree()
    for key, count in encoded.items():
        if any(char not in "01" for char in key):
            raise ValueError(f"invalid cell key {key!r}: keys must be bit-strings")
        theta = tuple(int(char) for char in key)
        tree.add_node(theta, float(count))
    if () not in tree:
        raise ValueError("the encoded tree has no root cell")
    return tree


# --------------------------------------------------------------------------- #
# domains
# --------------------------------------------------------------------------- #
def domain_to_dict(domain: Domain) -> dict:
    """Encode a domain's type and parameters."""
    if isinstance(domain, UnitInterval):
        return {"type": "UnitInterval"}
    if isinstance(domain, Hypercube):
        return {"type": "Hypercube", "dimension": domain.dimension}
    if isinstance(domain, IPv4Domain):
        return {"type": "IPv4Domain"}
    if isinstance(domain, GeoDomain):
        return {
            "type": "GeoDomain",
            "lat_min": domain.lat_min,
            "lat_max": domain.lat_max,
            "lon_min": domain.lon_min,
            "lon_max": domain.lon_max,
        }
    if isinstance(domain, DiscreteDomain):
        return {"type": "DiscreteDomain", "size": domain.size}
    raise ValueError(
        f"serialisation is not supported for {type(domain).__name__}; custom "
        "domains need an encoder/decoder in repro.io.serialization before "
        "they can be checkpointed, sharded, or saved"
    )


def domain_from_dict(encoded: dict) -> Domain:
    """Decode a domain produced by :func:`domain_to_dict`."""
    kind = encoded.get("type")
    if kind == "UnitInterval":
        return UnitInterval()
    if kind == "Hypercube":
        return Hypercube(int(encoded["dimension"]))
    if kind == "IPv4Domain":
        return IPv4Domain()
    if kind == "GeoDomain":
        return GeoDomain(
            lat_min=float(encoded["lat_min"]),
            lat_max=float(encoded["lat_max"]),
            lon_min=float(encoded["lon_min"]),
            lon_max=float(encoded["lon_max"]),
        )
    if kind == "DiscreteDomain":
        return DiscreteDomain(int(encoded["size"]))
    raise ValueError(f"unknown domain type {kind!r}")


# --------------------------------------------------------------------------- #
# generators
# --------------------------------------------------------------------------- #
def generator_to_dict(generator: SyntheticDataGenerator, metadata: dict | None = None) -> dict:
    """Encode a generator (tree + domain) into a JSON-serialisable dictionary."""
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "domain": domain_to_dict(generator.domain),
        "tree": tree_to_dict(generator.tree),
        "metadata": dict(metadata or {}),
    }


def validate_release_document(document) -> dict:
    """Check the ``privhp-generator`` envelope (format name, version, shape).

    This is the single place release-format validation lives; both
    :func:`generator_from_dict` and :meth:`repro.api.release.Release.load`
    route through it, so a future format bump only happens here.  Returns the
    document unchanged when it is acceptable.
    """
    if not isinstance(document, dict):
        raise ValueError(
            f"a {FORMAT_NAME} document must be a JSON object, "
            f"got {type(document).__name__}"
        )
    if document.get("format") != FORMAT_NAME:
        raise ValueError(f"not a {FORMAT_NAME} document")
    try:
        version = int(document.get("version", 0))
    except (TypeError, ValueError) as error:
        raise ValueError(f"document version {document.get('version')!r} is not an integer") from error
    if version > FORMAT_VERSION:
        raise ValueError(
            f"document version {version} is newer than supported "
            f"version {FORMAT_VERSION}"
        )
    for key in ("domain", "tree"):
        if not isinstance(document.get(key), dict):
            raise ValueError(f"a {FORMAT_NAME} document requires a {key!r} object")
    return document


def load_release_document(path: str | pathlib.Path) -> dict:
    """Read and validate a ``privhp-generator`` document from disk.

    The on-disk format is autodetected by magic bytes: binary envelopes
    (:mod:`repro.io.binary`) decode back to the identical interchange
    document, so callers never care how a release was written.  Malformed
    input of either format surfaces as ``ValueError`` (with the offending
    path named), so every consumer -- ``Release.load``, the CLI, the serving
    store -- reports bad release files uniformly.
    """
    from repro.io.binary import detect_format, load_binary

    path = pathlib.Path(path)
    if detect_format(path) == "binary":
        document = load_binary(path)
    else:
        try:
            document = json.loads(path.read_text())
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise ValueError(f"{path} is not valid JSON: {error}") from error
    try:
        return validate_release_document(document)
    except ValueError as error:
        raise ValueError(f"{path}: {error}") from error


def generator_from_dict(encoded: dict, seed: int | None = None) -> SyntheticDataGenerator:
    """Decode a generator produced by :func:`generator_to_dict`."""
    validate_release_document(encoded)
    domain = domain_from_dict(encoded["domain"])
    tree = tree_from_dict(encoded["tree"])
    return SyntheticDataGenerator(tree, domain, rng=seed)


def write_bytes_atomic(path: pathlib.Path, data: bytes) -> None:
    """Write through a sibling temp file + fsync + ``os.replace``.

    The rename makes the write atomic (no reader ever observes a partial
    file); the fsync *before* the rename makes it durable -- without it a
    power loss shortly after the rename can leave the new name pointing at
    a zero-length file.  That matters now that ingest eviction checkpoints
    run at high frequency.
    """
    path = pathlib.Path(path)
    temp = path.with_name(path.name + ".tmp")
    with open(temp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp, path)


def write_text_atomic(path: pathlib.Path, text: str) -> None:
    """Write through a sibling temp file + fsync + ``os.replace`` so a crash
    mid-write can never leave an existing file truncated (see
    :func:`write_bytes_atomic` for why the fsync matters).

    Shared by release/checkpoint persistence and the experiment-matrix result
    store, whose resumability contract depends on never observing a partial
    file.
    """
    write_bytes_atomic(path, text.encode("utf-8"))


#: Backwards-compatible alias for the pre-public name.
_write_text_atomic = write_text_atomic


def save_generator(
    generator: SyntheticDataGenerator,
    path: str | pathlib.Path,
    metadata: dict | None = None,
) -> pathlib.Path:
    """Write a generator to a JSON file and return the path."""
    path = pathlib.Path(path)
    document = generator_to_dict(generator, metadata=metadata)
    _write_text_atomic(path, json.dumps(document, indent=2, sort_keys=True))
    return path


def load_generator(
    path: str | pathlib.Path,
    seed: int | None = None,
    *,
    sampling_seed: int | None = None,
) -> SyntheticDataGenerator:
    """Load a generator from a JSON file written by :func:`save_generator`.

    The seed (``sampling_seed``, with ``seed`` kept as the historical alias)
    reseeds *sampling only*: the persisted tree counts are decoded verbatim
    and are never re-noised, so loading the same release under different
    seeds yields different synthetic draws from the identical distribution.
    """
    if seed is not None and sampling_seed is not None and seed != sampling_seed:
        raise ValueError("pass either seed or sampling_seed, not conflicting values of both")
    effective = sampling_seed if sampling_seed is not None else seed
    return generator_from_dict(load_release_document(path), seed=effective)


# --------------------------------------------------------------------------- #
# checkpoints (mid-stream summarizer state)
# --------------------------------------------------------------------------- #
def summarizer_to_dict(summarizer, *, arrays: bool = False) -> dict:
    """Wrap a summarizer's :meth:`checkpoint` payload in the versioned envelope.

    ``arrays=True`` requests the ndarray form of the bulk state (counter
    banks, sketch tables) -- not JSON-serialisable, but the binary envelope
    writer stores the arrays directly without a list round trip.
    """
    return {
        "format": CHECKPOINT_FORMAT_NAME,
        "version": CHECKPOINT_FORMAT_VERSION,
        "state": summarizer.checkpoint(arrays=arrays),
    }


def summarizer_from_dict(document: dict):
    """Decode a checkpoint document back into a live summarizer.

    The envelope is shared by every summarizer kind; the ``state`` payload
    carries a ``"summarizer"`` tag (absent for historical one-shot PrivHP
    checkpoints) that routes to the matching ``restore``.
    """
    from repro.continual.privhp import CONTINUAL_STATE_KIND, PrivHPContinual
    from repro.core.privhp import PrivHP

    if document.get("format") != CHECKPOINT_FORMAT_NAME:
        raise ValueError(f"not a {CHECKPOINT_FORMAT_NAME} document")
    if int(document.get("version", 0)) > CHECKPOINT_FORMAT_VERSION:
        raise ValueError(
            f"checkpoint version {document.get('version')} is newer than supported "
            f"version {CHECKPOINT_FORMAT_VERSION}"
        )
    state = document.get("state")
    if not isinstance(state, dict):
        raise ValueError(f"a {CHECKPOINT_FORMAT_NAME} document requires a 'state' object")
    kind = state.get("summarizer", "privhp")
    if kind == CONTINUAL_STATE_KIND:
        return PrivHPContinual.restore(state)
    if kind != "privhp":
        raise ValueError(f"unknown summarizer kind {kind!r} in checkpoint")
    return PrivHP.restore(state)


def save_checkpoint(summarizer, path: str | pathlib.Path, *, format: str = "json") -> pathlib.Path:
    """Write a summarizer's full mid-stream state to disk.

    ``format="json"`` (the default, and the interchange form) writes compact
    sorted-key JSON; ``format="binary"`` writes the envelope of
    :mod:`repro.io.binary`, where the counter banks and sketch tables land
    as raw float sections -- the form the high-frequency ingest eviction
    path uses.  The write is atomic and fsynced either way, so extending an
    existing checkpoint can never destroy it if the process (or the machine)
    dies mid-write.
    """
    path = pathlib.Path(path)
    if format == "binary":
        from repro.io.binary import save_binary

        return save_binary(summarizer_to_dict(summarizer, arrays=True), path)
    if format != "json":
        raise ValueError(f"format must be 'json' or 'binary', got {format!r}")
    _write_text_atomic(path, json.dumps(summarizer_to_dict(summarizer), sort_keys=True))
    return path


def load_checkpoint(path: str | pathlib.Path):
    """Load a summarizer previously saved with :func:`save_checkpoint`.

    The format is autodetected by magic bytes.  Binary checkpoints reinflate
    their array sections as writable numpy arrays, which the summarizers'
    ``restore`` paths consume without an extra copy.
    """
    from repro.io.binary import detect_format, load_binary

    path = pathlib.Path(path)
    if detect_format(path) == "binary":
        return summarizer_from_dict(load_binary(path, mode="arrays"))
    return summarizer_from_dict(json.loads(path.read_text()))
