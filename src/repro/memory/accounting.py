"""Word-level memory accounting for PrivHP and the baseline methods."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.privhp import PrivHP

__all__ = ["MemoryReport", "measure_privhp", "measure_method"]


@dataclass
class MemoryReport:
    """Breakdown of the words held by a fitted synthetic-data method."""

    method: str
    total_words: int
    components: dict[str, int] = field(default_factory=dict)

    def as_row(self) -> dict:
        """Flat representation for tabular printing."""
        row = {"method": self.method, "total_words": self.total_words}
        row.update({f"words_{name}": value for name, value in self.components.items()})
        return row


def measure_privhp(algorithm: PrivHP) -> MemoryReport:
    """Break a PrivHP instance's memory into tree and per-level sketch words."""
    components = {"tree": algorithm.tree.memory_words()}
    for level, sketch in algorithm.sketches.items():
        components[f"sketch_level_{level}"] = sketch.memory_words()
    return MemoryReport(
        method="PrivHP",
        total_words=algorithm.memory_words(),
        components=components,
    )


def measure_method(method) -> MemoryReport:
    """Memory report for any object following the method protocol."""
    return MemoryReport(
        method=getattr(method, "name", type(method).__name__),
        total_words=method.memory_words(),
        components={},
    )
