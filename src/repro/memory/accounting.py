"""Word-level memory accounting for PrivHP, PrivHPContinual and baselines."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.privhp import PrivHP

__all__ = ["MemoryReport", "measure_privhp", "measure_continual", "measure_method"]


@dataclass
class MemoryReport:
    """Breakdown of the words held by a fitted synthetic-data method."""

    method: str
    total_words: int
    components: dict[str, int] = field(default_factory=dict)

    def as_row(self) -> dict:
        """Flat representation for tabular printing."""
        row = {"method": self.method, "total_words": self.total_words}
        row.update({f"words_{name}": value for name, value in self.components.items()})
        return row


def measure_privhp(algorithm: PrivHP) -> MemoryReport:
    """Break a PrivHP instance's memory into tree and per-level sketch words."""
    components = {"tree": algorithm.tree.memory_words()}
    for level, sketch in algorithm.sketches.items():
        components[f"sketch_level_{level}"] = sketch.memory_words()
    return MemoryReport(
        method="PrivHP",
        total_words=algorithm.memory_words(),
        components=components,
    )


def measure_continual(algorithm) -> MemoryReport:
    """Break a PrivHPContinual's memory into counter-bank and sketch words.

    The continual layout has no materialised tree: each exact level is a
    :class:`~repro.continual.counter.BinaryMechanismCounterBank` and each
    deep level a continual sketch, so the breakdown reports one
    ``counter_bank_level_*`` entry per exact level and one
    ``sketch_level_*`` entry per deep level.  These are the honest word
    counts the ingestion service's eviction policy ranks tenants by.
    """
    components = {}
    for level, bank in sorted(algorithm.banks.items()):
        components[f"counter_bank_level_{level}"] = bank.memory_words()
    for level, sketch in sorted(algorithm.sketches.items()):
        components[f"sketch_level_{level}"] = sketch.memory_words()
    return MemoryReport(
        method="PrivHPContinual",
        total_words=algorithm.memory_words(),
        components=components,
    )


def measure_method(method) -> MemoryReport:
    """Memory report for any object following the method protocol.

    Dispatches to the structured breakdowns for the summarizers this repo
    knows from the inside (:class:`~repro.core.privhp.PrivHP` and
    :class:`~repro.continual.privhp.PrivHPContinual`); anything else gets a
    component-free report from its ``memory_words()``.
    """
    from repro.continual.privhp import PrivHPContinual

    if isinstance(method, PrivHP):
        return measure_privhp(method)
    if isinstance(method, PrivHPContinual):
        return measure_continual(method)
    return MemoryReport(
        method=getattr(method, "name", type(method).__name__),
        total_words=method.memory_words(),
        components={},
    )
