"""Memory accounting utilities.

Corollary 1's headline claim is about *memory*, so the experiments must be
able to report how many machine words each method actually holds.  The
accounting here is structural (counters, sketch cells, tree nodes) rather than
byte-accurate Python ``sys.getsizeof`` measurements, because the paper's
bounds are stated in words and Python object overhead would only add noise to
the comparison.
"""

from repro.memory.accounting import (
    MemoryReport,
    measure_continual,
    measure_method,
    measure_privhp,
)

__all__ = ["MemoryReport", "measure_continual", "measure_method", "measure_privhp"]
