"""Core differential-privacy definitions.

The paper works in the 1-pass streaming model (Definition 1): two streams are
*neighbouring* when they differ in exactly one element.  Linear statistics of
the stream (histogram counts, sketch cells, path counts in a partition tree)
then have an L1-sensitivity determined by how many statistics a single element
touches.  The helpers in this module make those sensitivity computations
explicit so that mechanisms and tests can reason about them directly.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Callable

import numpy as np

__all__ = [
    "neighbouring",
    "hamming_distance",
    "l1_sensitivity",
    "linf_sensitivity",
    "histogram_sensitivity",
    "tree_path_sensitivity",
    "sketch_sensitivity",
]


def hamming_distance(stream_a: Sequence, stream_b: Sequence) -> int:
    """Number of positions at which two equal-length streams differ.

    Raises ``ValueError`` when the streams have different lengths because the
    substitution (bounded) neighbouring relation used by the paper is only
    defined for equal-length streams.
    """
    if len(stream_a) != len(stream_b):
        raise ValueError(
            "neighbouring streams must have equal length; "
            f"got {len(stream_a)} and {len(stream_b)}"
        )
    distance = 0
    for left, right in zip(stream_a, stream_b):
        if not _items_equal(left, right):
            distance += 1
    return distance


def neighbouring(stream_a: Sequence, stream_b: Sequence) -> bool:
    """Return ``True`` when the two streams differ in exactly one element."""
    return hamming_distance(stream_a, stream_b) == 1


def _items_equal(left, right) -> bool:
    """Equality that tolerates numpy arrays as stream elements."""
    left_arr = np.asarray(left)
    right_arr = np.asarray(right)
    if left_arr.shape != right_arr.shape:
        return False
    return bool(np.all(left_arr == right_arr))


def l1_sensitivity(
    statistic: Callable[[Sequence], np.ndarray],
    stream_a: Sequence,
    stream_b: Sequence,
) -> float:
    """Empirical L1 distance between a statistic evaluated on two streams.

    This is the quantity ``||f(X) - f(X')||_1`` appearing in the Laplace
    mechanism (Lemma 1).  It is primarily used in tests to verify that the
    analytic sensitivities claimed for the tree and the sketches hold on
    concrete neighbouring inputs.
    """
    value_a = np.asarray(statistic(stream_a), dtype=float).ravel()
    value_b = np.asarray(statistic(stream_b), dtype=float).ravel()
    if value_a.shape != value_b.shape:
        raise ValueError("statistic must return arrays of identical shape")
    return float(np.sum(np.abs(value_a - value_b)))


def linf_sensitivity(
    statistic: Callable[[Sequence], np.ndarray],
    stream_a: Sequence,
    stream_b: Sequence,
) -> float:
    """Empirical L-infinity distance between a statistic on two streams."""
    value_a = np.asarray(statistic(stream_a), dtype=float).ravel()
    value_b = np.asarray(statistic(stream_b), dtype=float).ravel()
    if value_a.shape != value_b.shape:
        raise ValueError("statistic must return arrays of identical shape")
    return float(np.max(np.abs(value_a - value_b)))


def histogram_sensitivity() -> float:
    """L1 sensitivity of a histogram over a fixed partition.

    Replacing one element moves one unit of count out of one bucket and into
    another, so the L1 sensitivity is 2 under substitution neighbours and 1
    under add/remove neighbours.  The paper uses add/remove style accounting
    on a single root-to-leaf path, so we follow the add/remove convention
    within a single level: sensitivity 1 per level.
    """
    return 1.0


def tree_path_sensitivity(depth: int) -> float:
    """L1 sensitivity of the exact-counter portion of the partition tree.

    A single element increments one counter per level along its root-to-leaf
    path, so the whole vector of counters at levels ``0..depth`` changes by 1
    in ``depth + 1`` coordinates (Theorem 2's argument uses ``L*`` levels with
    per-level budgets rather than a single global scale).
    """
    if depth < 0:
        raise ValueError("depth must be non-negative")
    return float(depth + 1)


def sketch_sensitivity(depth: int) -> float:
    """L1 sensitivity of a Count-Min/Count sketch with ``depth`` rows.

    Sketches are linear, so for neighbouring inputs the sketch difference is
    the sketch of the difference vector: one row-cell per row changes by 1,
    giving sensitivity ``depth`` (Section 3.4 of the paper).
    """
    if depth <= 0:
        raise ValueError("sketch depth must be positive")
    return float(depth)
